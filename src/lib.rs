//! Workspace root for the ADVOCAT reproduction.
//!
//! This thin facade re-exports the workspace crates so that the runnable
//! examples under `examples/` and the integration tests under `tests/` can
//! refer to everything through a single dependency. The real public API
//! lives in the [`advocat`] crate and the substrate crates it builds on.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use advocat;
pub use advocat_automata as automata;
pub use advocat_deadlock as deadlock;
pub use advocat_explorer as explorer;
pub use advocat_frontend as frontend;
pub use advocat_invariants as invariants;
pub use advocat_logic as logic;
pub use advocat_noc as noc;
pub use advocat_num as num;
pub use advocat_protocols as protocols;
pub use advocat_service as service;
pub use advocat_xmas as xmas;
