//! A minimal, dependency-free stand-in for the Criterion benchmark harness.
//!
//! The build environment has no access to crates.io, so the workspace ships
//! this shim under the package name `criterion`.  It implements exactly the
//! surface the benches under `crates/bench/benches/` use — `Criterion`,
//! `benchmark_group`, `bench_function`, `Bencher::iter`, `black_box` and the
//! [`criterion_group!`] macro — with a straightforward timing loop: each
//! benchmark is warmed up briefly, then run for a fixed number of samples,
//! and the mean/min wall-clock time per iteration is printed.
//!
//! The statistics are deliberately simple (no outlier rejection, no
//! bootstrap); the numbers are good enough to compare the relative cost of
//! the measured configurations, which is all the harness is used for.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::hint;
use std::time::{Duration, Instant};

/// Prevents the compiler from optimising away a benchmarked value.
pub fn black_box<T>(value: T) -> T {
    hint::black_box(value)
}

/// The benchmark driver: entry point mirroring `criterion::Criterion`.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Accepted for CLI compatibility; the shim has no configurable flags.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Prints a closing line (the real Criterion prints its summary here).
    pub fn final_summary(&self) {
        advocat_telemetry::info!("(criterion shim: benchmarks complete)");
    }

    /// Runs one stand-alone benchmark and prints its per-iteration timing.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let samples = self.sample_size;
        run_benchmark(&id.into(), samples, routine);
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        let samples = self.sample_size;
        advocat_telemetry::info!("-- bench group: {name}");
        BenchmarkGroup {
            _criterion: self,
            sample_size: samples,
            name,
        }
    }
}

fn run_benchmark<F>(id: &str, samples: usize, mut routine: F)
where
    F: FnMut(&mut Bencher),
{
    let mut bencher = Bencher {
        samples,
        total: Duration::ZERO,
        min: Duration::MAX,
        iterations: 0,
    };
    routine(&mut bencher);
    let (mean, min) = bencher.summary();
    advocat_telemetry::info!(
        "   {id}: mean {mean:.3?}, min {min:.3?} ({} iters)",
        bencher.iterations
    );
}

/// A group of related benchmarks sharing a sample-size configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    sample_size: usize,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of measured iterations per benchmark.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.sample_size = samples;
        self
    }

    /// Runs one benchmark and prints its per-iteration timing.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = format!("{}/{}", self.name, id.into());
        run_benchmark(&id, self.sample_size, routine);
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

/// Passed to each benchmark closure; measures the routine it is given.
#[derive(Debug)]
pub struct Bencher {
    samples: usize,
    total: Duration,
    min: Duration,
    iterations: u64,
}

impl Bencher {
    /// Times `routine` over the configured number of samples (after one
    /// untimed warm-up call) and records the aggregate.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine());
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            let elapsed = start.elapsed();
            self.total += elapsed;
            self.min = self.min.min(elapsed);
            self.iterations += 1;
        }
    }

    fn summary(&self) -> (Duration, Duration) {
        if self.iterations == 0 {
            return (Duration::ZERO, Duration::ZERO);
        }
        (self.total / self.iterations as u32, self.min)
    }
}

/// Declares a function (named after the first argument) that runs the given
/// benchmark functions, mirroring `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_iterations() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        group.bench_function("noop", |b| b.iter(|| 1 + 1));
        group.finish();
    }

    #[test]
    fn black_box_is_identity() {
        assert_eq!(black_box(42), 42);
    }
}
