//! Explicit-state exploration of xMAS + XMAS-automata systems.
//!
//! ADVOCAT's deadlock verdicts are sound but may report unreachable
//! candidates; the paper confirms candidates with UPPAAL on small networks.
//! This crate plays that role: it gives the combined model an executable
//! semantics and explores its reachable state space.
//!
//! * [`GlobalState`] — queue contents plus automaton states,
//! * [`explore`] — bounded breadth-first reachability with deadlock-state
//!   detection and a visitor hook (used, e.g., to check that every derived
//!   invariant holds in every reachable state),
//! * [`explore_parallel`] — the same search with multi-threaded frontier
//!   expansion over a sharded seen-set, reporting the identical reachable
//!   set with a schedule-independent (sorted) deadlock list,
//! * [`random_walk`] — long random simulations for larger systems where
//!   exhaustive exploration is not feasible.
//!
//! The step semantics is an interleaving abstraction of the synchronous
//! xMAS semantics: one transfer (a packet moving from a sequential producer
//! through the combinational primitives into a sequential consumer) or one
//! spontaneous automaton transition per step.  Queues can optionally be
//! treated as *stalling* (a packet that cannot be consumed lets later
//! packets overtake it), which matches the paper's treatment of packets
//! that are "stalled and moved to the end of the queue".
//!
//! # Examples
//!
//! ```
//! use advocat_explorer::{explore, ExplorerConfig};
//! use advocat_xmas::{Network, Packet};
//! use advocat_automata::System;
//!
//! // A source feeding a dead sink through a size-1 queue deadlocks as soon
//! // as the queue fills.
//! let mut net = Network::new();
//! let p = net.intern(Packet::kind("p"));
//! let src = net.add_source("src", vec![p]);
//! let q = net.add_queue("q", 1);
//! let sink = net.add_dead_sink("dead");
//! net.connect(src, 0, q, 0);
//! net.connect(q, 0, sink, 0);
//! let system = System::new(net);
//! let result = explore(&system, &ExplorerConfig::default());
//! assert!(!result.deadlocks.is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod reach;
mod simulate;
mod state;
mod transfer;

pub use reach::{
    explore, explore_parallel, explore_with_visitor, Exploration, ExplorerConfig, Outcome,
};
pub use simulate::{random_walk, SimulationReport, XorShift64};
pub use state::GlobalState;
pub use transfer::enabled_events;
