//! Bounded breadth-first reachability.

use std::collections::hash_map::DefaultHasher;
use std::collections::{HashSet, VecDeque};
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;

use advocat_automata::System;

use crate::state::GlobalState;
use crate::transfer::enabled_events;

/// Bounds and semantic options for an exploration.
#[derive(Clone, Copy, Debug)]
pub struct ExplorerConfig {
    /// Maximum number of distinct states to visit.
    pub max_states: usize,
    /// Use the paper's stalling semantics (packets that cannot be consumed
    /// are overtaken by later packets) instead of strict FIFO consumption.
    pub requeue_stalled: bool,
    /// Maximum number of deadlock states to record.
    pub max_deadlocks: usize,
}

impl Default for ExplorerConfig {
    fn default() -> Self {
        ExplorerConfig {
            max_states: 200_000,
            requeue_stalled: true,
            max_deadlocks: 8,
        }
    }
}

/// Whether the exploration covered the full reachable state space.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Outcome {
    /// Every reachable state was visited.
    Exhaustive,
    /// The state bound was hit before exhausting the state space.
    Bounded,
}

/// The result of an exploration.
#[derive(Clone, Debug)]
pub struct Exploration {
    /// Whether the search was exhaustive.
    pub outcome: Outcome,
    /// Number of distinct states visited.
    pub states_explored: usize,
    /// Deadlock states found (no enabled event), up to the configured cap.
    pub deadlocks: Vec<GlobalState>,
}

impl Exploration {
    /// Returns `true` when the exploration proves the system deadlock-free
    /// (exhaustive search, no deadlock state).
    pub fn proves_deadlock_freedom(&self) -> bool {
        self.outcome == Outcome::Exhaustive && self.deadlocks.is_empty()
    }
}

/// Explores the reachable states of a system breadth-first.
pub fn explore(system: &System, config: &ExplorerConfig) -> Exploration {
    explore_with_visitor(system, config, |_| {})
}

/// Explores the reachable states, invoking `visitor` on every distinct
/// state visited (including the initial one).
///
/// The visitor hook is how the test-suite cross-validates the invariant
/// generator: every derived invariant must hold in every reachable state.
pub fn explore_with_visitor<F>(
    system: &System,
    config: &ExplorerConfig,
    mut visitor: F,
) -> Exploration
where
    F: FnMut(&GlobalState),
{
    let initial = GlobalState::initial(system);
    let mut visited: HashSet<GlobalState> = HashSet::new();
    let mut frontier: VecDeque<GlobalState> = VecDeque::new();
    let mut deadlocks = Vec::new();
    visited.insert(initial.clone());
    visitor(&initial);
    frontier.push_back(initial);
    let mut bounded = false;

    while let Some(state) = frontier.pop_front() {
        let events = enabled_events(system, &state, config.requeue_stalled);
        if events.is_empty() && deadlocks.len() < config.max_deadlocks {
            deadlocks.push(state.clone());
        }
        for event in events {
            let next = event.apply(&state);
            if visited.contains(&next) {
                continue;
            }
            if visited.len() >= config.max_states {
                bounded = true;
                continue;
            }
            visitor(&next);
            visited.insert(next.clone());
            frontier.push_back(next);
        }
    }

    Exploration {
        outcome: if bounded {
            Outcome::Bounded
        } else {
            Outcome::Exhaustive
        },
        states_explored: visited.len(),
        deadlocks,
    }
}

/// Explores the reachable states with `workers` threads expanding the
/// breadth-first frontier in parallel.
///
/// The search is *level-synchronous*: each BFS level is split across the
/// workers, which claim newly discovered states through a sharded seen-set
/// (one mutex-guarded hash set per shard, shard chosen by state hash) so
/// that no state is expanded twice.  Because every worker expands states of
/// the same formula-independent transition relation, the set of states
/// reached — and therefore `states_explored` and the deadlock verdict — is
/// identical to the sequential [`explore`] whenever the search is
/// exhaustive.  Deadlock states are reported in sorted order (rather than
/// discovery order) so the result is deterministic across thread schedules;
/// under the state bound the *frontier cut* may differ from the sequential
/// one, exactly as two sequential runs with different queue orders would.
///
/// `workers <= 1` delegates to the sequential implementation (including its
/// discovery-order deadlock list, re-sorted for consistency).
pub fn explore_parallel(system: &System, config: &ExplorerConfig, workers: usize) -> Exploration {
    if workers <= 1 {
        let mut result = explore(system, config);
        result.deadlocks.sort();
        return result;
    }
    // More shards than workers keeps lock contention low without changing
    // results: the seen-set is a plain union of its shards.
    explore_parallel_sharded(system, config, workers, (workers * 4).next_power_of_two())
}

fn shard_of(state: &GlobalState, shards: usize) -> usize {
    let mut hasher = DefaultHasher::new();
    state.hash(&mut hasher);
    (hasher.finish() as usize) % shards
}

fn explore_parallel_sharded(
    system: &System,
    config: &ExplorerConfig,
    workers: usize,
    shards: usize,
) -> Exploration {
    let seen: Vec<Mutex<HashSet<GlobalState>>> =
        (0..shards).map(|_| Mutex::new(HashSet::new())).collect();
    let visited = AtomicUsize::new(1);
    let bounded = AtomicBool::new(false);
    let initial = GlobalState::initial(system);
    seen[shard_of(&initial, shards)]
        .lock()
        .expect("seen shard poisoned")
        .insert(initial.clone());
    let mut frontier = vec![initial];
    let mut deadlocks: Vec<GlobalState> = Vec::new();

    while !frontier.is_empty() {
        let chunk = frontier.len().div_ceil(workers);
        let results: Vec<(Vec<GlobalState>, Vec<GlobalState>)> = std::thread::scope(|scope| {
            let handles: Vec<_> = frontier
                .chunks(chunk)
                .map(|slice| {
                    let (seen, visited, bounded) = (&seen, &visited, &bounded);
                    scope.spawn(move || {
                        let mut next = Vec::new();
                        let mut dead = Vec::new();
                        for state in slice {
                            let events = enabled_events(system, state, config.requeue_stalled);
                            if events.is_empty() {
                                dead.push(state.clone());
                            }
                            for event in events {
                                let succ = event.apply(state);
                                let mut shard = seen[shard_of(&succ, shards)]
                                    .lock()
                                    .expect("seen shard poisoned");
                                if shard.contains(&succ) {
                                    continue;
                                }
                                // Reserve a slot under the state bound while
                                // holding the shard lock, so a state is
                                // either counted and owned by exactly one
                                // worker or rejected by every worker.
                                let reserved = visited
                                    .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |n| {
                                        (n < config.max_states).then_some(n + 1)
                                    })
                                    .is_ok();
                                if !reserved {
                                    bounded.store(true, Ordering::Relaxed);
                                    continue;
                                }
                                shard.insert(succ.clone());
                                drop(shard);
                                next.push(succ);
                            }
                        }
                        (next, dead)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|handle| handle.join().expect("explorer worker panicked"))
                .collect()
        });
        frontier = Vec::new();
        for (next, dead) in results {
            frontier.extend(next);
            deadlocks.extend(dead);
        }
    }

    // Frontier states are globally distinct, so the deadlock list has no
    // duplicates; sorting makes it schedule-independent.
    deadlocks.sort();
    deadlocks.truncate(config.max_deadlocks);
    Exploration {
        outcome: if bounded.load(Ordering::Relaxed) {
            Outcome::Bounded
        } else {
            Outcome::Exhaustive
        },
        states_explored: visited.load(Ordering::Relaxed),
        deadlocks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use advocat_automata::AutomatonBuilder;
    use advocat_xmas::{Network, Packet};

    /// The running example of the paper: a request/acknowledge loop.
    fn running_example(queue_size: usize) -> System {
        let mut net = Network::new();
        let req = net.intern(Packet::kind("req"));
        let ack = net.intern(Packet::kind("ack"));
        let s_node = net.add_automaton_node("S", 1, 1);
        let t_node = net.add_automaton_node("T", 1, 1);
        let q0 = net.add_queue("q0", queue_size);
        let q1 = net.add_queue("q1", queue_size);
        net.connect(s_node, 0, q0, 0);
        net.connect(q0, 0, t_node, 0);
        net.connect(t_node, 0, q1, 0);
        net.connect(q1, 0, s_node, 0);
        let mut sb = AutomatonBuilder::new("S", 1, 1);
        let s0 = sb.state("s0");
        let s1 = sb.state("s1");
        sb.set_initial(s0);
        sb.spontaneous_emit(s0, s1, 0, req);
        sb.on_packet(s1, s0, 0, ack, None);
        let mut tb = AutomatonBuilder::new("T", 1, 1);
        let t0 = tb.state("t0");
        let t1 = tb.state("t1");
        tb.set_initial(t0);
        tb.on_packet(t0, t1, 0, req, None);
        tb.spontaneous_emit(t1, t0, 0, ack);
        let mut system = System::new(net);
        system.attach(s_node, sb.build().unwrap()).unwrap();
        system.attach(t_node, tb.build().unwrap()).unwrap();
        system
    }

    #[test]
    fn running_example_is_deadlock_free_and_small() {
        let system = running_example(2);
        let result = explore(&system, &ExplorerConfig::default());
        assert!(result.proves_deadlock_freedom());
        // The request/acknowledge loop only has a handful of global states.
        assert!(result.states_explored <= 8, "{}", result.states_explored);
    }

    #[test]
    fn dead_sink_pipeline_reaches_a_deadlock() {
        let mut net = Network::new();
        let p = net.intern(Packet::kind("p"));
        let src = net.add_source("src", vec![p]);
        let q = net.add_queue("q", 2);
        let dead = net.add_dead_sink("dead");
        net.connect(src, 0, q, 0);
        net.connect(q, 0, dead, 0);
        let system = System::new(net);
        let result = explore(&system, &ExplorerConfig::default());
        assert_eq!(result.outcome, Outcome::Exhaustive);
        assert_eq!(result.deadlocks.len(), 1);
        assert_eq!(result.deadlocks[0].queue_len(q), 2);
        assert!(!result.proves_deadlock_freedom());
    }

    #[test]
    fn visitor_sees_every_state_once() {
        let system = running_example(1);
        let mut seen = 0usize;
        let result = explore_with_visitor(&system, &ExplorerConfig::default(), |_| seen += 1);
        assert_eq!(seen, result.states_explored);
    }

    #[test]
    fn parallel_exploration_matches_sequential_counts_and_deadlocks() {
        let system = running_example(2);
        let sequential = explore(&system, &ExplorerConfig::default());
        for workers in [2, 4] {
            let parallel = explore_parallel(&system, &ExplorerConfig::default(), workers);
            assert_eq!(parallel.outcome, sequential.outcome);
            assert_eq!(parallel.states_explored, sequential.states_explored);
            assert_eq!(parallel.deadlocks, sequential.deadlocks);
        }
    }

    #[test]
    fn parallel_exploration_matches_sequential_on_random_fabrics() {
        // Randomised pipelines: a source feeding a chain of queues into
        // either a live sink (deadlock-free) or a dead sink (the chain
        // fills up and deadlocks).  The parallel explorer must reach the
        // same state count and find a witness exactly when the sequential
        // one does.
        let mut seed = 0x5eed_cafe_u64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for round in 0..12 {
            let mut net = Network::new();
            let p = net.intern(Packet::kind("p"));
            let src = net.add_source("src", vec![p]);
            let stages = 1 + (next() % 3) as usize;
            let mut prev = (src, 0);
            for i in 0..stages {
                let q = net.add_queue(format!("q{i}"), 1 + (next() % 3) as usize);
                net.connect(prev.0, prev.1, q, 0);
                prev = (q, 0);
            }
            let lively = next() % 2 == 0;
            let sink = if lively {
                net.add_sink("sink")
            } else {
                net.add_dead_sink("dead")
            };
            net.connect(prev.0, prev.1, sink, 0);
            let system = System::new(net);
            let sequential = explore(&system, &ExplorerConfig::default());
            assert_eq!(
                sequential.deadlocks.is_empty(),
                lively,
                "round {round}: dead sink must be the only source of deadlock"
            );
            let mut expected = sequential.deadlocks.clone();
            expected.sort();
            for workers in [2, 4] {
                let parallel = explore_parallel(&system, &ExplorerConfig::default(), workers);
                assert_eq!(parallel.outcome, sequential.outcome, "round {round}");
                assert_eq!(
                    parallel.states_explored, sequential.states_explored,
                    "round {round} at {workers} workers"
                );
                assert_eq!(parallel.deadlocks, expected, "round {round}");
            }
        }
    }

    #[test]
    fn single_shard_forces_every_collision_and_still_agrees() {
        // With one shard every state contends for the same lock; the result
        // must still be the plain sequential reachable set.
        let mut net = Network::new();
        let p = net.intern(Packet::kind("p"));
        let src = net.add_source("src", vec![p]);
        let q = net.add_queue("q", 3);
        let dead = net.add_dead_sink("dead");
        net.connect(src, 0, q, 0);
        net.connect(q, 0, dead, 0);
        let system = System::new(net);
        let sequential = explore(&system, &ExplorerConfig::default());
        let collided = explore_parallel_sharded(&system, &ExplorerConfig::default(), 4, 1);
        assert_eq!(collided.outcome, sequential.outcome);
        assert_eq!(collided.states_explored, sequential.states_explored);
        let mut expected = sequential.deadlocks.clone();
        expected.sort();
        assert_eq!(collided.deadlocks, expected);
        assert!(shard_of(&GlobalState::initial(&system), 1) == 0);
    }

    #[test]
    fn parallel_state_bound_still_reports_bounded() {
        let system = running_example(2);
        let config = ExplorerConfig {
            max_states: 2,
            ..ExplorerConfig::default()
        };
        let result = explore_parallel(&system, &config, 4);
        assert_eq!(result.outcome, Outcome::Bounded);
        assert_eq!(result.states_explored, 2);
    }

    #[test]
    fn state_bound_truncates_the_search() {
        let system = running_example(2);
        let config = ExplorerConfig {
            max_states: 2,
            ..ExplorerConfig::default()
        };
        let result = explore(&system, &config);
        assert_eq!(result.outcome, Outcome::Bounded);
        assert_eq!(result.states_explored, 2);
    }
}
