//! Bounded breadth-first reachability.

use std::collections::{HashSet, VecDeque};

use advocat_automata::System;

use crate::state::GlobalState;
use crate::transfer::enabled_events;

/// Bounds and semantic options for an exploration.
#[derive(Clone, Copy, Debug)]
pub struct ExplorerConfig {
    /// Maximum number of distinct states to visit.
    pub max_states: usize,
    /// Use the paper's stalling semantics (packets that cannot be consumed
    /// are overtaken by later packets) instead of strict FIFO consumption.
    pub requeue_stalled: bool,
    /// Maximum number of deadlock states to record.
    pub max_deadlocks: usize,
}

impl Default for ExplorerConfig {
    fn default() -> Self {
        ExplorerConfig {
            max_states: 200_000,
            requeue_stalled: true,
            max_deadlocks: 8,
        }
    }
}

/// Whether the exploration covered the full reachable state space.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Outcome {
    /// Every reachable state was visited.
    Exhaustive,
    /// The state bound was hit before exhausting the state space.
    Bounded,
}

/// The result of an exploration.
#[derive(Clone, Debug)]
pub struct Exploration {
    /// Whether the search was exhaustive.
    pub outcome: Outcome,
    /// Number of distinct states visited.
    pub states_explored: usize,
    /// Deadlock states found (no enabled event), up to the configured cap.
    pub deadlocks: Vec<GlobalState>,
}

impl Exploration {
    /// Returns `true` when the exploration proves the system deadlock-free
    /// (exhaustive search, no deadlock state).
    pub fn proves_deadlock_freedom(&self) -> bool {
        self.outcome == Outcome::Exhaustive && self.deadlocks.is_empty()
    }
}

/// Explores the reachable states of a system breadth-first.
pub fn explore(system: &System, config: &ExplorerConfig) -> Exploration {
    explore_with_visitor(system, config, |_| {})
}

/// Explores the reachable states, invoking `visitor` on every distinct
/// state visited (including the initial one).
///
/// The visitor hook is how the test-suite cross-validates the invariant
/// generator: every derived invariant must hold in every reachable state.
pub fn explore_with_visitor<F>(
    system: &System,
    config: &ExplorerConfig,
    mut visitor: F,
) -> Exploration
where
    F: FnMut(&GlobalState),
{
    let initial = GlobalState::initial(system);
    let mut visited: HashSet<GlobalState> = HashSet::new();
    let mut frontier: VecDeque<GlobalState> = VecDeque::new();
    let mut deadlocks = Vec::new();
    visited.insert(initial.clone());
    visitor(&initial);
    frontier.push_back(initial);
    let mut bounded = false;

    while let Some(state) = frontier.pop_front() {
        let events = enabled_events(system, &state, config.requeue_stalled);
        if events.is_empty() && deadlocks.len() < config.max_deadlocks {
            deadlocks.push(state.clone());
        }
        for event in events {
            let next = event.apply(&state);
            if visited.contains(&next) {
                continue;
            }
            if visited.len() >= config.max_states {
                bounded = true;
                continue;
            }
            visitor(&next);
            visited.insert(next.clone());
            frontier.push_back(next);
        }
    }

    Exploration {
        outcome: if bounded {
            Outcome::Bounded
        } else {
            Outcome::Exhaustive
        },
        states_explored: visited.len(),
        deadlocks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use advocat_automata::AutomatonBuilder;
    use advocat_xmas::{Network, Packet};

    /// The running example of the paper: a request/acknowledge loop.
    fn running_example(queue_size: usize) -> System {
        let mut net = Network::new();
        let req = net.intern(Packet::kind("req"));
        let ack = net.intern(Packet::kind("ack"));
        let s_node = net.add_automaton_node("S", 1, 1);
        let t_node = net.add_automaton_node("T", 1, 1);
        let q0 = net.add_queue("q0", queue_size);
        let q1 = net.add_queue("q1", queue_size);
        net.connect(s_node, 0, q0, 0);
        net.connect(q0, 0, t_node, 0);
        net.connect(t_node, 0, q1, 0);
        net.connect(q1, 0, s_node, 0);
        let mut sb = AutomatonBuilder::new("S", 1, 1);
        let s0 = sb.state("s0");
        let s1 = sb.state("s1");
        sb.set_initial(s0);
        sb.spontaneous_emit(s0, s1, 0, req);
        sb.on_packet(s1, s0, 0, ack, None);
        let mut tb = AutomatonBuilder::new("T", 1, 1);
        let t0 = tb.state("t0");
        let t1 = tb.state("t1");
        tb.set_initial(t0);
        tb.on_packet(t0, t1, 0, req, None);
        tb.spontaneous_emit(t1, t0, 0, ack);
        let mut system = System::new(net);
        system.attach(s_node, sb.build().unwrap()).unwrap();
        system.attach(t_node, tb.build().unwrap()).unwrap();
        system
    }

    #[test]
    fn running_example_is_deadlock_free_and_small() {
        let system = running_example(2);
        let result = explore(&system, &ExplorerConfig::default());
        assert!(result.proves_deadlock_freedom());
        // The request/acknowledge loop only has a handful of global states.
        assert!(result.states_explored <= 8, "{}", result.states_explored);
    }

    #[test]
    fn dead_sink_pipeline_reaches_a_deadlock() {
        let mut net = Network::new();
        let p = net.intern(Packet::kind("p"));
        let src = net.add_source("src", vec![p]);
        let q = net.add_queue("q", 2);
        let dead = net.add_dead_sink("dead");
        net.connect(src, 0, q, 0);
        net.connect(q, 0, dead, 0);
        let system = System::new(net);
        let result = explore(&system, &ExplorerConfig::default());
        assert_eq!(result.outcome, Outcome::Exhaustive);
        assert_eq!(result.deadlocks.len(), 1);
        assert_eq!(result.deadlocks[0].queue_len(q), 2);
        assert!(!result.proves_deadlock_freedom());
    }

    #[test]
    fn visitor_sees_every_state_once() {
        let system = running_example(1);
        let mut seen = 0usize;
        let result = explore_with_visitor(&system, &ExplorerConfig::default(), |_| seen += 1);
        assert_eq!(seen, result.states_explored);
    }

    #[test]
    fn state_bound_truncates_the_search() {
        let system = running_example(2);
        let config = ExplorerConfig {
            max_states: 2,
            ..ExplorerConfig::default()
        };
        let result = explore(&system, &config);
        assert_eq!(result.outcome, Outcome::Bounded);
        assert_eq!(result.states_explored, 2);
    }
}
