//! Transfer resolution: the executable step semantics.
//!
//! A *step* is either one packet transfer — from a sequential producer
//! (source, queue, or an automaton emission) through the combinational
//! primitives (function, switch, merge, fork) into sequential consumers
//! (queue, sink, automaton) — or one spontaneous automaton transition.
//! This interleaving abstraction preserves reachability of the
//! configurations the deadlock analysis cares about (queue contents and
//! automaton states).

use advocat_automata::{StateId, System, TransitionKind};
use advocat_xmas::{ChannelId, ColorId, Primitive, PrimitiveId};

use crate::state::GlobalState;

/// One atomic effect of an event.
#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) enum Effect {
    /// Append a packet to a queue.
    Push(PrimitiveId, ColorId),
    /// Remove the first occurrence of a packet from a queue.
    Remove(PrimitiveId, ColorId),
    /// Move an automaton to a new state.
    SetState(PrimitiveId, StateId),
}

/// An enabled event: a short description plus its effects.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Event {
    /// Human-readable description (for traces and debugging).
    pub description: String,
    pub(crate) effects: Vec<Effect>,
}

impl Event {
    /// Applies the event to a state, returning the successor state.
    pub fn apply(&self, state: &GlobalState) -> GlobalState {
        let mut next = state.clone();
        for effect in &self.effects {
            match effect {
                Effect::Push(queue, color) => next.push_packet(*queue, *color),
                Effect::Remove(queue, color) => next.remove_packet(*queue, *color),
                Effect::SetState(node, new_state) => next.set_automaton_state(*node, *new_state),
            }
        }
        next
    }
}

const MAX_COMBINATIONAL_DEPTH: usize = 64;

/// Returns every alternative set of effects by which a packet of color
/// `color` offered on `channel` can be consumed in `state`.
fn offer(
    system: &System,
    state: &GlobalState,
    channel: ChannelId,
    color: ColorId,
    depth: usize,
) -> Vec<Vec<Effect>> {
    if depth > MAX_COMBINATIONAL_DEPTH {
        return Vec::new();
    }
    let network = system.network();
    let target = network.channel(channel).target;
    let node = target.primitive;
    match network.primitive(node) {
        Primitive::Queue { size, .. } => {
            if state.queue_len(node) < *size {
                vec![vec![Effect::Push(node, color)]]
            } else {
                Vec::new()
            }
        }
        Primitive::Sink { fair } => {
            if *fair {
                vec![Vec::new()]
            } else {
                Vec::new()
            }
        }
        Primitive::Function { .. } => {
            let mapped = network
                .primitive(node)
                .function_apply(color)
                .expect("function primitive");
            match network.out_channel(node, 0) {
                Some(out) => offer(system, state, out, mapped, depth + 1),
                None => Vec::new(),
            }
        }
        Primitive::Switch { .. } => {
            let port = network
                .primitive(node)
                .switch_route(color)
                .expect("switch primitive");
            match network.out_channel(node, port) {
                Some(out) => offer(system, state, out, color, depth + 1),
                None => Vec::new(),
            }
        }
        Primitive::Merge { .. } => match network.out_channel(node, 0) {
            Some(out) => offer(system, state, out, color, depth + 1),
            None => Vec::new(),
        },
        Primitive::Fork => {
            let (Some(a), Some(b)) = (network.out_channel(node, 0), network.out_channel(node, 1))
            else {
                return Vec::new();
            };
            let left = offer(system, state, a, color, depth + 1);
            let right = offer(system, state, b, color, depth + 1);
            let mut alternatives = Vec::new();
            for l in &left {
                for r in &right {
                    let mut combined = l.clone();
                    combined.extend(r.clone());
                    alternatives.push(combined);
                }
            }
            alternatives
        }
        Primitive::Join => {
            // Joins are not used by the generated fabrics; a conservative
            // "cannot accept" keeps exploration sound for models that do use
            // them (it only under-approximates reachability).
            Vec::new()
        }
        Primitive::Automaton { .. } => {
            let Some(automaton) = system.automaton(node) else {
                return Vec::new();
            };
            let current = state.automaton_state(node);
            let mut alternatives = Vec::new();
            for t in automaton.transitions_from(current) {
                let transition = automaton.transition(t);
                let Some(emission) = transition.emission_for(target.port, color) else {
                    continue;
                };
                match emission {
                    None => alternatives.push(vec![Effect::SetState(node, transition.to)]),
                    Some((out_port, out_color)) => {
                        let Some(out) = network.out_channel(node, out_port) else {
                            continue;
                        };
                        for downstream in offer(system, state, out, out_color, depth + 1) {
                            let mut effects = downstream;
                            effects.push(Effect::SetState(node, transition.to));
                            alternatives.push(effects);
                        }
                    }
                }
            }
            alternatives
        }
        Primitive::Source { .. } => Vec::new(),
    }
}

/// Enumerates every event enabled in `state`.
///
/// `requeue_stalled` selects the paper's stalling semantics for queues: any
/// packet of a queue (not only the head) may be offered to the consumer,
/// modelling packets that are "stalled and moved to the end of the queue".
pub fn enabled_events(system: &System, state: &GlobalState, requeue_stalled: bool) -> Vec<Event> {
    let network = system.network();
    let mut events = Vec::new();

    // Source injections.
    for id in network.primitive_ids() {
        if let Primitive::Source { colors } = network.primitive(id) {
            let Some(out) = network.out_channel(id, 0) else {
                continue;
            };
            for color in colors {
                for effects in offer(system, state, out, *color, 0) {
                    events.push(Event {
                        description: format!(
                            "{} injects {}",
                            network.name(id),
                            network.colors().packet(*color)
                        ),
                        effects,
                    });
                }
            }
        }
    }

    // Queue head (or any stalled packet) advances.
    for queue in network.queue_ids() {
        let content = state.queue(queue);
        if content.is_empty() {
            continue;
        }
        let Some(out) = network.out_channel(queue, 0) else {
            continue;
        };
        let candidates: Vec<ColorId> = if requeue_stalled {
            let mut distinct = content.to_vec();
            distinct.sort();
            distinct.dedup();
            distinct
        } else {
            vec![content[0]]
        };
        for color in candidates {
            for mut effects in offer(system, state, out, color, 0) {
                effects.push(Effect::Remove(queue, color));
                events.push(Event {
                    description: format!(
                        "{} forwards {}",
                        network.name(queue),
                        network.colors().packet(color)
                    ),
                    effects,
                });
            }
        }
    }

    // Spontaneous automaton transitions.
    for (node, automaton) in system.automata() {
        let current = state.automaton_state(node);
        for t in automaton.transitions_from(current) {
            let transition = automaton.transition(t);
            let TransitionKind::Spontaneous(emission) = &transition.kind else {
                continue;
            };
            match emission {
                None => events.push(Event {
                    description: format!(
                        "{} moves to {}",
                        network.name(node),
                        automaton.state_name(transition.to)
                    ),
                    effects: vec![Effect::SetState(node, transition.to)],
                }),
                Some((out_port, out_color)) => {
                    let Some(out) = network.out_channel(node, *out_port) else {
                        continue;
                    };
                    for downstream in offer(system, state, out, *out_color, 0) {
                        let mut effects = downstream;
                        effects.push(Effect::SetState(node, transition.to));
                        events.push(Event {
                            description: format!(
                                "{} emits {}",
                                network.name(node),
                                network.colors().packet(*out_color)
                            ),
                            effects,
                        });
                    }
                }
            }
        }
    }

    events
}

#[cfg(test)]
mod tests {
    use super::*;
    use advocat_automata::AutomatonBuilder;
    use advocat_xmas::{Network, Packet};

    #[test]
    fn source_injection_fills_a_queue_until_capacity() {
        let mut net = Network::new();
        let p = net.intern(Packet::kind("p"));
        let src = net.add_source("src", vec![p]);
        let q = net.add_queue("q", 2);
        let dead = net.add_dead_sink("dead");
        net.connect(src, 0, q, 0);
        net.connect(q, 0, dead, 0);
        let system = System::new(net);
        let mut state = GlobalState::initial(&system);
        for expected_len in 1..=2 {
            let events = enabled_events(&system, &state, true);
            assert_eq!(events.len(), 1, "only the injection is enabled");
            state = events[0].apply(&state);
            assert_eq!(state.queue_len(q), expected_len);
        }
        // Queue full and sink dead: deadlock.
        assert!(enabled_events(&system, &state, true).is_empty());
    }

    #[test]
    fn stalling_lets_later_packets_overtake() {
        // An automaton that only accepts `b`; the queue head is `a`.
        let mut net = Network::new();
        let a = net.intern(Packet::kind("a"));
        let b = net.intern(Packet::kind("b"));
        let q = net.add_queue_with_init("q", 2, vec![a, b]);
        let agent = net.add_automaton_node("agent", 1, 0);
        net.connect(q, 0, agent, 0);
        let mut builder = AutomatonBuilder::new("agent", 1, 0);
        let s = builder.state("s");
        builder.on_packet(s, s, 0, b, None);
        let mut system = System::new(net);
        system.attach(agent, builder.build().unwrap()).unwrap();
        let state = GlobalState::initial(&system);
        // FIFO semantics: the head `a` is not consumable, so nothing happens.
        assert!(enabled_events(&system, &state, false).is_empty());
        // Stalling semantics: `b` overtakes the stalled `a`.
        let events = enabled_events(&system, &state, true);
        assert_eq!(events.len(), 1);
        let next = events[0].apply(&state);
        assert_eq!(next.queue(q), &[a]);
    }

    #[test]
    fn automaton_emission_requires_downstream_space() {
        // agent: on `go`, emit `out` into a size-1 queue feeding a dead sink.
        let mut net = Network::new();
        let go = net.intern(Packet::kind("go"));
        let out_pkt = net.intern(Packet::kind("out"));
        let src = net.add_source("src", vec![go]);
        let agent = net.add_automaton_node("agent", 1, 1);
        let q = net.add_queue("q", 1);
        let dead = net.add_dead_sink("dead");
        net.connect(src, 0, agent, 0);
        net.connect(agent, 0, q, 0);
        net.connect(q, 0, dead, 0);
        let mut builder = AutomatonBuilder::new("agent", 1, 1);
        let s = builder.state("s");
        builder.on_packet(s, s, 0, go, Some((0, out_pkt)));
        let mut system = System::new(net);
        system.attach(agent, builder.build().unwrap()).unwrap();

        let state = GlobalState::initial(&system);
        let events = enabled_events(&system, &state, true);
        assert_eq!(
            events.len(),
            1,
            "the injection through the agent is enabled"
        );
        let next = events[0].apply(&state);
        assert_eq!(next.queue_len(q), 1);
        // Queue now full: the agent can no longer accept `go`.
        assert!(enabled_events(&system, &next, true).is_empty());
    }

    #[test]
    fn spontaneous_transitions_are_events() {
        let mut net = Network::new();
        let ping = net.intern(Packet::kind("ping"));
        let agent = net.add_automaton_node("agent", 0, 1);
        let q = net.add_queue("q", 5);
        let snk = net.add_sink("snk");
        net.connect(agent, 0, q, 0);
        net.connect(q, 0, snk, 0);
        let mut builder = AutomatonBuilder::new("agent", 0, 1);
        let s0 = builder.state("s0");
        let s1 = builder.state("s1");
        builder.set_initial(s0);
        builder.spontaneous_emit(s0, s1, 0, ping);
        builder.spontaneous(s1, s0);
        let mut system = System::new(net);
        system.attach(agent, builder.build().unwrap()).unwrap();

        let state = GlobalState::initial(&system);
        let events = enabled_events(&system, &state, true);
        assert_eq!(events.len(), 1);
        let next = events[0].apply(&state);
        assert_eq!(next.queue_len(q), 1);
        assert!(next.is_in_state(agent, s1));
        // From s1 the silent transition back to s0 is enabled, and the
        // packet in the queue can advance into the sink.
        let followups = enabled_events(&system, &next, true);
        assert_eq!(followups.len(), 2);
    }
}
