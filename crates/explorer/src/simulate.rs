//! Random simulation for systems too large to explore exhaustively.

use advocat_automata::System;

use crate::state::GlobalState;
use crate::transfer::enabled_events;

/// Deterministic xorshift* generator, so walks are reproducible from their
/// seed without an external RNG dependency.
///
/// Also the input generator of the workspace's property tests — one shared
/// implementation keeps the seed-mixing and constants in a single place.
#[derive(Clone, Debug)]
pub struct XorShift64 {
    state: u64,
}

impl XorShift64 {
    /// Creates a generator from a seed.  The seed is mixed so that small
    /// seeds (including zero) still produce well-distributed streams.
    pub fn new(seed: u64) -> Self {
        XorShift64 {
            state: seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1,
        }
    }

    /// The next raw 64-bit value of the stream.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// A value in `0..n` (modulo-reduced; the slight bias is irrelevant for
    /// simulation and test-input generation).
    ///
    /// # Panics
    ///
    /// Panics when `n` is zero.
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }

    /// A value in `lo..=hi` (inclusive).
    ///
    /// # Panics
    ///
    /// Panics when `lo > hi`.
    pub fn int(&mut self, lo: i128, hi: i128) -> i128 {
        lo + self.below((hi - lo + 1) as u64) as i128
    }

    /// An index into a collection of length `len`.
    ///
    /// # Panics
    ///
    /// Panics when `len` is zero.
    pub fn pick(&mut self, len: usize) -> usize {
        self.below(len as u64) as usize
    }
}

/// The result of a random walk.
#[derive(Clone, Debug)]
pub struct SimulationReport {
    /// Number of steps actually taken.
    pub steps_taken: usize,
    /// The state in which the walk got stuck, if it did.
    pub deadlock: Option<GlobalState>,
    /// The final state of the walk (equal to the deadlock state when stuck).
    pub final_state: GlobalState,
}

impl SimulationReport {
    /// Returns `true` when the walk ended in a state with no enabled event.
    pub fn deadlocked(&self) -> bool {
        self.deadlock.is_some()
    }
}

/// Performs a uniformly random walk of at most `max_steps` steps from the
/// initial state, using the stalling queue semantics.
///
/// Random walks cannot prove deadlock freedom, but on large meshes they are
/// a cheap way to exhibit reachable deadlocks reported by the SMT analysis
/// and to smoke-test generated fabrics.
pub fn random_walk(system: &System, max_steps: usize, seed: u64) -> SimulationReport {
    let mut rng = XorShift64::new(seed);
    let mut state = GlobalState::initial(system);
    for step in 0..max_steps {
        let events = enabled_events(system, &state, true);
        if events.is_empty() {
            return SimulationReport {
                steps_taken: step,
                deadlock: Some(state.clone()),
                final_state: state,
            };
        }
        let pick = rng.pick(events.len());
        state = events[pick].apply(&state);
    }
    SimulationReport {
        steps_taken: max_steps,
        deadlock: None,
        final_state: state,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use advocat_xmas::{Network, Packet};

    #[test]
    fn walk_on_a_live_pipeline_never_deadlocks() {
        let mut net = Network::new();
        let p = net.intern(Packet::kind("p"));
        let src = net.add_source("src", vec![p]);
        let q = net.add_queue("q", 2);
        let snk = net.add_sink("snk");
        net.connect(src, 0, q, 0);
        net.connect(q, 0, snk, 0);
        let system = System::new(net);
        let report = random_walk(&system, 500, 7);
        assert!(!report.deadlocked());
        assert_eq!(report.steps_taken, 500);
    }

    #[test]
    fn walk_into_a_dead_sink_gets_stuck_quickly() {
        let mut net = Network::new();
        let p = net.intern(Packet::kind("p"));
        let src = net.add_source("src", vec![p]);
        let q = net.add_queue("q", 3);
        let dead = net.add_dead_sink("dead");
        net.connect(src, 0, q, 0);
        net.connect(q, 0, dead, 0);
        let system = System::new(net);
        let report = random_walk(&system, 100, 42);
        assert!(report.deadlocked());
        assert_eq!(report.steps_taken, 3);
        assert_eq!(report.final_state.queue_len(q), 3);
    }

    #[test]
    fn identical_seeds_reproduce_identical_walks() {
        let mut net = Network::new();
        let a = net.intern(Packet::kind("a"));
        let b = net.intern(Packet::kind("b"));
        let src = net.add_source("src", vec![a, b]);
        let q = net.add_queue("q", 4);
        let snk = net.add_sink("snk");
        net.connect(src, 0, q, 0);
        net.connect(q, 0, snk, 0);
        let system = System::new(net);
        let r1 = random_walk(&system, 200, 11);
        let r2 = random_walk(&system, 200, 11);
        assert_eq!(r1.final_state, r2.final_state);
    }
}
