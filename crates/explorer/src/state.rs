//! Global states of a system.

use std::collections::BTreeMap;

use advocat_automata::{StateId, System};
use advocat_xmas::{ColorId, Primitive, PrimitiveId};

/// A global state: the content of every queue (front first) and the state
/// of every automaton.
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GlobalState {
    queues: BTreeMap<PrimitiveId, Vec<ColorId>>,
    automata: BTreeMap<PrimitiveId, StateId>,
}

impl GlobalState {
    /// Returns the initial state of a system: queues hold their declared
    /// initial content, automata are in their initial states.
    pub fn initial(system: &System) -> GlobalState {
        let network = system.network();
        let mut queues = BTreeMap::new();
        for q in network.queue_ids() {
            let init = match network.primitive(q) {
                Primitive::Queue { init, .. } => init.clone(),
                _ => Vec::new(),
            };
            queues.insert(q, init);
        }
        let mut automata = BTreeMap::new();
        for (node, automaton) in system.automata() {
            automata.insert(node, automaton.initial());
        }
        GlobalState { queues, automata }
    }

    /// Returns the content of a queue (front first).
    pub fn queue(&self, queue: PrimitiveId) -> &[ColorId] {
        self.queues.get(&queue).map(|v| v.as_slice()).unwrap_or(&[])
    }

    /// Returns the number of packets of the given color in a queue.
    pub fn queue_count(&self, queue: PrimitiveId, color: ColorId) -> usize {
        self.queue(queue).iter().filter(|c| **c == color).count()
    }

    /// Returns the total number of packets in a queue.
    pub fn queue_len(&self, queue: PrimitiveId) -> usize {
        self.queue(queue).len()
    }

    /// Returns the total number of en-route packets.
    pub fn total_packets(&self) -> usize {
        self.queues.values().map(|v| v.len()).sum()
    }

    /// Returns the current state of an automaton node.
    ///
    /// # Panics
    ///
    /// Panics if the node has no attached automaton.
    pub fn automaton_state(&self, node: PrimitiveId) -> StateId {
        *self
            .automata
            .get(&node)
            .expect("automaton node present in the state")
    }

    /// Returns `true` when the automaton at `node` is in `state`.
    pub fn is_in_state(&self, node: PrimitiveId, state: StateId) -> bool {
        self.automata.get(&node) == Some(&state)
    }

    pub(crate) fn push_packet(&mut self, queue: PrimitiveId, color: ColorId) {
        self.queues.entry(queue).or_default().push(color);
    }

    /// Removes the first occurrence of `color` from the queue.
    pub(crate) fn remove_packet(&mut self, queue: PrimitiveId, color: ColorId) {
        let content = self.queues.entry(queue).or_default();
        if let Some(pos) = content.iter().position(|c| *c == color) {
            content.remove(pos);
        }
    }

    pub(crate) fn set_automaton_state(&mut self, node: PrimitiveId, state: StateId) {
        self.automata.insert(node, state);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use advocat_xmas::{Network, Packet};

    #[test]
    fn initial_state_reflects_queue_init_and_automaton_initial() {
        let mut net = Network::new();
        let a = net.intern(Packet::kind("a"));
        let src = net.add_source("src", vec![a]);
        let q = net.add_queue_with_init("q", 3, vec![a, a]);
        let snk = net.add_sink("snk");
        net.connect(src, 0, q, 0);
        net.connect(q, 0, snk, 0);
        let system = System::new(net);
        let state = GlobalState::initial(&system);
        assert_eq!(state.queue_len(q), 2);
        assert_eq!(state.queue_count(q, a), 2);
        assert_eq!(state.total_packets(), 2);
    }

    #[test]
    fn packet_mutations_preserve_order() {
        let mut net = Network::new();
        let a = net.intern(Packet::kind("a"));
        let b = net.intern(Packet::kind("b"));
        let src = net.add_source("src", vec![a, b]);
        let q = net.add_queue("q", 3);
        let snk = net.add_sink("snk");
        net.connect(src, 0, q, 0);
        net.connect(q, 0, snk, 0);
        let system = System::new(net);
        let mut state = GlobalState::initial(&system);
        state.push_packet(q, a);
        state.push_packet(q, b);
        state.push_packet(q, a);
        assert_eq!(state.queue(q), &[a, b, a]);
        state.remove_packet(q, a);
        assert_eq!(state.queue(q), &[b, a]);
    }
}
