//! The xMAS primitives (plus the opaque automaton node kind).

use std::collections::BTreeMap;

use crate::packet::ColorId;

/// One node of an xMAS network.
///
/// The eight standard primitives follow Gotmanov/Chatterjee/Kishinevsky's
/// xMAS language; `Automaton` is ADVOCAT's extension point — a protocol
/// agent whose behaviour (states, transitions) is supplied externally by
/// `advocat-automata`, while this crate only knows its port counts.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Primitive {
    /// A FIFO queue with a fixed capacity and optional initial content
    /// (head of the queue first).
    Queue {
        /// Capacity in packets (store-and-forward: a size-`n` queue holds
        /// `n` complete packets).
        size: usize,
        /// Initial occupancy, front first.
        init: Vec<ColorId>,
    },
    /// A combinational data transformation; unmapped colors pass through
    /// unchanged.
    Function {
        /// Per-color output packet.
        map: BTreeMap<ColorId, ColorId>,
    },
    /// A fair, non-deterministic packet producer.
    Source {
        /// The colors this source may inject.
        colors: Vec<ColorId>,
    },
    /// A packet consumer.
    Sink {
        /// `true` for a fair sink (always eventually ready), `false` for a
        /// dead sink (never ready).
        fair: bool,
    },
    /// Duplicates an incoming packet to both outputs; the transfer happens
    /// only when the input and *both* outputs are ready.
    Fork,
    /// Synchronises two inputs; the output carries the data of input 0 and
    /// a transfer requires both inputs to be ready.
    Join,
    /// Routes each incoming packet to one output, chosen per color.
    Switch {
        /// Output port per color; colors not listed go to `default`.
        routes: BTreeMap<ColorId, usize>,
        /// Number of output ports.
        num_outputs: usize,
        /// Output port for unmapped colors.
        default: usize,
    },
    /// A fair arbiter granting its single output to one of its inputs.
    Merge {
        /// Number of input ports.
        num_inputs: usize,
    },
    /// An opaque XMAS-automaton node; behaviour is attached externally.
    Automaton {
        /// Number of input channels.
        inputs: usize,
        /// Number of output channels.
        outputs: usize,
    },
}

impl Primitive {
    /// Returns the number of input ports of the primitive.
    pub fn input_count(&self) -> usize {
        match self {
            Primitive::Queue { .. } | Primitive::Function { .. } | Primitive::Switch { .. } => 1,
            Primitive::Source { .. } => 0,
            Primitive::Sink { .. } => 1,
            Primitive::Fork => 1,
            Primitive::Join => 2,
            Primitive::Merge { num_inputs } => *num_inputs,
            Primitive::Automaton { inputs, .. } => *inputs,
        }
    }

    /// Returns the number of output ports of the primitive.
    pub fn output_count(&self) -> usize {
        match self {
            Primitive::Queue { .. } | Primitive::Function { .. } => 1,
            Primitive::Source { .. } => 1,
            Primitive::Sink { .. } => 0,
            Primitive::Fork => 2,
            Primitive::Join => 1,
            Primitive::Switch { num_outputs, .. } => *num_outputs,
            Primitive::Merge { .. } => 1,
            Primitive::Automaton { outputs, .. } => *outputs,
        }
    }

    /// Returns a short human-readable kind name.
    pub fn kind_name(&self) -> &'static str {
        match self {
            Primitive::Queue { .. } => "queue",
            Primitive::Function { .. } => "function",
            Primitive::Source { .. } => "source",
            Primitive::Sink { .. } => "sink",
            Primitive::Fork => "fork",
            Primitive::Join => "join",
            Primitive::Switch { .. } => "switch",
            Primitive::Merge { .. } => "merge",
            Primitive::Automaton { .. } => "automaton",
        }
    }

    /// Returns `true` for queue primitives.
    pub fn is_queue(&self) -> bool {
        matches!(self, Primitive::Queue { .. })
    }

    /// Returns `true` for automaton nodes.
    pub fn is_automaton(&self) -> bool {
        matches!(self, Primitive::Automaton { .. })
    }

    /// For a switch, returns the output port a color is routed to.
    ///
    /// Returns `None` for non-switch primitives.
    pub fn switch_route(&self, color: ColorId) -> Option<usize> {
        match self {
            Primitive::Switch {
                routes, default, ..
            } => Some(routes.get(&color).copied().unwrap_or(*default)),
            _ => None,
        }
    }

    /// For a function, returns the output color for an input color
    /// (identity for unmapped colors).  Returns `None` for non-functions.
    pub fn function_apply(&self, color: ColorId) -> Option<ColorId> {
        match self {
            Primitive::Function { map } => Some(map.get(&color).copied().unwrap_or(color)),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn port_counts_match_the_xmas_definition() {
        assert_eq!(Primitive::Fork.input_count(), 1);
        assert_eq!(Primitive::Fork.output_count(), 2);
        assert_eq!(Primitive::Join.input_count(), 2);
        assert_eq!(Primitive::Join.output_count(), 1);
        assert_eq!(Primitive::Source { colors: vec![] }.input_count(), 0);
        assert_eq!(Primitive::Sink { fair: true }.output_count(), 0);
        let merge = Primitive::Merge { num_inputs: 5 };
        assert_eq!(merge.input_count(), 5);
        assert_eq!(merge.output_count(), 1);
    }

    #[test]
    fn switch_routes_fall_back_to_default() {
        let c0 = ColorId(0);
        let c1 = ColorId(1);
        let mut routes = BTreeMap::new();
        routes.insert(c0, 1);
        let sw = Primitive::Switch {
            routes,
            num_outputs: 3,
            default: 2,
        };
        assert_eq!(sw.switch_route(c0), Some(1));
        assert_eq!(sw.switch_route(c1), Some(2));
        assert_eq!(Primitive::Fork.switch_route(c0), None);
    }

    #[test]
    fn function_defaults_to_identity() {
        let c0 = ColorId(0);
        let c1 = ColorId(1);
        let mut map = BTreeMap::new();
        map.insert(c0, c1);
        let f = Primitive::Function { map };
        assert_eq!(f.function_apply(c0), Some(c1));
        assert_eq!(f.function_apply(c1), Some(c1));
    }

    #[test]
    fn kind_names_are_stable() {
        assert_eq!(Primitive::Fork.kind_name(), "fork");
        assert_eq!(
            Primitive::Automaton {
                inputs: 2,
                outputs: 1
            }
            .kind_name(),
            "automaton"
        );
    }
}
