//! Channels connecting xMAS primitives.

use std::fmt;

use crate::network::PrimitiveId;

/// A compact handle for a channel of a [`crate::Network`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ChannelId(pub(crate) u32);

impl ChannelId {
    /// Returns the raw index of the channel.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A reference to one port (input or output) of a primitive.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct PortRef {
    /// The primitive owning the port.
    pub primitive: PrimitiveId,
    /// The port index (output ports and input ports are numbered
    /// independently, each starting at zero).
    pub port: usize,
}

impl fmt::Display for PortRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}:{}", self.primitive.index(), self.port)
    }
}

/// A channel from an initiator output port to a target input port.
///
/// In xMAS a channel carries three signals: `irdy` (initiator ready),
/// `trdy` (target ready) and `data`; a transfer happens in a cycle exactly
/// when `irdy ∧ trdy`.  The structural model only records the endpoints —
/// the signal-level semantics live in the deadlock equations
/// (`advocat-deadlock`) and the executable semantics (`advocat-explorer`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Channel {
    /// The channel's identifier within its network.
    pub id: ChannelId,
    /// The output port that drives `irdy`/`data`.
    pub initiator: PortRef,
    /// The input port that drives `trdy`.
    pub target: PortRef,
}

impl Channel {
    /// Creates a channel record.
    pub fn new(id: ChannelId, initiator: PortRef, target: PortRef) -> Self {
        Channel {
            id,
            initiator,
            target,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn port_ref_display() {
        let port = PortRef {
            primitive: PrimitiveId(3),
            port: 1,
        };
        assert_eq!(port.to_string(), "p3:1");
    }

    #[test]
    fn channel_id_index_roundtrip() {
        assert_eq!(ChannelId(5).index(), 5);
    }
}
