//! Graphviz DOT export for xMAS networks.

use std::collections::BTreeMap;

use crate::network::Network;

/// Rendering options for [`to_dot_with`].
///
/// Generated fabrics are no longer always meshes, so the renderer accepts
/// per-primitive position hints (from a topology layout) and can colorize
/// primitives by their virtual-channel plane, which generators encode as a
/// `.vc<N>` suffix in primitive names.
///
/// # Examples
///
/// ```
/// use advocat_xmas::{to_dot_with, DotOptions, Network, Packet};
///
/// let mut net = Network::new();
/// let c = net.intern(Packet::kind("req"));
/// let s = net.add_source("src", vec![c]);
/// let q = net.add_queue("buffer.vc1", 2);
/// let k = net.add_sink("snk");
/// net.connect(s, 0, q, 0);
/// net.connect(q, 0, k, 0);
/// let opts = DotOptions::new()
///     .with_plane_colors(true)
///     .with_position("src", 0.0, 1.0);
/// let dot = to_dot_with(&net, &opts);
/// assert!(dot.contains("pos=\"0,1!\""));
/// assert!(dot.contains("colorscheme"));
/// ```
#[derive(Clone, Debug, Default)]
pub struct DotOptions {
    positions: BTreeMap<String, (f64, f64)>,
    plane_colors: bool,
}

impl DotOptions {
    /// Default options: no position hints, no plane colors (the classic
    /// [`to_dot`] output).
    pub fn new() -> Self {
        DotOptions::default()
    }

    /// Pins the primitive with the given name to a layout position
    /// (Graphviz `pos="x,y!"`, honoured by `neato`/`fdp`).
    pub fn with_position(mut self, name: impl Into<String>, x: f64, y: f64) -> Self {
        self.positions.insert(name.into(), (x, y));
        self
    }

    /// Colorizes primitives by the virtual-channel plane encoded in their
    /// name's `.vc<N>` suffix; primitives without a plane stay uncolored.
    pub fn with_plane_colors(mut self, enabled: bool) -> Self {
        self.plane_colors = enabled;
        self
    }
}

/// Extracts the virtual-channel plane from a generated primitive name
/// (the number following the last `.vc`), if any.
fn plane_of_name(name: &str) -> Option<usize> {
    let idx = name.rfind(".vc")?;
    let digits: String = name[idx + 3..]
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect();
    (!digits.is_empty()).then(|| digits.parse().ok())?
}

/// Renders a network in Graphviz DOT syntax with explicit options.
///
/// Node shapes hint at the primitive kind: boxes for queues, house shapes
/// for sources/sinks, diamonds for switches/merges, double circles for
/// automaton nodes.  With position hints the output lays the fabric out in
/// topology coordinates (render with `neato -n` or `fdp`); with plane
/// colors each virtual-channel plane gets its own fill color.
pub fn to_dot_with(network: &Network, options: &DotOptions) -> String {
    let mut out = String::from("digraph xmas {\n  rankdir=LR;\n");
    for id in network.primitive_ids() {
        let prim = network.primitive(id);
        let name = network.name(id);
        let shape = match prim.kind_name() {
            "queue" => "box",
            "source" | "sink" => "house",
            "switch" | "merge" => "diamond",
            "automaton" => "doublecircle",
            _ => "ellipse",
        };
        let mut attrs = format!(
            "label=\"{}\\n({})\", shape={}",
            name,
            prim.kind_name(),
            shape
        );
        if let Some((x, y)) = options.positions.get(name) {
            attrs.push_str(&format!(", pos=\"{x},{y}!\""));
        }
        if options.plane_colors {
            if let Some(plane) = plane_of_name(name) {
                // One pastel per plane from a fixed qualitative scheme.
                attrs.push_str(&format!(
                    ", style=filled, colorscheme=set312, fillcolor={}",
                    plane % 12 + 1
                ));
            }
        }
        out.push_str(&format!("  n{} [{}];\n", id.index(), attrs));
    }
    for ch in network.channels() {
        out.push_str(&format!(
            "  n{} -> n{};\n",
            ch.initiator.primitive.index(),
            ch.target.primitive.index()
        ));
    }
    out.push_str("}\n");
    out
}

/// Renders a network in Graphviz DOT syntax with default options.
///
/// # Examples
///
/// ```
/// use advocat_xmas::{to_dot, Network, Packet};
///
/// let mut net = Network::new();
/// let c = net.intern(Packet::kind("req"));
/// let s = net.add_source("src", vec![c]);
/// let q = net.add_queue("q", 2);
/// let k = net.add_sink("snk");
/// net.connect(s, 0, q, 0);
/// net.connect(q, 0, k, 0);
/// let dot = to_dot(&net);
/// assert!(dot.contains("digraph xmas"));
/// assert!(dot.contains("src"));
/// ```
pub fn to_dot(network: &Network) -> String {
    to_dot_with(network, &DotOptions::new())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::Packet;

    fn tiny_with(queue_name: &str) -> Network {
        let mut net = Network::new();
        let c = net.intern(Packet::kind("x"));
        let s = net.add_source("the_source", vec![c]);
        let q = net.add_queue(queue_name, 1);
        let k = net.add_sink("the_sink");
        net.connect(s, 0, q, 0);
        net.connect(q, 0, k, 0);
        net
    }

    #[test]
    fn dot_output_mentions_every_primitive_and_channel() {
        let dot = to_dot(&tiny_with("the_queue"));
        assert!(dot.contains("the_source"));
        assert!(dot.contains("the_queue"));
        assert!(dot.contains("the_sink"));
        assert_eq!(dot.matches("->").count(), 2);
    }

    #[test]
    fn plane_suffixes_color_primitives() {
        let net = tiny_with("q(0)→(1).vc3");
        let plain = to_dot(&net);
        assert!(!plain.contains("fillcolor"));
        let colored = to_dot_with(&net, &DotOptions::new().with_plane_colors(true));
        // Plane 3 maps to color 4 of the 12-color scheme.
        assert!(colored.contains("fillcolor=4"));
        // The un-suffixed source stays uncolored.
        assert_eq!(colored.matches("fillcolor").count(), 1);
    }

    #[test]
    fn position_hints_pin_nodes() {
        let net = tiny_with("q");
        let opts = DotOptions::new().with_position("the_sink", 2.5, -1.0);
        let dot = to_dot_with(&net, &opts);
        assert!(dot.contains("pos=\"2.5,-1!\""));
    }

    #[test]
    fn plane_parsing_handles_odd_names() {
        assert_eq!(plane_of_name("q(0,0)→(0,1).vc0"), Some(0));
        assert_eq!(plane_of_name("route(1).inject.c1"), None);
        assert_eq!(plane_of_name("novc"), None);
        assert_eq!(plane_of_name("x.vc"), None);
        assert_eq!(plane_of_name("a.vc2.vc11"), Some(11));
    }
}
