//! Graphviz DOT export for xMAS networks.

use crate::network::Network;

/// Renders a network in Graphviz DOT syntax.
///
/// Node shapes hint at the primitive kind: boxes for queues, house shapes
/// for sources/sinks, diamonds for switches/merges, double circles for
/// automaton nodes.  The output is intended for documentation and debugging
/// of generated fabrics.
///
/// # Examples
///
/// ```
/// use advocat_xmas::{to_dot, Network, Packet};
///
/// let mut net = Network::new();
/// let c = net.intern(Packet::kind("req"));
/// let s = net.add_source("src", vec![c]);
/// let q = net.add_queue("q", 2);
/// let k = net.add_sink("snk");
/// net.connect(s, 0, q, 0);
/// net.connect(q, 0, k, 0);
/// let dot = to_dot(&net);
/// assert!(dot.contains("digraph xmas"));
/// assert!(dot.contains("src"));
/// ```
pub fn to_dot(network: &Network) -> String {
    let mut out = String::from("digraph xmas {\n  rankdir=LR;\n");
    for id in network.primitive_ids() {
        let prim = network.primitive(id);
        let shape = match prim.kind_name() {
            "queue" => "box",
            "source" | "sink" => "house",
            "switch" | "merge" => "diamond",
            "automaton" => "doublecircle",
            _ => "ellipse",
        };
        out.push_str(&format!(
            "  n{} [label=\"{}\\n({})\", shape={}];\n",
            id.index(),
            network.name(id),
            prim.kind_name(),
            shape
        ));
    }
    for ch in network.channels() {
        out.push_str(&format!(
            "  n{} -> n{};\n",
            ch.initiator.primitive.index(),
            ch.target.primitive.index()
        ));
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::Packet;

    #[test]
    fn dot_output_mentions_every_primitive_and_channel() {
        let mut net = Network::new();
        let c = net.intern(Packet::kind("x"));
        let s = net.add_source("the_source", vec![c]);
        let q = net.add_queue("the_queue", 1);
        let k = net.add_sink("the_sink");
        net.connect(s, 0, q, 0);
        net.connect(q, 0, k, 0);
        let dot = to_dot(&net);
        assert!(dot.contains("the_source"));
        assert!(dot.contains("the_queue"));
        assert!(dot.contains("the_sink"));
        assert_eq!(dot.matches("->").count(), 2);
    }
}
