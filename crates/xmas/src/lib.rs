//! xMAS communication-fabric models.
//!
//! xMAS (eXecutable Microarchitectural Specification) is the modelling
//! language introduced by Intel for describing communication fabrics as a
//! network of eight primitives — **queue**, **function**, **source**,
//! **sink**, **fork**, **join**, **switch** and **merge** — connected by
//! channels carrying `irdy`/`trdy`/`data` signals.  ADVOCAT uses xMAS for
//! the fine-grained model of the on-chip interconnect and adds a ninth node
//! kind, the *XMAS automaton*, for the protocol agents (see the
//! `advocat-automata` crate; in this crate an automaton node is an opaque
//! primitive with a declared number of ports).
//!
//! This crate provides:
//!
//! * [`Packet`] / [`ColorId`] / [`ColorTable`] — finite, interned packet
//!   colors (message kind plus optional source/destination node),
//! * [`Primitive`] and [`Network`] — the structural model plus a builder
//!   API and structural validation,
//! * [`ColorMap`] and per-primitive color propagation — the building block
//!   of the paper's `T`-derivation (the over-approximation of the set of
//!   packets that can occupy each channel),
//! * DOT export for debugging and documentation.
//!
//! # Examples
//!
//! ```
//! use advocat_xmas::{Network, Packet};
//!
//! let mut net = Network::new();
//! let req = net.intern(Packet::kind("req"));
//! let src = net.add_source("src", vec![req]);
//! let q = net.add_queue("q0", 2);
//! let sink = net.add_sink("sink");
//! net.connect(src, 0, q, 0);
//! net.connect(q, 0, sink, 0);
//! net.validate()?;
//! # Ok::<(), advocat_xmas::NetworkError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod channel;
mod colors;
mod dot;
mod network;
mod packet;
mod primitive;

pub use channel::{Channel, ChannelId, PortRef};
pub use colors::{propagate_basic_fixpoint, propagate_basic_primitive, ColorMap};
pub use dot::{to_dot, to_dot_with, DotOptions};
pub use network::{Network, NetworkError, PrimitiveId};
pub use packet::{ColorId, ColorTable, Packet};
pub use primitive::Primitive;
