//! Per-channel color sets and their propagation through basic primitives.
//!
//! The deadlock equations and the flow invariants are *colored*: they range
//! over the set `T(c)` of packets that can possibly travel through each
//! channel `c`.  `T` is computed by a forward fixpoint ("T-derivation" in
//! the paper): sources seed their colors, every primitive propagates the
//! colors of its inputs to its outputs according to its semantics, and
//! automaton nodes apply their transition transformations (the latter step
//! is performed by `advocat-automata`, which owns the automaton behaviour —
//! this module only handles the eight basic primitives and exposes the
//! [`ColorMap`] container shared by both).

use std::collections::BTreeSet;

use crate::channel::ChannelId;
use crate::network::{Network, PrimitiveId};
use crate::packet::ColorId;
use crate::primitive::Primitive;

/// The per-channel color over-approximation `T`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ColorMap {
    per_channel: Vec<BTreeSet<ColorId>>,
}

impl ColorMap {
    /// Creates an empty color map for a network.
    pub fn empty(network: &Network) -> Self {
        ColorMap {
            per_channel: vec![BTreeSet::new(); network.channel_count()],
        }
    }

    /// Returns the colors of a channel.
    pub fn colors(&self, channel: ChannelId) -> &BTreeSet<ColorId> {
        &self.per_channel[channel.index()]
    }

    /// Adds a color to a channel; returns `true` if it was new.
    pub fn insert(&mut self, channel: ChannelId, color: ColorId) -> bool {
        self.per_channel[channel.index()].insert(color)
    }

    /// Adds several colors to a channel; returns `true` if any was new.
    pub fn insert_all<I: IntoIterator<Item = ColorId>>(
        &mut self,
        channel: ChannelId,
        colors: I,
    ) -> bool {
        let mut changed = false;
        for c in colors {
            changed |= self.insert(channel, c);
        }
        changed
    }

    /// Returns `true` when the channel can carry the color.
    pub fn contains(&self, channel: ChannelId, color: ColorId) -> bool {
        self.per_channel[channel.index()].contains(&color)
    }

    /// Returns the total number of `(channel, color)` pairs.
    pub fn total_pairs(&self) -> usize {
        self.per_channel.iter().map(|s| s.len()).sum()
    }
}

/// Propagates colors through one *basic* primitive (everything except
/// automaton nodes), returning `true` when the map changed.
///
/// The rules follow the xMAS semantics:
///
/// * source: its colors appear on its output,
/// * queue / merge: outputs carry the union of the input colors (plus, for
///   queues, any initial content),
/// * function: outputs carry the image of the input colors,
/// * fork: both outputs carry the input colors,
/// * join: the output carries the colors of input 0 (the data input),
/// * switch: each color goes to the output selected by the routing function,
/// * sink: nothing to propagate.
pub fn propagate_basic_primitive(
    network: &Network,
    id: PrimitiveId,
    colors: &mut ColorMap,
) -> bool {
    let prim = network.primitive(id);
    let mut changed = false;
    match prim {
        Primitive::Source { colors: cs } => {
            if let Some(out) = network.out_channel(id, 0) {
                changed |= colors.insert_all(out, cs.iter().copied());
            }
        }
        Primitive::Queue { init, .. } => {
            if let (Some(inp), Some(out)) = (network.in_channel(id, 0), network.out_channel(id, 0))
            {
                let incoming: Vec<ColorId> = colors.colors(inp).iter().copied().collect();
                changed |= colors.insert_all(out, incoming);
                changed |= colors.insert_all(out, init.iter().copied());
            }
        }
        Primitive::Function { .. } => {
            if let (Some(inp), Some(out)) = (network.in_channel(id, 0), network.out_channel(id, 0))
            {
                let mapped: Vec<ColorId> = colors
                    .colors(inp)
                    .iter()
                    .map(|c| prim.function_apply(*c).expect("function primitive"))
                    .collect();
                changed |= colors.insert_all(out, mapped);
            }
        }
        Primitive::Fork => {
            if let Some(inp) = network.in_channel(id, 0) {
                let incoming: Vec<ColorId> = colors.colors(inp).iter().copied().collect();
                for port in 0..2 {
                    if let Some(out) = network.out_channel(id, port) {
                        changed |= colors.insert_all(out, incoming.iter().copied());
                    }
                }
            }
        }
        Primitive::Join => {
            if let (Some(data_in), Some(out)) =
                (network.in_channel(id, 0), network.out_channel(id, 0))
            {
                let incoming: Vec<ColorId> = colors.colors(data_in).iter().copied().collect();
                changed |= colors.insert_all(out, incoming);
            }
        }
        Primitive::Switch { .. } => {
            if let Some(inp) = network.in_channel(id, 0) {
                let incoming: Vec<ColorId> = colors.colors(inp).iter().copied().collect();
                for c in incoming {
                    let port = prim.switch_route(c).expect("switch primitive");
                    if let Some(out) = network.out_channel(id, port) {
                        changed |= colors.insert(out, c);
                    }
                }
            }
        }
        Primitive::Merge { num_inputs } => {
            if let Some(out) = network.out_channel(id, 0) {
                for port in 0..*num_inputs {
                    if let Some(inp) = network.in_channel(id, port) {
                        let incoming: Vec<ColorId> = colors.colors(inp).iter().copied().collect();
                        changed |= colors.insert_all(out, incoming);
                    }
                }
            }
        }
        Primitive::Sink { .. } | Primitive::Automaton { .. } => {}
    }
    changed
}

/// Runs basic-primitive propagation to a fixpoint.
///
/// Networks containing automaton nodes should use the system-level
/// `derive_colors` of `advocat-automata`, which interleaves this pass with
/// automaton propagation.
pub fn propagate_basic_fixpoint(network: &Network, colors: &mut ColorMap) {
    loop {
        let mut changed = false;
        for id in network.primitive_ids() {
            changed |= propagate_basic_primitive(network, id, colors);
        }
        if !changed {
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::Packet;
    use std::collections::BTreeMap;

    #[test]
    fn source_queue_sink_chain_propagates() {
        let mut net = Network::new();
        let a = net.intern(Packet::kind("a"));
        let src = net.add_source("src", vec![a]);
        let q = net.add_queue("q", 2);
        let snk = net.add_sink("snk");
        net.connect(src, 0, q, 0);
        net.connect(q, 0, snk, 0);
        let mut cm = ColorMap::empty(&net);
        propagate_basic_fixpoint(&net, &mut cm);
        let out = net.out_channel(q, 0).unwrap();
        assert!(cm.contains(out, a));
        assert_eq!(cm.total_pairs(), 2);
    }

    #[test]
    fn switch_separates_colors_per_route() {
        let mut net = Network::new();
        let a = net.intern(Packet::kind("a"));
        let b = net.intern(Packet::kind("b"));
        let src = net.add_source("src", vec![a, b]);
        let mut routes = BTreeMap::new();
        routes.insert(a, 0);
        routes.insert(b, 1);
        let sw = net.add_switch("sw", routes, 2, 0);
        let s0 = net.add_sink("s0");
        let s1 = net.add_sink("s1");
        net.connect(src, 0, sw, 0);
        let ch0 = net.connect(sw, 0, s0, 0);
        let ch1 = net.connect(sw, 1, s1, 0);
        let mut cm = ColorMap::empty(&net);
        propagate_basic_fixpoint(&net, &mut cm);
        assert!(cm.contains(ch0, a) && !cm.contains(ch0, b));
        assert!(cm.contains(ch1, b) && !cm.contains(ch1, a));
    }

    #[test]
    fn function_rewrites_colors() {
        let mut net = Network::new();
        let req = net.intern(Packet::kind("req"));
        let rsp = net.intern(Packet::kind("rsp"));
        let src = net.add_source("src", vec![req]);
        let mut map = BTreeMap::new();
        map.insert(req, rsp);
        let f = net.add_function("f", map);
        let snk = net.add_sink("snk");
        net.connect(src, 0, f, 0);
        let out = net.connect(f, 0, snk, 0);
        let mut cm = ColorMap::empty(&net);
        propagate_basic_fixpoint(&net, &mut cm);
        assert!(cm.contains(out, rsp));
        assert!(!cm.contains(out, req));
    }

    #[test]
    fn queue_initial_content_seeds_colors() {
        let mut net = Network::new();
        let a = net.intern(Packet::kind("a"));
        let b = net.intern(Packet::kind("b"));
        let src = net.add_source("src", vec![a]);
        let q = net.add_queue_with_init("q", 3, vec![b]);
        let snk = net.add_sink("snk");
        net.connect(src, 0, q, 0);
        let out = net.connect(q, 0, snk, 0);
        let mut cm = ColorMap::empty(&net);
        propagate_basic_fixpoint(&net, &mut cm);
        assert!(cm.contains(out, a));
        assert!(cm.contains(out, b));
    }

    #[test]
    fn merge_and_fork_union_and_copy() {
        let mut net = Network::new();
        let a = net.intern(Packet::kind("a"));
        let b = net.intern(Packet::kind("b"));
        let s1 = net.add_source("s1", vec![a]);
        let s2 = net.add_source("s2", vec![b]);
        let m = net.add_merge("m", 2);
        let fork = net.add_fork("f");
        let k1 = net.add_sink("k1");
        let k2 = net.add_sink("k2");
        net.connect(s1, 0, m, 0);
        net.connect(s2, 0, m, 1);
        net.connect(m, 0, fork, 0);
        let o1 = net.connect(fork, 0, k1, 0);
        let o2 = net.connect(fork, 1, k2, 0);
        let mut cm = ColorMap::empty(&net);
        propagate_basic_fixpoint(&net, &mut cm);
        for ch in [o1, o2] {
            assert!(cm.contains(ch, a));
            assert!(cm.contains(ch, b));
        }
    }
}
