//! xMAS networks: primitives, channels, a builder API and validation.

use std::collections::BTreeMap;
use std::fmt;

use crate::channel::{Channel, ChannelId, PortRef};
use crate::packet::{ColorId, ColorTable, Packet};
use crate::primitive::Primitive;

/// A compact handle for a primitive of a [`Network`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PrimitiveId(pub(crate) u32);

impl PrimitiveId {
    /// Returns the raw index of the primitive.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

#[derive(Clone, Debug)]
struct Node {
    name: String,
    prim: Primitive,
    in_channels: Vec<Option<ChannelId>>,
    out_channels: Vec<Option<ChannelId>>,
}

/// Structural errors detected by [`Network::validate`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum NetworkError {
    /// A primitive port is not connected to any channel.
    UnconnectedPort {
        /// The offending primitive.
        primitive: String,
        /// The port index.
        port: usize,
        /// `true` for an input port, `false` for an output port.
        is_input: bool,
    },
    /// A switch routes a color to an output port that does not exist.
    SwitchRouteOutOfRange {
        /// The offending switch.
        primitive: String,
        /// The offending output index.
        output: usize,
    },
    /// A queue's initial content exceeds its capacity.
    QueueOverfilled {
        /// The offending queue.
        primitive: String,
    },
    /// A queue has zero capacity.
    ZeroCapacityQueue {
        /// The offending queue.
        primitive: String,
    },
}

impl fmt::Display for NetworkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetworkError::UnconnectedPort {
                primitive,
                port,
                is_input,
            } => write!(
                f,
                "unconnected {} port {} of primitive `{}`",
                if *is_input { "input" } else { "output" },
                port,
                primitive
            ),
            NetworkError::SwitchRouteOutOfRange { primitive, output } => write!(
                f,
                "switch `{primitive}` routes to non-existent output {output}"
            ),
            NetworkError::QueueOverfilled { primitive } => {
                write!(f, "queue `{primitive}` initialised beyond its capacity")
            }
            NetworkError::ZeroCapacityQueue { primitive } => {
                write!(f, "queue `{primitive}` has zero capacity")
            }
        }
    }
}

impl std::error::Error for NetworkError {}

/// An xMAS network: a set of primitives connected by channels, together
/// with the table of packet colors used in the model.
///
/// # Examples
///
/// ```
/// use advocat_xmas::{Network, Packet};
///
/// let mut net = Network::new();
/// let req = net.intern(Packet::kind("req"));
/// let src = net.add_source("producer", vec![req]);
/// let q = net.add_queue("buffer", 4);
/// let snk = net.add_sink("consumer");
/// net.connect(src, 0, q, 0);
/// net.connect(q, 0, snk, 0);
/// assert!(net.validate().is_ok());
/// assert_eq!(net.queue_ids().count(), 1);
/// ```
#[derive(Clone, Debug, Default)]
pub struct Network {
    colors: ColorTable,
    nodes: Vec<Node>,
    channels: Vec<Channel>,
}

impl Network {
    /// Creates an empty network.
    pub fn new() -> Self {
        Network::default()
    }

    /// Interns a packet color.
    pub fn intern(&mut self, packet: Packet) -> ColorId {
        self.colors.intern(packet)
    }

    /// Returns the color table.
    pub fn colors(&self) -> &ColorTable {
        &self.colors
    }

    /// Adds an arbitrary primitive and returns its id.
    pub fn add_primitive(&mut self, name: impl Into<String>, prim: Primitive) -> PrimitiveId {
        let id = PrimitiveId(self.nodes.len() as u32);
        let in_channels = vec![None; prim.input_count()];
        let out_channels = vec![None; prim.output_count()];
        self.nodes.push(Node {
            name: name.into(),
            prim,
            in_channels,
            out_channels,
        });
        id
    }

    /// Adds a queue of the given capacity.
    pub fn add_queue(&mut self, name: impl Into<String>, size: usize) -> PrimitiveId {
        self.add_primitive(
            name,
            Primitive::Queue {
                size,
                init: Vec::new(),
            },
        )
    }

    /// Adds a queue with initial content (front of the queue first).
    pub fn add_queue_with_init(
        &mut self,
        name: impl Into<String>,
        size: usize,
        init: Vec<ColorId>,
    ) -> PrimitiveId {
        self.add_primitive(name, Primitive::Queue { size, init })
    }

    /// Adds a fair source injecting the given colors.
    pub fn add_source(&mut self, name: impl Into<String>, colors: Vec<ColorId>) -> PrimitiveId {
        self.add_primitive(name, Primitive::Source { colors })
    }

    /// Adds a fair sink.
    pub fn add_sink(&mut self, name: impl Into<String>) -> PrimitiveId {
        self.add_primitive(name, Primitive::Sink { fair: true })
    }

    /// Adds a dead sink (never ready); useful for modelling disabled ports.
    pub fn add_dead_sink(&mut self, name: impl Into<String>) -> PrimitiveId {
        self.add_primitive(name, Primitive::Sink { fair: false })
    }

    /// Adds a function primitive with an explicit color map.
    pub fn add_function(
        &mut self,
        name: impl Into<String>,
        map: BTreeMap<ColorId, ColorId>,
    ) -> PrimitiveId {
        self.add_primitive(name, Primitive::Function { map })
    }

    /// Adds a fork.
    pub fn add_fork(&mut self, name: impl Into<String>) -> PrimitiveId {
        self.add_primitive(name, Primitive::Fork)
    }

    /// Adds a join (output data taken from input 0).
    pub fn add_join(&mut self, name: impl Into<String>) -> PrimitiveId {
        self.add_primitive(name, Primitive::Join)
    }

    /// Adds a switch with per-color routes.
    pub fn add_switch(
        &mut self,
        name: impl Into<String>,
        routes: BTreeMap<ColorId, usize>,
        num_outputs: usize,
        default: usize,
    ) -> PrimitiveId {
        self.add_primitive(
            name,
            Primitive::Switch {
                routes,
                num_outputs,
                default,
            },
        )
    }

    /// Adds a fair merge with `num_inputs` inputs.
    pub fn add_merge(&mut self, name: impl Into<String>, num_inputs: usize) -> PrimitiveId {
        self.add_primitive(name, Primitive::Merge { num_inputs })
    }

    /// Adds an opaque automaton node with the given port counts.
    pub fn add_automaton_node(
        &mut self,
        name: impl Into<String>,
        inputs: usize,
        outputs: usize,
    ) -> PrimitiveId {
        self.add_primitive(name, Primitive::Automaton { inputs, outputs })
    }

    /// Connects output port `from_port` of `from` to input port `to_port`
    /// of `to`, returning the new channel's id.
    ///
    /// # Panics
    ///
    /// Panics if a port index is out of range or the port is already
    /// connected.
    pub fn connect(
        &mut self,
        from: PrimitiveId,
        from_port: usize,
        to: PrimitiveId,
        to_port: usize,
    ) -> ChannelId {
        let id = ChannelId(self.channels.len() as u32);
        {
            let node = &mut self.nodes[from.index()];
            assert!(
                from_port < node.out_channels.len(),
                "output port {from_port} out of range for `{}`",
                node.name
            );
            assert!(
                node.out_channels[from_port].is_none(),
                "output port {from_port} of `{}` already connected",
                node.name
            );
            node.out_channels[from_port] = Some(id);
        }
        {
            let node = &mut self.nodes[to.index()];
            assert!(
                to_port < node.in_channels.len(),
                "input port {to_port} out of range for `{}`",
                node.name
            );
            assert!(
                node.in_channels[to_port].is_none(),
                "input port {to_port} of `{}` already connected",
                node.name
            );
            node.in_channels[to_port] = Some(id);
        }
        self.channels.push(Channel::new(
            id,
            PortRef {
                primitive: from,
                port: from_port,
            },
            PortRef {
                primitive: to,
                port: to_port,
            },
        ));
        id
    }

    /// Returns the number of primitives.
    pub fn primitive_count(&self) -> usize {
        self.nodes.len()
    }

    /// Returns the number of channels.
    pub fn channel_count(&self) -> usize {
        self.channels.len()
    }

    /// Returns the primitive with the given id.
    pub fn primitive(&self, id: PrimitiveId) -> &Primitive {
        &self.nodes[id.index()].prim
    }

    /// Returns the name of a primitive.
    pub fn name(&self, id: PrimitiveId) -> &str {
        &self.nodes[id.index()].name
    }

    /// Iterates over all primitive ids.
    pub fn primitive_ids(&self) -> impl Iterator<Item = PrimitiveId> + '_ {
        (0..self.nodes.len() as u32).map(PrimitiveId)
    }

    /// Iterates over the ids of all queues.
    pub fn queue_ids(&self) -> impl Iterator<Item = PrimitiveId> + '_ {
        self.primitive_ids()
            .filter(|id| self.primitive(*id).is_queue())
    }

    /// Iterates over the ids of all automaton nodes.
    pub fn automaton_ids(&self) -> impl Iterator<Item = PrimitiveId> + '_ {
        self.primitive_ids()
            .filter(|id| self.primitive(*id).is_automaton())
    }

    /// Returns all channels.
    pub fn channels(&self) -> &[Channel] {
        &self.channels
    }

    /// Returns a channel by id.
    pub fn channel(&self, id: ChannelId) -> &Channel {
        &self.channels[id.index()]
    }

    /// Returns the channel connected to an input port, if any.
    pub fn in_channel(&self, id: PrimitiveId, port: usize) -> Option<ChannelId> {
        self.nodes[id.index()]
            .in_channels
            .get(port)
            .copied()
            .flatten()
    }

    /// Returns the channel connected to an output port, if any.
    pub fn out_channel(&self, id: PrimitiveId, port: usize) -> Option<ChannelId> {
        self.nodes[id.index()]
            .out_channels
            .get(port)
            .copied()
            .flatten()
    }

    /// Returns all input channels of a primitive (in port order).
    pub fn in_channels(&self, id: PrimitiveId) -> Vec<ChannelId> {
        self.nodes[id.index()]
            .in_channels
            .iter()
            .filter_map(|c| *c)
            .collect()
    }

    /// Returns all output channels of a primitive (in port order).
    pub fn out_channels(&self, id: PrimitiveId) -> Vec<ChannelId> {
        self.nodes[id.index()]
            .out_channels
            .iter()
            .filter_map(|c| *c)
            .collect()
    }

    /// Returns a descriptive name for a channel, derived from its endpoints.
    pub fn channel_name(&self, id: ChannelId) -> String {
        let ch = self.channel(id);
        format!(
            "{}.out{}→{}.in{}",
            self.name(ch.initiator.primitive),
            ch.initiator.port,
            self.name(ch.target.primitive),
            ch.target.port
        )
    }

    /// Checks structural well-formedness: every port connected exactly once,
    /// switch routes within range, queue capacities sane.
    ///
    /// # Errors
    ///
    /// Returns the first [`NetworkError`] found.
    pub fn validate(&self) -> Result<(), NetworkError> {
        for (idx, node) in self.nodes.iter().enumerate() {
            let _id = PrimitiveId(idx as u32);
            for (port, ch) in node.in_channels.iter().enumerate() {
                if ch.is_none() {
                    return Err(NetworkError::UnconnectedPort {
                        primitive: node.name.clone(),
                        port,
                        is_input: true,
                    });
                }
            }
            for (port, ch) in node.out_channels.iter().enumerate() {
                if ch.is_none() {
                    return Err(NetworkError::UnconnectedPort {
                        primitive: node.name.clone(),
                        port,
                        is_input: false,
                    });
                }
            }
            match &node.prim {
                Primitive::Switch {
                    routes,
                    num_outputs,
                    default,
                } => {
                    if default >= num_outputs {
                        return Err(NetworkError::SwitchRouteOutOfRange {
                            primitive: node.name.clone(),
                            output: *default,
                        });
                    }
                    for out in routes.values() {
                        if out >= num_outputs {
                            return Err(NetworkError::SwitchRouteOutOfRange {
                                primitive: node.name.clone(),
                                output: *out,
                            });
                        }
                    }
                }
                Primitive::Queue { size, init } => {
                    if *size == 0 {
                        return Err(NetworkError::ZeroCapacityQueue {
                            primitive: node.name.clone(),
                        });
                    }
                    if init.len() > *size {
                        return Err(NetworkError::QueueOverfilled {
                            primitive: node.name.clone(),
                        });
                    }
                }
                _ => {}
            }
        }
        Ok(())
    }

    /// Counts primitives per kind; used for the statistics the paper reports
    /// ("2844 primitives, 36 automata and 432 queues").
    pub fn kind_histogram(&self) -> BTreeMap<&'static str, usize> {
        let mut hist = BTreeMap::new();
        for node in &self.nodes {
            *hist.entry(node.prim.kind_name()).or_insert(0) += 1;
        }
        hist
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> (Network, PrimitiveId, PrimitiveId, PrimitiveId) {
        let mut net = Network::new();
        let c = net.intern(Packet::kind("p"));
        let src = net.add_source("src", vec![c]);
        let q = net.add_queue("q", 2);
        let snk = net.add_sink("snk");
        net.connect(src, 0, q, 0);
        net.connect(q, 0, snk, 0);
        (net, src, q, snk)
    }

    #[test]
    fn builder_connects_ports() {
        let (net, src, q, snk) = tiny();
        assert_eq!(net.primitive_count(), 3);
        assert_eq!(net.channel_count(), 2);
        assert_eq!(net.out_channel(src, 0), net.in_channel(q, 0));
        assert_eq!(net.out_channel(q, 0), net.in_channel(snk, 0));
        assert!(net.validate().is_ok());
    }

    #[test]
    fn validate_flags_unconnected_ports() {
        let mut net = Network::new();
        let c = net.intern(Packet::kind("p"));
        let _src = net.add_source("src", vec![c]);
        let err = net.validate().unwrap_err();
        assert!(matches!(
            err,
            NetworkError::UnconnectedPort {
                is_input: false,
                ..
            }
        ));
        assert!(err.to_string().contains("src"));
    }

    #[test]
    fn validate_flags_bad_switch_route() {
        let mut net = Network::new();
        let c = net.intern(Packet::kind("p"));
        let src = net.add_source("src", vec![c]);
        let mut routes = BTreeMap::new();
        routes.insert(c, 7);
        let sw = net.add_switch("sw", routes, 2, 0);
        let s0 = net.add_sink("s0");
        let s1 = net.add_sink("s1");
        net.connect(src, 0, sw, 0);
        net.connect(sw, 0, s0, 0);
        net.connect(sw, 1, s1, 0);
        assert!(matches!(
            net.validate(),
            Err(NetworkError::SwitchRouteOutOfRange { .. })
        ));
    }

    #[test]
    fn validate_flags_queue_problems() {
        let mut net = Network::new();
        let c = net.intern(Packet::kind("p"));
        let src = net.add_source("src", vec![c]);
        let q = net.add_queue_with_init("q", 1, vec![c, c]);
        let snk = net.add_sink("snk");
        net.connect(src, 0, q, 0);
        net.connect(q, 0, snk, 0);
        assert!(matches!(
            net.validate(),
            Err(NetworkError::QueueOverfilled { .. })
        ));
    }

    #[test]
    #[should_panic(expected = "already connected")]
    fn double_connection_panics() {
        let (mut net, src, q, _snk) = tiny();
        net.connect(src, 0, q, 0);
    }

    #[test]
    fn kind_histogram_counts_primitives() {
        let (net, ..) = tiny();
        let hist = net.kind_histogram();
        assert_eq!(hist.get("queue"), Some(&1));
        assert_eq!(hist.get("source"), Some(&1));
        assert_eq!(hist.get("sink"), Some(&1));
    }

    #[test]
    fn channel_name_mentions_both_endpoints() {
        let (net, _, q, _) = tiny();
        let ch = net.in_channel(q, 0).unwrap();
        let name = net.channel_name(ch);
        assert!(name.contains("src") && name.contains("q"));
    }
}
