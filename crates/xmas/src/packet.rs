//! Packet colors.
//!
//! ADVOCAT's analyses are *colored*: every channel is associated with an
//! over-approximation of the packets that may travel through it, in the
//! same fashion as colored Petri nets.  Packets in the cache-coherence case
//! studies are a message kind (`getX`, `putX`, `inv`, `ack`, …) plus the
//! source and destination node; the set of colors occurring in a model is
//! finite, so colors are interned into compact [`ColorId`]s.

use std::collections::HashMap;
use std::fmt;

/// A compact handle for an interned [`Packet`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ColorId(pub(crate) u32);

impl ColorId {
    /// Returns the raw index of the color.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A packet color: a message kind plus optional source and destination
/// node identifiers.
///
/// # Examples
///
/// ```
/// use advocat_xmas::Packet;
///
/// let p = Packet::kind("inv").with_src(3).with_dst(0);
/// assert_eq!(p.kind, "inv");
/// assert_eq!(p.dst, Some(0));
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Packet {
    /// The message kind, e.g. `"getX"`, `"ack"`, or a core-side trigger such
    /// as `"miss"`.
    pub kind: String,
    /// The node that injected the packet, when relevant.
    pub src: Option<u32>,
    /// The node the packet is destined for, when relevant.
    pub dst: Option<u32>,
}

impl Packet {
    /// Creates a packet with only a kind.
    pub fn kind(kind: impl Into<String>) -> Packet {
        Packet {
            kind: kind.into(),
            src: None,
            dst: None,
        }
    }

    /// Returns a copy with the source node set.
    pub fn with_src(mut self, src: u32) -> Packet {
        self.src = Some(src);
        self
    }

    /// Returns a copy with the destination node set.
    pub fn with_dst(mut self, dst: u32) -> Packet {
        self.dst = Some(dst);
        self
    }
}

impl fmt::Display for Packet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.kind)?;
        match (self.src, self.dst) {
            (Some(s), Some(d)) => write!(f, "[{s}→{d}]"),
            (Some(s), None) => write!(f, "[src={s}]"),
            (None, Some(d)) => write!(f, "[dst={d}]"),
            (None, None) => Ok(()),
        }
    }
}

/// Interning table mapping [`Packet`]s to [`ColorId`]s.
#[derive(Clone, Debug, Default)]
pub struct ColorTable {
    packets: Vec<Packet>,
    index: HashMap<Packet, ColorId>,
}

impl ColorTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        ColorTable::default()
    }

    /// Interns a packet, returning its color (idempotent).
    pub fn intern(&mut self, packet: Packet) -> ColorId {
        if let Some(&id) = self.index.get(&packet) {
            return id;
        }
        let id = ColorId(self.packets.len() as u32);
        self.index.insert(packet.clone(), id);
        self.packets.push(packet);
        id
    }

    /// Looks up a packet without interning it.
    pub fn lookup(&self, packet: &Packet) -> Option<ColorId> {
        self.index.get(packet).copied()
    }

    /// Returns the packet for a color.
    ///
    /// # Panics
    ///
    /// Panics if the color was produced by a different table.
    pub fn packet(&self, color: ColorId) -> &Packet {
        &self.packets[color.index()]
    }

    /// Returns the number of interned colors.
    pub fn len(&self) -> usize {
        self.packets.len()
    }

    /// Returns `true` when no colors have been interned.
    pub fn is_empty(&self) -> bool {
        self.packets.is_empty()
    }

    /// Iterates over all `(color, packet)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (ColorId, &Packet)> + '_ {
        self.packets
            .iter()
            .enumerate()
            .map(|(i, p)| (ColorId(i as u32), p))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let mut table = ColorTable::new();
        let a = table.intern(Packet::kind("get").with_dst(3));
        let b = table.intern(Packet::kind("get").with_dst(3));
        let c = table.intern(Packet::kind("get").with_dst(4));
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(table.len(), 2);
    }

    #[test]
    fn lookup_does_not_intern() {
        let mut table = ColorTable::new();
        assert!(table.lookup(&Packet::kind("x")).is_none());
        let id = table.intern(Packet::kind("x"));
        assert_eq!(table.lookup(&Packet::kind("x")), Some(id));
    }

    #[test]
    fn packet_accessor_roundtrips() {
        let mut table = ColorTable::new();
        let p = Packet::kind("ack").with_src(1).with_dst(2);
        let id = table.intern(p.clone());
        assert_eq!(table.packet(id), &p);
    }

    #[test]
    fn display_formats_are_informative() {
        assert_eq!(Packet::kind("inv").to_string(), "inv");
        assert_eq!(Packet::kind("inv").with_dst(2).to_string(), "inv[dst=2]");
        assert_eq!(
            Packet::kind("get").with_src(0).with_dst(3).to_string(),
            "get[0→3]"
        );
    }

    #[test]
    fn iter_enumerates_in_interning_order() {
        let mut table = ColorTable::new();
        let a = table.intern(Packet::kind("a"));
        let b = table.intern(Packet::kind("b"));
        let order: Vec<ColorId> = table.iter().map(|(id, _)| id).collect();
        assert_eq!(order, vec![a, b]);
    }
}
