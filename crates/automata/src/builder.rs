//! Fluent construction of [`XmasAutomaton`]s.

use std::collections::BTreeMap;

use advocat_xmas::ColorId;

use crate::automaton::{AutomatonError, StateId, Transition, TransitionKind, XmasAutomaton};

/// Builder for [`XmasAutomaton`]s.
///
/// States are interned by name; the first state created becomes the initial
/// state unless [`AutomatonBuilder::set_initial`] is called.
///
/// # Examples
///
/// ```
/// use advocat_automata::AutomatonBuilder;
/// use advocat_xmas::{Network, Packet};
///
/// let mut net = Network::new();
/// let inv = net.intern(Packet::kind("inv"));
/// let put = net.intern(Packet::kind("put"));
/// let ack = net.intern(Packet::kind("ack"));
///
/// // A cache fragment: M --inv?/put!--> MI --ack?--> I
/// let mut b = AutomatonBuilder::new("cache", 1, 1);
/// let m = b.state("M");
/// let mi = b.state("MI");
/// let i = b.state("I");
/// b.set_initial(i);
/// b.on_packet(m, mi, 0, inv, Some((0, put)));
/// b.on_packet(mi, i, 0, ack, None);
/// let cache = b.build()?;
/// assert_eq!(cache.state_count(), 3);
/// # Ok::<(), advocat_automata::AutomatonError>(())
/// ```
#[derive(Clone, Debug)]
pub struct AutomatonBuilder {
    name: String,
    states: Vec<String>,
    initial: Option<StateId>,
    transitions: Vec<Transition>,
    inputs: usize,
    outputs: usize,
}

impl AutomatonBuilder {
    /// Creates a builder for an automaton with the given port counts.
    pub fn new(name: impl Into<String>, inputs: usize, outputs: usize) -> Self {
        AutomatonBuilder {
            name: name.into(),
            states: Vec::new(),
            initial: None,
            transitions: Vec::new(),
            inputs,
            outputs,
        }
    }

    /// Interns a state by name, returning its id (idempotent).
    pub fn state(&mut self, name: impl Into<String>) -> StateId {
        let name = name.into();
        if let Some(pos) = self.states.iter().position(|s| *s == name) {
            return StateId(pos as u32);
        }
        let id = StateId(self.states.len() as u32);
        self.states.push(name);
        id
    }

    /// Sets the initial state.
    pub fn set_initial(&mut self, state: StateId) {
        self.initial = Some(state);
    }

    /// Adds a transition that consumes `color` on `in_port` and optionally
    /// emits a packet.
    pub fn on_packet(
        &mut self,
        from: StateId,
        to: StateId,
        in_port: usize,
        color: ColorId,
        emit: Option<(usize, ColorId)>,
    ) {
        let mut map = BTreeMap::new();
        map.insert((in_port, color), emit);
        self.transitions.push(Transition {
            from,
            to,
            kind: TransitionKind::Triggered(map),
        });
    }

    /// Adds a transition accepting several `(in_port, color)` pairs, each
    /// with its own optional emission (a single transition with a wider
    /// event ε).
    pub fn on_any(
        &mut self,
        from: StateId,
        to: StateId,
        triggers: impl IntoIterator<Item = ((usize, ColorId), Option<(usize, ColorId)>)>,
    ) {
        let map: BTreeMap<_, _> = triggers.into_iter().collect();
        self.transitions.push(Transition {
            from,
            to,
            kind: TransitionKind::Triggered(map),
        });
    }

    /// Adds a spontaneous transition emitting a packet on `out_port`.
    pub fn spontaneous_emit(
        &mut self,
        from: StateId,
        to: StateId,
        out_port: usize,
        color: ColorId,
    ) {
        self.transitions.push(Transition {
            from,
            to,
            kind: TransitionKind::Spontaneous(Some((out_port, color))),
        });
    }

    /// Adds a silent spontaneous transition (no input, no output).
    pub fn spontaneous(&mut self, from: StateId, to: StateId) {
        self.transitions.push(Transition {
            from,
            to,
            kind: TransitionKind::Spontaneous(None),
        });
    }

    /// Returns the number of states added so far.
    pub fn state_count(&self) -> usize {
        self.states.len()
    }

    /// Finalises the automaton.
    ///
    /// # Errors
    ///
    /// Returns an [`AutomatonError`] when the automaton has no states, a
    /// transition references an out-of-range port, or a triggered transition
    /// has an empty event.
    pub fn build(self) -> Result<XmasAutomaton, AutomatonError> {
        let initial = self.initial.unwrap_or(StateId(0));
        XmasAutomaton::from_parts(
            self.name,
            self.states,
            initial,
            self.transitions,
            self.inputs,
            self.outputs,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use advocat_xmas::{Network, Packet};

    #[test]
    fn states_are_interned_by_name() {
        let mut b = AutomatonBuilder::new("A", 0, 0);
        let a1 = b.state("I");
        let a2 = b.state("I");
        let other = b.state("M");
        assert_eq!(a1, a2);
        assert_ne!(a1, other);
        assert_eq!(b.state_count(), 2);
    }

    #[test]
    fn default_initial_is_first_state() {
        let mut b = AutomatonBuilder::new("A", 0, 0);
        let first = b.state("first");
        b.state("second");
        let a = b.build().unwrap();
        assert_eq!(a.initial(), first);
    }

    #[test]
    fn empty_automaton_is_rejected() {
        let b = AutomatonBuilder::new("empty", 0, 0);
        assert!(matches!(b.build(), Err(AutomatonError::NoStates)));
    }

    #[test]
    fn on_any_groups_multiple_triggers_into_one_transition() {
        let mut net = Network::new();
        let inv = net.intern(Packet::kind("inv"));
        let repl = net.intern(Packet::kind("repl"));
        let put = net.intern(Packet::kind("put"));
        let mut b = AutomatonBuilder::new("cache", 2, 1);
        let m = b.state("M");
        let mi = b.state("MI");
        b.set_initial(m);
        b.on_any(
            m,
            mi,
            [((0, inv), Some((0, put))), ((1, repl), Some((0, put)))],
        );
        let a = b.build().unwrap();
        assert_eq!(a.transition_count(), 1);
        let t = &a.transitions()[0];
        assert!(t.accepts(0, inv));
        assert!(t.accepts(1, repl));
        assert!(!t.accepts(0, repl));
    }
}
