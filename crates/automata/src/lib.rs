//! XMAS automata: IO state automata with an xMAS channel interface.
//!
//! ADVOCAT models protocol agents (L2 caches, directories, DMA engines) as
//! *XMAS automata*: finite state automata whose transitions are labelled
//! with an **event** ε — a predicate over an in-channel and a packet that
//! says when the transition may consume a packet — and a **transformation**
//! φ — an optional packet emitted on an out-channel when the transition
//! fires (Definition 1 of the paper).  Because all packet colors in a model
//! are finite, both ε and φ are represented extensionally: a transition
//! carries an explicit map from accepted `(in_port, color)` pairs to the
//! optional `(out_port, color)` emission.
//!
//! ADVOCAT's directory "may decide at any time to send an invalidate"; to
//! model such internal choices without a dummy trigger source this crate
//! also supports *spontaneous* transitions that consume no input.
//!
//! The crate provides:
//!
//! * [`XmasAutomaton`] / [`AutomatonBuilder`] — the automaton data model,
//! * [`System`] — an xMAS [`advocat_xmas::Network`] together with the
//!   automata bound to its opaque automaton nodes,
//! * [`derive_colors`] — the whole-system `T`-derivation (color
//!   over-approximation) used by both the invariant generator and the
//!   deadlock encoder.
//!
//! # Examples
//!
//! Building the left automaton `S` of the paper's running example (Fig. 1):
//! it injects `req`s from state `s0` and consumes `ack`s in state `s1`.
//!
//! ```
//! use advocat_automata::AutomatonBuilder;
//! use advocat_xmas::{ColorId, Network, Packet};
//!
//! let mut net = Network::new();
//! let req = net.intern(Packet::kind("req"));
//! let ack = net.intern(Packet::kind("ack"));
//! // 1 in-channel (acks), 1 out-channel (reqs); plus a core-side trigger
//! // channel would be port 1 in a richer model.
//! let mut b = AutomatonBuilder::new("S", 1, 1);
//! let s0 = b.state("s0");
//! let s1 = b.state("s1");
//! b.set_initial(s0);
//! b.spontaneous_emit(s0, s1, 0, req);
//! b.on_packet(s1, s0, 0, ack, None);
//! let automaton = b.build()?;
//! assert_eq!(automaton.state_count(), 2);
//! # Ok::<(), advocat_automata::AutomatonError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod automaton;
mod builder;
mod system;
mod tderive;

pub use automaton::{
    AutomatonError, StateId, Transition, TransitionId, TransitionKind, XmasAutomaton,
};
pub use builder::AutomatonBuilder;
pub use system::{System, SystemError, SystemStats};
pub use tderive::derive_colors;
