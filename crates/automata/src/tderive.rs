//! Whole-system color derivation (`T`-derivation).
//!
//! Computes, for every channel, an over-approximation of the set of packet
//! colors that may travel through it.  Basic primitives are handled by
//! [`advocat_xmas::propagate_basic_primitive`]; automaton nodes propagate
//! colors according to their transitions' transformations φ: whenever a
//! packet accepted by some transition may arrive on an in-channel, the
//! corresponding emission is added to the respective out-channel.
//! Spontaneous emissions are always possible.
//!
//! State reachability is deliberately ignored — `T` must over-approximate.

use advocat_xmas::{propagate_basic_primitive, ColorMap, PrimitiveId};

use crate::automaton::TransitionKind;
use crate::system::System;

/// Computes the per-channel color over-approximation of a system.
///
/// # Examples
///
/// ```
/// use advocat_automata::{derive_colors, AutomatonBuilder, System};
/// use advocat_xmas::{Network, Packet};
///
/// // An agent that answers every `req` with an `ack`.
/// let mut net = Network::new();
/// let req = net.intern(Packet::kind("req"));
/// let ack = net.intern(Packet::kind("ack"));
/// let src = net.add_source("src", vec![req]);
/// let agent = net.add_automaton_node("agent", 1, 1);
/// let snk = net.add_sink("snk");
/// net.connect(src, 0, agent, 0);
/// let out = net.connect(agent, 0, snk, 0);
///
/// let mut b = AutomatonBuilder::new("agent", 1, 1);
/// let idle = b.state("idle");
/// b.on_packet(idle, idle, 0, req, Some((0, ack)));
/// let mut system = System::new(net);
/// system.attach(agent, b.build()?)?;
///
/// let colors = derive_colors(&system);
/// assert!(colors.contains(out, ack));
/// assert!(!colors.contains(out, req));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn derive_colors(system: &System) -> ColorMap {
    let network = system.network();
    let mut colors = ColorMap::empty(network);
    loop {
        let mut changed = false;
        for id in network.primitive_ids() {
            if network.primitive(id).is_automaton() {
                changed |= propagate_automaton(system, id, &mut colors);
            } else {
                changed |= propagate_basic_primitive(network, id, &mut colors);
            }
        }
        if !changed {
            break;
        }
    }
    colors
}

fn propagate_automaton(system: &System, node: PrimitiveId, colors: &mut ColorMap) -> bool {
    let network = system.network();
    let Some(automaton) = system.automaton(node) else {
        return false;
    };
    let mut changed = false;
    for transition in automaton.transitions() {
        match &transition.kind {
            TransitionKind::Spontaneous(Some((out_port, color))) => {
                if let Some(out) = network.out_channel(node, *out_port) {
                    changed |= colors.insert(out, *color);
                }
            }
            TransitionKind::Spontaneous(None) => {}
            TransitionKind::Triggered(map) => {
                for ((in_port, in_color), emission) in map {
                    let Some((out_port, out_color)) = emission else {
                        continue;
                    };
                    let Some(in_channel) = network.in_channel(node, *in_port) else {
                        continue;
                    };
                    if colors.contains(in_channel, *in_color) {
                        if let Some(out) = network.out_channel(node, *out_port) {
                            changed |= colors.insert(out, *out_color);
                        }
                    }
                }
            }
        }
    }
    changed
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::AutomatonBuilder;
    use advocat_xmas::{Network, Packet};

    /// The running example of the paper (Fig. 1): automata S and T joined
    /// by two queues carrying requests and acknowledgments.
    fn running_example() -> (System, advocat_xmas::ChannelId, advocat_xmas::ChannelId) {
        let mut net = Network::new();
        let req = net.intern(Packet::kind("req"));
        let ack = net.intern(Packet::kind("ack"));
        let s_node = net.add_automaton_node("S", 1, 1);
        let t_node = net.add_automaton_node("T", 1, 1);
        let q0 = net.add_queue("q0", 2);
        let q1 = net.add_queue("q1", 2);
        net.connect(s_node, 0, q0, 0);
        let q0_out = net.connect(q0, 0, t_node, 0);
        net.connect(t_node, 0, q1, 0);
        let q1_out = net.connect(q1, 0, s_node, 0);

        let mut sb = AutomatonBuilder::new("S", 1, 1);
        let s0 = sb.state("s0");
        let s1 = sb.state("s1");
        sb.set_initial(s0);
        sb.spontaneous_emit(s0, s1, 0, req);
        sb.on_packet(s1, s0, 0, ack, None);

        let mut tb = AutomatonBuilder::new("T", 1, 1);
        let t0 = tb.state("t0");
        let t1 = tb.state("t1");
        tb.set_initial(t0);
        tb.on_packet(t0, t1, 0, req, None);
        tb.spontaneous_emit(t1, t0, 0, ack);

        let mut system = System::new(net);
        system.attach(s_node, sb.build().unwrap()).unwrap();
        system.attach(t_node, tb.build().unwrap()).unwrap();
        system.validate().unwrap();
        (system, q0_out, q1_out)
    }

    #[test]
    fn running_example_colors_are_separated_per_queue() {
        let (system, q0_out, q1_out) = running_example();
        let colors = derive_colors(&system);
        let net = system.network();
        let req = net.colors().lookup(&Packet::kind("req")).unwrap();
        let ack = net.colors().lookup(&Packet::kind("ack")).unwrap();
        assert!(colors.contains(q0_out, req));
        assert!(!colors.contains(q0_out, ack));
        assert!(colors.contains(q1_out, ack));
        assert!(!colors.contains(q1_out, req));
    }

    #[test]
    fn triggered_emission_requires_input_color_to_be_possible() {
        // The agent would emit `rsp` on seeing `trigger`, but no source ever
        // injects `trigger`, so `rsp` must not appear.
        let mut net = Network::new();
        let other = net.intern(Packet::kind("other"));
        let trigger = net.intern(Packet::kind("trigger"));
        let rsp = net.intern(Packet::kind("rsp"));
        let src = net.add_source("src", vec![other]);
        let agent = net.add_automaton_node("agent", 1, 1);
        let snk = net.add_sink("snk");
        net.connect(src, 0, agent, 0);
        let out = net.connect(agent, 0, snk, 0);
        let mut b = AutomatonBuilder::new("agent", 1, 1);
        let idle = b.state("idle");
        b.on_packet(idle, idle, 0, trigger, Some((0, rsp)));
        b.on_packet(idle, idle, 0, other, None);
        let mut system = System::new(net);
        system.attach(agent, b.build().unwrap()).unwrap();
        let colors = derive_colors(&system);
        assert!(!colors.contains(out, rsp));
    }

    #[test]
    fn spontaneous_emissions_are_always_possible() {
        let mut net = Network::new();
        let hello = net.intern(Packet::kind("hello"));
        let agent = net.add_automaton_node("agent", 0, 1);
        let snk = net.add_sink("snk");
        let out = net.connect(agent, 0, snk, 0);
        let mut b = AutomatonBuilder::new("agent", 0, 1);
        let s = b.state("s");
        b.spontaneous_emit(s, s, 0, hello);
        let mut system = System::new(net);
        system.attach(agent, b.build().unwrap()).unwrap();
        let colors = derive_colors(&system);
        assert!(colors.contains(out, hello));
    }
}
