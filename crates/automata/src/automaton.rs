//! The XMAS automaton data model.

use std::collections::BTreeMap;
use std::fmt;

use advocat_xmas::ColorId;

/// A state of an [`XmasAutomaton`], identified by index.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct StateId(pub(crate) u32);

impl StateId {
    /// Returns the raw index of the state.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A transition of an [`XmasAutomaton`], identified by index.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TransitionId(pub(crate) u32);

impl TransitionId {
    /// Returns the raw index of the transition.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// How a transition fires.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TransitionKind {
    /// The transition consumes one packet from an in-channel.  The map
    /// lists every accepted `(in_port, color)` pair (the event ε) and the
    /// packet emitted for it, if any (the transformation φ).
    Triggered(BTreeMap<(usize, ColorId), Option<(usize, ColorId)>>),
    /// The transition fires without consuming input (an internal choice of
    /// the agent), optionally emitting a packet.
    Spontaneous(Option<(usize, ColorId)>),
}

/// A transition between two states.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Transition {
    /// Source state.
    pub from: StateId,
    /// Destination state.
    pub to: StateId,
    /// Trigger and emission behaviour.
    pub kind: TransitionKind,
}

impl Transition {
    /// Returns every packet the transition can emit, together with the
    /// out-port it is emitted on.
    pub fn emissions(&self) -> Vec<(usize, ColorId)> {
        match &self.kind {
            TransitionKind::Triggered(map) => map.values().flatten().copied().collect(),
            TransitionKind::Spontaneous(out) => out.iter().copied().collect(),
        }
    }

    /// Returns `true` when the transition accepts the given packet on the
    /// given in-port.
    pub fn accepts(&self, in_port: usize, color: ColorId) -> bool {
        match &self.kind {
            TransitionKind::Triggered(map) => map.contains_key(&(in_port, color)),
            TransitionKind::Spontaneous(_) => false,
        }
    }

    /// Returns the emission produced when consuming the given packet, if the
    /// transition accepts it.
    pub fn emission_for(&self, in_port: usize, color: ColorId) -> Option<Option<(usize, ColorId)>> {
        match &self.kind {
            TransitionKind::Triggered(map) => map.get(&(in_port, color)).copied(),
            TransitionKind::Spontaneous(_) => None,
        }
    }

    /// Returns `true` for spontaneous transitions.
    pub fn is_spontaneous(&self) -> bool {
        matches!(self.kind, TransitionKind::Spontaneous(_))
    }
}

/// Errors produced while building or validating an automaton.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AutomatonError {
    /// The automaton has no states.
    NoStates,
    /// A transition refers to an in-port beyond the declared input count.
    InputPortOutOfRange {
        /// The automaton name.
        automaton: String,
        /// The offending port.
        port: usize,
    },
    /// A transition refers to an out-port beyond the declared output count.
    OutputPortOutOfRange {
        /// The automaton name.
        automaton: String,
        /// The offending port.
        port: usize,
    },
    /// A triggered transition accepts no packets at all.
    EmptyTrigger {
        /// The automaton name.
        automaton: String,
    },
}

impl fmt::Display for AutomatonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AutomatonError::NoStates => write!(f, "automaton has no states"),
            AutomatonError::InputPortOutOfRange { automaton, port } => {
                write!(f, "automaton `{automaton}` uses unknown input port {port}")
            }
            AutomatonError::OutputPortOutOfRange { automaton, port } => {
                write!(f, "automaton `{automaton}` uses unknown output port {port}")
            }
            AutomatonError::EmptyTrigger { automaton } => {
                write!(
                    f,
                    "automaton `{automaton}` has a triggered transition with an empty event"
                )
            }
        }
    }
}

impl std::error::Error for AutomatonError {}

/// An XMAS automaton: a finite automaton whose transitions consume and emit
/// packets on xMAS channels (Definition 1 of the paper).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct XmasAutomaton {
    name: String,
    states: Vec<String>,
    initial: StateId,
    transitions: Vec<Transition>,
    inputs: usize,
    outputs: usize,
}

impl XmasAutomaton {
    pub(crate) fn from_parts(
        name: String,
        states: Vec<String>,
        initial: StateId,
        transitions: Vec<Transition>,
        inputs: usize,
        outputs: usize,
    ) -> Result<Self, AutomatonError> {
        if states.is_empty() {
            return Err(AutomatonError::NoStates);
        }
        let automaton = XmasAutomaton {
            name,
            states,
            initial,
            transitions,
            inputs,
            outputs,
        };
        automaton.validate()?;
        Ok(automaton)
    }

    fn validate(&self) -> Result<(), AutomatonError> {
        for t in &self.transitions {
            match &t.kind {
                TransitionKind::Triggered(map) => {
                    if map.is_empty() {
                        return Err(AutomatonError::EmptyTrigger {
                            automaton: self.name.clone(),
                        });
                    }
                    for ((port, _), emission) in map {
                        if *port >= self.inputs {
                            return Err(AutomatonError::InputPortOutOfRange {
                                automaton: self.name.clone(),
                                port: *port,
                            });
                        }
                        if let Some((out, _)) = emission {
                            if *out >= self.outputs {
                                return Err(AutomatonError::OutputPortOutOfRange {
                                    automaton: self.name.clone(),
                                    port: *out,
                                });
                            }
                        }
                    }
                }
                TransitionKind::Spontaneous(Some((out, _))) => {
                    if *out >= self.outputs {
                        return Err(AutomatonError::OutputPortOutOfRange {
                            automaton: self.name.clone(),
                            port: *out,
                        });
                    }
                }
                TransitionKind::Spontaneous(None) => {}
            }
        }
        Ok(())
    }

    /// Returns the automaton's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Returns the number of states.
    pub fn state_count(&self) -> usize {
        self.states.len()
    }

    /// Returns the number of transitions.
    pub fn transition_count(&self) -> usize {
        self.transitions.len()
    }

    /// Returns the declared number of in-channels.
    pub fn input_count(&self) -> usize {
        self.inputs
    }

    /// Returns the declared number of out-channels.
    pub fn output_count(&self) -> usize {
        self.outputs
    }

    /// Returns the initial state.
    pub fn initial(&self) -> StateId {
        self.initial
    }

    /// Returns the name of a state.
    pub fn state_name(&self, state: StateId) -> &str {
        &self.states[state.index()]
    }

    /// Looks a state up by name.
    pub fn state_by_name(&self, name: &str) -> Option<StateId> {
        self.states
            .iter()
            .position(|s| s == name)
            .map(|i| StateId(i as u32))
    }

    /// Iterates over all state ids.
    pub fn states(&self) -> impl Iterator<Item = StateId> + '_ {
        (0..self.states.len() as u32).map(StateId)
    }

    /// Returns all transitions.
    pub fn transitions(&self) -> &[Transition] {
        &self.transitions
    }

    /// Returns a transition by id.
    pub fn transition(&self, id: TransitionId) -> &Transition {
        &self.transitions[id.index()]
    }

    /// Iterates over all transition ids.
    pub fn transition_ids(&self) -> impl Iterator<Item = TransitionId> + '_ {
        (0..self.transitions.len() as u32).map(TransitionId)
    }

    /// Iterates over the transitions leaving a state.
    pub fn transitions_from(&self, state: StateId) -> impl Iterator<Item = TransitionId> + '_ {
        self.transition_ids()
            .filter(move |id| self.transition(*id).from == state)
    }

    /// Iterates over the transitions entering a state.
    pub fn transitions_into(&self, state: StateId) -> impl Iterator<Item = TransitionId> + '_ {
        self.transition_ids()
            .filter(move |id| self.transition(*id).to == state)
    }

    /// Returns `true` when any transition (from any state) accepts the given
    /// packet on the given in-port.
    pub fn ever_accepts(&self, in_port: usize, color: ColorId) -> bool {
        self.transitions.iter().any(|t| t.accepts(in_port, color))
    }

    /// Returns `true` when any transition can emit the given packet on the
    /// given out-port.
    pub fn ever_emits(&self, out_port: usize, color: ColorId) -> bool {
        self.transitions
            .iter()
            .any(|t| t.emissions().contains(&(out_port, color)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::AutomatonBuilder;

    fn color(raw: u32) -> ColorId {
        // ColorIds are opaque; tests fabricate them through a throwaway
        // network to stay within the public API.
        use advocat_xmas::{Network, Packet};
        let mut net = Network::new();
        for i in 0..=raw {
            net.intern(Packet::kind(format!("c{i}")));
        }
        net.intern(Packet::kind(format!("c{raw}")))
    }

    #[test]
    fn builder_produces_consistent_automaton() {
        let ack = color(0);
        let req = color(1);
        let mut b = AutomatonBuilder::new("S", 1, 1);
        let s0 = b.state("s0");
        let s1 = b.state("s1");
        b.set_initial(s0);
        b.spontaneous_emit(s0, s1, 0, req);
        b.on_packet(s1, s0, 0, ack, None);
        let a = b.build().unwrap();
        assert_eq!(a.state_count(), 2);
        assert_eq!(a.transition_count(), 2);
        assert_eq!(a.initial(), s0);
        assert!(a.ever_accepts(0, ack));
        assert!(!a.ever_accepts(0, req));
        assert!(a.ever_emits(0, req));
        assert_eq!(a.transitions_from(s0).count(), 1);
        assert_eq!(a.transitions_into(s0).count(), 1);
    }

    #[test]
    fn out_of_range_ports_are_rejected() {
        let c = color(0);
        let mut b = AutomatonBuilder::new("bad", 1, 1);
        let s0 = b.state("s0");
        b.set_initial(s0);
        b.on_packet(s0, s0, 3, c, None);
        assert!(matches!(
            b.build(),
            Err(AutomatonError::InputPortOutOfRange { port: 3, .. })
        ));

        let mut b = AutomatonBuilder::new("bad2", 1, 1);
        let s0 = b.state("s0");
        b.set_initial(s0);
        b.spontaneous_emit(s0, s0, 9, c);
        assert!(matches!(
            b.build(),
            Err(AutomatonError::OutputPortOutOfRange { port: 9, .. })
        ));
    }

    #[test]
    fn state_lookup_by_name() {
        let mut b = AutomatonBuilder::new("A", 0, 0);
        let i = b.state("I");
        let m = b.state("M");
        b.set_initial(i);
        let a = b.build().unwrap();
        assert_eq!(a.state_by_name("M"), Some(m));
        assert_eq!(a.state_by_name("Z"), None);
        assert_eq!(a.state_name(i), "I");
    }

    #[test]
    fn transition_emissions_and_acceptance() {
        let inv = color(0);
        let put = color(1);
        let mut b = AutomatonBuilder::new("cache", 1, 1);
        let m = b.state("M");
        let mi = b.state("MI");
        b.set_initial(m);
        b.on_packet(m, mi, 0, inv, Some((0, put)));
        let a = b.build().unwrap();
        let t = &a.transitions()[0];
        assert!(t.accepts(0, inv));
        assert_eq!(t.emission_for(0, inv), Some(Some((0, put))));
        assert_eq!(t.emissions(), vec![(0, put)]);
        assert!(!t.is_spontaneous());
    }
}
