//! A `System` couples an xMAS network with the automata bound to its
//! automaton nodes.

use std::collections::BTreeMap;
use std::fmt;

use advocat_xmas::{Network, NetworkError, PrimitiveId};

use crate::automaton::XmasAutomaton;

/// Errors raised when assembling or validating a [`System`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SystemError {
    /// The underlying network is structurally invalid.
    Network(NetworkError),
    /// The primitive is not an automaton node.
    NotAnAutomatonNode {
        /// Name of the primitive.
        primitive: String,
    },
    /// An automaton node has no attached automaton.
    MissingAutomaton {
        /// Name of the primitive.
        primitive: String,
    },
    /// The attached automaton's port counts do not match the node.
    PortMismatch {
        /// Name of the primitive.
        primitive: String,
        /// Name of the automaton.
        automaton: String,
    },
}

impl fmt::Display for SystemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SystemError::Network(e) => write!(f, "invalid network: {e}"),
            SystemError::NotAnAutomatonNode { primitive } => {
                write!(f, "primitive `{primitive}` is not an automaton node")
            }
            SystemError::MissingAutomaton { primitive } => {
                write!(f, "automaton node `{primitive}` has no attached automaton")
            }
            SystemError::PortMismatch {
                primitive,
                automaton,
            } => write!(
                f,
                "automaton `{automaton}` does not match the port counts of node `{primitive}`"
            ),
        }
    }
}

impl std::error::Error for SystemError {}

impl From<NetworkError> for SystemError {
    fn from(value: NetworkError) -> Self {
        SystemError::Network(value)
    }
}

/// Size statistics of a system, matching the figures the paper reports
/// (primitive, queue and automaton counts).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SystemStats {
    /// Total number of xMAS primitives (including automaton nodes).
    pub primitives: usize,
    /// Number of queues.
    pub queues: usize,
    /// Number of automata.
    pub automata: usize,
    /// Number of channels.
    pub channels: usize,
    /// Number of distinct packet colors.
    pub colors: usize,
}

/// An xMAS network together with the automata attached to its automaton
/// nodes — the full cross-layer model ADVOCAT verifies.
///
/// # Examples
///
/// ```
/// use advocat_automata::{AutomatonBuilder, System};
/// use advocat_xmas::{Network, Packet};
///
/// let mut net = Network::new();
/// let ping = net.intern(Packet::kind("ping"));
/// let agent_node = net.add_automaton_node("agent", 1, 0);
/// let src = net.add_source("src", vec![ping]);
/// net.connect(src, 0, agent_node, 0);
///
/// let mut b = AutomatonBuilder::new("agent", 1, 0);
/// let idle = b.state("idle");
/// b.on_packet(idle, idle, 0, ping, None);
/// let agent = b.build()?;
///
/// let mut system = System::new(net);
/// system.attach(agent_node, agent)?;
/// system.validate()?;
/// assert_eq!(system.stats().automata, 1);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Clone, Debug)]
pub struct System {
    network: Network,
    automata: BTreeMap<PrimitiveId, XmasAutomaton>,
}

impl System {
    /// Creates a system around a network with no automata attached yet.
    pub fn new(network: Network) -> Self {
        System {
            network,
            automata: BTreeMap::new(),
        }
    }

    /// Returns the underlying network.
    pub fn network(&self) -> &Network {
        &self.network
    }

    /// Returns a mutable reference to the underlying network.
    pub fn network_mut(&mut self) -> &mut Network {
        &mut self.network
    }

    /// Attaches an automaton to an automaton node.
    ///
    /// # Errors
    ///
    /// Fails when the primitive is not an automaton node or the port counts
    /// disagree.
    pub fn attach(
        &mut self,
        node: PrimitiveId,
        automaton: XmasAutomaton,
    ) -> Result<(), SystemError> {
        let prim = self.network.primitive(node);
        if !prim.is_automaton() {
            return Err(SystemError::NotAnAutomatonNode {
                primitive: self.network.name(node).to_owned(),
            });
        }
        if prim.input_count() != automaton.input_count()
            || prim.output_count() != automaton.output_count()
        {
            return Err(SystemError::PortMismatch {
                primitive: self.network.name(node).to_owned(),
                automaton: automaton.name().to_owned(),
            });
        }
        self.automata.insert(node, automaton);
        Ok(())
    }

    /// Returns the automaton attached to a node, if any.
    pub fn automaton(&self, node: PrimitiveId) -> Option<&XmasAutomaton> {
        self.automata.get(&node)
    }

    /// Iterates over `(node, automaton)` pairs in node order.
    pub fn automata(&self) -> impl Iterator<Item = (PrimitiveId, &XmasAutomaton)> + '_ {
        self.automata.iter().map(|(id, a)| (*id, a))
    }

    /// Returns the number of attached automata.
    pub fn automaton_count(&self) -> usize {
        self.automata.len()
    }

    /// Validates the network structure and that every automaton node has a
    /// matching automaton attached.
    ///
    /// # Errors
    ///
    /// Returns the first problem found.
    pub fn validate(&self) -> Result<(), SystemError> {
        self.network.validate()?;
        for node in self.network.automaton_ids() {
            match self.automata.get(&node) {
                None => {
                    return Err(SystemError::MissingAutomaton {
                        primitive: self.network.name(node).to_owned(),
                    })
                }
                Some(a) => {
                    let prim = self.network.primitive(node);
                    if prim.input_count() != a.input_count()
                        || prim.output_count() != a.output_count()
                    {
                        return Err(SystemError::PortMismatch {
                            primitive: self.network.name(node).to_owned(),
                            automaton: a.name().to_owned(),
                        });
                    }
                }
            }
        }
        Ok(())
    }

    /// Returns size statistics (primitive/queue/automaton/channel counts).
    pub fn stats(&self) -> SystemStats {
        SystemStats {
            primitives: self.network.primitive_count(),
            queues: self.network.queue_ids().count(),
            automata: self.automata.len(),
            channels: self.network.channel_count(),
            colors: self.network.colors().len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::AutomatonBuilder;
    use advocat_xmas::Packet;

    fn simple_agent(inputs: usize, outputs: usize) -> XmasAutomaton {
        let mut b = AutomatonBuilder::new("agent", inputs, outputs);
        let s = b.state("idle");
        b.set_initial(s);
        b.build().unwrap()
    }

    #[test]
    fn attach_rejects_non_automaton_nodes() {
        let mut net = Network::new();
        let q = net.add_queue("q", 1);
        let mut sys = System::new(net);
        assert!(matches!(
            sys.attach(q, simple_agent(0, 0)),
            Err(SystemError::NotAnAutomatonNode { .. })
        ));
    }

    #[test]
    fn attach_rejects_port_mismatch() {
        let mut net = Network::new();
        let c = net.intern(Packet::kind("x"));
        let node = net.add_automaton_node("agent", 1, 0);
        let src = net.add_source("src", vec![c]);
        net.connect(src, 0, node, 0);
        let mut sys = System::new(net);
        assert!(matches!(
            sys.attach(node, simple_agent(2, 0)),
            Err(SystemError::PortMismatch { .. })
        ));
        assert!(sys.attach(node, simple_agent(1, 0)).is_ok());
    }

    #[test]
    fn validate_requires_all_automata_attached() {
        let mut net = Network::new();
        let c = net.intern(Packet::kind("x"));
        let node = net.add_automaton_node("agent", 1, 0);
        let src = net.add_source("src", vec![c]);
        net.connect(src, 0, node, 0);
        let mut sys = System::new(net);
        assert!(matches!(
            sys.validate(),
            Err(SystemError::MissingAutomaton { .. })
        ));
        sys.attach(node, simple_agent(1, 0)).unwrap();
        assert!(sys.validate().is_ok());
    }

    #[test]
    fn stats_count_components() {
        let mut net = Network::new();
        let c = net.intern(Packet::kind("x"));
        let node = net.add_automaton_node("agent", 1, 0);
        let src = net.add_source("src", vec![c]);
        let q = net.add_queue("q", 2);
        net.connect(src, 0, q, 0);
        net.connect(q, 0, node, 0);
        let mut sys = System::new(net);
        sys.attach(node, simple_agent(1, 0)).unwrap();
        let stats = sys.stats();
        assert_eq!(stats.primitives, 3);
        assert_eq!(stats.queues, 1);
        assert_eq!(stats.automata, 1);
        assert_eq!(stats.channels, 2);
        assert_eq!(stats.colors, 1);
    }
}
