//! Structured tracing, metrics and solver profiles for the ADVOCAT
//! verification stack.
//!
//! The stack spans four layers — CDCL/SMT core, persistent `QueryEngine`,
//! warm-engine `Service`, compositional driver — and each kept its own
//! snapshot statistics.  This crate gives them one **shared timeline**
//! and one **registry**:
//!
//! * **Spans & events** ([`Telemetry::span`], [`Telemetry::event`]):
//!   lightweight enter/exit records with monotonic timestamps, parent
//!   links and `key=value` fields, exported as JSON lines through a
//!   pluggable [`TraceSink`] (in-memory ring, file, null);
//! * **Metrics** ([`MetricsRegistry`]): counters, gauges and histograms
//!   with hand-rolled Prometheus-text and JSON exposition (the build
//!   environment is offline — no serde);
//! * **Solver profiles** ([`SolverProfile`]): per-query attribution of
//!   time and conflicts to the propagate/analyze/reduce/restart phases
//!   plus the restart/LBD-EMA timeline.
//!
//! The entry point is the [`Telemetry`] handle.  It is **disabled by
//! default** and zero-cost in that state: every probe is a single branch
//! on an `Option` discriminant, no clock is read, no field is formatted
//! (field closures only run when enabled).  A handle flows through the
//! stack's configuration chain — `SolverConfig → CheckConfig →
//! ServiceConfig` — so enabling observability is one builder call at any
//! layer.
//!
//! # Examples
//!
//! ```
//! use advocat_telemetry::Telemetry;
//!
//! let (telemetry, trace) = Telemetry::ring(1024);
//! {
//!     let _span = telemetry.span_with("demo.outer", || vec![("answer", 42.to_string())]);
//!     telemetry.event("demo.tick");
//! }
//! telemetry.flush();
//! let lines = trace.lines();
//! assert_eq!(lines.len(), 3); // enter, event, exit
//! assert!(lines[0].contains("\"type\":\"enter\""));
//! assert!(lines[0].contains("\"name\":\"demo.outer\""));
//! assert!(lines[2].contains("\"dur_us\""));
//!
//! let metrics = telemetry.metrics().unwrap();
//! metrics.counter("demo_total", "Demo events").inc();
//! assert!(metrics.render_prometheus().contains("demo_total 1"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod log;
mod metrics;
mod profile;
mod trace;

pub use metrics::{Counter, Gauge, Histogram, MetricsRegistry, LATENCY_BUCKETS_US};
pub use profile::{PhaseCost, RestartSample, SolverProfile};
pub use trace::{FileSink, NullSink, RingBufferSink, TraceBuffer, TraceSink};

use std::cell::RefCell;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// A field list: pre-rendered `key=value` context attached to a span or
/// event.  Built by the closure of [`Telemetry::span_with`] /
/// [`Telemetry::event_with`], which only runs when telemetry is enabled.
pub type Fields = Vec<(&'static str, String)>;

struct Inner {
    /// Epoch of the handle: every `t_us` timestamp is measured from here,
    /// so all threads of a run share one timeline.
    epoch: Instant,
    next_span: AtomicU64,
    sink: Mutex<Box<dyn TraceSink>>,
    metrics: MetricsRegistry,
}

thread_local! {
    /// The enclosing-span stack of the current thread (ids only); the top
    /// is the parent of the next span or event.
    static SPAN_STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
}

/// The telemetry handle: cheap to clone, disabled by default, and
/// zero-cost while disabled.  See the [crate documentation](self).
#[derive(Clone, Default)]
pub struct Telemetry {
    inner: Option<Arc<Inner>>,
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Telemetry")
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

impl PartialEq for Telemetry {
    /// Handle identity: two handles are equal when they share state (or
    /// are both disabled).  This is what lets configuration structs that
    /// carry a handle stay comparable — swapping the handle *is* a config
    /// change; cloning it is not.
    fn eq(&self, other: &Self) -> bool {
        match (&self.inner, &other.inner) {
            (None, None) => true,
            (Some(a), Some(b)) => Arc::ptr_eq(a, b),
            _ => false,
        }
    }
}

impl Telemetry {
    /// The disabled handle (also [`Telemetry::default`]): every probe is a
    /// no-op branch.
    pub fn disabled() -> Telemetry {
        Telemetry::default()
    }

    /// An enabled handle writing trace records to `sink`, with a fresh
    /// metrics registry.
    pub fn with_sink(sink: Box<dyn TraceSink>) -> Telemetry {
        Telemetry {
            inner: Some(Arc::new(Inner {
                epoch: Instant::now(),
                next_span: AtomicU64::new(1),
                sink: Mutex::new(sink),
                metrics: MetricsRegistry::new(),
            })),
        }
    }

    /// An enabled handle tracing into an in-memory ring of the most
    /// recent `capacity` records; the returned [`TraceBuffer`] reads the
    /// trace back.
    pub fn ring(capacity: usize) -> (Telemetry, TraceBuffer) {
        let (sink, buffer) = RingBufferSink::new(capacity);
        (Telemetry::with_sink(Box::new(sink)), buffer)
    }

    /// An enabled handle appending JSON-lines records to the file at
    /// `path` (created/truncated).
    ///
    /// # Errors
    ///
    /// Returns the I/O error of the failed file creation.
    pub fn to_file(path: impl AsRef<std::path::Path>) -> std::io::Result<Telemetry> {
        Ok(Telemetry::with_sink(Box::new(FileSink::create(path)?)))
    }

    /// An enabled handle that discards every trace record ([`NullSink`])
    /// but still collects metrics and solver profiles — the configuration
    /// the overhead bench measures.
    pub fn null() -> Telemetry {
        Telemetry::with_sink(Box::new(NullSink))
    }

    /// Returns `true` when this handle records anything at all.  Hot paths
    /// gate their instrumentation on this.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// The handle's metrics registry, `None` while disabled.
    pub fn metrics(&self) -> Option<MetricsRegistry> {
        self.inner.as_ref().map(|inner| inner.metrics.clone())
    }

    /// Flushes the trace sink (file sinks buffer).
    pub fn flush(&self) {
        if let Some(inner) = &self.inner {
            inner.sink.lock().expect("trace sink lock").flush();
        }
    }

    /// Opens a span with no fields.  The returned guard emits the `exit`
    /// record when dropped; while it lives, new spans and events on this
    /// thread are parented to it.
    pub fn span(&self, name: &'static str) -> Span {
        self.span_with(name, Vec::new)
    }

    /// Opens a span with fields; `fields` runs **only when enabled**, so
    /// the disabled path formats nothing.
    pub fn span_with(&self, name: &'static str, fields: impl FnOnce() -> Fields) -> Span {
        let Some(inner) = &self.inner else {
            return Span { active: None };
        };
        let id = inner.next_span.fetch_add(1, Ordering::Relaxed);
        let t_us = elapsed_us(inner);
        let parent = SPAN_STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            let parent = stack.last().copied();
            stack.push(id);
            parent
        });
        let mut line = format!("{{\"type\":\"enter\",\"span\":{id}");
        if let Some(parent) = parent {
            let _ = write!(line, ",\"parent\":{parent}");
        }
        let _ = write!(line, ",\"name\":\"{name}\",\"t_us\":{t_us}");
        trace::fields_into(&mut line, &fields());
        line.push('}');
        record(inner, &line);
        Span {
            active: Some(ActiveSpan {
                inner: Arc::clone(inner),
                id,
                name,
                entered: Instant::now(),
            }),
        }
    }

    /// Emits a point event with no fields, attached to the innermost open
    /// span of this thread (if any).
    pub fn event(&self, name: &'static str) {
        self.event_with(name, Vec::new);
    }

    /// Emits a point event with fields; `fields` runs only when enabled.
    pub fn event_with(&self, name: &'static str, fields: impl FnOnce() -> Fields) {
        let Some(inner) = &self.inner else {
            return;
        };
        let t_us = elapsed_us(inner);
        let span = SPAN_STACK.with(|stack| stack.borrow().last().copied());
        let mut line = String::from("{\"type\":\"event\"");
        if let Some(span) = span {
            let _ = write!(line, ",\"span\":{span}");
        }
        let _ = write!(line, ",\"name\":\"{name}\",\"t_us\":{t_us}");
        trace::fields_into(&mut line, &fields());
        line.push('}');
        record(inner, &line);
    }
}

fn elapsed_us(inner: &Inner) -> u64 {
    inner.epoch.elapsed().as_micros().min(u128::from(u64::MAX)) as u64
}

fn record(inner: &Inner, line: &str) {
    inner.sink.lock().expect("trace sink lock").record(line);
}

struct ActiveSpan {
    inner: Arc<Inner>,
    id: u64,
    name: &'static str,
    entered: Instant,
}

/// A span guard: emits the `exit` record (with `dur_us`) when dropped.
/// Inert when the handle was disabled at [`Telemetry::span`] time.
#[must_use = "a span measures the scope it lives in; bind it to a variable"]
pub struct Span {
    active: Option<ActiveSpan>,
}

impl Span {
    /// Returns the span's id, `None` for inert spans.
    pub fn id(&self) -> Option<u64> {
        self.active.as_ref().map(|a| a.id)
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(active) = self.active.take() else {
            return;
        };
        SPAN_STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            // Guards are strictly nested in practice; tolerate (and
            // repair) out-of-order drops rather than corrupting parents.
            if stack.last() == Some(&active.id) {
                stack.pop();
            } else {
                stack.retain(|&id| id != active.id);
            }
        });
        let t_us = elapsed_us(&active.inner);
        let dur_us = active
            .entered
            .elapsed()
            .as_micros()
            .min(u128::from(u64::MAX)) as u64;
        let line = format!(
            "{{\"type\":\"exit\",\"span\":{},\"name\":\"{}\",\"t_us\":{t_us},\"dur_us\":{dur_us}}}",
            active.id, active.name
        );
        record(&active.inner, &line);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_is_inert() {
        let telemetry = Telemetry::disabled();
        assert!(!telemetry.is_enabled());
        assert!(telemetry.metrics().is_none());
        let span = telemetry.span_with("never", || panic!("fields must not run"));
        assert!(span.id().is_none());
        telemetry.event_with("never", || panic!("fields must not run"));
        drop(span);
        telemetry.flush();
    }

    #[test]
    fn spans_nest_and_link_parents() {
        let (telemetry, trace) = Telemetry::ring(64);
        {
            let outer = telemetry.span("outer");
            let outer_id = outer.id().unwrap();
            {
                let inner = telemetry.span("inner");
                assert_ne!(inner.id(), outer.id());
                telemetry.event_with("tick", || vec![("k", "v".to_owned())]);
            }
            let lines = trace.lines();
            let inner_enter = lines
                .iter()
                .find(|l| l.contains("\"name\":\"inner\"") && l.contains("enter"))
                .unwrap();
            assert!(inner_enter.contains(&format!("\"parent\":{outer_id}")));
            let event = lines
                .iter()
                .find(|l| l.contains("\"type\":\"event\""))
                .unwrap();
            assert!(event.contains("\"fields\":{\"k\":\"v\"}"));
        }
        let lines = trace.lines();
        assert_eq!(
            lines
                .iter()
                .filter(|l| l.contains("\"type\":\"enter\""))
                .count(),
            2
        );
        assert_eq!(
            lines
                .iter()
                .filter(|l| l.contains("\"type\":\"exit\""))
                .count(),
            2
        );
        // A fresh root span after everything closed has no parent.
        let root = telemetry.span("root2");
        drop(root);
        let last_enter = trace
            .lines()
            .into_iter()
            .rfind(|l| l.contains("\"type\":\"enter\""))
            .unwrap();
        assert!(!last_enter.contains("parent"));
    }

    #[test]
    fn handle_equality_is_identity() {
        let a = Telemetry::null();
        let b = a.clone();
        let c = Telemetry::null();
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(Telemetry::disabled(), Telemetry::disabled());
        assert_ne!(a, Telemetry::disabled());
    }
}
