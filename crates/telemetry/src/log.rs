//! A minimal leveled logging shim.
//!
//! Library crates in this workspace never print; benches, examples and the
//! Criterion shim route their human-facing output through these macros so
//! it stays visible by default (`Info`) but can be silenced or widened
//! with the `ADVOCAT_LOG` environment variable (`error`, `warn`, `info`,
//! `debug`, or `off`).  `Error`/`Warn` go to stderr, `Info`/`Debug` to
//! stdout (bench tables are data, not diagnostics).

use std::sync::atomic::{AtomicU8, Ordering};

/// Log severity, most severe first.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Failures the run cannot paper over.
    Error = 0,
    /// Suspicious but survivable conditions.
    Warn = 1,
    /// Normal human-facing output (the default threshold).
    Info = 2,
    /// Extra detail for debugging runs.
    Debug = 3,
}

/// Sentinel for "nothing was parsed yet" in the cached threshold.
const UNSET: u8 = u8::MAX;
/// Threshold below which everything is silenced (`ADVOCAT_LOG=off`).
const OFF: u8 = u8::MAX - 1;

static MAX_LEVEL: AtomicU8 = AtomicU8::new(UNSET);

fn threshold() -> u8 {
    match MAX_LEVEL.load(Ordering::Relaxed) {
        UNSET => {
            let parsed = match std::env::var("ADVOCAT_LOG").ok().as_deref() {
                Some("off") | Some("none") => OFF,
                Some("error") => Level::Error as u8,
                Some("warn") => Level::Warn as u8,
                Some("debug") => Level::Debug as u8,
                // `info`, unset, or unrecognised: the default threshold.
                _ => Level::Info as u8,
            };
            MAX_LEVEL.store(parsed, Ordering::Relaxed);
            parsed
        }
        cached => cached,
    }
}

/// Overrides the threshold programmatically (wins over `ADVOCAT_LOG`).
pub fn set_max_level(level: Level) {
    MAX_LEVEL.store(level as u8, Ordering::Relaxed);
}

/// Returns `true` when messages at `level` are currently emitted.
pub fn enabled(level: Level) -> bool {
    let max = threshold();
    max != OFF && (level as u8) <= max
}

/// Emits one formatted message at `level` (the macros' runtime).
pub fn log(level: Level, args: std::fmt::Arguments<'_>) {
    if !enabled(level) {
        return;
    }
    match level {
        Level::Error | Level::Warn => eprintln!("{args}"),
        Level::Info | Level::Debug => println!("{args}"),
    }
}

/// Logs at [`Level::Error`] with `format!` syntax.
#[macro_export]
macro_rules! error {
    ($($arg:tt)*) => {
        $crate::log::log($crate::log::Level::Error, ::std::format_args!($($arg)*))
    };
}

/// Logs at [`Level::Warn`] with `format!` syntax.
#[macro_export]
macro_rules! warn {
    ($($arg:tt)*) => {
        $crate::log::log($crate::log::Level::Warn, ::std::format_args!($($arg)*))
    };
}

/// Logs at [`Level::Info`] with `format!` syntax — the level benches and
/// examples print their tables at.
#[macro_export]
macro_rules! info {
    ($($arg:tt)*) => {
        $crate::log::log($crate::log::Level::Info, ::std::format_args!($($arg)*))
    };
}

/// Logs at [`Level::Debug`] with `format!` syntax.
#[macro_export]
macro_rules! debug {
    ($($arg:tt)*) => {
        $crate::log::log($crate::log::Level::Debug, ::std::format_args!($($arg)*))
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_order_and_threshold_gate() {
        set_max_level(Level::Warn);
        assert!(enabled(Level::Error));
        assert!(enabled(Level::Warn));
        assert!(!enabled(Level::Info));
        set_max_level(Level::Debug);
        assert!(enabled(Level::Debug));
        // The macros format lazily and run without panicking.
        crate::info!("info at {}", Level::Debug as u8);
        set_max_level(Level::Info);
    }
}
