//! Spans, events and trace sinks.
//!
//! A trace is a stream of JSON-lines records.  Three record types share
//! one flat schema (pinned by the schema-stability test in
//! `tests/telemetry.rs`):
//!
//! ```json
//! {"type":"enter","span":3,"parent":1,"name":"query.check","t_us":120,"fields":{"capacity":"3"}}
//! {"type":"event","span":3,"name":"sat.restart","t_us":150,"fields":{"conflicts":"64"}}
//! {"type":"exit","span":3,"name":"query.check","t_us":480,"dur_us":360}
//! ```
//!
//! * `span` — the record's span id (`enter`/`exit`) or the innermost
//!   enclosing span of an `event` (absent at top level);
//! * `parent` — the enclosing span at enter time, absent for roots;
//! * `t_us` — microseconds since the [`super::Telemetry`] handle was
//!   created (one monotonic epoch per handle, so every record of a run is
//!   on one timeline regardless of which thread produced it);
//! * `dur_us` — enter-to-exit wall time, on `exit` records only;
//! * `fields` — caller-supplied `key=value` context, values pre-rendered
//!   to strings (absent when empty).
//!
//! Parent links come from a per-thread span stack, so spans nest the way
//! the code nests and a trace from the multi-threaded service interleaves
//! per-worker span trees that are each internally well-formed.

use std::collections::VecDeque;
use std::fmt::Write as _;
use std::io::Write as _;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Where trace records go.  Implementations receive complete JSON-lines
/// records (no trailing newline) in emission order.
///
/// Sinks are invoked under the handle's sink lock, so a slow sink slows
/// tracing but never interleaves half-written records.
pub trait TraceSink: Send {
    /// Accepts one complete JSON-lines record.
    fn record(&mut self, line: &str);

    /// Flushes any buffering (a no-op for in-memory sinks).
    fn flush(&mut self) {}
}

/// A sink that discards every record: tracing stays structurally enabled
/// (spans get ids, parents link up) but nothing is kept.  Used to measure
/// the cost of record *production* alone.
#[derive(Clone, Copy, Debug, Default)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn record(&mut self, _line: &str) {}
}

/// The shared storage behind a [`RingBufferSink`] and the
/// [`TraceBuffer`] handle that reads it back.
#[derive(Debug, Default)]
struct RingShared {
    lines: VecDeque<String>,
    capacity: usize,
    dropped: u64,
}

/// The ring plus the arrival signal readers block on.
#[derive(Debug, Default)]
struct Ring {
    shared: Mutex<RingShared>,
    arrived: Condvar,
}

/// An in-memory sink keeping the most recent `capacity` records.
///
/// Construct via [`super::Telemetry::ring`], which returns the matching
/// [`TraceBuffer`] for reading the trace back after the run.
#[derive(Clone, Debug)]
pub struct RingBufferSink {
    ring: Arc<Ring>,
}

impl RingBufferSink {
    /// Creates a ring sink and the buffer handle that reads it.
    pub fn new(capacity: usize) -> (RingBufferSink, TraceBuffer) {
        let ring = Arc::new(Ring {
            shared: Mutex::new(RingShared {
                lines: VecDeque::new(),
                capacity: capacity.max(1),
                dropped: 0,
            }),
            arrived: Condvar::new(),
        });
        (
            RingBufferSink {
                ring: Arc::clone(&ring),
            },
            TraceBuffer { ring },
        )
    }
}

impl TraceSink for RingBufferSink {
    fn record(&mut self, line: &str) {
        let mut shared = self.ring.shared.lock().expect("trace ring lock");
        if shared.lines.len() == shared.capacity {
            shared.lines.pop_front();
            shared.dropped += 1;
        }
        shared.lines.push_back(line.to_owned());
        drop(shared);
        self.ring.arrived.notify_all();
    }
}

/// Read side of a ring-buffer trace: snapshot or drain the retained
/// JSON-lines records after (or during) a run.
#[derive(Clone, Debug)]
pub struct TraceBuffer {
    ring: Arc<Ring>,
}

impl TraceBuffer {
    /// Returns a snapshot of the retained records, oldest first.
    pub fn lines(&self) -> Vec<String> {
        let shared = self.ring.shared.lock().expect("trace ring lock");
        shared.lines.iter().cloned().collect()
    }

    /// Removes and returns the retained records, oldest first.
    pub fn drain(&self) -> Vec<String> {
        let mut shared = self.ring.shared.lock().expect("trace ring lock");
        shared.lines.drain(..).collect()
    }

    /// Drains the retained records, blocking up to `timeout` for at least
    /// one to arrive when the ring is empty.  Returns an empty vector only
    /// on timeout — the streaming handoff behind the front-end's
    /// `GET /v1/trace`, which parks between chunks instead of spinning.
    pub fn wait_drain(&self, timeout: Duration) -> Vec<String> {
        let deadline = Instant::now() + timeout;
        let mut shared = self.ring.shared.lock().expect("trace ring lock");
        loop {
            if !shared.lines.is_empty() {
                return shared.lines.drain(..).collect();
            }
            let Some(remaining) = deadline.checked_duration_since(Instant::now()) else {
                return Vec::new();
            };
            let (guard, result) = self
                .ring
                .arrived
                .wait_timeout(shared, remaining)
                .expect("trace ring lock");
            shared = guard;
            if result.timed_out() && shared.lines.is_empty() {
                return Vec::new();
            }
        }
    }

    /// Number of records currently retained.
    pub fn len(&self) -> usize {
        self.ring
            .shared
            .lock()
            .expect("trace ring lock")
            .lines
            .len()
    }

    /// Returns `true` when no records are retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Records evicted because the ring was full — non-zero means the
    /// trace is a suffix of the run, not the whole run.
    pub fn dropped(&self) -> u64 {
        self.ring.shared.lock().expect("trace ring lock").dropped
    }
}

/// A sink appending records to a file (one JSON object per line), buffered.
#[derive(Debug)]
pub struct FileSink {
    writer: std::io::BufWriter<std::fs::File>,
}

impl FileSink {
    /// Creates (truncating) `path` and writes every record to it.
    ///
    /// # Errors
    ///
    /// Returns the I/O error of the failed file creation.
    pub fn create(path: impl AsRef<std::path::Path>) -> std::io::Result<FileSink> {
        let file = std::fs::File::create(path)?;
        Ok(FileSink {
            writer: std::io::BufWriter::new(file),
        })
    }
}

impl TraceSink for FileSink {
    fn record(&mut self, line: &str) {
        // Trace output is best-effort: a full disk must not take the
        // verification run down with it.
        let _ = writeln!(self.writer, "{line}");
    }

    fn flush(&mut self) {
        let _ = self.writer.flush();
    }
}

impl Drop for FileSink {
    fn drop(&mut self) {
        let _ = self.writer.flush();
    }
}

/// Appends `"key":"value"` JSON string pairs for a field list, escaping
/// values with the crate's shared [`escape_into`].
pub(crate) fn fields_into(out: &mut String, fields: &[(&str, String)]) {
    if fields.is_empty() {
        return;
    }
    out.push_str(",\"fields\":{");
    for (i, (key, value)) in fields.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('"');
        escape_into(out, key);
        out.push_str("\":\"");
        escape_into(out, value);
        out.push('"');
    }
    out.push('}');
}

/// JSON string escaping, hand-rolled in the `service/json.rs` house style
/// (the build environment is offline — no serde).
pub(crate) fn escape_into(out: &mut String, text: &str) {
    for ch in text.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_buffer_keeps_the_most_recent_records() {
        let (mut sink, buffer) = RingBufferSink::new(2);
        sink.record("a");
        sink.record("b");
        sink.record("c");
        assert_eq!(buffer.lines(), vec!["b".to_owned(), "c".to_owned()]);
        assert_eq!(buffer.dropped(), 1);
        assert_eq!(buffer.drain().len(), 2);
        assert!(buffer.is_empty());
    }

    #[test]
    fn wait_drain_blocks_until_a_record_arrives_or_times_out() {
        let (mut sink, buffer) = RingBufferSink::new(8);
        // Already-buffered records return immediately.
        sink.record("early");
        assert_eq!(buffer.wait_drain(Duration::from_secs(5)), vec!["early"]);
        // An empty ring times out empty.
        assert!(buffer.wait_drain(Duration::from_millis(10)).is_empty());
        // A record arriving mid-wait wakes the reader.
        let writer = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            sink.record("late");
        });
        assert_eq!(buffer.wait_drain(Duration::from_secs(5)), vec!["late"]);
        writer.join().expect("writer thread");
    }

    #[test]
    fn escaping_covers_quotes_and_control_characters() {
        let mut out = String::new();
        escape_into(&mut out, "a\"b\\c\nd\u{1}");
        assert_eq!(out, "a\\\"b\\\\c\\nd\\u0001");
    }

    #[test]
    fn file_sink_writes_json_lines() {
        let path = std::env::temp_dir().join("advocat-telemetry-filesink-test.jsonl");
        {
            let mut sink = FileSink::create(&path).expect("temp file");
            sink.record("{\"type\":\"event\"}");
            sink.flush();
        }
        let text = std::fs::read_to_string(&path).expect("file readable");
        assert_eq!(text, "{\"type\":\"event\"}\n");
        let _ = std::fs::remove_file(&path);
    }
}
