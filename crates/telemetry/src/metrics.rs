//! The metrics registry: counters, gauges and histograms with hand-rolled
//! Prometheus-text and JSON exposition.
//!
//! Metric handles are registered once (get-or-create by name) and then
//! updated lock-free through atomics; the registry lock is only taken at
//! registration and exposition time.  The expositions are serde-free, in
//! the same house style as the service's `service/json.rs` wire format.

use std::fmt::Write as _;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use crate::trace::escape_into;

/// A monotonically increasing counter.
#[derive(Clone, Debug, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that can go up and down.
#[derive(Clone, Debug, Default)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// Replaces the value.
    pub fn set(&self, value: i64) {
        self.0.store(value, Ordering::Relaxed);
    }

    /// Adds `n` (which may be negative).
    pub fn add(&self, n: i64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Default histogram bucket bounds, in microseconds: powers of four from
/// 1µs to ~17s — wide enough for both queue waits and solve times.
pub const LATENCY_BUCKETS_US: [u64; 13] = [
    1, 4, 16, 64, 256, 1_024, 4_096, 16_384, 65_536, 262_144, 1_048_576, 4_194_304, 16_777_216,
];

#[derive(Debug)]
struct HistogramCore {
    /// Upper bounds (inclusive) of the finite buckets, in microseconds.
    bounds: Vec<u64>,
    /// One count per finite bucket plus the overflow (`+Inf`) bucket.
    counts: Vec<AtomicU64>,
    sum_us: AtomicU64,
    count: AtomicU64,
}

/// A histogram of microsecond observations over fixed bucket bounds.
#[derive(Clone, Debug)]
pub struct Histogram(Arc<HistogramCore>);

impl Histogram {
    fn new(bounds: &[u64]) -> Histogram {
        Histogram(Arc::new(HistogramCore {
            bounds: bounds.to_vec(),
            counts: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            sum_us: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }))
    }

    /// Records one observation of `us` microseconds.
    pub fn observe_us(&self, us: u64) {
        let core = &*self.0;
        let bucket = core
            .bounds
            .iter()
            .position(|&bound| us <= bound)
            .unwrap_or(core.bounds.len());
        core.counts[bucket].fetch_add(1, Ordering::Relaxed);
        core.sum_us.fetch_add(us, Ordering::Relaxed);
        core.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one duration observation.
    pub fn observe(&self, duration: Duration) {
        self.observe_us(duration.as_micros().min(u128::from(u64::MAX)) as u64);
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations, in microseconds.
    pub fn sum_us(&self) -> u64 {
        self.0.sum_us.load(Ordering::Relaxed)
    }

    /// Cumulative bucket counts as `(upper_bound_us, count)` pairs, the
    /// final pair being the `+Inf` bucket (`None` bound).
    pub fn buckets(&self) -> Vec<(Option<u64>, u64)> {
        let core = &*self.0;
        let mut cumulative = 0;
        let mut out = Vec::with_capacity(core.counts.len());
        for (i, count) in core.counts.iter().enumerate() {
            cumulative += count.load(Ordering::Relaxed);
            out.push((core.bounds.get(i).copied(), cumulative));
        }
        out
    }
}

enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

struct Registered {
    name: String,
    help: String,
    metric: Metric,
}

/// A cheaply cloneable registry of named metrics.
///
/// # Examples
///
/// ```
/// use advocat_telemetry::MetricsRegistry;
///
/// let registry = MetricsRegistry::new();
/// let jobs = registry.counter("advocat_jobs_total", "Jobs executed");
/// jobs.inc();
/// assert!(registry.render_prometheus().contains("advocat_jobs_total 1"));
/// assert!(registry.render_json().contains("\"advocat_jobs_total\":1"));
/// ```
#[derive(Clone, Default)]
pub struct MetricsRegistry {
    inner: Arc<Mutex<Vec<Registered>>>,
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock().expect("metrics registry lock");
        f.debug_struct("MetricsRegistry")
            .field("metrics", &inner.len())
            .finish()
    }
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Returns the counter registered under `name`, creating it on first
    /// use.  Re-registration under a different metric kind panics — one
    /// name, one kind.
    pub fn counter(&self, name: &str, help: &str) -> Counter {
        let mut inner = self.inner.lock().expect("metrics registry lock");
        if let Some(existing) = inner.iter().find(|m| m.name == name) {
            match &existing.metric {
                Metric::Counter(c) => return c.clone(),
                _ => panic!("metric {name} is already registered with another kind"),
            }
        }
        let counter = Counter::default();
        inner.push(Registered {
            name: name.to_owned(),
            help: help.to_owned(),
            metric: Metric::Counter(counter.clone()),
        });
        counter
    }

    /// Returns the gauge registered under `name`, creating it on first
    /// use.  Panics on a kind mismatch, like [`MetricsRegistry::counter`].
    pub fn gauge(&self, name: &str, help: &str) -> Gauge {
        let mut inner = self.inner.lock().expect("metrics registry lock");
        if let Some(existing) = inner.iter().find(|m| m.name == name) {
            match &existing.metric {
                Metric::Gauge(g) => return g.clone(),
                _ => panic!("metric {name} is already registered with another kind"),
            }
        }
        let gauge = Gauge::default();
        inner.push(Registered {
            name: name.to_owned(),
            help: help.to_owned(),
            metric: Metric::Gauge(gauge.clone()),
        });
        gauge
    }

    /// Returns the histogram registered under `name` with the
    /// [`LATENCY_BUCKETS_US`] bounds, creating it on first use.  Panics on
    /// a kind mismatch, like [`MetricsRegistry::counter`].
    pub fn histogram(&self, name: &str, help: &str) -> Histogram {
        self.histogram_with(name, help, &LATENCY_BUCKETS_US)
    }

    /// Like [`MetricsRegistry::histogram`] with explicit bucket bounds in
    /// microseconds (ascending).  The bounds of an already-registered
    /// histogram win.
    pub fn histogram_with(&self, name: &str, help: &str, bounds_us: &[u64]) -> Histogram {
        let mut inner = self.inner.lock().expect("metrics registry lock");
        if let Some(existing) = inner.iter().find(|m| m.name == name) {
            match &existing.metric {
                Metric::Histogram(h) => return h.clone(),
                _ => panic!("metric {name} is already registered with another kind"),
            }
        }
        let histogram = Histogram::new(bounds_us);
        inner.push(Registered {
            name: name.to_owned(),
            help: help.to_owned(),
            metric: Metric::Histogram(histogram.clone()),
        });
        histogram
    }

    /// Renders every metric in the Prometheus text exposition format
    /// (`# HELP`/`# TYPE` headers; histogram buckets as cumulative
    /// `_bucket{le="seconds"}` series with `_sum`/`_count`, durations in
    /// seconds per Prometheus convention).
    pub fn render_prometheus(&self) -> String {
        let inner = self.inner.lock().expect("metrics registry lock");
        let mut out = String::new();
        for entry in inner.iter() {
            let name = &entry.name;
            let _ = writeln!(out, "# HELP {name} {}", entry.help);
            match &entry.metric {
                Metric::Counter(c) => {
                    let _ = writeln!(out, "# TYPE {name} counter");
                    let _ = writeln!(out, "{name} {}", c.get());
                }
                Metric::Gauge(g) => {
                    let _ = writeln!(out, "# TYPE {name} gauge");
                    let _ = writeln!(out, "{name} {}", g.get());
                }
                Metric::Histogram(h) => {
                    let _ = writeln!(out, "# TYPE {name} histogram");
                    for (bound, count) in h.buckets() {
                        match bound {
                            Some(us) => {
                                let _ = writeln!(
                                    out,
                                    "{name}_bucket{{le=\"{}\"}} {count}",
                                    us as f64 / 1e6
                                );
                            }
                            None => {
                                let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {count}");
                            }
                        }
                    }
                    let _ = writeln!(out, "{name}_sum {}", h.sum_us() as f64 / 1e6);
                    let _ = writeln!(out, "{name}_count {}", h.count());
                }
            }
        }
        out
    }

    /// Renders every metric as one JSON object:
    /// `{"counters":{..},"gauges":{..},"histograms":{..}}`, histogram
    /// buckets as `[bound_us, cumulative_count]` pairs (`null` bound for
    /// `+Inf`), all times in microseconds.
    pub fn render_json(&self) -> String {
        let inner = self.inner.lock().expect("metrics registry lock");
        let mut counters = String::new();
        let mut gauges = String::new();
        let mut histograms = String::new();
        for entry in inner.iter() {
            match &entry.metric {
                Metric::Counter(c) => {
                    if !counters.is_empty() {
                        counters.push(',');
                    }
                    counters.push('"');
                    escape_into(&mut counters, &entry.name);
                    let _ = write!(counters, "\":{}", c.get());
                }
                Metric::Gauge(g) => {
                    if !gauges.is_empty() {
                        gauges.push(',');
                    }
                    gauges.push('"');
                    escape_into(&mut gauges, &entry.name);
                    let _ = write!(gauges, "\":{}", g.get());
                }
                Metric::Histogram(h) => {
                    if !histograms.is_empty() {
                        histograms.push(',');
                    }
                    histograms.push('"');
                    escape_into(&mut histograms, &entry.name);
                    let _ = write!(
                        histograms,
                        "\":{{\"count\":{},\"sum_us\":{},\"buckets\":[",
                        h.count(),
                        h.sum_us()
                    );
                    for (i, (bound, count)) in h.buckets().into_iter().enumerate() {
                        if i > 0 {
                            histograms.push(',');
                        }
                        match bound {
                            Some(us) => {
                                let _ = write!(histograms, "[{us},{count}]");
                            }
                            None => {
                                let _ = write!(histograms, "[null,{count}]");
                            }
                        }
                    }
                    histograms.push_str("]}");
                }
            }
        }
        format!("{{\"counters\":{{{counters}}},\"gauges\":{{{gauges}}},\"histograms\":{{{histograms}}}}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_register_once_and_share_state() {
        let registry = MetricsRegistry::new();
        let a = registry.counter("advocat_test_total", "a counter");
        let b = registry.counter("advocat_test_total", "a counter");
        a.add(2);
        b.inc();
        assert_eq!(a.get(), 3);
        let g = registry.gauge("advocat_test_depth", "a gauge");
        g.set(5);
        g.add(-2);
        assert_eq!(g.get(), 3);
    }

    #[test]
    fn histogram_buckets_are_cumulative() {
        let registry = MetricsRegistry::new();
        let h = registry.histogram_with("advocat_test_us", "latency", &[10, 100]);
        h.observe_us(5);
        h.observe_us(50);
        h.observe_us(500);
        assert_eq!(h.count(), 3);
        assert_eq!(h.sum_us(), 555);
        assert_eq!(h.buckets(), vec![(Some(10), 1), (Some(100), 2), (None, 3)]);
        h.observe(Duration::from_micros(7));
        assert_eq!(h.buckets()[0].1, 2);
    }

    #[test]
    fn prometheus_exposition_has_headers_and_inf_bucket() {
        let registry = MetricsRegistry::new();
        registry
            .counter("advocat_jobs_total", "Jobs executed")
            .inc();
        let h = registry.histogram_with("advocat_wait_us", "Queue wait", &[1_000_000]);
        h.observe_us(2_000_000);
        let text = registry.render_prometheus();
        assert!(text.contains("# TYPE advocat_jobs_total counter"));
        assert!(text.contains("advocat_jobs_total 1"));
        assert!(text.contains("advocat_wait_us_bucket{le=\"1\"} 0"));
        assert!(text.contains("advocat_wait_us_bucket{le=\"+Inf\"} 1"));
        assert!(text.contains("advocat_wait_us_sum 2"));
    }

    #[test]
    fn json_exposition_groups_by_kind() {
        let registry = MetricsRegistry::new();
        registry.counter("c", "counter").add(4);
        registry.gauge("g", "gauge").set(-2);
        registry
            .histogram_with("h", "histogram", &[10])
            .observe_us(3);
        let json = registry.render_json();
        assert!(json.contains("\"counters\":{\"c\":4}"));
        assert!(json.contains("\"gauges\":{\"g\":-2}"));
        assert!(json.contains("\"h\":{\"count\":1,\"sum_us\":3,\"buckets\":[[10,1],[null,1]]}"));
    }

    #[test]
    #[should_panic(expected = "another kind")]
    fn kind_mismatch_panics() {
        let registry = MetricsRegistry::new();
        registry.counter("x", "counter");
        registry.gauge("x", "gauge");
    }
}
