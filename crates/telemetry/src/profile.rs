//! Solver profiles: per-query attribution of time and conflicts to the
//! CDCL search phases, plus the restart / LBD-EMA timeline.
//!
//! A profile is collected by the SAT solver **only while telemetry is
//! enabled** (the phase timers cost two monotonic-clock reads per phase
//! entry, which the disabled path must not pay) and rides the analysis up
//! the stack: `SatSolver → SmtSolver → Analysis → Report`/`JobOutcome`,
//! where `Report::summary()` renders it.

use std::fmt;
use std::time::Duration;

/// Time and invocation count of one search phase.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PhaseCost {
    /// Wall-clock time spent in the phase.
    pub time: Duration,
    /// Number of times the phase ran.
    pub count: u64,
}

impl PhaseCost {
    /// Adds one invocation of `elapsed`.
    pub fn add(&mut self, elapsed: Duration) {
        self.time += elapsed;
        self.count += 1;
    }

    /// Merges another cost into this one.
    pub fn merge(&mut self, other: &PhaseCost) {
        self.time += other.time;
        self.count += other.count;
    }
}

/// One point of the restart timeline: the search state at the moment a
/// restart fired.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct RestartSample {
    /// Cumulative conflict count at the restart.
    pub conflicts: u64,
    /// Fast exponential moving average of recent learnt-clause LBDs.
    pub lbd_ema_fast: f64,
    /// Slow (long-run) LBD average the fast one is compared against.
    pub lbd_ema_slow: f64,
}

/// Phase-attributed cost of one query (or one analysis): where the
/// solver's time and conflicts went.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SolverProfile {
    /// Unit propagation (the BCP inner loop).
    pub propagate: PhaseCost,
    /// First-UIP conflict analysis, LBD computation included.
    pub analyze: PhaseCost,
    /// Learnt-database reductions (worst-half deletion + garbage sweeps).
    pub reduce: PhaseCost,
    /// Restarts (backtracking to level zero and EMA re-alignment).
    pub restart: PhaseCost,
    /// Conflicts attributed to this profile.  At most one more than
    /// `analyze.count`: a conflict at decision level zero ends the query
    /// without a conflict analysis.
    pub conflicts: u64,
    /// The restart timeline, in firing order.
    pub restarts: Vec<RestartSample>,
}

impl SolverProfile {
    /// Returns `true` when nothing was recorded (e.g. telemetry was
    /// disabled for the whole query).
    pub fn is_empty(&self) -> bool {
        self.propagate.count == 0
            && self.analyze.count == 0
            && self.reduce.count == 0
            && self.restart.count == 0
            && self.restarts.is_empty()
    }

    /// Merges another profile into this one (phase costs add, timelines
    /// concatenate).
    pub fn merge(&mut self, other: &SolverProfile) {
        self.propagate.merge(&other.propagate);
        self.analyze.merge(&other.analyze);
        self.reduce.merge(&other.reduce);
        self.restart.merge(&other.restart);
        self.conflicts += other.conflicts;
        self.restarts.extend_from_slice(&other.restarts);
    }

    /// Total time attributed to the four phases.
    pub fn attributed_time(&self) -> Duration {
        self.propagate.time + self.analyze.time + self.reduce.time + self.restart.time
    }
}

impl fmt::Display for SolverProfile {
    /// One line of phase attribution, as rendered into
    /// `Report::summary()`: each phase as `time/count`, then the restart
    /// count and the final LBD-EMA point of the timeline.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "propagate {:.2?}/{}, analyze {:.2?}/{}, reduce {:.2?}/{}, restart {:.2?}/{}",
            self.propagate.time,
            self.propagate.count,
            self.analyze.time,
            self.analyze.count,
            self.reduce.time,
            self.reduce.count,
            self.restart.time,
            self.restart.count,
        )?;
        if let Some(last) = self.restarts.last() {
            write!(
                f,
                "; lbd-ema at last restart {:.2} fast / {:.2} slow",
                last.lbd_ema_fast, last.lbd_ema_slow
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_profile_reports_empty() {
        assert!(SolverProfile::default().is_empty());
    }

    #[test]
    fn merge_adds_costs_and_concatenates_timelines() {
        let mut a = SolverProfile::default();
        a.propagate.add(Duration::from_micros(5));
        a.restarts.push(RestartSample {
            conflicts: 10,
            lbd_ema_fast: 3.0,
            lbd_ema_slow: 4.0,
        });
        let mut b = SolverProfile::default();
        b.propagate.add(Duration::from_micros(7));
        b.conflicts = 2;
        b.restarts.push(RestartSample {
            conflicts: 20,
            lbd_ema_fast: 2.0,
            lbd_ema_slow: 3.0,
        });
        a.merge(&b);
        assert_eq!(a.propagate.count, 2);
        assert_eq!(a.propagate.time, Duration::from_micros(12));
        assert_eq!(a.conflicts, 2);
        assert_eq!(a.restarts.len(), 2);
        assert!(!a.is_empty());
        assert_eq!(a.attributed_time(), Duration::from_micros(12));
    }

    #[test]
    fn display_names_every_phase() {
        let mut profile = SolverProfile::default();
        profile.analyze.add(Duration::from_micros(3));
        profile.restarts.push(RestartSample {
            conflicts: 1,
            lbd_ema_fast: 1.5,
            lbd_ema_slow: 2.5,
        });
        let text = profile.to_string();
        for phase in ["propagate", "analyze", "reduce", "restart", "lbd-ema"] {
            assert!(text.contains(phase), "{text}");
        }
    }
}
