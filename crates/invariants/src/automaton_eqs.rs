//! The four automaton equation families of ADVOCAT (Section 4).

use std::collections::BTreeSet;

use advocat_automata::{System, TransitionKind, XmasAutomaton};
use advocat_num::{LinearRow, Rational};
use advocat_xmas::{ColorId, ColorMap, PrimitiveId};

use crate::partition::partition_by_groups;
use crate::vars::VarRegistry;

/// Emits all invariant equations for one automaton node into `rows`.
pub(crate) fn automaton_rows(
    system: &System,
    colors: &ColorMap,
    node: PrimitiveId,
    registry: &mut VarRegistry,
    rows: &mut Vec<LinearRow>,
) {
    let Some(automaton) = system.automaton(node) else {
        return;
    };
    one_state_row(automaton, node, registry, rows);
    state_balance_rows(automaton, node, registry, rows);
    in_channel_rows(system, colors, node, automaton, registry, rows);
    out_channel_rows(system, colors, node, automaton, registry, rows);
}

/// `Σ_s A.s = 1` — every automaton is in exactly one state.
fn one_state_row(
    automaton: &XmasAutomaton,
    node: PrimitiveId,
    registry: &mut VarRegistry,
    rows: &mut Vec<LinearRow>,
) {
    let mut row = LinearRow::new();
    for state in automaton.states() {
        row.add_term(registry.automaton_state(node, state), Rational::ONE);
    }
    row.add_constant(Rational::from_integer(-1));
    rows.push(row);
}

/// Equation 1: per state, firings of incoming transitions balance firings of
/// outgoing transitions up to the state indicator and the initial state.
fn state_balance_rows(
    automaton: &XmasAutomaton,
    node: PrimitiveId,
    registry: &mut VarRegistry,
    rows: &mut Vec<LinearRow>,
) {
    let one = Rational::ONE;
    let minus_one = Rational::from_integer(-1);
    for state in automaton.states() {
        let mut row = LinearRow::new();
        for t in automaton.transitions_into(state) {
            row.add_term(registry.kappa(node, t.index() as u32), one);
        }
        for t in automaton.transitions_from(state) {
            row.add_term(registry.kappa(node, t.index() as u32), minus_one);
        }
        row.add_term(registry.automaton_state(node, state), minus_one);
        if state == automaton.initial() {
            row.add_constant(one);
        }
        rows.push(row);
    }
}

/// Equation 2: packets arriving on in-channels balance firings of the
/// transitions they can enable, per event-equivalence class.
fn in_channel_rows(
    system: &System,
    colors: &ColorMap,
    node: PrimitiveId,
    automaton: &XmasAutomaton,
    registry: &mut VarRegistry,
    rows: &mut Vec<LinearRow>,
) {
    let network = system.network();
    // Enumerate the (in_port, color) tuples that can actually occur.
    let mut tuples: Vec<(usize, ColorId)> = Vec::new();
    for port in 0..automaton.input_count() {
        if let Some(channel) = network.in_channel(node, port) {
            for color in colors.colors(channel).iter() {
                tuples.push((port, *color));
            }
        }
    }
    if tuples.is_empty() {
        return;
    }
    let tuple_index = |tuple: &(usize, ColorId)| tuples.iter().position(|t| t == tuple);

    // Group tuples accepted by the same transition.
    let mut groups: Vec<Vec<usize>> = Vec::new();
    for transition in automaton.transitions() {
        if let TransitionKind::Triggered(map) = &transition.kind {
            let members: Vec<usize> = map.keys().filter_map(&tuple_index).collect();
            if members.len() > 1 {
                groups.push(members);
            }
        }
    }
    let classes = partition_by_groups(tuples.len(), &groups);

    for class in classes {
        let mut row = LinearRow::new();
        let mut enabled: BTreeSet<usize> = BTreeSet::new();
        for &member in &class {
            let (port, color) = tuples[member];
            let channel = network
                .in_channel(node, port)
                .expect("tuple enumerated from a connected port");
            row.add_term(registry.lambda(channel, color), Rational::ONE);
            for (idx, transition) in automaton.transitions().iter().enumerate() {
                if transition.accepts(port, color) {
                    enabled.insert(idx);
                }
            }
        }
        for t in enabled {
            row.add_term(registry.kappa(node, t as u32), Rational::from_integer(-1));
        }
        rows.push(row);
    }
}

/// Equation 4 (the out-channel analogue of Equation 2): packets produced on
/// out-channels balance firings of the transitions that produce them.
///
/// A class is only emitted when every producing transition emits into the
/// class on *every* firing; otherwise the relation would be an inequality,
/// which the equality-based elimination cannot use soundly.
fn out_channel_rows(
    system: &System,
    colors: &ColorMap,
    node: PrimitiveId,
    automaton: &XmasAutomaton,
    registry: &mut VarRegistry,
    rows: &mut Vec<LinearRow>,
) {
    let network = system.network();
    let mut tuples: Vec<(usize, ColorId)> = Vec::new();
    for port in 0..automaton.output_count() {
        if let Some(channel) = network.out_channel(node, port) {
            for color in colors.colors(channel).iter() {
                tuples.push((port, *color));
            }
        }
    }
    if tuples.is_empty() {
        return;
    }
    let tuple_index = |tuple: &(usize, ColorId)| tuples.iter().position(|t| t == tuple);

    // Group tuples produced by the same transition.
    let mut groups: Vec<Vec<usize>> = Vec::new();
    for transition in automaton.transitions() {
        let members: Vec<usize> = transition
            .emissions()
            .iter()
            .filter_map(&tuple_index)
            .collect();
        if members.len() > 1 {
            groups.push(members);
        }
    }
    let classes = partition_by_groups(tuples.len(), &groups);

    for class in classes {
        let class_tuples: BTreeSet<(usize, ColorId)> = class.iter().map(|&m| tuples[m]).collect();
        // Producers: transitions that can emit some tuple of the class.
        let mut producers: BTreeSet<usize> = BTreeSet::new();
        for (idx, transition) in automaton.transitions().iter().enumerate() {
            if transition
                .emissions()
                .iter()
                .any(|e| class_tuples.contains(e))
            {
                producers.insert(idx);
            }
        }
        // Soundness check: every firing of every producer must emit into the
        // class.
        let mut always_emits = true;
        for &p in &producers {
            let transition = &automaton.transitions()[p];
            match &transition.kind {
                TransitionKind::Spontaneous(Some(e)) => {
                    if !class_tuples.contains(e) {
                        always_emits = false;
                    }
                }
                TransitionKind::Spontaneous(None) => always_emits = false,
                TransitionKind::Triggered(map) => {
                    for emission in map.values() {
                        match emission {
                            Some(e) if class_tuples.contains(e) => {}
                            _ => always_emits = false,
                        }
                    }
                }
            }
        }
        if !always_emits && !producers.is_empty() {
            continue;
        }
        let mut row = LinearRow::new();
        for (port, color) in &class_tuples {
            let channel = network
                .out_channel(node, *port)
                .expect("tuple enumerated from a connected port");
            row.add_term(registry.lambda(channel, *color), Rational::ONE);
        }
        for p in producers {
            row.add_term(registry.kappa(node, p as u32), Rational::from_integer(-1));
        }
        rows.push(row);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use advocat_automata::{derive_colors, AutomatonBuilder};
    use advocat_xmas::{Network, Packet};

    /// A single automaton that consumes `req` and emits `ack`.
    fn responder_system() -> System {
        let mut net = Network::new();
        let req = net.intern(Packet::kind("req"));
        let ack = net.intern(Packet::kind("ack"));
        let src = net.add_source("src", vec![req]);
        let agent = net.add_automaton_node("agent", 1, 1);
        let q = net.add_queue("q", 2);
        let snk = net.add_sink("snk");
        net.connect(src, 0, agent, 0);
        net.connect(agent, 0, q, 0);
        net.connect(q, 0, snk, 0);

        let mut b = AutomatonBuilder::new("agent", 1, 1);
        let idle = b.state("idle");
        let busy = b.state("busy");
        b.set_initial(idle);
        b.on_packet(idle, busy, 0, req, Some((0, ack)));
        b.on_packet(busy, idle, 0, req, None);
        let mut system = System::new(net);
        system.attach(agent, b.build().unwrap()).unwrap();
        system
    }

    #[test]
    fn automaton_rows_cover_all_four_families() {
        let system = responder_system();
        let colors = derive_colors(&system);
        let node = system.network().automaton_ids().next().unwrap();
        let mut registry = VarRegistry::new();
        let mut rows = Vec::new();
        automaton_rows(&system, &colors, node, &mut registry, &mut rows);
        // 1 (one-state) + 2 (state balance) + 1 (in-class: both transitions
        // share the single (port, req) tuple) + 1 (out-class).
        assert_eq!(rows.len(), 5);
    }

    #[test]
    fn state_balance_mentions_initial_state_constant() {
        let system = responder_system();
        let colors = derive_colors(&system);
        let node = system.network().automaton_ids().next().unwrap();
        let mut registry = VarRegistry::new();
        let mut rows = Vec::new();
        automaton_rows(&system, &colors, node, &mut registry, &mut rows);
        // Exactly one row carries the `+1` constant of the initial state and
        // one carries the `-1` of the one-state equation.
        let plus = rows
            .iter()
            .filter(|r| r.constant() == Rational::ONE)
            .count();
        let minus = rows
            .iter()
            .filter(|r| r.constant() == Rational::from_integer(-1))
            .count();
        assert_eq!(plus, 1);
        assert_eq!(minus, 1);
    }

    #[test]
    fn out_rows_skip_transitions_that_do_not_always_emit() {
        // An automaton where the same transition sometimes emits and
        // sometimes does not: the production equation must be suppressed.
        let mut net = Network::new();
        let a = net.intern(Packet::kind("a"));
        let b_pkt = net.intern(Packet::kind("b"));
        let out_pkt = net.intern(Packet::kind("out"));
        let src = net.add_source("src", vec![a, b_pkt]);
        let agent = net.add_automaton_node("agent", 1, 1);
        let snk = net.add_sink("snk");
        net.connect(src, 0, agent, 0);
        net.connect(agent, 0, snk, 0);
        let mut builder = AutomatonBuilder::new("agent", 1, 1);
        let s = builder.state("s");
        builder.on_any(s, s, [((0, a), Some((0, out_pkt))), ((0, b_pkt), None)]);
        let mut system = System::new(net);
        system.attach(agent, builder.build().unwrap()).unwrap();
        let colors = derive_colors(&system);
        let node = system.network().automaton_ids().next().unwrap();
        let mut registry = VarRegistry::new();
        let mut rows = Vec::new();
        out_channel_rows(
            &system,
            &colors,
            node,
            system.automaton(node).unwrap(),
            &mut registry,
            &mut rows,
        );
        assert!(rows.is_empty());
    }
}
