//! Human-readable rendering of derived invariants.

use std::fmt::Write as _;

use advocat_automata::System;

use crate::vars::{Invariant, InvariantRelation, InvariantVar};

/// Renders an invariant in the style used by the paper, e.g.
/// `#q0.req + #q1.ack = S.s1 + T.t0 - 1` (or with `≤` for derived
/// bounds).
///
/// Terms with positive coefficients are gathered on the left-hand side and
/// terms with negative coefficients (sign-flipped) on the right-hand side,
/// together with the constant.
pub fn format_invariant(system: &System, invariant: &Invariant) -> String {
    let network = system.network();
    let name_of = |var: &InvariantVar| -> String {
        match var {
            InvariantVar::QueueCount { queue, color } => {
                let packet = network.colors().packet(*color);
                format!("#{}.{}", network.name(*queue), packet)
            }
            InvariantVar::AutomatonState { node, state } => {
                let automaton = system.automaton(*node);
                let state_name = automaton
                    .map(|a| a.state_name(*state).to_owned())
                    .unwrap_or_else(|| format!("s{}", state.index()));
                format!("{}.{}", network.name(*node), state_name)
            }
        }
    };

    let mut lhs = String::new();
    let mut rhs = String::new();
    let append = |side: &mut String, coef: i128, name: &str| {
        if !side.is_empty() {
            side.push_str(" + ");
        }
        if coef == 1 {
            side.push_str(name);
        } else {
            let _ = write!(side, "{coef}·{name}");
        }
    };
    for (var, coef) in &invariant.terms {
        let name = name_of(var);
        if *coef > 0 {
            append(&mut lhs, *coef, &name);
        } else {
            append(&mut rhs, -coef, &name);
        }
    }
    // constant belongs to the right-hand side with its sign flipped:
    //   Σ terms + c = 0   ≡   lhs = rhs - c
    let constant = -invariant.constant;
    if lhs.is_empty() {
        lhs.push('0');
    }
    match constant.cmp(&0) {
        std::cmp::Ordering::Equal => {
            if rhs.is_empty() {
                rhs.push('0');
            }
        }
        std::cmp::Ordering::Greater => {
            if rhs.is_empty() {
                let _ = write!(rhs, "{constant}");
            } else {
                let _ = write!(rhs, " + {constant}");
            }
        }
        std::cmp::Ordering::Less => {
            if rhs.is_empty() {
                let _ = write!(rhs, "{constant}");
            } else {
                let _ = write!(rhs, " - {}", -constant);
            }
        }
    }
    let relation = match invariant.relation {
        InvariantRelation::Eq => "=",
        InvariantRelation::Le => "≤",
    };
    format!("{lhs} {relation} {rhs}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use advocat_automata::{AutomatonBuilder, System};
    use advocat_xmas::{Network, Packet};

    #[test]
    fn formatting_mentions_queue_packet_and_state_names() {
        let mut net = Network::new();
        let req = net.intern(Packet::kind("req"));
        let node = net.add_automaton_node("S", 0, 1);
        let q0 = net.add_queue("q0", 2);
        let snk = net.add_sink("snk");
        net.connect(node, 0, q0, 0);
        net.connect(q0, 0, snk, 0);
        let mut b = AutomatonBuilder::new("S", 0, 1);
        let s0 = b.state("s0");
        let s1 = b.state("s1");
        b.set_initial(s0);
        b.spontaneous_emit(s0, s1, 0, req);
        let mut system = System::new(net);
        system.attach(node, b.build().unwrap()).unwrap();

        let invariant = Invariant {
            terms: vec![
                (
                    InvariantVar::QueueCount {
                        queue: q0,
                        color: req,
                    },
                    1,
                ),
                (InvariantVar::AutomatonState { node, state: s1 }, -1),
            ],
            constant: 1,
            relation: InvariantRelation::Eq,
        };
        let text = format_invariant(&system, &invariant);
        assert_eq!(text, "#q0.req = S.s1 - 1");
        let bound = Invariant {
            relation: InvariantRelation::Le,
            ..invariant
        };
        assert_eq!(format_invariant(&system, &bound), "#q0.req ≤ S.s1 - 1");
    }

    #[test]
    fn zero_sides_render_as_zero() {
        let net = Network::new();
        let system = System::new(net);
        let invariant = Invariant {
            terms: vec![],
            constant: 0,
            relation: InvariantRelation::Eq,
        };
        assert_eq!(format_invariant(&system, &invariant), "0 = 0");
    }
}
