//! Interface contracts: invariants projected onto a tile's boundary.
//!
//! Compositional verification certifies each tile of a partitioned fabric
//! separately, then reasons about the whole fabric over *contract
//! variables* only — the occupancies of the cut queues.  The bridge is the
//! [`InterfaceContract`]: every invariant derived inside a (closed) tile
//! is **soundly weakened** onto the tile's boundary queues, producing
//! linear occupancy bounds that mention nothing but cut-queue totals,
//! plus per-class flow summaries of the interface itself.
//!
//! The projection only ever *weakens*: interior terms with nonnegative
//! coefficients are dropped (occupancies and state indicators are
//! nonnegative, so the left-hand side can only shrink), interior terms
//! with negative coefficients are replaced by their most negative value
//! (−coefficient × capacity for queue counts, −coefficient for state
//! indicators), and per-color boundary terms are mapped onto whole-queue
//! totals only in the direction that preserves the bound.  Every
//! projected row is therefore implied by the tile invariant it came from:
//! re-asserting it — in a neighbouring tile's encoding (the checked
//! import of `advocat-deadlock`'s `check_contract`) or in the boundary
//! composition check — can never exclude a reachable state.

use std::collections::BTreeMap;
use std::fmt;

use advocat_automata::System;
use advocat_xmas::ColorMap;

use crate::derive::InvariantSet;
use crate::vars::{InvariantRelation, InvariantVar};

/// One boundary queue of a tile, as the projection sees it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ContractPort {
    /// The cut queue's name in the tile's (and the flat) build.
    pub queue: String,
    /// Message class of the port's VC plane.
    pub class: usize,
    /// `true` when packets enter the tile through this port.
    pub ingress: bool,
}

/// A projected invariant row: `Σ coefᵢ · occ(qᵢ) + constant ≤ 0` over
/// boundary-queue *total* occupancies.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct ContractRow {
    /// `(queue name, coefficient)` terms, sorted by queue name.
    pub terms: Vec<(String, i128)>,
    /// Constant offset (the relation is `… + constant ≤ 0`).
    pub constant: i128,
}

/// Per-class summary of an interface's flow capacity.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FlowSummary {
    /// The message class.
    pub class: usize,
    /// Number of ingress ports of the class.
    pub inbound: usize,
    /// Number of egress ports of the class.
    pub outbound: usize,
}

/// A tile's boundary-level summary: occupancy bounds over its cut queues
/// plus per-class in/out flow summaries.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct InterfaceContract {
    /// The tile the contract describes.
    pub tile: String,
    /// Sound occupancy bounds over the boundary queues.
    pub rows: Vec<ContractRow>,
    /// Per-class port counts of the interface.
    pub flows: Vec<FlowSummary>,
}

impl fmt::Display for InterfaceContract {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "contract[{}]: {} rows over {} ports",
            self.tile,
            self.rows.len(),
            self.flows
                .iter()
                .map(|s| s.inbound + s.outbound)
                .sum::<usize>()
        )?;
        for s in &self.flows {
            writeln!(
                f,
                "  class {}: {} in / {} out",
                s.class, s.inbound, s.outbound
            )?;
        }
        for row in &self.rows {
            let mut first = true;
            write!(f, "  ")?;
            for (queue, coef) in &row.terms {
                if first {
                    write!(f, "{coef}·occ({queue})")?;
                    first = false;
                } else if *coef >= 0 {
                    write!(f, " + {coef}·occ({queue})")?;
                } else {
                    write!(f, " - {}·occ({queue})", -coef)?;
                }
            }
            writeln!(f, " ≤ {}", -row.constant)?;
        }
        Ok(())
    }
}

/// Projects a tile's derived invariants onto its boundary ports.
///
/// `system` and `colors` must be the tile's closed build and its color
/// derivation (the projection needs each boundary queue's full color set
/// to map per-color counts onto totals), `capacity` the uniform queue
/// capacity the contract is stated at.  Rows that weaken to a tautology
/// are dropped; the result is deduplicated.
pub fn project_interface(
    system: &System,
    colors: &ColorMap,
    invariants: &InvariantSet,
    tile: &str,
    ports: &[ContractPort],
    capacity: usize,
) -> InterfaceContract {
    let network = system.network();
    // Resolve the boundary queues once: name → (primitive, #colors).
    let mut boundary: BTreeMap<advocat_xmas::PrimitiveId, (String, usize)> = BTreeMap::new();
    for id in network.queue_ids() {
        let name = network.name(id);
        if ports.iter().any(|p| p.queue == name) {
            let color_count = network
                .out_channel(id, 0)
                .map_or(0, |ch| colors.colors(ch).len());
            boundary.insert(id, (name.to_owned(), color_count));
        }
    }

    let mut rows: Vec<ContractRow> = Vec::new();
    for invariant in invariants.iter() {
        let le_rows: Vec<i128> = match invariant.relation {
            InvariantRelation::Le => vec![1],
            // An equality is both bounds at once.
            InvariantRelation::Eq => vec![1, -1],
        };
        for sign in le_rows {
            if let Some(row) = project_row(invariant, sign, &boundary, capacity) {
                rows.push(row);
            }
        }
    }
    rows.sort();
    rows.dedup();

    let mut flows: BTreeMap<usize, FlowSummary> = BTreeMap::new();
    for port in ports {
        let entry = flows.entry(port.class).or_insert(FlowSummary {
            class: port.class,
            inbound: 0,
            outbound: 0,
        });
        if port.ingress {
            entry.inbound += 1;
        } else {
            entry.outbound += 1;
        }
    }

    InterfaceContract {
        tile: tile.to_owned(),
        rows,
        flows: flows.into_values().collect(),
    }
}

/// Projects one `sign`-scaled invariant (`sign · (Σ terms + constant) ≤ 0`)
/// onto the boundary, or `None` when the weakened row is vacuous.
fn project_row(
    invariant: &crate::vars::Invariant,
    sign: i128,
    boundary: &BTreeMap<advocat_xmas::PrimitiveId, (String, usize)>,
    capacity: usize,
) -> Option<ContractRow> {
    let mut constant = sign * invariant.constant;
    // Per boundary queue: color → coefficient.
    let mut per_queue: BTreeMap<advocat_xmas::PrimitiveId, BTreeMap<advocat_xmas::ColorId, i128>> =
        BTreeMap::new();
    for (var, coef) in &invariant.terms {
        let coef = sign * coef;
        match var {
            InvariantVar::QueueCount { queue, color } if boundary.contains_key(queue) => {
                *per_queue
                    .entry(*queue)
                    .or_default()
                    .entry(*color)
                    .or_insert(0) += coef;
            }
            // Interior terms: nonnegative coefficients are dropped (the
            // left-hand side only shrinks); negative ones are replaced by
            // their most negative value.
            InvariantVar::QueueCount { .. } => {
                if coef < 0 {
                    constant += coef * capacity as i128;
                }
            }
            InvariantVar::AutomatonState { .. } => {
                if coef < 0 {
                    constant += coef;
                }
            }
        }
    }
    if per_queue.is_empty() {
        return None;
    }

    let mut terms: Vec<(String, i128)> = Vec::new();
    for (queue, by_color) in per_queue {
        let (name, color_count) = &boundary[&queue];
        let mut total = 0i128;
        let uniform_cover = |group: &[i128]| {
            !group.is_empty() && group.len() == *color_count && group.iter().all(|c| *c == group[0])
        };
        let positives: Vec<i128> = by_color.values().copied().filter(|c| *c > 0).collect();
        let negatives: Vec<i128> = by_color.values().copied().filter(|c| *c < 0).collect();
        // A sign-uniform group covering every color of the queue maps
        // *exactly* onto the total.  A partial positive group is dropped
        // (a further sound weakening); a partial negative per-color count
        // is bounded below by the negative total (`#q.d ≤ occ(q)`), so
        // each term swaps to `coef · occ(q)` and the row stays implied.
        if uniform_cover(&positives) {
            total += positives[0];
        }
        if uniform_cover(&negatives) {
            total += negatives[0];
        } else {
            total += negatives.iter().sum::<i128>();
        }
        if total != 0 {
            terms.push((name.clone(), total));
        }
    }

    // Vacuous: with no positive coefficient the left-hand side is at most
    // `constant`, so a nonpositive constant makes the row trivially true.
    if terms.iter().all(|(_, c)| *c <= 0) && constant <= 0 {
        return None;
    }
    terms.sort();
    Some(ContractRow { terms, constant })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::derive::derive_invariants;
    use advocat_automata::derive_colors;
    use advocat_xmas::{Network, Packet};

    /// A two-queue chain: src → qb (boundary) → qi (interior) → sink,
    /// with hand-written invariants exercising every projection rule.
    fn chain() -> (System, ColorMap) {
        let mut net = Network::new();
        let a = net.intern(Packet::kind("a"));
        let b = net.intern(Packet::kind("b"));
        let src = net.add_source("src", vec![a, b]);
        let qb = net.add_queue("qb", 2);
        let qi = net.add_queue("qi", 2);
        let snk = net.add_sink("snk");
        net.connect(src, 0, qb, 0);
        net.connect(qb, 0, qi, 0);
        net.connect(qi, 0, snk, 0);
        let system = System::new(net);
        let colors = derive_colors(&system);
        (system, colors)
    }

    fn ports() -> Vec<ContractPort> {
        vec![ContractPort {
            queue: "qb".into(),
            class: 0,
            ingress: true,
        }]
    }

    fn invariant(
        terms: Vec<(InvariantVar, i128)>,
        constant: i128,
        relation: InvariantRelation,
    ) -> InvariantSet {
        InvariantSet::from_invariants(vec![crate::vars::Invariant {
            terms,
            constant,
            relation,
        }])
    }

    fn queue_color(system: &System, queue: &str, kind: &str) -> (InvariantVar, InvariantVar) {
        let net = system.network();
        let q = net
            .primitive_ids()
            .find(|id| net.name(*id) == queue)
            .unwrap();
        let color = |k: &str| net.colors().lookup(&Packet::kind(k)).unwrap();
        (
            InvariantVar::QueueCount {
                queue: q,
                color: color(kind),
            },
            InvariantVar::QueueCount {
                queue: q,
                color: color(if kind == "a" { "b" } else { "a" }),
            },
        )
    }

    #[test]
    fn uniform_full_cover_projects_to_the_total() {
        let (system, colors) = chain();
        // #qb.a + #qb.b − 1 ≤ 0  →  occ(qb) ≤ 1.
        let (qa, qb_color) = queue_color(&system, "qb", "a");
        let set = invariant(vec![(qa, 1), (qb_color, 1)], -1, InvariantRelation::Le);
        let contract = project_interface(&system, &colors, &set, "t", &ports(), 2);
        assert_eq!(contract.rows.len(), 1);
        assert_eq!(contract.rows[0].terms, vec![("qb".to_string(), 1)]);
        assert_eq!(contract.rows[0].constant, -1);
    }

    #[test]
    fn partial_positive_cover_is_dropped() {
        let (system, colors) = chain();
        // #qb.a alone cannot bound the total: the row weakens away.
        let (qa, _) = queue_color(&system, "qb", "a");
        let set = invariant(vec![(qa, 1)], -1, InvariantRelation::Le);
        let contract = project_interface(&system, &colors, &set, "t", &ports(), 2);
        assert!(contract.rows.is_empty());
    }

    #[test]
    fn interior_terms_weaken_by_their_extremes() {
        let (system, colors) = chain();
        // occ(qb) − #qi.a − 2 ≤ 0 at capacity 3 → occ(qb) ≤ 5: the
        // interior count is replaced by its capacity.
        let (qba, qbb) = queue_color(&system, "qb", "a");
        let (qia, _) = queue_color(&system, "qi", "a");
        let set = invariant(
            vec![(qba, 1), (qbb, 1), (qia, -1)],
            -2,
            InvariantRelation::Le,
        );
        let contract = project_interface(&system, &colors, &set, "t", &ports(), 3);
        assert_eq!(contract.rows.len(), 1);
        assert_eq!(contract.rows[0].constant, -5);
    }

    #[test]
    fn equalities_yield_both_directions() {
        let (system, colors) = chain();
        // #qb.a + #qb.b − 1 = 0 → occ(qb) ≤ 1 and −occ(qb) + 1 ≤ 0.
        let (qa, qb_color) = queue_color(&system, "qb", "a");
        let set = invariant(vec![(qa, 1), (qb_color, 1)], -1, InvariantRelation::Eq);
        let contract = project_interface(&system, &colors, &set, "t", &ports(), 2);
        assert_eq!(contract.rows.len(), 2);
        assert!(contract.rows.iter().any(|r| r.terms[0].1 == 1));
        assert!(contract
            .rows
            .iter()
            .any(|r| r.terms[0].1 == -1 && r.constant == 1));
    }

    #[test]
    fn derived_invariants_project_without_panicking() {
        let (system, colors) = chain();
        let derived = derive_invariants(&system, &colors);
        let contract = project_interface(&system, &colors, &derived, "chain", &ports(), 2);
        assert_eq!(contract.tile, "chain");
        assert_eq!(contract.flows.len(), 1);
        assert_eq!(contract.flows[0].inbound, 1);
    }
}
