//! Automatic derivation of cross-layer invariants.
//!
//! This crate implements Section 4 of the ADVOCAT paper: it extends the flow
//! method of Chatterjee & Kishinevsky — which derives inductive invariants
//! for xMAS fabrics from per-primitive conservation equations over flow
//! counters `λ` — with four equation families for XMAS automata:
//!
//! 1. every automaton is in exactly one state: `Σ_s A.s = 1`,
//! 2. per state, firings of incoming transitions balance firings of
//!    outgoing transitions up to the state indicator (Equation 1 of the
//!    paper),
//! 3. packets arriving on in-channels balance firings of the transitions
//!    they can enable, grouped by event-equivalence classes (Equation 2),
//! 4. packets produced on out-channels balance firings of the transitions
//!    that can produce them, grouped by production-equivalence classes.
//!
//! All equations are collected as sparse linear rows; Gaussian elimination
//! (from `advocat-num`) sweeps away the `λ` (channel-flow) and `κ`
//! (transition-firing) variables, leaving *cross-layer invariants*: linear
//! equalities over queue occupancies `#q.d` and automaton state indicators
//! `A.s`.  These are exactly the invariants the deadlock checker conjoins
//! to the block/idle equations to rule out unreachable deadlock candidates.
//!
//! # Examples
//!
//! For the running example of the paper (two automata joined by two queues)
//! the derived invariants include `#q0 + #q1 = S.s1 + T.t0 − 1`, which is
//! the invariant displayed in Section 1 of the paper.  See
//! `tests/` of this crate and the `advocat` facade for end-to-end usage.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod automaton_eqs;
mod derive;
mod display;
mod flow;
mod interface;
mod partition;
mod vars;

pub use derive::{derive_invariants, InvariantSet};
pub use display::format_invariant;
pub use interface::{project_interface, ContractPort, ContractRow, FlowSummary, InterfaceContract};
pub use vars::{Invariant, InvariantRelation, InvariantVar};
