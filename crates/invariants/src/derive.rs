//! The invariant-derivation driver.

use advocat_automata::System;
use advocat_num::{eliminate_with_bounds, LinearRow};
use advocat_xmas::ColorMap;

use crate::automaton_eqs::automaton_rows;
use crate::flow::primitive_flow_rows;
use crate::vars::{Invariant, InvariantRelation, InvariantVar, VarRegistry};

/// The set of cross-layer invariants derived for a system.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct InvariantSet {
    invariants: Vec<Invariant>,
}

impl InvariantSet {
    /// Wraps an explicit list of invariants (hand-written sets for tests
    /// and contract tooling; derived sets come from [`derive_invariants`]).
    pub fn from_invariants(invariants: Vec<Invariant>) -> Self {
        InvariantSet { invariants }
    }

    /// Returns the invariants.
    pub fn invariants(&self) -> &[Invariant] {
        &self.invariants
    }

    /// Returns the number of invariants.
    pub fn len(&self) -> usize {
        self.invariants.len()
    }

    /// Returns the number of conservation equalities in the set.
    pub fn num_equalities(&self) -> usize {
        self.invariants.iter().filter(|i| i.is_equality()).count()
    }

    /// Returns the number of `≤` bounds in the set (see
    /// [`InvariantRelation::Le`]).
    pub fn num_bounds(&self) -> usize {
        self.len() - self.num_equalities()
    }

    /// Returns `true` when no invariants were derived.
    pub fn is_empty(&self) -> bool {
        self.invariants.is_empty()
    }

    /// Iterates over the invariants.
    pub fn iter(&self) -> impl Iterator<Item = &Invariant> + '_ {
        self.invariants.iter()
    }
}

impl IntoIterator for InvariantSet {
    type Item = Invariant;
    type IntoIter = std::vec::IntoIter<Invariant>;

    fn into_iter(self) -> Self::IntoIter {
        self.invariants.into_iter()
    }
}

/// Derives the cross-layer invariants of a system.
///
/// Collects the flow equations of every basic primitive and the four
/// automaton equation families, then eliminates all `λ` (channel flow) and
/// `κ` (transition firing) variables by Gaussian elimination.  The rows
/// that survive relate only queue occupancies `#q.d` and automaton state
/// indicators `A.s` — the invariants of Section 4 of the paper.
///
/// Because the eliminated variables are *counters* (transfers through a
/// channel, firings of a transition — never negative), every pivot
/// definition the equality elimination discards also implies an upper
/// bound over the kept variables: `e = −(K + c)` with `e ≥ 0` gives
/// `K + c ≤ 0`.  These survive as `≤` invariants
/// ([`InvariantRelation::Le`]) next to the equalities — the strengthening
/// that matters once shared-state protocol automata (MESI-style counting
/// directories) make parts of the flow system underdetermined.  Bounds
/// that nonnegativity of the kept variables already implies are dropped.
///
/// `colors` must be the `T`-derivation of the same system (see
/// [`advocat_automata::derive_colors`]).
///
/// # Examples
///
/// See the crate-level documentation and the `running_example` integration
/// test; for the paper's Fig. 1 system this derives
/// `#q0 + #q1 = S.s1 + T.t0 − 1`.
pub fn derive_invariants(system: &System, colors: &ColorMap) -> InvariantSet {
    let network = system.network();
    let mut registry = VarRegistry::new();
    let mut rows: Vec<LinearRow> = Vec::new();

    for id in network.primitive_ids() {
        if network.primitive(id).is_automaton() {
            automaton_rows(system, colors, id, &mut registry, &mut rows);
        } else {
            primitive_flow_rows(network, colors, id, &mut registry, &mut rows);
        }
    }

    // Every eliminated variable is a λ or κ counter, hence nonnegative.
    let result = eliminate_with_bounds(
        rows,
        |v| registry.is_eliminated(v),
        |v| registry.is_eliminated(v),
    );

    let mut invariants = Vec::new();
    for row in result.equalities {
        if let Some(invariant) = row_to_invariant(&row, &registry, InvariantRelation::Eq) {
            invariants.push(invariant);
        }
    }
    for row in result.bounds {
        let Some(invariant) = row_to_invariant(&row, &registry, InvariantRelation::Le) else {
            continue;
        };
        // Kept variables are nonnegative too (occupancies and 0/1 state
        // indicators): a bound whose coefficients are all ≤ 0 with a
        // nonpositive constant is vacuous.
        if invariant.terms.iter().all(|(_, c)| *c <= 0) && invariant.constant <= 0 {
            continue;
        }
        invariants.push(invariant);
    }
    InvariantSet { invariants }
}

fn row_to_invariant(
    row: &LinearRow,
    registry: &VarRegistry,
    relation: InvariantRelation,
) -> Option<Invariant> {
    let mut terms: Vec<(InvariantVar, i128)> = Vec::with_capacity(row.len());
    for (var, coef) in row.iter() {
        let kept = registry.kept(var)?;
        let coef = coef.to_integer()?;
        terms.push((kept, coef));
    }
    let constant = row.constant().to_integer()?;
    Some(Invariant {
        terms,
        constant,
        relation,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use advocat_automata::{derive_colors, AutomatonBuilder};
    use advocat_xmas::{Network, Packet, PrimitiveId};

    /// Builds the running example of the paper (Fig. 1).
    fn running_example() -> (System, PrimitiveId, PrimitiveId, PrimitiveId, PrimitiveId) {
        let mut net = Network::new();
        let req = net.intern(Packet::kind("req"));
        let ack = net.intern(Packet::kind("ack"));
        let s_node = net.add_automaton_node("S", 1, 1);
        let t_node = net.add_automaton_node("T", 1, 1);
        let q0 = net.add_queue("q0", 2);
        let q1 = net.add_queue("q1", 2);
        net.connect(s_node, 0, q0, 0);
        net.connect(q0, 0, t_node, 0);
        net.connect(t_node, 0, q1, 0);
        net.connect(q1, 0, s_node, 0);

        let mut sb = AutomatonBuilder::new("S", 1, 1);
        let s0 = sb.state("s0");
        let s1 = sb.state("s1");
        sb.set_initial(s0);
        sb.spontaneous_emit(s0, s1, 0, req);
        sb.on_packet(s1, s0, 0, ack, None);

        let mut tb = AutomatonBuilder::new("T", 1, 1);
        let t0 = tb.state("t0");
        let t1 = tb.state("t1");
        tb.set_initial(t0);
        tb.on_packet(t0, t1, 0, req, None);
        tb.spontaneous_emit(t1, t0, 0, ack);

        let mut system = System::new(net);
        system.attach(s_node, sb.build().unwrap()).unwrap();
        system.attach(t_node, tb.build().unwrap()).unwrap();
        (system, s_node, t_node, q0, q1)
    }

    #[test]
    fn running_example_reproduces_the_paper_invariant() {
        let (system, s_node, t_node, q0, q1) = running_example();
        let colors = derive_colors(&system);
        let set = derive_invariants(&system, &colors);
        assert!(!set.is_empty());

        let s = system.automaton(s_node).unwrap();
        let t = system.automaton(t_node).unwrap();
        let s1 = s.state_by_name("s1").unwrap();
        let t0 = t.state_by_name("t0").unwrap();

        // The paper's invariant:  S.s1 + T.t0 - 1 = #q0 + #q1.
        // Check it semantically: every derived invariant must hold both in
        // the initial state (s0, t0, queues empty) and in the state
        // (s1, t0, one request in q0); and at least one derived invariant
        // must *fail* in the unreachable configuration (s0, t1, empty).
        let eval = |set: &InvariantSet,
                    in_s1: bool,
                    in_t0: bool,
                    q0_req: i128,
                    q1_ack: i128|
         -> Vec<bool> {
            set.iter()
                .map(|inv| {
                    inv.holds(
                        |queue, _color| {
                            if queue == q0 {
                                q0_req
                            } else if queue == q1 {
                                q1_ack
                            } else {
                                0
                            }
                        },
                        |node, state| {
                            if node == s_node {
                                (state == s1) == in_s1
                            } else if node == t_node {
                                (state == t0) == in_t0
                            } else {
                                false
                            }
                        },
                    )
                })
                .collect()
        };

        // Initial configuration (s0, t0), queues empty: all invariants hold.
        assert!(eval(&set, false, true, 0, 0).iter().all(|b| *b));
        // Reachable configuration (s1, t0) with one request en route.
        assert!(eval(&set, true, true, 1, 0).iter().all(|b| *b));
        // Reachable configuration (s1, t1) with empty queues (request
        // consumed, acknowledgment not yet emitted).
        assert!(eval(&set, true, false, 0, 0).iter().all(|b| *b));
        // Reachable configuration (s1, t0) with the acknowledgment en route.
        assert!(eval(&set, true, true, 0, 1).iter().all(|b| *b));
        // Unreachable configuration (s0, t1) with empty queues violates at
        // least one invariant (the paper's: LHS would be -1).
        assert!(eval(&set, false, false, 0, 0).iter().any(|b| !*b));
        // Unreachable configuration with both queues full violates too.
        assert!(eval(&set, true, true, 2, 2).iter().any(|b| !*b));
    }

    /// A credit loop with *lossy* token return: a worker consumes a credit
    /// and sends a request; the responder either returns the credit or
    /// consumes it silently.  No conservation **equality** over the two
    /// queues exists (the lost credits are counted by an eliminated,
    /// underdetermined firing counter), but its relaxation survives as the
    /// bound `#credits + #flight ≤ initial credits` — the invariant class
    /// [`derive_invariants`] now harvests from counter nonnegativity.
    fn lossy_credit_loop() -> (System, PrimitiveId, PrimitiveId) {
        let mut net = Network::new();
        let tok = net.intern(Packet::kind("tok"));
        let req = net.intern(Packet::kind("req"));
        let worker = net.add_automaton_node("worker", 1, 1);
        let responder = net.add_automaton_node("responder", 1, 1);
        let credits = net.add_queue_with_init("credits", 2, vec![tok, tok]);
        let flight = net.add_queue("flight", 2);
        net.connect(credits, 0, worker, 0);
        net.connect(worker, 0, flight, 0);
        net.connect(flight, 0, responder, 0);
        net.connect(responder, 0, credits, 0);

        let mut wb = AutomatonBuilder::new("worker", 1, 1);
        let w = wb.state("w");
        wb.on_packet(w, w, 0, tok, Some((0, req)));

        let mut rb = AutomatonBuilder::new("responder", 1, 1);
        let r = rb.state("r");
        // Return the credit … or lose it.
        rb.on_packet(r, r, 0, req, Some((0, tok)));
        rb.on_packet(r, r, 0, req, None);

        let mut system = System::new(net);
        system.attach(worker, wb.build().unwrap()).unwrap();
        system.attach(responder, rb.build().unwrap()).unwrap();
        system.validate().unwrap();
        (system, credits, flight)
    }

    #[test]
    fn lossy_credit_loops_yield_bound_invariants() {
        let (system, credits, flight) = lossy_credit_loop();
        let colors = derive_colors(&system);
        let set = derive_invariants(&system, &colors);
        assert!(set.num_bounds() >= 1, "a credit bound must be harvested");
        // The bound #credits.tok + #flight.req ≤ 2 (or an equivalent form
        // mentioning both queues) holds with ≤, not =: find a bound over
        // the two queues and check it semantically.
        let bound = set
            .iter()
            .find(|inv| {
                !inv.is_equality() && inv.mentions_queue(credits) && inv.mentions_queue(flight)
            })
            .expect("bound over both queues");
        // Full credits, empty flight: holds (with equality).
        assert!(bound.holds(|q, _| if q == credits { 2 } else { 0 }, |_, _| true));
        // One credit lost forever: strict inequality, still holds.
        assert!(bound.holds(|q, _| if q == credits { 1 } else { 0 }, |_, _| true));
        // Credits conjured out of thin air: violated.
        assert!(!bound.holds(|q, _| if q == credits { 2 } else { 1 }, |_, _| true));
    }

    #[test]
    fn lossless_credit_loops_keep_the_conservation_equality() {
        // The same loop with a *lossless* return still derives the exact
        // equality (and the bounds pass must not weaken or duplicate it).
        let mut net = Network::new();
        let tok = net.intern(Packet::kind("tok"));
        let req = net.intern(Packet::kind("req"));
        let worker = net.add_automaton_node("worker", 1, 1);
        let responder = net.add_automaton_node("responder", 1, 1);
        let credits = net.add_queue_with_init("credits", 2, vec![tok, tok]);
        let flight = net.add_queue("flight", 2);
        net.connect(credits, 0, worker, 0);
        net.connect(worker, 0, flight, 0);
        net.connect(flight, 0, responder, 0);
        net.connect(responder, 0, credits, 0);
        let mut wb = AutomatonBuilder::new("worker", 1, 1);
        let w = wb.state("w");
        wb.on_packet(w, w, 0, tok, Some((0, req)));
        let mut rb = AutomatonBuilder::new("responder", 1, 1);
        let r = rb.state("r");
        rb.on_packet(r, r, 0, req, Some((0, tok)));
        let mut system = System::new(net);
        system.attach(worker, wb.build().unwrap()).unwrap();
        system.attach(responder, rb.build().unwrap()).unwrap();
        let colors = derive_colors(&system);
        let set = derive_invariants(&system, &colors);
        let equality = set
            .iter()
            .find(|inv| {
                inv.is_equality() && inv.mentions_queue(credits) && inv.mentions_queue(flight)
            })
            .expect("credit conservation equality");
        assert!(!equality.holds(|q, _| if q == credits { 1 } else { 0 }, |_, _| true));
        assert!(equality.holds(|q, _| if q == credits { 2 } else { 0 }, |_, _| true));
    }

    #[test]
    fn invariant_set_iteration_and_len_agree() {
        let (system, ..) = running_example();
        let colors = derive_colors(&system);
        let set = derive_invariants(&system, &colors);
        assert_eq!(set.iter().count(), set.len());
        let collected: Vec<_> = set.clone().into_iter().collect();
        assert_eq!(collected.len(), set.len());
    }
}
