//! Flow-conservation equations for the basic xMAS primitives
//! (Chatterjee & Kishinevsky).
//!
//! For every primitive, the number of transfers of each color through its
//! input channels is related to the number of transfers through its output
//! channels (and, for queues, to the current occupancy).  All equations are
//! stated as `Σ aᵢ·xᵢ + c = 0` rows over the [`crate::vars::VarRegistry`].

use advocat_num::LinearRow;
use advocat_num::Rational;
use advocat_xmas::{ColorMap, Network, Primitive, PrimitiveId};

use crate::vars::VarRegistry;

/// Emits the flow equations of one basic primitive into `rows`.
pub(crate) fn primitive_flow_rows(
    network: &Network,
    colors: &ColorMap,
    id: PrimitiveId,
    registry: &mut VarRegistry,
    rows: &mut Vec<LinearRow>,
) {
    let one = Rational::ONE;
    let minus_one = Rational::from_integer(-1);
    match network.primitive(id) {
        Primitive::Queue { init, .. } => {
            let (Some(inp), Some(out)) = (network.in_channel(id, 0), network.out_channel(id, 0))
            else {
                return;
            };
            // λ_in.d + init_count(d) = λ_out.d + #q.d   for every d that can
            // ever be in the queue (incoming colors plus initial content).
            let mut all_colors: Vec<_> = colors.colors(out).iter().copied().collect();
            for c in colors.colors(inp).iter() {
                if !all_colors.contains(c) {
                    all_colors.push(*c);
                }
            }
            for d in all_colors {
                let mut row = LinearRow::new();
                if colors.contains(inp, d) {
                    row.add_term(registry.lambda(inp, d), one);
                }
                let init_count = init.iter().filter(|c| **c == d).count() as i128;
                row.add_constant(Rational::from_integer(init_count));
                row.add_term(registry.lambda(out, d), minus_one);
                row.add_term(registry.queue_count(id, d), minus_one);
                rows.push(row);
            }
        }
        Primitive::Function { .. } => {
            let (Some(inp), Some(out)) = (network.in_channel(id, 0), network.out_channel(id, 0))
            else {
                return;
            };
            // λ_out.d' = Σ_{d: f(d) = d'} λ_in.d
            let prim = network.primitive(id);
            for d_out in colors.colors(out).iter() {
                let mut row = LinearRow::new();
                row.add_term(registry.lambda(out, *d_out), one);
                for d_in in colors.colors(inp).iter() {
                    if prim.function_apply(*d_in) == Some(*d_out) {
                        row.add_term(registry.lambda(inp, *d_in), minus_one);
                    }
                }
                rows.push(row);
            }
        }
        Primitive::Fork => {
            let Some(inp) = network.in_channel(id, 0) else {
                return;
            };
            for port in 0..2 {
                let Some(out) = network.out_channel(id, port) else {
                    continue;
                };
                for d in colors.colors(inp).iter() {
                    let mut row = LinearRow::new();
                    row.add_term(registry.lambda(inp, *d), one);
                    row.add_term(registry.lambda(out, *d), minus_one);
                    rows.push(row);
                }
            }
        }
        Primitive::Join => {
            let (Some(a), Some(b), Some(out)) = (
                network.in_channel(id, 0),
                network.in_channel(id, 1),
                network.out_channel(id, 0),
            ) else {
                return;
            };
            // Output data comes from input 0: per-color conservation there.
            for d in colors.colors(a).iter() {
                let mut row = LinearRow::new();
                row.add_term(registry.lambda(a, *d), one);
                row.add_term(registry.lambda(out, *d), minus_one);
                rows.push(row);
            }
            // Both inputs fire together: total flows are equal.
            let mut row = LinearRow::new();
            for d in colors.colors(a).iter() {
                row.add_term(registry.lambda(a, *d), one);
            }
            for d in colors.colors(b).iter() {
                row.add_term(registry.lambda(b, *d), minus_one);
            }
            rows.push(row);
        }
        Primitive::Switch { .. } => {
            let Some(inp) = network.in_channel(id, 0) else {
                return;
            };
            let prim = network.primitive(id);
            for d in colors.colors(inp).iter() {
                let port = prim.switch_route(*d).expect("switch primitive");
                let Some(out) = network.out_channel(id, port) else {
                    continue;
                };
                let mut row = LinearRow::new();
                row.add_term(registry.lambda(inp, *d), one);
                row.add_term(registry.lambda(out, *d), minus_one);
                rows.push(row);
            }
        }
        Primitive::Merge { num_inputs } => {
            let Some(out) = network.out_channel(id, 0) else {
                return;
            };
            for d in colors.colors(out).iter() {
                let mut row = LinearRow::new();
                row.add_term(registry.lambda(out, *d), one);
                for port in 0..*num_inputs {
                    if let Some(inp) = network.in_channel(id, port) {
                        if colors.contains(inp, *d) {
                            row.add_term(registry.lambda(inp, *d), minus_one);
                        }
                    }
                }
                rows.push(row);
            }
        }
        // Sources and sinks impose no conservation law; automaton nodes are
        // handled by `automaton_eqs`.
        Primitive::Source { .. } | Primitive::Sink { .. } | Primitive::Automaton { .. } => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use advocat_num::eliminate;
    use advocat_xmas::{propagate_basic_fixpoint, Network, Packet};

    #[test]
    fn queue_equation_relates_flows_and_occupancy() {
        let mut net = Network::new();
        let c = net.intern(Packet::kind("c"));
        let src = net.add_source("src", vec![c]);
        let q = net.add_queue("q", 2);
        let snk = net.add_sink("snk");
        net.connect(src, 0, q, 0);
        net.connect(q, 0, snk, 0);
        let mut colors = ColorMap::empty(&net);
        propagate_basic_fixpoint(&net, &mut colors);

        let mut registry = VarRegistry::new();
        let mut rows = Vec::new();
        for id in net.primitive_ids() {
            primitive_flow_rows(&net, &colors, id, &mut registry, &mut rows);
        }
        // One queue equation: λ_in - λ_out - #q = 0.
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].len(), 3);
    }

    #[test]
    fn fork_merge_pipeline_yields_queue_balance_invariant() {
        // src -> fork -> (q_a, q_b) -> merge -> sink gives, after
        // eliminating λ, the invariant #q_a = #q_b.
        let mut net = Network::new();
        let c = net.intern(Packet::kind("c"));
        let src = net.add_source("src", vec![c]);
        let fork = net.add_fork("fork");
        let qa = net.add_queue("qa", 4);
        let qb = net.add_queue("qb", 4);
        let ja = net.add_sink("sink_a");
        let jb = net.add_sink("sink_b");
        net.connect(src, 0, fork, 0);
        net.connect(fork, 0, qa, 0);
        net.connect(fork, 1, qb, 0);
        net.connect(qa, 0, ja, 0);
        net.connect(qb, 0, jb, 0);
        let mut colors = ColorMap::empty(&net);
        propagate_basic_fixpoint(&net, &mut colors);

        let mut registry = VarRegistry::new();
        let mut rows = Vec::new();
        for id in net.primitive_ids() {
            primitive_flow_rows(&net, &colors, id, &mut registry, &mut rows);
        }
        let kept = eliminate(rows, |v| registry.is_eliminated(v));
        // There is no invariant purely over the queue occupancies here: the
        // sinks let packets drain independently, so occupancies are related
        // to the (eliminated) sink-side flows and nothing survives.
        assert!(kept.is_empty());
    }

    #[test]
    fn fork_with_sealed_outputs_forces_equal_occupancy() {
        // When both fork branches end in dead sinks the only transfers are
        // into the queues, so eliminating λ yields #qa - #qb = 0.
        let mut net = Network::new();
        let c = net.intern(Packet::kind("c"));
        let src = net.add_source("src", vec![c]);
        let fork = net.add_fork("fork");
        let qa = net.add_queue("qa", 4);
        let qb = net.add_queue("qb", 4);
        let da = net.add_dead_sink("dead_a");
        let db = net.add_dead_sink("dead_b");
        net.connect(src, 0, fork, 0);
        net.connect(fork, 0, qa, 0);
        net.connect(fork, 1, qb, 0);
        net.connect(qa, 0, da, 0);
        net.connect(qb, 0, db, 0);
        let mut colors = ColorMap::empty(&net);
        propagate_basic_fixpoint(&net, &mut colors);

        let mut registry = VarRegistry::new();
        let mut rows = Vec::new();
        for id in net.primitive_ids() {
            primitive_flow_rows(&net, &colors, id, &mut registry, &mut rows);
        }
        // A dead sink never transfers, so its λ is zero.
        for qid in [qa, qb] {
            let out = net.out_channel(qid, 0).unwrap();
            let mut row = LinearRow::new();
            row.add_term(registry.lambda(out, c), Rational::ONE);
            rows.push(row);
        }
        let kept = eliminate(rows, |v| registry.is_eliminated(v));
        assert_eq!(kept.len(), 1);
        let inv = &kept[0];
        assert_eq!(inv.len(), 2);
        assert!(inv.constant().is_zero());
    }
}
