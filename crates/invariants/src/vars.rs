//! Variable bookkeeping for invariant derivation.

use std::collections::HashMap;

use advocat_automata::StateId;
use advocat_xmas::{ChannelId, ColorId, PrimitiveId};

/// A variable that may appear in a derived invariant.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum InvariantVar {
    /// `#q.d` — the number of packets of color `color` in queue `queue`.
    QueueCount {
        /// The queue primitive.
        queue: PrimitiveId,
        /// The packet color.
        color: ColorId,
    },
    /// `A.s` — 1 when automaton node `node` is in state `state`, else 0.
    AutomatonState {
        /// The automaton node.
        node: PrimitiveId,
        /// The state.
        state: StateId,
    },
}

/// The relation a derived invariant asserts between its linear form and
/// zero.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum InvariantRelation {
    /// `Σ coefᵢ · varᵢ + constant = 0` — a conservation equality.
    #[default]
    Eq,
    /// `Σ coefᵢ · varᵢ + constant ≤ 0` — an upper bound harvested from the
    /// nonnegativity of an eliminated flow or firing counter.
    Le,
}

/// A derived cross-layer invariant: the linear relation
/// `Σ coefᵢ · varᵢ + constant {=, ≤} 0`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Invariant {
    /// Terms of the linear form.
    pub terms: Vec<(InvariantVar, i128)>,
    /// Constant offset.
    pub constant: i128,
    /// Whether the form is asserted equal to zero or at most zero.
    pub relation: InvariantRelation,
}

impl Invariant {
    /// Evaluates the invariant under an assignment of queue occupancies and
    /// automaton states, returning `true` when the relation holds.
    ///
    /// Used by the explorer-backed tests: every derived invariant must hold
    /// in every reachable state of the system.
    pub fn holds<FQ, FA>(&self, mut queue_count: FQ, mut in_state: FA) -> bool
    where
        FQ: FnMut(PrimitiveId, ColorId) -> i128,
        FA: FnMut(PrimitiveId, StateId) -> bool,
    {
        let mut acc = self.constant;
        for (var, coef) in &self.terms {
            let value = match var {
                InvariantVar::QueueCount { queue, color } => queue_count(*queue, *color),
                InvariantVar::AutomatonState { node, state } => {
                    if in_state(*node, *state) {
                        1
                    } else {
                        0
                    }
                }
            };
            acc += coef * value;
        }
        match self.relation {
            InvariantRelation::Eq => acc == 0,
            InvariantRelation::Le => acc <= 0,
        }
    }

    /// Returns `true` for conservation equalities.
    pub fn is_equality(&self) -> bool {
        self.relation == InvariantRelation::Eq
    }

    /// Returns `true` when the invariant mentions the given queue.
    pub fn mentions_queue(&self, queue: PrimitiveId) -> bool {
        self.terms
            .iter()
            .any(|(v, _)| matches!(v, InvariantVar::QueueCount { queue: q, .. } if *q == queue))
    }

    /// Returns `true` when the invariant mentions the given automaton node.
    pub fn mentions_automaton(&self, node: PrimitiveId) -> bool {
        self.terms
            .iter()
            .any(|(v, _)| matches!(v, InvariantVar::AutomatonState { node: n, .. } if *n == node))
    }
}

/// Internal classification of the raw variables of the equation system.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub(crate) enum RawVar {
    /// `λ_c.d` — number of transfers of color `d` through channel `c`.
    Lambda(ChannelId, ColorId),
    /// `κ_t` — number of firings of transition `t` of automaton node `n`.
    Kappa(PrimitiveId, u32),
    /// A variable kept in the final invariants.
    Kept(InvariantVar),
}

/// Dense numbering of [`RawVar`]s used by the sparse linear rows.
#[derive(Debug, Default)]
pub(crate) struct VarRegistry {
    vars: Vec<RawVar>,
    index: HashMap<RawVar, usize>,
}

impl VarRegistry {
    pub(crate) fn new() -> Self {
        VarRegistry::default()
    }

    pub(crate) fn intern(&mut self, var: RawVar) -> usize {
        if let Some(&idx) = self.index.get(&var) {
            return idx;
        }
        let idx = self.vars.len();
        self.index.insert(var, idx);
        self.vars.push(var);
        idx
    }

    pub(crate) fn lambda(&mut self, channel: ChannelId, color: ColorId) -> usize {
        self.intern(RawVar::Lambda(channel, color))
    }

    pub(crate) fn kappa(&mut self, node: PrimitiveId, transition: u32) -> usize {
        self.intern(RawVar::Kappa(node, transition))
    }

    pub(crate) fn queue_count(&mut self, queue: PrimitiveId, color: ColorId) -> usize {
        self.intern(RawVar::Kept(InvariantVar::QueueCount { queue, color }))
    }

    pub(crate) fn automaton_state(&mut self, node: PrimitiveId, state: StateId) -> usize {
        self.intern(RawVar::Kept(InvariantVar::AutomatonState { node, state }))
    }

    pub(crate) fn is_eliminated(&self, idx: usize) -> bool {
        !matches!(self.vars[idx], RawVar::Kept(_))
    }

    pub(crate) fn kept(&self, idx: usize) -> Option<InvariantVar> {
        match self.vars[idx] {
            RawVar::Kept(v) => Some(v),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_ids() -> (PrimitiveId, ChannelId, ColorId, StateId) {
        // Fabricate ids through public constructors of the owning crates.
        use advocat_automata::AutomatonBuilder;
        use advocat_xmas::{Network, Packet};
        let mut net = Network::new();
        let color = net.intern(Packet::kind("c"));
        let q = net.add_queue("q", 1);
        let src = net.add_source("s", vec![color]);
        let ch = net.connect(src, 0, q, 0);
        let mut b = AutomatonBuilder::new("a", 0, 0);
        let st = b.state("only");
        let _ = b.build().unwrap();
        (q, ch, color, st)
    }

    #[test]
    fn registry_interning_is_stable() {
        let (q, ch, color, st) = sample_ids();
        let mut reg = VarRegistry::new();
        let l1 = reg.lambda(ch, color);
        let l2 = reg.lambda(ch, color);
        let k = reg.kappa(q, 0);
        let qc = reg.queue_count(q, color);
        let a = reg.automaton_state(q, st);
        assert_eq!(l1, l2);
        assert!(reg.is_eliminated(l1));
        assert!(reg.is_eliminated(k));
        assert!(!reg.is_eliminated(qc));
        assert_eq!(
            reg.kept(a),
            Some(InvariantVar::AutomatonState { node: q, state: st })
        );
        assert_eq!(reg.kept(l1), None);
    }

    #[test]
    fn invariant_holds_checks_the_equality() {
        let (q, _ch, color, st) = sample_ids();
        // #q.c - A.s = 0  (queue holds a packet exactly when in state st)
        let inv = Invariant {
            terms: vec![
                (InvariantVar::QueueCount { queue: q, color }, 1),
                (InvariantVar::AutomatonState { node: q, state: st }, -1),
            ],
            constant: 0,
            relation: InvariantRelation::Eq,
        };
        assert!(inv.holds(|_, _| 1, |_, _| true));
        assert!(inv.holds(|_, _| 0, |_, _| false));
        assert!(!inv.holds(|_, _| 1, |_, _| false));
        assert!(inv.mentions_queue(q));
        assert!(inv.mentions_automaton(q));
    }

    #[test]
    fn bound_invariants_hold_at_or_below_zero() {
        let (q, _ch, color, st) = sample_ids();
        // #q.c ≤ A.s  (the queue can only be occupied in state st).
        let inv = Invariant {
            terms: vec![
                (InvariantVar::QueueCount { queue: q, color }, 1),
                (InvariantVar::AutomatonState { node: q, state: st }, -1),
            ],
            constant: 0,
            relation: InvariantRelation::Le,
        };
        assert!(!inv.is_equality());
        assert!(inv.holds(|_, _| 0, |_, _| false));
        assert!(inv.holds(|_, _| 0, |_, _| true));
        assert!(inv.holds(|_, _| 1, |_, _| true));
        assert!(!inv.holds(|_, _| 1, |_, _| false));
        assert!(!inv.holds(|_, _| 2, |_, _| true));
    }
}
