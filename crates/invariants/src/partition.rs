//! Event/production equivalence classes of automaton channel tuples.
//!
//! Equation 2 of the paper groups the `(in_channel, color)` tuples of an
//! automaton into the finest partition such that two tuples enabling the
//! same transition land in the same class; the analogous partition over
//! `(out_channel, color)` tuples groups tuples that can be produced by the
//! same transition.  Both are computed with a small union–find.

use std::collections::BTreeMap;

/// A small union–find over `usize` elements.
#[derive(Clone, Debug)]
pub(crate) struct UnionFind {
    parent: Vec<usize>,
}

impl UnionFind {
    pub(crate) fn new(size: usize) -> Self {
        UnionFind {
            parent: (0..size).collect(),
        }
    }

    pub(crate) fn find(&mut self, x: usize) -> usize {
        if self.parent[x] != x {
            let root = self.find(self.parent[x]);
            self.parent[x] = root;
        }
        self.parent[x]
    }

    pub(crate) fn union(&mut self, a: usize, b: usize) {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra != rb {
            self.parent[ra] = rb;
        }
    }

    /// Returns the classes as lists of member indices, keyed by root.
    pub(crate) fn classes(&mut self) -> Vec<Vec<usize>> {
        let mut map: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        for x in 0..self.parent.len() {
            let root = self.find(x);
            map.entry(root).or_default().push(x);
        }
        map.into_values().collect()
    }
}

/// Computes the finest partition of `elements.len()` items such that all
/// items sharing a group (as listed in `groups`) are in the same class.
pub(crate) fn partition_by_groups(num_elements: usize, groups: &[Vec<usize>]) -> Vec<Vec<usize>> {
    let mut uf = UnionFind::new(num_elements);
    for group in groups {
        for window in group.windows(2) {
            uf.union(window[0], window[1]);
        }
    }
    uf.classes()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn union_find_merges_transitively() {
        let mut uf = UnionFind::new(5);
        uf.union(0, 1);
        uf.union(1, 2);
        assert_eq!(uf.find(0), uf.find(2));
        assert_ne!(uf.find(0), uf.find(3));
        let classes = uf.classes();
        assert_eq!(classes.len(), 3);
    }

    #[test]
    fn partition_by_groups_produces_finest_partition() {
        // Elements 0..4; groups {0,1} and {2,3} leave 4 alone.
        let classes = partition_by_groups(5, &[vec![0, 1], vec![2, 3]]);
        assert_eq!(classes.len(), 3);
        assert!(classes.iter().any(|c| c.len() == 1 && c[0] == 4));
    }

    #[test]
    fn overlapping_groups_collapse_into_one_class() {
        let classes = partition_by_groups(4, &[vec![0, 1], vec![1, 2], vec![2, 3]]);
        assert_eq!(classes.len(), 1);
        assert_eq!(classes[0].len(), 4);
    }

    #[test]
    fn empty_groups_leave_singletons() {
        let classes = partition_by_groups(3, &[]);
        assert_eq!(classes.len(), 3);
    }
}
