//! Shared helpers for the ADVOCAT benchmark harness.
//!
//! Each Criterion bench target under `benches/` regenerates one table or
//! figure of the paper's evaluation: it first prints the regenerated
//! rows/series (computed once), then measures representative
//! configurations with Criterion.  The printed output is what
//! `EXPERIMENTS.md` records as "measured".

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use advocat::prelude::*;

/// Builds the abstract-MI mesh used throughout the evaluation section.
pub fn abstract_mesh(width: u32, height: u32, queue_size: usize, dir: (u32, u32)) -> System {
    build_mesh(
        &MeshConfig::new(width, height, queue_size)
            .with_directory(dir.0, dir.1)
            .with_protocol(ProtocolKind::AbstractMi),
    )
    .expect("mesh configuration is valid")
}

/// Builds the full-MI mesh of the "MI Protocol" paragraph.
pub fn full_mi_mesh(width: u32, height: u32, queue_size: usize, dir: (u32, u32)) -> System {
    build_mesh(
        &MeshConfig::new(width, height, queue_size)
            .with_directory(dir.0, dir.1)
            .with_protocol(ProtocolKind::FullMi),
    )
    .expect("mesh configuration is valid")
}

/// Runs the minimal-queue-size search used by the Fig. 4 and VC-ablation
/// benches.
pub fn minimal_size(
    width: u32,
    height: u32,
    dir: (u32, u32),
    vcs: bool,
    max: usize,
) -> Option<usize> {
    let config = MeshConfig::new(width, height, 1)
        .with_directory(dir.0, dir.1)
        .with_protocol(ProtocolKind::AbstractMi)
        .with_virtual_channels(vcs);
    let system = build_mesh_for_sweep(&config, max).expect("valid mesh configuration");
    QueryEngine::on(system, 2..=max)
        .minimal_capacity(&Query::new())
        .minimal_queue_size
}

/// Formats a verdict for the printed tables.
pub fn verdict_label(report: &Report) -> &'static str {
    if report.is_deadlock_free() {
        "deadlock-free"
    } else {
        "deadlock candidate"
    }
}
