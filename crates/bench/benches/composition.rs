//! E11 — compositional verification: a certified 8×8 mesh vs the flat
//! encoding.
//!
//! The flat SMT encoding of an 8×8 directory mesh is effectively
//! unreachable — the composed flow is the only way to an answer.  This
//! harness composes the 8×8 (one tile per node, 64 tiles), certifies it
//! through the warm-engine pool and *asserts* the headline numbers of the
//! composition layer:
//!
//! - at most 4 distinct tile fingerprints (corner / edge / interior /
//!   directory-hosting structural classes) cover all 64 tiles,
//! - more than 80% of the tile certifications are warm hits,
//! - the flat encoding, given a 5× time budget of the composed
//!   end-to-end check, either fails to complete or is ≥5× slower.

use std::sync::mpsc;
use std::sync::Arc;
use std::time::{Duration, Instant};

use advocat::prelude::*;
use criterion::{criterion_group, Criterion};

fn fabric_8x8() -> FabricConfig {
    // Directory at (1,1): an interior node, so the mesh keeps the plain
    // interior class and the cut has exactly four structural classes.
    FabricConfig::new(Topology::mesh(8, 8).expect("8x8 mesh"), 2).with_directory(9)
}

/// Composes and checks the 8×8, returning (end-to-end wall clock, stats).
fn composed_check() -> (Duration, ComposeStats, Report) {
    let config = fabric_8x8();
    let partition = Arc::new(Partition::per_node(&config.topology));
    let options = ComposeOptions::new(2..=2).with_flat_fallback(0);
    let start = Instant::now();
    let mut composition = QueryEngine::compose(config, partition, options).expect("tiles build");
    let report = composition.check(&Query::new().capacity(2));
    (start.elapsed(), composition.stats(), report)
}

fn print_comparison() {
    advocat_telemetry::info!("== E11: composed 8x8 certification vs the flat encoding ==");

    let (composed_elapsed, stats, report) = composed_check();
    let total = stats.engines_built + stats.warm_hits;
    let warm_rate = stats.warm_hits as f64 / total as f64;
    advocat_telemetry::info!(
        "composed: {} tiles via {} fingerprints, {}/{} warm ({:.0}%), \
         {} boundary ports, end-to-end {:.2?}",
        stats.tiles,
        stats.distinct_classes,
        stats.warm_hits,
        total,
        warm_rate * 100.0,
        stats.boundary_ports,
        composed_elapsed,
    );
    advocat_telemetry::info!("composed verdict: {}", report.summary());
    assert_eq!(stats.tiles, 64);
    assert!(
        stats.distinct_classes <= 4,
        "an 8x8 per-node cut must certify via at most 4 distinct tile \
         fingerprints, got {}",
        stats.distinct_classes
    );
    assert_eq!(stats.engines_built as usize, stats.distinct_classes);
    assert!(
        warm_rate > 0.8,
        "warm tile-certification rate must exceed 80%, got {:.0}%",
        warm_rate * 100.0
    );

    // The flat encoding gets a 5x budget of the composed end-to-end time
    // (with a small floor so scheduler noise cannot flake the run).
    let budget = (composed_elapsed * 5).max(Duration::from_secs(2));
    let (sender, receiver) = mpsc::channel();
    std::thread::spawn(move || {
        let start = Instant::now();
        let config = fabric_8x8();
        let verdict = QueryEngine::for_fabric(&config, 2..=2)
            .map(|mut engine| engine.check(&Query::new().capacity(2)).is_deadlock_free());
        // The receiver may be long gone when flat finally finishes.
        let _ = sender.send((start.elapsed(), verdict));
    });
    match receiver.recv_timeout(budget) {
        Err(_) => advocat_telemetry::info!(
            "flat:     did not complete within the 5x budget ({budget:.2?}) — \
             the 8x8 flat encoding is out of reach"
        ),
        Ok((flat_elapsed, verdict)) => {
            advocat_telemetry::info!(
                "flat:     completed in {flat_elapsed:.2?} (verdict free = {verdict:?})"
            );
            assert!(
                flat_elapsed >= composed_elapsed * 5,
                "flat completed faster than 5x the composed check \
                 ({flat_elapsed:.2?} vs {composed_elapsed:.2?} composed)"
            );
        }
    }
    advocat_telemetry::info!("");
}

fn bench(c: &mut Criterion) {
    // Steady-state re-checks: the session keeps its tile engines warm, so
    // a repeated query re-certifies all 64 tiles warm and re-runs the
    // boundary check.
    let config = fabric_8x8();
    let partition = Arc::new(Partition::per_node(&config.topology));
    let options = ComposeOptions::new(2..=2).with_flat_fallback(0);
    let mut composition = QueryEngine::compose(config, partition, options).expect("tiles build");
    composition.check(&Query::new().capacity(2));
    let mut group = c.benchmark_group("composition");
    group.sample_size(5);
    group.bench_function("recheck_8x8_warm", |b| {
        b.iter(|| {
            composition
                .check(&Query::new().capacity(2))
                .is_deadlock_free()
        })
    });
}

criterion_group!(benches, bench);

fn main() {
    print_comparison();
    benches();
    criterion::Criterion::default()
        .configure_from_args()
        .final_summary();
}
