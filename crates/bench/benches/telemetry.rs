//! Telemetry overhead: the disabled handle must be (near-)free.
//!
//! PR 8 threads telemetry probes through the CDCL hot loop, the engine
//! and the service.  Their cost budget is ≤2% on the `long_session`
//! workload with tracing off — every disabled probe is one branch on an
//! `Option` discriminant, no clock read, no formatting.  This bench runs
//! the bounded long-session sweep three ways and reports each layer's
//! price:
//!
//! * **disabled** — the default `Telemetry::disabled()` handle (what the
//!   overhead claim is about),
//! * **profiled** — `Telemetry::null()`: solver profiles and metrics on,
//!   trace records discarded before formatting,
//! * **traced** — a ring sink: full JSON-lines records, the most
//!   expensive configuration.

use advocat::prelude::*;
use criterion::{criterion_group, Criterion};
use std::time::{Duration, Instant};

const SIZES: std::ops::RangeInclusive<usize> = 1..=32;

fn sweep(telemetry: Telemetry) -> (Vec<bool>, SessionStats) {
    let mesh = MeshConfig::new(2, 2, 1).with_directory(1, 1);
    let system = build_mesh_for_sweep(&mesh, *SIZES.end()).expect("valid mesh");
    let config = CheckConfig {
        solver: SolverConfig {
            telemetry,
            ..SolverConfig::default()
        },
        ..CheckConfig::default()
    };
    let mut engine = QueryEngine::with_config(system, config, SIZES);
    let verdicts = SIZES
        .map(|size| {
            engine
                .check(&Query::new().capacity(size))
                .is_deadlock_free()
        })
        .collect();
    (verdicts, engine.stats())
}

/// Median wall time of `runs` sweeps under `make`'s handle.
fn median(runs: usize, make: impl Fn() -> Telemetry) -> Duration {
    let mut times: Vec<Duration> = (0..runs)
        .map(|_| {
            let start = Instant::now();
            let _ = sweep(make());
            start.elapsed()
        })
        .collect();
    times.sort_unstable();
    times[times.len() / 2]
}

fn print_comparison() {
    advocat_telemetry::info!("== telemetry overhead on the long-session sweep ==");
    advocat_telemetry::info!("   (2x2 directory mesh, queue sizes 1..=32 through one session)");

    // Verdicts must not depend on observability.
    let (disabled_verdicts, _) = sweep(Telemetry::disabled());
    let (profiled_verdicts, _) = sweep(Telemetry::null());
    let (traced_verdicts, _) = sweep(Telemetry::ring(1 << 20).0);
    assert_eq!(disabled_verdicts, profiled_verdicts);
    assert_eq!(disabled_verdicts, traced_verdicts);

    let runs = 5;
    let disabled = median(runs, Telemetry::disabled);
    let profiled = median(runs, Telemetry::null);
    let traced = median(runs, || Telemetry::ring(1 << 20).0);
    let pct = |t: Duration| (t.as_secs_f64() / disabled.as_secs_f64() - 1.0) * 100.0;
    advocat_telemetry::info!("median of {runs} sweeps:");
    advocat_telemetry::info!(
        "  disabled  {disabled:>10.2?}   (baseline; budget: <= 2% over untelemetered code)"
    );
    advocat_telemetry::info!(
        "  profiled  {profiled:>10.2?}   ({:+.1}% — solver profiles + metrics, no trace)",
        pct(profiled)
    );
    advocat_telemetry::info!(
        "  traced    {traced:>10.2?}   ({:+.1}% — full JSON-lines ring trace)",
        pct(traced)
    );
    advocat_telemetry::info!("");
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("telemetry");
    group.sample_size(10);
    group.bench_function("long_session_telemetry_disabled", |b| {
        b.iter(|| sweep(Telemetry::disabled()))
    });
    group.bench_function("long_session_with_profiles", |b| {
        b.iter(|| sweep(Telemetry::null()))
    });
    group.bench_function("long_session_with_ring_trace", |b| {
        b.iter(|| sweep(Telemetry::ring(1 << 20).0))
    });
    group.finish();
}

criterion_group!(benches, bench);

fn main() {
    print_comparison();
    benches();
    criterion::Criterion::default()
        .configure_from_args()
        .final_summary();
}
