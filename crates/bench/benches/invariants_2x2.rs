//! E4 — the invariants of Section 5, "Experimental Results".
//!
//! Regenerates the cross-layer invariants derived for the 2×2 mesh with
//! the directory at the lower-right node (the paper prints invariants (3)
//! and (4) for cache (0,0) and reports 6 protocol invariants for the three
//! caches), and measures the invariant-derivation step in isolation.

use advocat::prelude::*;
use advocat_bench::abstract_mesh;
use criterion::{criterion_group, Criterion};

fn print_table() {
    advocat_telemetry::info!(
        "== E4: derived cross-layer invariants, 2×2 mesh, directory at (1,1) =="
    );
    let system = abstract_mesh(2, 2, 2, (1, 1));
    let report = QueryEngine::structural(system.clone()).check(&Query::new());
    for line in report.invariant_text() {
        advocat_telemetry::info!("  {line}");
    }
    advocat_telemetry::info!(
        "  total: {} invariants ({} mention both queues and automaton states)",
        report.invariants().len(),
        report
            .invariants()
            .iter()
            .filter(|inv| {
                let q = inv.terms.iter().any(|(v, _)| {
                    matches!(v, advocat::invariants::InvariantVar::QueueCount { .. })
                });
                let s = inv.terms.iter().any(|(v, _)| {
                    matches!(v, advocat::invariants::InvariantVar::AutomatonState { .. })
                });
                q && s
            })
            .count()
    );
    advocat_telemetry::info!("");
}

fn bench(c: &mut Criterion) {
    let system = abstract_mesh(2, 2, 2, (1, 1));
    let colors = derive_colors(&system);
    c.bench_function("invariants_2x2/t_derivation", |b| {
        b.iter(|| derive_colors(&system).total_pairs())
    });
    c.bench_function("invariants_2x2/derivation", |b| {
        b.iter(|| derive_invariants(&system, &colors).len())
    });
}

criterion_group!(benches, bench);

fn main() {
    print_table();
    benches();
    criterion::Criterion::default()
        .configure_from_args()
        .final_summary();
}
