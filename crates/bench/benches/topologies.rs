//! Cross-topology verification sweeps: the same protocol, the same
//! session-backed capacity sweep, different fabrics.
//!
//! The topology engine makes the scenario space two-dimensional (topology
//! × capacity).  This bench prints, per topology family, the minimal
//! deadlock-free queue size and the accumulated SAT effort of one
//! incremental session answering the whole sweep, then measures
//! representative fabrics with Criterion.

use advocat::prelude::*;
use criterion::{criterion_group, Criterion};

const SIZES: std::ops::RangeInclusive<usize> = 1..=6;

fn fabrics() -> Vec<FabricConfig> {
    vec![
        FabricConfig::new(Topology::mesh(2, 2).expect("mesh"), 1).with_directory(3),
        FabricConfig::new(Topology::torus(2, 2).expect("torus"), 1).with_directory(3),
        FabricConfig::new(Topology::torus(3, 3).expect("torus"), 1).with_directory(4),
        FabricConfig::new(Topology::ring(4).expect("ring"), 1).with_directory(1),
        FabricConfig::new(Topology::ring(6).expect("ring"), 1).with_directory(2),
        FabricConfig::new(Topology::fat_tree(2, 2).expect("fat tree"), 1).with_directory(3),
    ]
}

/// One incremental session sweeping every capacity on one fabric.
fn session_sweep(config: &FabricConfig) -> (Option<usize>, u64) {
    let mut engine = QueryEngine::for_fabric(config, SIZES).expect("audited fabric builds");
    let mut sizes = SIZES;
    let min_free = sizes.find(|cap| {
        engine
            .check(&Query::new().capacity(*cap))
            .is_deadlock_free()
    });
    (min_free, engine.stats().sat_effort())
}

fn print_comparison() {
    advocat_telemetry::info!("== one session sweep (sizes {SIZES:?}) per topology family ==");
    advocat_telemetry::info!(
        "{:<12} {:<8} {:<7} {:<9} {:>12}",
        "topology",
        "agents",
        "planes",
        "min free",
        "SAT effort"
    );
    for config in fabrics() {
        let (min_free, effort) = session_sweep(&config);
        advocat_telemetry::info!(
            "{:<12} {:<8} {:<7} {:<9} {:>12}",
            config.topology.name(),
            config.topology.num_terminals(),
            config.planes(),
            min_free.map(|s| s.to_string()).unwrap_or("> 6".to_owned()),
            effort
        );
    }
    advocat_telemetry::info!("");
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("topologies");
    group.sample_size(10);
    for config in fabrics() {
        let name = format!("session_sweep_{}", config.topology.name());
        group.bench_function(&name, |b| b.iter(|| session_sweep(&config)));
    }
    group.finish();
}

criterion_group!(benches, bench);

fn main() {
    print_comparison();
    benches();
    criterion::Criterion::default()
        .configure_from_args()
        .final_summary();
}
