//! Incremental sessions vs. cold starts on the queue-sizing sweep.
//!
//! The sweep behind Figure 4 asks the same deadlock question at many queue
//! capacities.  The cold path rebuilds the mesh, re-derives colors and
//! invariants, re-encodes the deadlock equations and cold-starts the SAT
//! solver for every capacity; a [`QueryEngine`] does all of that
//! once and answers every capacity from one persistent solver.  This bench
//! prints the accumulated SAT effort (conflicts + propagations) of both
//! paths and measures their wall-clock time.

use advocat::prelude::*;
use criterion::{criterion_group, Criterion};

const SIZES: std::ops::RangeInclusive<usize> = 1..=16;

fn mesh_config() -> MeshConfig {
    MeshConfig::new(2, 2, 1).with_directory(1, 1)
}

/// Sixteen independent cold verifications (the seed's behaviour).
fn cold_sweep() -> (Vec<bool>, u64) {
    let config = mesh_config();
    let mut verdicts = Vec::new();
    let mut effort = 0u64;
    for size in SIZES {
        let system = build_mesh(&config.with_queue_size(size)).expect("valid mesh");
        let report = QueryEngine::structural(system).check(&Query::new());
        let stats = report.analysis().stats;
        effort += stats.sat_conflicts + stats.sat_propagations;
        verdicts.push(report.is_deadlock_free());
    }
    (verdicts, effort)
}

/// The same sweep through one incremental session.
fn session_sweep() -> (Vec<bool>, u64) {
    let config = mesh_config();
    let system = build_mesh_for_sweep(&config, *SIZES.end()).expect("valid mesh");
    let mut engine = QueryEngine::on(system, SIZES);
    let verdicts: Vec<bool> = SIZES
        .map(|size| {
            engine
                .check(&Query::new().capacity(size))
                .is_deadlock_free()
        })
        .collect();
    (verdicts, engine.stats().sat_effort())
}

fn print_comparison() {
    advocat_telemetry::info!(
        "== incremental sessions vs. cold starts (2x2 directory mesh, sizes 1..=16) =="
    );
    let (cold_verdicts, cold_effort) = cold_sweep();
    let (session_verdicts, session_effort) = session_sweep();
    assert_eq!(cold_verdicts, session_verdicts, "paths must agree");
    advocat_telemetry::info!("cold starts:   {cold_effort:>9} SAT conflicts+propagations");
    advocat_telemetry::info!("session:       {session_effort:>9} SAT conflicts+propagations");
    advocat_telemetry::info!(
        "effort ratio:  {:.2}x less work with the session",
        cold_effort as f64 / session_effort.max(1) as f64
    );

    // The production entry point bisects instead of sweeping linearly.
    let system = build_mesh_for_sweep(&mesh_config(), *SIZES.end()).expect("valid mesh");
    let result = QueryEngine::on(system, SIZES).minimal_capacity(&Query::new());
    advocat_telemetry::info!(
        "binary search: minimal size {:?} found with {} probes: {:?}",
        result.minimal_queue_size,
        result.evaluations.len(),
        result.evaluations
    );
    advocat_telemetry::info!("");
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("incremental_sizing");
    group.sample_size(10);
    group.bench_function("cold_sweep_sizes_1_to_16", |b| b.iter(cold_sweep));
    group.bench_function("session_sweep_sizes_1_to_16", |b| b.iter(session_sweep));
    group.bench_function("session_binary_search", |b| {
        b.iter(|| {
            let system = build_mesh_for_sweep(&mesh_config(), *SIZES.end()).expect("valid mesh");
            QueryEngine::on(system, SIZES)
                .minimal_capacity(&Query::new())
                .minimal_queue_size
        })
    });
    group.finish();
}

criterion_group!(benches, bench);

fn main() {
    print_comparison();
    benches();
    criterion::Criterion::default()
        .configure_from_args()
        .final_summary();
}
