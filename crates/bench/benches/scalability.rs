//! E6 — scalability and model-size statistics (Section 5).
//!
//! The paper reports, for a 6×6 mesh with VCs and queue size 30, a total
//! verification effort of 67 s on a 2 GHz i7, a model of 2844 primitives /
//! 36 automata / 432 queues, and that verification time does not depend on
//! the queue size.  The harness regenerates (a) the model-size row for the
//! 6×6 fabric built by this reproduction, (b) a verification-time series
//! over growing meshes, and (c) a queue-size series showing how *this*
//! implementation's time varies with queue depth.

use std::time::Instant;

use advocat::prelude::*;
use advocat_bench::abstract_mesh;
use criterion::{criterion_group, Criterion};

fn print_table() {
    advocat_telemetry::info!("== E6: model sizes and verification-time scaling ==");

    // (a) Model size of the 6×6 fabric with VCs (building is cheap).
    let big = build_mesh(
        &MeshConfig::new(6, 6, 30)
            .with_directory(3, 3)
            .with_virtual_channels(true),
    )
    .expect("6x6 mesh builds");
    let stats = big.stats();
    advocat_telemetry::info!(
        "  6x6 mesh with VCs: {} primitives, {} automata, {} queues, {} channels \
         (paper: 2844 primitives, 36 automata, 432 queues)",
        stats.primitives,
        stats.automata,
        stats.queues,
        stats.channels
    );

    // (b) Verification time vs mesh size (fixed queue size).
    advocat_telemetry::info!("  verification time vs mesh size (queue size 3):");
    for (w, h) in [(2u32, 2u32), (3, 2), (2, 3)] {
        let system = abstract_mesh(w, h, 3, (w - 1, h - 1));
        let start = Instant::now();
        let report = QueryEngine::structural(system.clone()).check(&Query::new());
        advocat_telemetry::info!(
            "    {w}x{h}: {:?} ({}, {} refinements)",
            start.elapsed(),
            if report.is_deadlock_free() {
                "free"
            } else {
                "deadlock"
            },
            report.analysis().stats.refinements
        );
    }

    // (c) Verification time vs queue size (fixed 2×2 mesh).
    advocat_telemetry::info!("  verification time vs queue size (2x2 mesh):");
    for queue_size in [3usize, 6, 12] {
        let system = abstract_mesh(2, 2, queue_size, (1, 1));
        let start = Instant::now();
        let report = QueryEngine::structural(system.clone()).check(&Query::new());
        advocat_telemetry::info!(
            "    queue size {queue_size}: {:?} ({} int vars, {} bool vars)",
            start.elapsed(),
            report.analysis().stats.int_vars,
            report.analysis().stats.bool_vars
        );
    }
    advocat_telemetry::info!("");
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("scalability");
    group.sample_size(10);
    for (w, h) in [(2u32, 2u32), (3, 2)] {
        let system = abstract_mesh(w, h, 3, (w - 1, h - 1));
        group.bench_function(format!("verify_{w}x{h}_qs3"), |b| {
            b.iter(|| {
                QueryEngine::structural(system.clone())
                    .check(&Query::new())
                    .is_deadlock_free()
            })
        });
    }
    let big = MeshConfig::new(6, 6, 30)
        .with_directory(3, 3)
        .with_virtual_channels(true);
    group.bench_function("build_6x6_mesh_with_vcs", |b| {
        b.iter(|| build_mesh(&big).unwrap().stats().primitives)
    });
    group.finish();
}

criterion_group!(benches, bench);

fn main() {
    print_table();
    benches();
    criterion::Criterion::default()
        .configure_from_args()
        .final_summary();
}
