//! E5 — the virtual-channel ablation (Section 5).
//!
//! The paper shows that virtual channels do not remove the cross-layer
//! deadlock but do reduce the minimal deadlock-free queue size (6×6 mesh:
//! 58 without VCs vs > 29 with VCs).  The harness reproduces the shape on
//! meshes small enough for the bundled solver: for each mesh, the deadlock
//! still exists at the smallest queue size even with VCs, and the minimal
//! deadlock-free size with VCs is at most the size without them.

use advocat::prelude::*;
use advocat_bench::minimal_size;
use criterion::{criterion_group, Criterion};

fn print_table() {
    advocat_telemetry::info!("== E5: virtual-channel ablation ==");
    advocat_telemetry::info!(
        "{:<8} {:<12} {:<16} {:<16}",
        "mesh",
        "directory",
        "min size (no VC)",
        "min size (VCs)"
    );
    let cases = [(2u32, 2u32, (1u32, 1u32)), (2, 2, (0, 0)), (3, 2, (1, 0))];
    for (w, h, dir) in cases {
        let without = minimal_size(w, h, dir, false, 10);
        let with = minimal_size(w, h, dir, true, 10);
        advocat_telemetry::info!(
            "{:<8} {:<12} {:<16} {:<16}",
            format!("{w}x{h}"),
            format!("({},{})", dir.0, dir.1),
            without
                .map(|s| s.to_string())
                .unwrap_or_else(|| "> 10".into()),
            with.map(|s| s.to_string()).unwrap_or_else(|| "> 10".into()),
        );
    }

    // VCs do not remove the deadlock itself at minimal queue capacity.
    let vc_small = build_mesh(
        &MeshConfig::new(2, 2, 1)
            .with_directory(1, 1)
            .with_virtual_channels(true),
    )
    .expect("valid mesh");
    let report = QueryEngine::structural(vc_small.clone()).check(&Query::new());
    advocat_telemetry::info!(
        "  2x2 with VCs at queue size 1: {}",
        if report.is_deadlock_free() {
            "deadlock-free"
        } else {
            "still deadlocks (VCs alone do not help)"
        }
    );
    advocat_telemetry::info!("");
}

fn bench(c: &mut Criterion) {
    let plain = build_mesh(&MeshConfig::new(2, 2, 3).with_directory(1, 1)).unwrap();
    let vcs = build_mesh(
        &MeshConfig::new(2, 2, 3)
            .with_directory(1, 1)
            .with_virtual_channels(true),
    )
    .unwrap();
    let mut group = c.benchmark_group("vc_ablation");
    group.sample_size(10);
    group.bench_function("verify_2x2_qs3_no_vc", |b| {
        b.iter(|| {
            QueryEngine::structural(plain.clone())
                .check(&Query::new())
                .is_deadlock_free()
        })
    });
    group.bench_function("verify_2x2_qs3_with_vc", |b| {
        b.iter(|| {
            QueryEngine::structural(vcs.clone())
                .check(&Query::new())
                .is_deadlock_free()
        })
    });
    group.finish();
}

criterion_group!(benches, bench);

fn main() {
    print_table();
    benches();
    criterion::Criterion::default()
        .configure_from_args()
        .final_summary();
}
