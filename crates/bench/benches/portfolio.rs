//! Portfolio solving: racing diversified CDCL workers on the hard tail.
//!
//! On the easy instances of the suite the sequential solver is already
//! near-instant and a portfolio can only add overhead; the interesting
//! subset is the *hard tail* — near-threshold queries where solve time is
//! dominated by search.  Racing diversified workers (different phase
//! polarity, restart schedule and reduction cadence, plus glue-clause
//! exchange) turns the per-instance cost from "the default strategy's
//! time" into "the best strategy's time" — *provided the host can actually
//! overlap the workers*.
//!
//! The race is honest about hardware: `N` workers burn `N` hardware
//! threads until the winner's verdict cancels the rest.  On a host with
//! `>= N` cores the wall-clock is the fastest worker's time; on a
//! single-core host the same race time-slices and costs up to `N` times
//! the fastest worker.  The bench therefore prints the measured host
//! parallelism next to each row — the speedup column is only expected to
//! exceed 1x when the cores are there.  Verdicts are asserted identical
//! in every mode either way (the determinism the differential suite pins).

use std::time::{Duration, Instant};

use advocat::prelude::*;
use criterion::{criterion_group, Criterion};

/// The hard-tail instances: near-threshold queries whose answers the
/// differential suite pins, so the bench doubles as a sanity check that
/// the portfolio changes only the time, never the verdict.
fn instances() -> Vec<(
    &'static str,
    FabricConfig,
    std::ops::RangeInclusive<usize>,
    Query,
)> {
    vec![
        (
            "mesi-mesh/cap2",
            FabricConfig::new(Topology::mesh(2, 2).unwrap(), 1)
                .with_directory(1)
                .with_protocol(ProtocolKind::Mesi),
            1..=2,
            Query::new().capacity(2),
        ),
        (
            "mesi-torus/cap2",
            FabricConfig::new(Topology::torus(2, 2).unwrap(), 1)
                .with_directory(3)
                .with_protocol(ProtocolKind::Mesi),
            1..=2,
            Query::new().capacity(2),
        ),
        (
            "mesh3x3/cap1/no-invariants",
            FabricConfig::new(Topology::mesh(3, 3).unwrap(), 1).with_directory(4),
            1..=1,
            Query::new().capacity(1).invariants(false),
        ),
    ]
}

/// Cold-start wall-clock of one query at the given worker count: engine
/// build (template, invariants) excluded, solving included.
fn solve_cold(
    fabric: &FabricConfig,
    range: std::ops::RangeInclusive<usize>,
    query: &Query,
    workers: usize,
) -> (Duration, bool) {
    let mut engine = QueryEngine::for_fabric(fabric, range).expect("fabric builds");
    engine.set_portfolio(workers);
    let start = Instant::now();
    let report = engine.check(query);
    (start.elapsed(), report.is_deadlock_free())
}

fn print_comparison() {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    advocat_telemetry::info!(
        "== portfolio: sequential vs. diversified race (cold start, {cores} host core{}) ==",
        if cores == 1 { "" } else { "s" }
    );
    let counts = [1usize, 2, 8];
    let mut totals = [Duration::ZERO; 3];
    for (name, fabric, range, query) in instances() {
        let mut row = format!("  {name:<28}");
        let mut reference = None;
        for (slot, workers) in counts.iter().enumerate() {
            let (elapsed, free) = solve_cold(&fabric, range.clone(), &query, *workers);
            let reference = *reference.get_or_insert(free);
            assert_eq!(
                free, reference,
                "{name} verdict changed at {workers} workers"
            );
            totals[slot] += elapsed;
            row.push_str(&format!("  {workers}w {:>8.1?}", elapsed));
        }
        advocat_telemetry::info!("{row}");
    }
    for (slot, workers) in counts.iter().enumerate() {
        advocat_telemetry::info!(
            "  subset total at {workers} worker(s): {:>8.1?}  (speedup {:.2}x)",
            totals[slot],
            totals[0].as_secs_f64() / totals[slot].as_secs_f64()
        );
    }
    advocat_telemetry::info!(
        "  (a racing portfolio needs as many cores as workers to win wall-clock; \
         on {cores} core(s) expect ~{}x overhead instead)",
        if cores >= 8 { 0 } else { 8 / cores }
    );
    advocat_telemetry::info!("");
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("portfolio");
    group.sample_size(10);
    // One representative hard instance, sequential vs. full race, so the
    // criterion numbers track both the solver and the race overhead.
    let (_, fabric, range, query) = instances().swap_remove(2);
    for workers in [1usize, 8] {
        let (fabric, range) = (fabric.clone(), range.clone());
        group.bench_function(
            format!("mesh3x3_no_invariants_{workers}_workers"),
            move |b| {
                b.iter(|| std::hint::black_box(solve_cold(&fabric, range.clone(), &query, workers)))
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);

fn main() {
    print_comparison();
    benches();
    criterion::Criterion::default()
        .configure_from_args()
        .final_summary();
}
