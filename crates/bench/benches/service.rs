//! E10 — the verification service: warm-engine pool vs cold per-job
//! engines.
//!
//! A mixed mesh/ring/torus/MESI workload is submitted by 1, 8 and 64
//! concurrent client threads to one shared [`Service`].  The comparison
//! runs the identical workload twice — once against the warm-engine pool
//! and once with the pool disabled (every job cold-builds a private
//! engine) — and reports throughput plus the pool's warm-hit rate.  The
//! pooled configuration must beat the cold one outright at 8 and 64
//! clients: that is the whole point of the service layer, so the harness
//! *asserts* it rather than just printing it.

use advocat::prelude::*;
use criterion::{criterion_group, Criterion};
use std::time::{Duration, Instant};

/// One client's slice of the mixed workload: two mesh capacities (the
/// Fig. 3 pair, sharing a pooled engine), a datelined ring, a datelined
/// torus and a MESI mesh.
fn client_jobs(client: usize) -> Vec<VerifyJob> {
    let mesh = MeshConfig::new(2, 2, 2).with_directory(1, 1);
    let mesi = mesh.with_protocol(ProtocolKind::Mesi);
    let ring = FabricConfig::new(Topology::ring(4).unwrap(), 2).with_directory(1);
    let torus = FabricConfig::new(Topology::torus(2, 2).unwrap(), 3).with_directory(3);
    vec![
        VerifyJob::mesh(format!("c{client} mesh qs2"), mesh)
            .at_capacity(2)
            .with_engine_range(2..=3),
        VerifyJob::mesh(format!("c{client} mesh qs3"), mesh)
            .at_capacity(3)
            .with_engine_range(2..=3),
        VerifyJob::fabric(format!("c{client} ring"), ring),
        VerifyJob::fabric(format!("c{client} torus"), torus),
        VerifyJob::mesh(format!("c{client} mesi"), mesi)
            .at_capacity(2)
            .with_engine_range(2..=3),
    ]
}

/// Runs the workload for `clients` concurrent submitters and returns
/// (wall-clock, jobs completed, pool stats).
fn run_workload(clients: usize, warm_pool: bool) -> (Duration, usize, PoolStats) {
    let service = Service::new(
        ServiceConfig::default()
            .with_queue_capacity(clients * 8)
            .with_warm_pool(warm_pool),
    );
    let start = Instant::now();
    std::thread::scope(|scope| {
        for client in 0..clients {
            let service = &service;
            scope.spawn(move || {
                for job in client_jobs(client) {
                    service.submit(job);
                }
            });
        }
    });
    let outcomes = service.drain();
    let elapsed = start.elapsed();
    for outcome in &outcomes {
        let report = outcome.result.as_ref().expect("workload fabrics build");
        let expect_free = !outcome.name.ends_with("mesh qs2");
        if !outcome.name.ends_with("mesi") {
            assert_eq!(
                report.is_deadlock_free(),
                expect_free,
                "verdict drift in {}",
                outcome.name
            );
        }
    }
    (elapsed, outcomes.len(), service.pool_stats())
}

fn print_comparison() {
    advocat_telemetry::info!("== E10: service throughput, warm pool vs cold per-job engines ==");
    advocat_telemetry::info!(
        "{:<9} {:<7} {:>10} {:>14} {:>10}",
        "clients",
        "pool",
        "jobs",
        "jobs/s",
        "warm rate"
    );
    for clients in [1usize, 8, 64] {
        let (cold_elapsed, cold_jobs, _) = run_workload(clients, false);
        let (warm_elapsed, warm_jobs, stats) = run_workload(clients, true);
        assert_eq!(cold_jobs, warm_jobs);
        for (label, elapsed, rate) in [
            ("cold", cold_elapsed, None),
            ("warm", warm_elapsed, Some(stats.warm_hit_rate())),
        ] {
            advocat_telemetry::info!(
                "{:<9} {:<7} {:>10} {:>14.1} {:>10}",
                clients,
                label,
                warm_jobs,
                warm_jobs as f64 / elapsed.as_secs_f64(),
                rate.map(|r| format!("{:.0}%", r * 100.0))
                    .unwrap_or_else(|| "-".into()),
            );
        }
        // The contract of the service layer: with clients piling onto the
        // same fabrics, warm engines must win outright.
        if clients >= 8 {
            assert!(
                warm_elapsed < cold_elapsed,
                "warm pool ({warm_elapsed:.2?}) must beat cold engines \
                 ({cold_elapsed:.2?}) at {clients} clients"
            );
        }
    }
    advocat_telemetry::info!("");
}

fn bench(c: &mut Criterion) {
    let warm = Service::new(ServiceConfig::default());
    // Prime the pool so the measured loop is the steady state.
    for job in client_jobs(0) {
        warm.submit(job);
    }
    warm.drain();
    let mesh = MeshConfig::new(2, 2, 2).with_directory(1, 1);
    c.bench_function("service/warm_submit_drain", |b| {
        b.iter(|| {
            warm.submit(
                VerifyJob::mesh("warm", mesh)
                    .at_capacity(2)
                    .with_engine_range(2..=3),
            );
            warm.drain().len()
        })
    });
    let cold = Service::new(ServiceConfig::default().with_warm_pool(false));
    c.bench_function("service/cold_submit_drain", |b| {
        b.iter(|| {
            cold.submit(
                VerifyJob::mesh("cold", mesh)
                    .at_capacity(2)
                    .with_engine_range(2..=3),
            );
            cold.drain().len()
        })
    });
}

criterion_group!(benches, bench);

fn main() {
    print_comparison();
    benches();
    criterion::Criterion::default()
        .configure_from_args()
        .final_summary();
}
