//! E2 — the cross-layer deadlock of Fig. 3.
//!
//! Regenerates the verdict table "queue size 2 → deadlock, queue size 3 →
//! deadlock-free" for the abstract MI protocol on a 2×2 mesh with the
//! directory at the lower-right node, and measures the verification run.

use advocat::prelude::*;
use advocat_bench::{abstract_mesh, verdict_label};
use criterion::{criterion_group, Criterion};

fn print_table() {
    advocat_telemetry::info!("== E2: cross-layer deadlock on the 2×2 mesh (Fig. 3) ==");
    advocat_telemetry::info!("{:<12} {:<22} details", "queue size", "verdict");
    for queue_size in [2usize, 3, 4] {
        let system = abstract_mesh(2, 2, queue_size, (1, 1));
        let report = QueryEngine::structural(system.clone()).check(&Query::new());
        let detail = report
            .counterexample()
            .map(|cex| {
                format!(
                    "{} en-route packets, {} invs, dead: {}",
                    cex.total_packets(),
                    cex.packets_of_kind("inv"),
                    cex.dead_automata.join("+")
                )
            })
            .unwrap_or_else(|| format!("{} invariants", report.invariants().len()));
        advocat_telemetry::info!("{:<12} {:<22} {detail}", queue_size, verdict_label(&report));
    }
    advocat_telemetry::info!("");
}

fn bench(c: &mut Criterion) {
    let deadlocking = abstract_mesh(2, 2, 2, (1, 1));
    let free = abstract_mesh(2, 2, 3, (1, 1));
    c.bench_function("fig3/verify_2x2_qs2_deadlock", |b| {
        b.iter(|| {
            QueryEngine::structural(deadlocking.clone())
                .check(&Query::new())
                .is_deadlock_free()
        })
    });
    c.bench_function("fig3/verify_2x2_qs3_free", |b| {
        b.iter(|| {
            QueryEngine::structural(free.clone())
                .check(&Query::new())
                .is_deadlock_free()
        })
    });
    c.bench_function("fig3/build_2x2_mesh", |b| {
        b.iter(|| abstract_mesh(2, 2, 2, (1, 1)).stats().primitives)
    });
}

criterion_group!(benches, bench);

fn main() {
    print_table();
    benches();
    criterion::Criterion::default()
        .configure_from_args()
        .final_summary();
}
