//! E7 — the GEM5-inspired full MI protocol (Section 5, "MI Protocol").
//!
//! Regenerates the invariant count and the shape statistics of the full MI
//! protocol on the 2×2 mesh (the paper reports 14 invariants, a five-state
//! L2 cache, a 4+n-state directory and eight message kinds), and measures
//! the pipeline on that model.

use advocat::prelude::*;
use advocat_bench::full_mi_mesh;
use criterion::{criterion_group, Criterion};

fn print_table() {
    advocat_telemetry::info!("== E7: full MI protocol on the 2×2 mesh ==");
    let protocol = FullMi::new(4, 3);
    let mut scratch = Network::new();
    let cache = protocol.cache_agent(&mut scratch, 0);
    let directory = protocol.directory_agent(&mut scratch);
    advocat_telemetry::info!(
        "  protocol: cache {} states, directory {} states, {} message kinds",
        cache.automaton.state_count(),
        directory.automaton.state_count(),
        FullMi::message_kinds().len()
    );

    let system = full_mi_mesh(2, 2, 4, (1, 1));
    let report = QueryEngine::structural(system.clone()).check(&Query::new());
    advocat_telemetry::info!(
        "  2x2 model: {} primitives, {} queues, {} colors",
        report.system_stats().primitives,
        report.system_stats().queues,
        report.system_stats().colors
    );
    advocat_telemetry::info!(
        "  invariants derived: {} (paper: 14); verdict: {}",
        report.invariants().len(),
        advocat_bench::verdict_label(&report)
    );
    for line in report.invariant_text().iter().take(8) {
        advocat_telemetry::info!("    {line}");
    }
    advocat_telemetry::info!("");
}

fn bench(c: &mut Criterion) {
    let system = full_mi_mesh(2, 2, 4, (1, 1));
    let colors = derive_colors(&system);
    let mut group = c.benchmark_group("full_mi");
    group.sample_size(10);
    group.bench_function("invariant_derivation_2x2", |b| {
        b.iter(|| derive_invariants(&system, &colors).len())
    });
    group.bench_function("full_pipeline_2x2", |b| {
        b.iter(|| {
            QueryEngine::structural(system.clone())
                .check(&Query::new())
                .invariants()
                .len()
        })
    });
    group.finish();
}

criterion_group!(benches, bench);

fn main() {
    print_table();
    benches();
    criterion::Criterion::default()
        .configure_from_args()
        .final_summary();
}
