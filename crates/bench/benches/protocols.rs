//! Cross-protocol verification sweeps: the same fabric, the same
//! session-backed sizing study, different coherence protocols.
//!
//! The protocol family is the third scenario axis next to topology and
//! capacity.  This bench prints, per (fabric, protocol family) pair, the
//! minimal deadlock-free queue size and the cost of the one engine that
//! answered the family's whole sweep — the MI protocols' pointer-machine
//! directories against the MESI counting directory, whose state count
//! grows quadratically with the cache count — then measures the 2×2-mesh
//! comparison with Criterion.

use advocat::prelude::*;
use criterion::{criterion_group, Criterion};

const SIZES: std::ops::RangeInclusive<usize> = 1..=4;

fn fabrics() -> Vec<(&'static str, FabricConfig)> {
    vec![
        (
            "mesh2x2",
            FabricConfig::new(Topology::mesh(2, 2).expect("mesh"), 1).with_directory(3),
        ),
        (
            "mesh2x2+vc",
            FabricConfig::new(Topology::mesh(2, 2).expect("mesh"), 1)
                .with_directory(3)
                .with_message_class_vcs(true),
        ),
        (
            "ring4",
            FabricConfig::new(Topology::ring(4).expect("ring"), 1).with_directory(1),
        ),
        (
            "torus2x2",
            FabricConfig::new(Topology::torus(2, 2).expect("torus"), 1).with_directory(3),
        ),
    ]
}

fn print_comparison() {
    advocat_telemetry::info!(
        "== one sizing study per (fabric, protocol family), sizes {SIZES:?} =="
    );
    advocat_telemetry::info!(
        "{:<12} {:<12} {:<7} {:<9} {:>9} {:>12}",
        "fabric",
        "protocol",
        "kinds",
        "min free",
        "queries",
        "SAT effort"
    );
    for (name, fabric) in fabrics() {
        let comparison =
            QueryEngine::compare_protocols(&fabric, &ProtocolFamily::ALL, &Query::new(), SIZES)
                .expect("fabric builds for every family");
        for outcome in &comparison.outcomes {
            advocat_telemetry::info!(
                "{:<12} {:<12} {:<7} {:<9} {:>9} {:>12}",
                name,
                outcome.family.name(),
                outcome.family.message_kind_count(),
                outcome
                    .minimal_free_capacity()
                    .map(|c| c.to_string())
                    .unwrap_or_else(|| format!("> {}", SIZES.end())),
                outcome.stats.queries,
                outcome.stats.sat_effort(),
            );
        }
        assert_eq!(
            comparison.templates_built(),
            ProtocolFamily::ALL.len() as u64,
            "one template per family, never per probe"
        );
    }
    advocat_telemetry::info!("");
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("protocols");
    group.sample_size(10);
    let fabric = FabricConfig::new(Topology::mesh(2, 2).expect("mesh"), 1).with_directory(3);
    for family in ProtocolFamily::ALL {
        let name = format!("sizing_study_{}", family.name());
        let config = fabric.clone().with_protocol(family.kind());
        group.bench_function(&name, |b| {
            b.iter(|| {
                let mut engine = QueryEngine::for_fabric(&config, SIZES).expect("fabric builds");
                engine.minimal_capacity(&Query::new())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);

fn main() {
    print_comparison();
    benches();
    criterion::Criterion::default()
        .configure_from_args()
        .final_summary();
}
