//! E1 — the running example (Fig. 1 / Sections 1–3).
//!
//! Regenerates the invariant of Section 1 and the "candidates without
//! invariants / free with invariants" contrast of Section 3, then measures
//! the full pipeline on the example.

use advocat::prelude::*;
use criterion::{criterion_group, Criterion};

fn running_example(queue_size: usize) -> System {
    let mut net = Network::new();
    let req = net.intern(Packet::kind("req"));
    let ack = net.intern(Packet::kind("ack"));
    let s_node = net.add_automaton_node("S", 1, 1);
    let t_node = net.add_automaton_node("T", 1, 1);
    let q0 = net.add_queue("q0", queue_size);
    let q1 = net.add_queue("q1", queue_size);
    net.connect(s_node, 0, q0, 0);
    net.connect(q0, 0, t_node, 0);
    net.connect(t_node, 0, q1, 0);
    net.connect(q1, 0, s_node, 0);
    let mut sb = AutomatonBuilder::new("S", 1, 1);
    let s0 = sb.state("s0");
    let s1 = sb.state("s1");
    sb.set_initial(s0);
    sb.spontaneous_emit(s0, s1, 0, req);
    sb.on_packet(s1, s0, 0, ack, None);
    let mut tb = AutomatonBuilder::new("T", 1, 1);
    let t0 = tb.state("t0");
    let t1 = tb.state("t1");
    tb.set_initial(t0);
    tb.on_packet(t0, t1, 0, req, None);
    tb.spontaneous_emit(t1, t0, 0, ack);
    let mut system = System::new(net);
    system.attach(s_node, sb.build().unwrap()).unwrap();
    system.attach(t_node, tb.build().unwrap()).unwrap();
    system
}

fn print_table() {
    advocat_telemetry::info!("== E1: running example (Fig. 1) ==");
    let system = running_example(2);
    let report = QueryEngine::structural(system.clone()).check(&Query::new());
    for line in report.invariant_text() {
        advocat_telemetry::info!("  invariant: {line}");
    }
    advocat_telemetry::info!("  with invariants:    {}", report.summary());
    let naive = QueryEngine::structural(system.clone()).check(&Query::new().invariants(false));
    advocat_telemetry::info!("  without invariants: {}", naive.summary());
    advocat_telemetry::info!("");
}

fn bench(c: &mut Criterion) {
    let system = running_example(2);
    c.bench_function("running_example/full_pipeline", |b| {
        b.iter(|| {
            QueryEngine::structural(system.clone())
                .check(&Query::new())
                .is_deadlock_free()
        })
    });
    c.bench_function("running_example/invariant_derivation", |b| {
        b.iter(|| {
            let colors = derive_colors(&system);
            derive_invariants(&system, &colors).len()
        })
    });
}

criterion_group!(benches, bench);

fn main() {
    print_table();
    benches();
    criterion::Criterion::default()
        .configure_from_args()
        .final_summary();
}
