//! E11 — the HTTP front-end's overhead over the in-process service.
//!
//! The same warm single-job round trip is measured three ways: straight
//! against [`Service`] (`submit` + `drain`), over a live socket through
//! the blocking [`Client`] (`POST /v1/jobs` + `GET /v1/jobs/{id}`), and
//! as a one-request batch (`POST /v1/batch`).  The spread between the
//! first two is the whole cost of the wire: HTTP framing, one TCP round
//! trip per call, and the outcome registry instead of the drain path.

use std::sync::Arc;
use std::time::Instant;

use advocat::prelude::*;
use advocat_frontend::{Client, ClientConfig, FrontendConfig, Server};
use criterion::{criterion_group, Criterion};

const WARM_REQUEST: &str = "{\"name\":\"warm\",\
    \"topology\":{\"kind\":\"mesh\",\"width\":2,\"height\":2},\
    \"queue_size\":2,\"directory\":3,\"capacities\":[2,2]}";

fn print_comparison() {
    // One shared warm service behind a live server.
    let service = Arc::new(Service::new(ServiceConfig::default().with_workers(2)));
    let server = Server::start(
        Arc::clone(&service),
        Telemetry::disabled(),
        None,
        FrontendConfig::default(),
    )
    .expect("ephemeral bind");
    let mut client =
        Client::connect(server.addr().to_string(), ClientConfig::default()).expect("connect");

    // Prime the pool so every measured trip is warm.
    service.submit_json(WARM_REQUEST).expect("prime");
    service.drain();

    const TRIPS: usize = 40;
    let start = Instant::now();
    for _ in 0..TRIPS {
        let ids = service.submit_json(WARM_REQUEST).expect("submit");
        for id in ids {
            service
                .wait_outcome(id, None)
                .expect("known id")
                .expect("completed");
        }
    }
    let in_process = start.elapsed();

    let start = Instant::now();
    for _ in 0..TRIPS {
        let ids = client
            .submit(WARM_REQUEST)
            .expect("transport")
            .expect("admitted");
        for id in ids {
            let exchange = client.wait(id, 120_000).expect("transport");
            assert_eq!(exchange.status, 200);
        }
    }
    let over_http = start.elapsed();

    let start = Instant::now();
    for _ in 0..TRIPS {
        let exchange = client.batch(WARM_REQUEST, 120_000).expect("transport");
        assert_eq!(exchange.status, 200);
    }
    let batched = start.elapsed();

    println!("== E11: front-end overhead ({TRIPS} warm round trips) ==");
    println!(
        "  in-process submit+wait : {:>8.2?}  ({:.2?}/trip)",
        in_process,
        in_process / TRIPS as u32
    );
    println!(
        "  HTTP submit+wait       : {:>8.2?}  ({:.2?}/trip)",
        over_http,
        over_http / TRIPS as u32
    );
    println!(
        "  HTTP one-call batch    : {:>8.2?}  ({:.2?}/trip)",
        batched,
        batched / TRIPS as u32
    );

    server.shutdown();
    assert!(server.join(), "clean drain after the measurement");
}

fn bench(c: &mut Criterion) {
    let service = Arc::new(Service::new(ServiceConfig::default().with_workers(2)));
    let server = Server::start(
        Arc::clone(&service),
        Telemetry::disabled(),
        None,
        FrontendConfig::default(),
    )
    .expect("ephemeral bind");
    let mut client =
        Client::connect(server.addr().to_string(), ClientConfig::default()).expect("connect");
    service.submit_json(WARM_REQUEST).expect("prime");
    service.drain();

    c.bench_function("frontend/http_submit_wait", |b| {
        b.iter(|| {
            let ids = client
                .submit(WARM_REQUEST)
                .expect("transport")
                .expect("admitted");
            let mut statuses = 0u32;
            for id in ids {
                statuses += u32::from(client.wait(id, 120_000).expect("transport").status);
            }
            statuses
        })
    });
    c.bench_function("frontend/http_batch", |b| {
        b.iter(|| {
            client
                .batch(WARM_REQUEST, 120_000)
                .expect("transport")
                .status
        })
    });

    server.shutdown();
    assert!(server.join());
}

criterion_group!(benches, bench);

fn main() {
    print_comparison();
    benches();
    criterion::Criterion::default()
        .configure_from_args()
        .final_summary();
}
