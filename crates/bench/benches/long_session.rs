//! Long verification sessions: bounded vs. unbounded learnt databases.
//!
//! PR 1 made sessions long-lived; this bench measures what that does to
//! the solver over a long queue-size sweep (sizes 1..=32 on the 2×2
//! directory mesh).  Without clause-database reduction the solver keeps
//! every learnt clause and every popped query scope forever, so the
//! per-query SAT cost climbs monotonically with the session length.  With
//! reduction enabled the database — and with it the per-query cost — stays
//! bounded.  The bench prints the per-query conflict+propagation trend of
//! both configurations and times the two sweeps.

use advocat::prelude::*;
use criterion::{criterion_group, Criterion};

const SIZES: std::ops::RangeInclusive<usize> = 1..=32;

fn mesh_config() -> MeshConfig {
    MeshConfig::new(2, 2, 1).with_directory(1, 1)
}

/// Forces reductions early enough that the (small) bench workload
/// exercises them; production defaults only reduce after
/// `SolverConfig::default().first_reduce` conflicts.
fn bounded_solver() -> SolverConfig {
    SolverConfig {
        first_reduce: 20,
        reduce_interval: 20,
        keep_lbd: 1,
        ..SolverConfig::default()
    }
}

fn unbounded_solver() -> SolverConfig {
    SolverConfig {
        clause_reduction: false,
        ..SolverConfig::default()
    }
}

/// Runs the sweep and returns the verdicts, per-query SAT efforts
/// (conflicts + propagations) and the session totals.
fn sweep(solver: SolverConfig) -> (Vec<bool>, Vec<u64>, SessionStats) {
    let system = build_mesh_for_sweep(&mesh_config(), *SIZES.end()).expect("valid mesh");
    let config = CheckConfig {
        solver,
        ..CheckConfig::default()
    };
    let mut engine = QueryEngine::with_config(system, config, SIZES);
    let mut verdicts = Vec::new();
    let mut efforts = Vec::new();
    for size in SIZES {
        let report = engine.check(&Query::new().capacity(size));
        verdicts.push(report.is_deadlock_free());
        efforts.push(report.analysis().stats.sat_effort());
    }
    (verdicts, efforts, engine.stats())
}

fn avg(slice: &[u64]) -> u64 {
    slice.iter().sum::<u64>() / slice.len() as u64
}

fn print_comparison() {
    advocat_telemetry::info!("== long sessions: bounded vs. unbounded learnt database ==");
    advocat_telemetry::info!("   (2x2 directory mesh, queue sizes 1..=32 through one session)");
    let (bounded_verdicts, bounded, bounded_stats) = sweep(bounded_solver());
    let (unbounded_verdicts, unbounded, unbounded_stats) = sweep(unbounded_solver());
    assert_eq!(bounded_verdicts, unbounded_verdicts, "verdicts must agree");

    // The first two sizes deadlock and dominate absolute cost; the trend
    // of the satisfiable tail is where unbounded growth shows.
    let quarters: Vec<(usize, usize)> = vec![(2, 8), (8, 16), (16, 24), (24, 32)];
    advocat_telemetry::info!(
        "per-query SAT effort (conflicts+propagations), averaged per quarter:"
    );
    for &(lo, hi) in &quarters {
        advocat_telemetry::info!(
            "  sizes {:>2}..={:>2}:  bounded {:>8}   unbounded {:>8}",
            lo + 1,
            hi,
            avg(&bounded[lo..hi]),
            avg(&unbounded[lo..hi]),
        );
    }
    let growth = |efforts: &[u64]| avg(&efforts[16..]) as f64 / avg(&efforts[2..16]) as f64;
    advocat_telemetry::info!(
        "late/early cost ratio:  bounded {:.2}x   unbounded {:.2}x",
        growth(&bounded),
        growth(&unbounded)
    );
    advocat_telemetry::info!(
        "bounded:   {:>8} total props, learnt DB {} live / {} total, \
         {} reductions, {} clauses deleted",
        bounded_stats.sat_propagations,
        bounded_stats.live_learnts,
        bounded_stats.total_learnt,
        bounded_stats.reduced_dbs,
        bounded_stats.deleted_clauses,
    );
    advocat_telemetry::info!(
        "unbounded: {:>8} total props, learnt DB {} live / {} total",
        unbounded_stats.sat_propagations,
        unbounded_stats.live_learnts,
        unbounded_stats.total_learnt,
    );
    advocat_telemetry::info!("");
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("long_session");
    group.sample_size(10);
    group.bench_function("bounded_sweep_sizes_1_to_32", |b| {
        b.iter(|| sweep(bounded_solver()))
    });
    group.bench_function("unbounded_sweep_sizes_1_to_32", |b| {
        b.iter(|| sweep(unbounded_solver()))
    });
    group.finish();
}

criterion_group!(benches, bench);

fn main() {
    print_comparison();
    benches();
    criterion::Criterion::default()
        .configure_from_args()
        .final_summary();
}
