//! E3 — minimal deadlock-free queue sizes (Figure 4).
//!
//! For each mesh size and directory position the harness searches for the
//! smallest queue size that ADVOCAT proves deadlock-free.  The paper's
//! absolute values (15/19/23/29/39/58) belong to its own fabric model; the
//! reproduced *shape* is that the required size grows with the mesh and
//! with the directory's distance from the centre.  Larger meshes are
//! exercised by `examples/queue_sizing.rs` (they take minutes).

use advocat_bench::minimal_size;
use criterion::{criterion_group, Criterion};

fn print_table() {
    advocat_telemetry::info!("== E3: minimal deadlock-free queue sizes (Fig. 4) ==");
    advocat_telemetry::info!("{:<8} {:<12} minimal queue size", "mesh", "directory");
    let cases = [
        (2u32, 2u32, (0u32, 0u32)),
        (2, 2, (1, 0)),
        (2, 2, (1, 1)),
        (3, 2, (0, 0)),
        (3, 2, (1, 0)),
    ];
    for (w, h, dir) in cases {
        let min = minimal_size(w, h, dir, false, 10);
        advocat_telemetry::info!(
            "{:<8} {:<12} {}",
            format!("{w}x{h}"),
            format!("({},{})", dir.0, dir.1),
            min.map(|s| s.to_string()).unwrap_or_else(|| "> 10".into())
        );
    }
    advocat_telemetry::info!("");
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4");
    group.sample_size(10);
    group.bench_function("sizing_2x2_corner_directory", |b| {
        b.iter(|| minimal_size(2, 2, (0, 0), false, 6))
    });
    group.bench_function("sizing_2x2_center_directory", |b| {
        b.iter(|| minimal_size(2, 2, (1, 1), false, 6))
    });
    group.finish();
}

criterion_group!(benches, bench);

fn main() {
    print_table();
    benches();
    criterion::Criterion::default()
        .configure_from_args()
        .final_summary();
}
