//! Exact numeric substrate for ADVOCAT's invariant generation.
//!
//! The invariant-derivation method of Chatterjee & Kishinevsky (extended by
//! ADVOCAT with automaton equations) builds a large, sparse system of linear
//! equations over flow counters (`λ`), transition counters (`κ`), queue
//! occupancies (`#q.d`) and automaton-state indicators (`A.s`), and then
//! eliminates the `λ`/`κ` variables by Gaussian elimination.  This crate
//! provides the exact arithmetic and the sparse elimination machinery used
//! for that step:
//!
//! * [`Rational`] — an exact `i128`-backed rational number,
//! * [`LinearRow`] — a sparse linear equation `Σ aᵢ·xᵢ + c = 0`,
//! * [`eliminate`] — Gaussian elimination with a caller-supplied variable
//!   elimination order, keeping only rows free of eliminated variables,
//! * [`eliminate_with_bounds`] — the same elimination, additionally
//!   harvesting the `≤` bounds implied by the nonnegativity of the
//!   eliminated counters (each pivot definition `e = −(K + c)` with
//!   `e ≥ 0` yields `K + c ≤ 0` over the kept variables).
//!
//! # Examples
//!
//! ```
//! use advocat_num::{LinearRow, Rational, eliminate};
//!
//! // x0 = x1 + x2   and   x0 = 1   ==>   x1 + x2 = 1 once x0 is eliminated.
//! let r1 = LinearRow::from_terms([(0, 1), (1, -1), (2, -1)], 0);
//! let r2 = LinearRow::from_terms([(0, 1)], -1);
//! let kept = eliminate(vec![r1, r2], |v| v == 0);
//! assert_eq!(kept.len(), 1);
//! assert_eq!(kept[0].coefficient(1), Rational::from_integer(1));
//! assert_eq!(kept[0].constant(), Rational::from_integer(-1));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod gauss;
mod rational;
mod row;

pub use gauss::{eliminate, eliminate_with_bounds, reduce_to_echelon, satisfies, Elimination};
pub use rational::{ParseRationalError, Rational};
pub use row::LinearRow;
