//! Exact rational arithmetic backed by `i128`.

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};
use std::str::FromStr;

/// An exact rational number `num / den` with `den > 0`, always stored in
/// lowest terms.
///
/// The coefficients arising from flow equations are tiny (±1, ±2, …); the
/// `i128` backing store leaves enormous headroom for the intermediate values
/// produced by Gaussian elimination.  All arithmetic uses checked operations
/// and panics on overflow rather than silently wrapping.
///
/// # Examples
///
/// ```
/// use advocat_num::Rational;
///
/// let a = Rational::new(1, 3);
/// let b = Rational::new(1, 6);
/// assert_eq!(a + b, Rational::new(1, 2));
/// assert_eq!((a - a).is_zero(), true);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Rational {
    num: i128,
    den: i128,
}

impl Rational {
    /// The rational number zero.
    pub const ZERO: Rational = Rational { num: 0, den: 1 };
    /// The rational number one.
    pub const ONE: Rational = Rational { num: 1, den: 1 };

    /// Creates a rational `num / den` reduced to lowest terms.
    ///
    /// # Panics
    ///
    /// Panics if `den == 0`.
    pub fn new(num: i128, den: i128) -> Self {
        assert!(den != 0, "rational denominator must be non-zero");
        let mut r = Rational { num, den };
        r.normalize();
        r
    }

    /// Creates a rational from an integer value.
    pub fn from_integer(value: i128) -> Self {
        Rational { num: value, den: 1 }
    }

    /// Returns the numerator (after normalisation, carries the sign).
    pub fn numerator(&self) -> i128 {
        self.num
    }

    /// Returns the (strictly positive) denominator.
    pub fn denominator(&self) -> i128 {
        self.den
    }

    /// Returns `true` when the value is exactly zero.
    pub fn is_zero(&self) -> bool {
        self.num == 0
    }

    /// Returns `true` when the value is an integer.
    pub fn is_integer(&self) -> bool {
        self.den == 1
    }

    /// Returns `true` when the value is strictly negative.
    pub fn is_negative(&self) -> bool {
        self.num < 0
    }

    /// Returns `true` when the value is strictly positive.
    pub fn is_positive(&self) -> bool {
        self.num > 0
    }

    /// Returns the absolute value.
    pub fn abs(&self) -> Rational {
        Rational {
            num: self.num.abs(),
            den: self.den,
        }
    }

    /// Returns the multiplicative inverse.
    ///
    /// # Panics
    ///
    /// Panics if the value is zero.
    pub fn recip(&self) -> Rational {
        assert!(!self.is_zero(), "cannot invert zero");
        Rational::new(self.den, self.num)
    }

    /// Converts to `i128` when the value is an integer.
    pub fn to_integer(&self) -> Option<i128> {
        if self.den == 1 {
            Some(self.num)
        } else {
            None
        }
    }

    /// Converts to a (possibly lossy) `f64`, for reporting only.
    pub fn to_f64(&self) -> f64 {
        self.num as f64 / self.den as f64
    }

    fn normalize(&mut self) {
        if self.den < 0 {
            self.num = self.num.checked_neg().expect("rational overflow");
            self.den = self.den.checked_neg().expect("rational overflow");
        }
        if self.num == 0 {
            self.den = 1;
            return;
        }
        let g = gcd(self.num.unsigned_abs(), self.den.unsigned_abs()) as i128;
        self.num /= g;
        self.den /= g;
    }
}

fn gcd(mut a: u128, mut b: u128) -> u128 {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a.max(1)
}

impl Default for Rational {
    fn default() -> Self {
        Rational::ZERO
    }
}

impl fmt::Debug for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl fmt::Display for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den == 1 {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

/// Error returned when parsing a [`Rational`] from a string fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseRationalError {
    message: String,
}

impl fmt::Display for ParseRationalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid rational literal: {}", self.message)
    }
}

impl std::error::Error for ParseRationalError {}

impl FromStr for Rational {
    type Err = ParseRationalError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let err = |m: &str| ParseRationalError {
            message: m.to_owned(),
        };
        match s.split_once('/') {
            None => {
                let n: i128 = s.trim().parse().map_err(|_| err(s))?;
                Ok(Rational::from_integer(n))
            }
            Some((a, b)) => {
                let n: i128 = a.trim().parse().map_err(|_| err(s))?;
                let d: i128 = b.trim().parse().map_err(|_| err(s))?;
                if d == 0 {
                    return Err(err("zero denominator"));
                }
                Ok(Rational::new(n, d))
            }
        }
    }
}

impl From<i64> for Rational {
    fn from(value: i64) -> Self {
        Rational::from_integer(value as i128)
    }
}

impl From<i32> for Rational {
    fn from(value: i32) -> Self {
        Rational::from_integer(value as i128)
    }
}

impl PartialOrd for Rational {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Rational {
    fn cmp(&self, other: &Self) -> Ordering {
        let lhs = self
            .num
            .checked_mul(other.den)
            .expect("rational comparison overflow");
        let rhs = other
            .num
            .checked_mul(self.den)
            .expect("rational comparison overflow");
        lhs.cmp(&rhs)
    }
}

impl Add for Rational {
    type Output = Rational;

    fn add(self, rhs: Rational) -> Rational {
        let num = self
            .num
            .checked_mul(rhs.den)
            .and_then(|a| rhs.num.checked_mul(self.den).and_then(|b| a.checked_add(b)))
            .expect("rational addition overflow");
        let den = self
            .den
            .checked_mul(rhs.den)
            .expect("rational addition overflow");
        Rational::new(num, den)
    }
}

impl AddAssign for Rational {
    fn add_assign(&mut self, rhs: Rational) {
        *self = *self + rhs;
    }
}

impl Sub for Rational {
    type Output = Rational;

    fn sub(self, rhs: Rational) -> Rational {
        self + (-rhs)
    }
}

impl SubAssign for Rational {
    fn sub_assign(&mut self, rhs: Rational) {
        *self = *self - rhs;
    }
}

impl Neg for Rational {
    type Output = Rational;

    fn neg(self) -> Rational {
        Rational {
            num: self.num.checked_neg().expect("rational negation overflow"),
            den: self.den,
        }
    }
}

impl Mul for Rational {
    type Output = Rational;

    fn mul(self, rhs: Rational) -> Rational {
        let num = self
            .num
            .checked_mul(rhs.num)
            .expect("rational multiplication overflow");
        let den = self
            .den
            .checked_mul(rhs.den)
            .expect("rational multiplication overflow");
        Rational::new(num, den)
    }
}

impl Div for Rational {
    type Output = Rational;

    #[allow(clippy::suspicious_arithmetic_impl)] // division via the reciprocal
    fn div(self, rhs: Rational) -> Rational {
        self * rhs.recip()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructs_in_lowest_terms() {
        let r = Rational::new(4, 8);
        assert_eq!(r.numerator(), 1);
        assert_eq!(r.denominator(), 2);
    }

    #[test]
    fn normalizes_sign_to_numerator() {
        let r = Rational::new(3, -9);
        assert_eq!(r, Rational::new(-1, 3));
        assert!(r.is_negative());
    }

    #[test]
    fn zero_has_canonical_form() {
        let r = Rational::new(0, -7);
        assert_eq!(r, Rational::ZERO);
        assert_eq!(r.denominator(), 1);
    }

    #[test]
    #[should_panic(expected = "denominator")]
    fn zero_denominator_panics() {
        let _ = Rational::new(1, 0);
    }

    #[test]
    fn arithmetic_matches_hand_computation() {
        let a = Rational::new(2, 3);
        let b = Rational::new(1, 6);
        assert_eq!(a + b, Rational::new(5, 6));
        assert_eq!(a - b, Rational::new(1, 2));
        assert_eq!(a * b, Rational::new(1, 9));
        assert_eq!(a / b, Rational::from_integer(4));
    }

    #[test]
    fn ordering_is_consistent() {
        let a = Rational::new(1, 3);
        let b = Rational::new(1, 2);
        assert!(a < b);
        assert!(b > a);
        assert_eq!(a.cmp(&a), Ordering::Equal);
    }

    #[test]
    fn recip_and_integer_roundtrip() {
        let a = Rational::new(3, 7);
        assert_eq!(a.recip(), Rational::new(7, 3));
        assert_eq!(Rational::from_integer(5).to_integer(), Some(5));
        assert_eq!(a.to_integer(), None);
    }

    #[test]
    fn parses_integer_and_fraction_literals() {
        assert_eq!(
            "42".parse::<Rational>().unwrap(),
            Rational::from_integer(42)
        );
        assert_eq!("-3/6".parse::<Rational>().unwrap(), Rational::new(-1, 2));
        assert!("1/0".parse::<Rational>().is_err());
        assert!("abc".parse::<Rational>().is_err());
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(Rational::new(-1, 2).to_string(), "-1/2");
        assert_eq!(Rational::from_integer(7).to_string(), "7");
    }
}
