//! Sparse Gaussian elimination with a variable elimination predicate.

use crate::{LinearRow, Rational};

/// Eliminates every variable for which `should_eliminate` returns `true`
/// from the given system of equations, returning only the resulting rows
/// that are completely free of eliminated variables.
///
/// This is the "sweep away the λ and κ variables" step of the invariant
/// derivation: rows that still depend on an eliminated variable after the
/// sweep merely *define* that variable and carry no information about the
/// kept variables, so they are dropped.  Trivial `0 = 0` rows are dropped
/// too.  Rows that reduce to `c = 0` with `c ≠ 0` are kept (callers treat
/// them as evidence of an inconsistent model).
///
/// # Examples
///
/// ```
/// use advocat_num::{eliminate, LinearRow};
///
/// // λ0 = λ1 + q      (flow through a queue)
/// // λ0 = κ0          (flow feeds transition firings)
/// // λ1 = κ0 - s      (transition firings drain into the state counter)
/// // Eliminating λ and κ leaves the cross-layer fact  q - s = 0.
/// let rows = vec![
///     LinearRow::from_terms([(0, 1), (1, -1), (10, -1)], 0),
///     LinearRow::from_terms([(0, 1), (2, -1)], 0),
///     LinearRow::from_terms([(1, 1), (2, -1), (11, 1)], 0),
/// ];
/// let kept = eliminate(rows, |v| v < 10);
/// assert_eq!(kept.len(), 1);
/// let inv = &kept[0];
/// assert!(inv.contains(10) && inv.contains(11));
/// ```
pub fn eliminate<F>(rows: Vec<LinearRow>, should_eliminate: F) -> Vec<LinearRow>
where
    F: Fn(usize) -> bool,
{
    let mut rows: Vec<LinearRow> = rows.into_iter().filter(|r| !r.is_zero()).collect();
    let mut kept: Vec<LinearRow> = Vec::new();

    loop {
        // Find a row that still mentions a variable to eliminate.
        let mut pivot_idx = None;
        let mut pivot_var = 0usize;
        'outer: for (idx, row) in rows.iter().enumerate() {
            for var in row.variables() {
                if should_eliminate(var) {
                    pivot_idx = Some(idx);
                    pivot_var = var;
                    break 'outer;
                }
            }
        }
        let Some(idx) = pivot_idx else { break };
        let mut pivot = rows.swap_remove(idx);
        let coef = pivot.coefficient(pivot_var);
        pivot.scale(coef.recip());
        // Remove pivot_var from every remaining row.
        for row in rows.iter_mut() {
            let c = row.coefficient(pivot_var);
            if !c.is_zero() {
                row.add_scaled(&pivot, -c);
            }
        }
        // The pivot row defines an eliminated variable; drop it.
    }

    for mut row in rows {
        if row.is_zero() {
            continue;
        }
        row.normalize_integral();
        if !kept.contains(&row) {
            kept.push(row);
        }
    }
    kept
}

/// Reduces a system of equations to reduced row-echelon form over the given
/// total variable ordering (lower index = earlier pivot), returning the
/// non-trivial rows.
///
/// This is exposed for diagnostics and tests; [`eliminate`] is the
/// production entry point.
pub fn reduce_to_echelon(rows: Vec<LinearRow>) -> Vec<LinearRow> {
    let mut rows: Vec<LinearRow> = rows.into_iter().filter(|r| !r.is_zero()).collect();
    let mut result: Vec<LinearRow> = Vec::new();

    // Collect all variables in increasing order.
    let mut vars: Vec<usize> = rows
        .iter()
        .flat_map(|r| r.variables().collect::<Vec<_>>())
        .collect();
    vars.sort_unstable();
    vars.dedup();

    for var in vars {
        let Some(idx) = rows.iter().position(|r| r.contains(var)) else {
            continue;
        };
        let mut pivot = rows.swap_remove(idx);
        let coef = pivot.coefficient(var);
        pivot.scale(coef.recip());
        for row in rows.iter_mut() {
            let c = row.coefficient(var);
            if !c.is_zero() {
                row.add_scaled(&pivot, -c);
            }
        }
        for row in result.iter_mut() {
            let c = row.coefficient(var);
            if !c.is_zero() {
                row.add_scaled(&pivot, -c);
            }
        }
        result.push(pivot);
        rows.retain(|r| !r.is_zero());
        if rows.is_empty() {
            break;
        }
    }
    // Any leftover rows are either trivial or inconsistent constants.
    for row in rows {
        if !row.is_zero() {
            result.push(row);
        }
    }
    result
}

/// Checks whether an assignment satisfies every equation in `rows`.
///
/// Convenience helper used by property tests: elimination must preserve all
/// solutions of the original system.
pub fn satisfies<F>(rows: &[LinearRow], mut value_of: F) -> bool
where
    F: FnMut(usize) -> Rational,
{
    rows.iter().all(|r| r.evaluate(&mut value_of).is_zero())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eliminate_simple_chain() {
        // x0 = x1, x1 = x2 + 1; eliminating x0 and x1 yields nothing about x2
        // except when a second path pins it: add x0 = 5.
        let rows = vec![
            LinearRow::from_terms([(0, 1), (1, -1)], 0),
            LinearRow::from_terms([(1, 1), (2, -1)], -1),
            LinearRow::from_terms([(0, 1)], -5),
        ];
        let kept = eliminate(rows, |v| v < 2);
        assert_eq!(kept.len(), 1);
        // x2 + 1 = 5  =>  x2 = 4.
        assert_eq!(kept[0].coefficient(2), Rational::ONE);
        assert_eq!(kept[0].constant(), Rational::from_integer(-4));
    }

    #[test]
    fn eliminate_drops_rows_still_containing_eliminated_vars() {
        // A single row mentioning an eliminated variable carries no
        // information about the kept variables.
        let rows = vec![LinearRow::from_terms([(0, 1), (5, 1)], 0)];
        let kept = eliminate(rows, |v| v == 0);
        assert!(kept.is_empty());
    }

    #[test]
    fn eliminate_deduplicates_equal_invariants() {
        let rows = vec![
            LinearRow::from_terms([(10, 1), (11, -1)], 0),
            LinearRow::from_terms([(10, 2), (11, -2)], 0),
        ];
        let kept = eliminate(rows, |_| false);
        assert_eq!(kept.len(), 1);
    }

    #[test]
    fn echelon_solves_small_system() {
        // x + y = 3, x - y = 1  =>  x = 2, y = 1.
        let rows = vec![
            LinearRow::from_terms([(0, 1), (1, 1)], -3),
            LinearRow::from_terms([(0, 1), (1, -1)], -1),
        ];
        let ech = reduce_to_echelon(rows);
        assert!(satisfies(&ech, |v| {
            Rational::from_integer(if v == 0 { 2 } else { 1 })
        }));
    }

    #[test]
    fn satisfies_rejects_wrong_assignment() {
        let rows = vec![LinearRow::from_terms([(0, 1)], -3)];
        assert!(!satisfies(&rows, |_| Rational::ZERO));
        assert!(satisfies(&rows, |_| Rational::from_integer(3)));
    }
}
