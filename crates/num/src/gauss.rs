//! Sparse Gaussian elimination with a variable elimination predicate.

use crate::{LinearRow, Rational};

/// Eliminates every variable for which `should_eliminate` returns `true`
/// from the given system of equations, returning only the resulting rows
/// that are completely free of eliminated variables.
///
/// This is the "sweep away the λ and κ variables" step of the invariant
/// derivation: rows that still depend on an eliminated variable after the
/// sweep merely *define* that variable and carry no information about the
/// kept variables, so they are dropped.  Trivial `0 = 0` rows are dropped
/// too.  Rows that reduce to `c = 0` with `c ≠ 0` are kept (callers treat
/// them as evidence of an inconsistent model).
///
/// # Examples
///
/// ```
/// use advocat_num::{eliminate, LinearRow};
///
/// // λ0 = λ1 + q      (flow through a queue)
/// // λ0 = κ0          (flow feeds transition firings)
/// // λ1 = κ0 - s      (transition firings drain into the state counter)
/// // Eliminating λ and κ leaves the cross-layer fact  q - s = 0.
/// let rows = vec![
///     LinearRow::from_terms([(0, 1), (1, -1), (10, -1)], 0),
///     LinearRow::from_terms([(0, 1), (2, -1)], 0),
///     LinearRow::from_terms([(1, 1), (2, -1), (11, 1)], 0),
/// ];
/// let kept = eliminate(rows, |v| v < 10);
/// assert_eq!(kept.len(), 1);
/// let inv = &kept[0];
/// assert!(inv.contains(10) && inv.contains(11));
/// ```
pub fn eliminate<F>(rows: Vec<LinearRow>, should_eliminate: F) -> Vec<LinearRow>
where
    F: Fn(usize) -> bool,
{
    // With no variable declared nonnegative the bound harvest is empty and
    // the shared elimination core produces exactly the equality output.
    eliminate_with_bounds(rows, should_eliminate, |_| false).equalities
}

/// The result of [`eliminate_with_bounds`]: the surviving equalities plus
/// the upper bounds harvested from the nonnegativity of eliminated
/// variables.
#[derive(Clone, Debug, Default)]
pub struct Elimination {
    /// Rows free of eliminated variables, read as `Σ aᵢ·xᵢ + c = 0` — the
    /// same output [`eliminate`] produces.
    pub equalities: Vec<LinearRow>,
    /// Rows free of eliminated variables, read as `Σ aᵢ·xᵢ + c ≤ 0`.
    ///
    /// Each bound is a fully back-substituted pivot definition: the
    /// elimination solved some row for an eliminated variable `e`, giving
    /// `e = −(Σ aᵢ·xᵢ + c)`; when `e` is known to be nonnegative (a flow
    /// or firing counter), the right-hand side must be nonnegative too,
    /// i.e. `Σ aᵢ·xᵢ + c ≤ 0`.  Equality elimination throws this
    /// information away — the defining rows "merely define" an eliminated
    /// variable — but as *inequalities* they survive as genuine invariants
    /// over the kept variables.
    pub bounds: Vec<LinearRow>,
}

/// [`eliminate`], additionally harvesting the upper bounds implied by the
/// nonnegativity of the eliminated variables (see [`Elimination::bounds`]).
///
/// `nonnegative(v)` must return `true` only when variable `v` cannot be
/// negative in any model of interest; bounds are derived only from pivots
/// on such variables, and bound rows still mentioning an eliminated
/// variable with a *negative* coefficient are discarded (dropping a
/// nonnegative term with a positive coefficient only weakens a `≤ 0` row,
/// dropping a negative one would not be sound).
///
/// # Examples
///
/// ```
/// use advocat_num::{eliminate_with_bounds, LinearRow};
///
/// // q = e  for a nonnegative flow counter e: the equality eliminates to
/// // nothing, but e ≥ 0 survives as the bound  −q ≤ 0  (q is nonneg).
/// let rows = vec![LinearRow::from_terms([(0, 1), (10, -1)], 0)];
/// let result = eliminate_with_bounds(rows, |v| v < 10, |v| v < 10);
/// assert!(result.equalities.is_empty());
/// assert_eq!(result.bounds.len(), 1);
/// assert_eq!(result.bounds[0].coefficient(10).to_integer(), Some(-1));
/// ```
pub fn eliminate_with_bounds<F, N>(
    rows: Vec<LinearRow>,
    should_eliminate: F,
    nonnegative: N,
) -> Elimination
where
    F: Fn(usize) -> bool,
    N: Fn(usize) -> bool,
{
    let mut rows: Vec<LinearRow> = rows.into_iter().filter(|r| !r.is_zero()).collect();
    // `(pivot var, defining row)` pairs; later pivots are substituted into
    // earlier definitions so every stored row ends up mentioning its own
    // pivot variable plus (possibly) eliminated variables that were never
    // chosen as pivots.
    let mut pivots: Vec<(usize, LinearRow)> = Vec::new();

    loop {
        let mut pivot_idx = None;
        let mut pivot_var = 0usize;
        'outer: for (idx, row) in rows.iter().enumerate() {
            for var in row.variables() {
                if should_eliminate(var) {
                    pivot_idx = Some(idx);
                    pivot_var = var;
                    break 'outer;
                }
            }
        }
        let Some(idx) = pivot_idx else { break };
        let mut pivot = rows.swap_remove(idx);
        let coef = pivot.coefficient(pivot_var);
        pivot.scale(coef.recip());
        for row in rows.iter_mut() {
            let c = row.coefficient(pivot_var);
            if !c.is_zero() {
                row.add_scaled(&pivot, -c);
            }
        }
        for (_, row) in pivots.iter_mut() {
            let c = row.coefficient(pivot_var);
            if !c.is_zero() {
                row.add_scaled(&pivot, -c);
            }
        }
        pivots.push((pivot_var, pivot));
    }

    let mut equalities: Vec<LinearRow> = Vec::new();
    for mut row in rows {
        if row.is_zero() {
            continue;
        }
        row.normalize_integral();
        if !equalities.contains(&row) {
            equalities.push(row);
        }
    }

    let mut bounds: Vec<LinearRow> = Vec::new();
    'pivot: for (var, mut row) in pivots {
        if !nonnegative(var) {
            continue;
        }
        // `row` is  var + rest = 0  with var ≥ 0, so  rest ≤ 0.  Any other
        // eliminated variable still present was never pivoted (a free
        // variable of the system): drop it when that only weakens the
        // bound, give up otherwise.
        row.add_term(var, Rational::from_integer(-1));
        let residual: Vec<(usize, Rational)> =
            row.iter().filter(|(v, _)| should_eliminate(*v)).collect();
        for (v, coef) in residual {
            if nonnegative(v) && !coef.is_negative() {
                row.add_term(v, -coef);
            } else {
                continue 'pivot;
            }
        }
        if row.is_empty() {
            continue;
        }
        row.normalize_integral_signed();
        let negation = {
            let mut neg = row.clone();
            neg.scale(Rational::from_integer(-1));
            neg
        };
        // Skip bounds an equality already implies, and dedup.
        if equalities.contains(&row) || equalities.contains(&negation) || bounds.contains(&row) {
            continue;
        }
        bounds.push(row);
    }

    Elimination { equalities, bounds }
}

/// Reduces a system of equations to reduced row-echelon form over the given
/// total variable ordering (lower index = earlier pivot), returning the
/// non-trivial rows.
///
/// This is exposed for diagnostics and tests; [`eliminate`] is the
/// production entry point.
pub fn reduce_to_echelon(rows: Vec<LinearRow>) -> Vec<LinearRow> {
    let mut rows: Vec<LinearRow> = rows.into_iter().filter(|r| !r.is_zero()).collect();
    let mut result: Vec<LinearRow> = Vec::new();

    // Collect all variables in increasing order.
    let mut vars: Vec<usize> = rows
        .iter()
        .flat_map(|r| r.variables().collect::<Vec<_>>())
        .collect();
    vars.sort_unstable();
    vars.dedup();

    for var in vars {
        let Some(idx) = rows.iter().position(|r| r.contains(var)) else {
            continue;
        };
        let mut pivot = rows.swap_remove(idx);
        let coef = pivot.coefficient(var);
        pivot.scale(coef.recip());
        for row in rows.iter_mut() {
            let c = row.coefficient(var);
            if !c.is_zero() {
                row.add_scaled(&pivot, -c);
            }
        }
        for row in result.iter_mut() {
            let c = row.coefficient(var);
            if !c.is_zero() {
                row.add_scaled(&pivot, -c);
            }
        }
        result.push(pivot);
        rows.retain(|r| !r.is_zero());
        if rows.is_empty() {
            break;
        }
    }
    // Any leftover rows are either trivial or inconsistent constants.
    for row in rows {
        if !row.is_zero() {
            result.push(row);
        }
    }
    result
}

/// Checks whether an assignment satisfies every equation in `rows`.
///
/// Convenience helper used by property tests: elimination must preserve all
/// solutions of the original system.
pub fn satisfies<F>(rows: &[LinearRow], mut value_of: F) -> bool
where
    F: FnMut(usize) -> Rational,
{
    rows.iter().all(|r| r.evaluate(&mut value_of).is_zero())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eliminate_simple_chain() {
        // x0 = x1, x1 = x2 + 1; eliminating x0 and x1 yields nothing about x2
        // except when a second path pins it: add x0 = 5.
        let rows = vec![
            LinearRow::from_terms([(0, 1), (1, -1)], 0),
            LinearRow::from_terms([(1, 1), (2, -1)], -1),
            LinearRow::from_terms([(0, 1)], -5),
        ];
        let kept = eliminate(rows, |v| v < 2);
        assert_eq!(kept.len(), 1);
        // x2 + 1 = 5  =>  x2 = 4.
        assert_eq!(kept[0].coefficient(2), Rational::ONE);
        assert_eq!(kept[0].constant(), Rational::from_integer(-4));
    }

    #[test]
    fn eliminate_drops_rows_still_containing_eliminated_vars() {
        // A single row mentioning an eliminated variable carries no
        // information about the kept variables.
        let rows = vec![LinearRow::from_terms([(0, 1), (5, 1)], 0)];
        let kept = eliminate(rows, |v| v == 0);
        assert!(kept.is_empty());
    }

    #[test]
    fn eliminate_deduplicates_equal_invariants() {
        let rows = vec![
            LinearRow::from_terms([(10, 1), (11, -1)], 0),
            LinearRow::from_terms([(10, 2), (11, -2)], 0),
        ];
        let kept = eliminate(rows, |_| false);
        assert_eq!(kept.len(), 1);
    }

    #[test]
    fn echelon_solves_small_system() {
        // x + y = 3, x - y = 1  =>  x = 2, y = 1.
        let rows = vec![
            LinearRow::from_terms([(0, 1), (1, 1)], -3),
            LinearRow::from_terms([(0, 1), (1, -1)], -1),
        ];
        let ech = reduce_to_echelon(rows);
        assert!(satisfies(&ech, |v| {
            Rational::from_integer(if v == 0 { 2 } else { 1 })
        }));
    }

    #[test]
    fn satisfies_rejects_wrong_assignment() {
        let rows = vec![LinearRow::from_terms([(0, 1)], -3)];
        assert!(!satisfies(&rows, |_| Rational::ZERO));
        assert!(satisfies(&rows, |_| Rational::from_integer(3)));
    }
}
