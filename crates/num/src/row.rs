//! Sparse linear rows (equations of the form `Σ aᵢ·xᵢ + c = 0`).

use std::collections::BTreeMap;
use std::fmt;

use crate::Rational;

/// A sparse linear equation `Σ aᵢ·xᵢ + c = 0` over variables identified by
/// `usize` indices.
///
/// Rows are the unit of work of the invariant-derivation pipeline: every
/// xMAS primitive and every XMAS automaton contributes a handful of rows,
/// and Gaussian elimination ([`crate::eliminate`]) removes the variables we
/// are not interested in.
///
/// # Examples
///
/// ```
/// use advocat_num::{LinearRow, Rational};
///
/// let mut row = LinearRow::new();
/// row.add_term(3, Rational::from_integer(2));
/// row.add_term(3, Rational::from_integer(-2));
/// assert!(row.is_zero());
///
/// let row = LinearRow::from_terms([(0, 1), (1, -1)], 5);
/// assert_eq!(row.coefficient(0), Rational::ONE);
/// assert_eq!(row.constant(), Rational::from_integer(5));
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct LinearRow {
    terms: BTreeMap<usize, Rational>,
    constant: Rational,
}

impl LinearRow {
    /// Creates an empty row (the trivially true equation `0 = 0`).
    pub fn new() -> Self {
        LinearRow {
            terms: BTreeMap::new(),
            constant: Rational::ZERO,
        }
    }

    /// Creates a row from integer coefficients and an integer constant.
    pub fn from_terms<I>(terms: I, constant: i128) -> Self
    where
        I: IntoIterator<Item = (usize, i128)>,
    {
        let mut row = LinearRow::new();
        for (var, coef) in terms {
            row.add_term(var, Rational::from_integer(coef));
        }
        row.add_constant(Rational::from_integer(constant));
        row
    }

    /// Adds `coef · x_var` to the row, removing the term if it cancels.
    pub fn add_term(&mut self, var: usize, coef: Rational) {
        if coef.is_zero() {
            return;
        }
        let entry = self.terms.entry(var).or_insert(Rational::ZERO);
        *entry += coef;
        if entry.is_zero() {
            self.terms.remove(&var);
        }
    }

    /// Adds a constant to the row.
    pub fn add_constant(&mut self, value: Rational) {
        self.constant += value;
    }

    /// Returns the coefficient of `var` (zero when absent).
    pub fn coefficient(&self, var: usize) -> Rational {
        self.terms.get(&var).copied().unwrap_or(Rational::ZERO)
    }

    /// Returns the constant term.
    pub fn constant(&self) -> Rational {
        self.constant
    }

    /// Returns `true` when the row has no variable terms and no constant.
    pub fn is_zero(&self) -> bool {
        self.terms.is_empty() && self.constant.is_zero()
    }

    /// Returns `true` when the row has no variable terms but a non-zero
    /// constant: the equation `c = 0` with `c ≠ 0` is inconsistent.
    pub fn is_inconsistent(&self) -> bool {
        self.terms.is_empty() && !self.constant.is_zero()
    }

    /// Returns the number of variable terms.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// Returns `true` when the row has no variable terms.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// Returns `true` when the row mentions `var`.
    pub fn contains(&self, var: usize) -> bool {
        self.terms.contains_key(&var)
    }

    /// Iterates over `(variable, coefficient)` pairs in increasing variable
    /// order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, Rational)> + '_ {
        self.terms.iter().map(|(v, c)| (*v, *c))
    }

    /// Returns the set of variables mentioned by the row.
    pub fn variables(&self) -> impl Iterator<Item = usize> + '_ {
        self.terms.keys().copied()
    }

    /// Multiplies the whole row (terms and constant) by `factor`.
    pub fn scale(&mut self, factor: Rational) {
        if factor.is_zero() {
            self.terms.clear();
            self.constant = Rational::ZERO;
            return;
        }
        for coef in self.terms.values_mut() {
            *coef = *coef * factor;
        }
        self.constant = self.constant * factor;
    }

    /// Adds `factor · other` to `self`.
    pub fn add_scaled(&mut self, other: &LinearRow, factor: Rational) {
        if factor.is_zero() {
            return;
        }
        for (var, coef) in other.iter() {
            self.add_term(var, coef * factor);
        }
        self.add_constant(other.constant * factor);
    }

    /// Normalises the row so that its leading (lowest-index) coefficient is
    /// `1`.  Leaves empty rows untouched.
    pub fn normalize_leading(&mut self) {
        if let Some((_, lead)) = self.terms.iter().next().map(|(v, c)| (*v, *c)) {
            let inv = lead.recip();
            self.scale(inv);
        }
    }

    /// Normalises the row so that all coefficients are integers with overall
    /// gcd 1 and the leading coefficient is positive.  This produces the
    /// human-friendly form used when printing invariants.
    pub fn normalize_integral(&mut self) {
        if self.terms.is_empty() {
            return;
        }
        // Scale by the lcm of all denominators.
        let mut lcm: i128 = 1;
        for (_, c) in self.iter() {
            lcm = lcm_i128(lcm, c.denominator());
        }
        lcm = lcm_i128(lcm, self.constant.denominator());
        self.scale(Rational::from_integer(lcm));
        // Divide by the gcd of all numerators.
        let mut g: i128 = 0;
        for (_, c) in self.iter() {
            g = gcd_i128(g, c.numerator().abs());
        }
        if !self.constant.is_zero() {
            g = gcd_i128(g, self.constant.numerator().abs());
        }
        if g > 1 {
            self.scale(Rational::new(1, g));
        }
        // Make the leading coefficient positive.
        if let Some((_, lead)) = self.terms.iter().next().map(|(v, c)| (*v, *c)) {
            if lead.is_negative() {
                self.scale(Rational::from_integer(-1));
            }
        }
    }

    /// Normalises the row to integer coefficients with overall gcd 1,
    /// **without** flipping the sign — the variant for rows read as
    /// inequalities (`Σ aᵢ·xᵢ + c ≤ 0`), where negating the row would
    /// reverse the relation.
    pub fn normalize_integral_signed(&mut self) {
        if self.terms.is_empty() {
            return;
        }
        let mut lcm: i128 = 1;
        for (_, c) in self.iter() {
            lcm = lcm_i128(lcm, c.denominator());
        }
        lcm = lcm_i128(lcm, self.constant.denominator());
        self.scale(Rational::from_integer(lcm));
        let mut g: i128 = 0;
        for (_, c) in self.iter() {
            g = gcd_i128(g, c.numerator().abs());
        }
        if !self.constant.is_zero() {
            g = gcd_i128(g, self.constant.numerator().abs());
        }
        if g > 1 {
            self.scale(Rational::new(1, g));
        }
    }

    /// Evaluates the row under an assignment, returning `Σ aᵢ·xᵢ + c`.
    pub fn evaluate<F>(&self, mut value_of: F) -> Rational
    where
        F: FnMut(usize) -> Rational,
    {
        let mut acc = self.constant;
        for (var, coef) in self.iter() {
            acc += coef * value_of(var);
        }
        acc
    }

    /// Renders the row as an equation using a caller-provided variable namer.
    pub fn display_with<F>(&self, mut name_of: F) -> String
    where
        F: FnMut(usize) -> String,
    {
        let mut out = String::new();
        let mut first = true;
        for (var, coef) in self.iter() {
            let name = name_of(var);
            if first {
                if coef == Rational::ONE {
                    out.push_str(&name);
                } else if coef == Rational::from_integer(-1) {
                    out.push_str(&format!("-{name}"));
                } else {
                    out.push_str(&format!("{coef}·{name}"));
                }
                first = false;
            } else if coef.is_negative() {
                let a = -coef;
                if a == Rational::ONE {
                    out.push_str(&format!(" - {name}"));
                } else {
                    out.push_str(&format!(" - {a}·{name}"));
                }
            } else if coef == Rational::ONE {
                out.push_str(&format!(" + {name}"));
            } else {
                out.push_str(&format!(" + {coef}·{name}"));
            }
        }
        if first {
            out.push('0');
        }
        out.push_str(&format!(" = {}", -self.constant));
        out
    }
}

impl fmt::Display for LinearRow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.display_with(|v| format!("x{v}")))
    }
}

impl FromIterator<(usize, Rational)> for LinearRow {
    fn from_iter<T: IntoIterator<Item = (usize, Rational)>>(iter: T) -> Self {
        let mut row = LinearRow::new();
        for (var, coef) in iter {
            row.add_term(var, coef);
        }
        row
    }
}

fn gcd_i128(a: i128, b: i128) -> i128 {
    let (mut a, mut b) = (a.abs(), b.abs());
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a.max(1)
}

fn lcm_i128(a: i128, b: i128) -> i128 {
    a / gcd_i128(a, b) * b
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn terms_cancel_and_disappear() {
        let mut row = LinearRow::new();
        row.add_term(2, Rational::from_integer(3));
        row.add_term(2, Rational::from_integer(-3));
        assert!(row.is_zero());
        assert!(!row.contains(2));
    }

    #[test]
    fn add_scaled_combines_rows() {
        let a = LinearRow::from_terms([(0, 1), (1, 2)], 3);
        let mut b = LinearRow::from_terms([(0, -2), (2, 1)], 0);
        b.add_scaled(&a, Rational::from_integer(2));
        assert_eq!(b.coefficient(0), Rational::ZERO);
        assert_eq!(b.coefficient(1), Rational::from_integer(4));
        assert_eq!(b.coefficient(2), Rational::ONE);
        assert_eq!(b.constant(), Rational::from_integer(6));
    }

    #[test]
    fn inconsistent_row_detected() {
        let row = LinearRow::from_terms([], 4);
        assert!(row.is_inconsistent());
        assert!(!LinearRow::new().is_inconsistent());
    }

    #[test]
    fn normalize_integral_produces_coprime_integer_coefficients() {
        let mut row = LinearRow::new();
        row.add_term(0, Rational::new(2, 3));
        row.add_term(1, Rational::new(-4, 3));
        row.add_constant(Rational::new(2, 3));
        row.normalize_integral();
        assert_eq!(row.coefficient(0), Rational::ONE);
        assert_eq!(row.coefficient(1), Rational::from_integer(-2));
        assert_eq!(row.constant(), Rational::ONE);
    }

    #[test]
    fn normalize_integral_makes_leading_positive() {
        let mut row = LinearRow::from_terms([(5, -2), (7, 2)], 0);
        row.normalize_integral();
        assert_eq!(row.coefficient(5), Rational::ONE);
        assert_eq!(row.coefficient(7), Rational::from_integer(-1));
    }

    #[test]
    fn evaluate_applies_assignment() {
        let row = LinearRow::from_terms([(0, 2), (1, -1)], 1);
        let value = row.evaluate(|v| Rational::from_integer(v as i128 + 1));
        // 2*1 - 2 + 1 = 1
        assert_eq!(value, Rational::ONE);
    }

    #[test]
    fn display_is_readable() {
        let row = LinearRow::from_terms([(0, 1), (1, -2)], -3);
        assert_eq!(row.to_string(), "x0 - 2·x1 = 3");
        assert_eq!(LinearRow::from_terms([], 0).to_string(), "0 = 0");
    }
}
