//! The artificial MI protocol of Fig. 2 of the paper.
//!
//! * **L2 cache** (Fig. 2a): on a load/store miss the cache sends `getX` to
//!   the directory and considers itself the owner (`M`).  When it receives
//!   an `inv` from the directory, or when the core triggers a replacement,
//!   it flushes the block, notifies the directory with `putX` and waits in
//!   the intermediate state `MI` for the directory's `ack`.
//! * **Directory** (Fig. 2b): waits in `I` for a `getX`, records the owner
//!   (`M(c)`), may decide *at any time* to invalidate the owner (moving to
//!   `MI(c)`), and returns to `I` with an `ack` once the owner's `putX`
//!   arrives.
//!
//! Data transfer, cache-to-cache forwarding, nacks and virtual channels are
//! deliberately omitted, exactly as in the paper's initial case study.

use advocat_automata::AutomatonBuilder;
use advocat_xmas::{ColorId, Network, Packet};

use crate::spec::{AgentSpec, Role};

/// The abstract directory-based MI protocol (Fig. 2).
///
/// # Examples
///
/// ```
/// use advocat_protocols::AbstractMi;
/// use advocat_xmas::Network;
///
/// let protocol = AbstractMi::new(4, 3);
/// let mut net = Network::new();
/// let cache = protocol.cache_agent(&mut net, 0);
/// let directory = protocol.directory_agent(&mut net);
/// assert_eq!(cache.automaton.state_count(), 3);
/// // I + M(c) + MI(c) for each of the three caches.
/// assert_eq!(directory.automaton.state_count(), 1 + 2 * 3);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AbstractMi {
    num_nodes: u32,
    directory: u32,
}

impl AbstractMi {
    /// Creates a protocol instance for `num_nodes` mesh nodes with the
    /// directory at node `directory`; all other nodes host caches.
    ///
    /// # Panics
    ///
    /// Panics if `directory >= num_nodes` or there are fewer than two nodes.
    pub fn new(num_nodes: u32, directory: u32) -> Self {
        assert!(num_nodes >= 2, "a mesh needs at least two nodes");
        assert!(directory < num_nodes, "directory must be one of the nodes");
        AbstractMi {
            num_nodes,
            directory,
        }
    }

    /// The message kinds exchanged over the fabric.
    pub fn message_kinds() -> [&'static str; 4] {
        ["getX", "putX", "inv", "ack"]
    }

    /// Returns the node hosting the directory.
    pub fn directory_node(&self) -> u32 {
        self.directory
    }

    /// Returns the number of nodes (caches plus directory).
    pub fn num_nodes(&self) -> u32 {
        self.num_nodes
    }

    /// Iterates over the cache nodes.
    pub fn cache_nodes(&self) -> impl Iterator<Item = u32> + '_ {
        (0..self.num_nodes).filter(move |n| *n != self.directory)
    }

    /// Returns the role of a node.
    pub fn role_of(&self, node: u32) -> Role {
        if node == self.directory {
            Role::Directory
        } else {
            Role::Cache
        }
    }

    fn get_x(&self, net: &mut Network, cache: u32) -> ColorId {
        net.intern(
            Packet::kind("getX")
                .with_src(cache)
                .with_dst(self.directory),
        )
    }

    fn put_x(&self, net: &mut Network, cache: u32) -> ColorId {
        net.intern(
            Packet::kind("putX")
                .with_src(cache)
                .with_dst(self.directory),
        )
    }

    fn inv(&self, net: &mut Network, cache: u32) -> ColorId {
        net.intern(Packet::kind("inv").with_src(self.directory).with_dst(cache))
    }

    fn ack(&self, net: &mut Network, cache: u32) -> ColorId {
        net.intern(Packet::kind("ack").with_src(self.directory).with_dst(cache))
    }

    /// Builds the L2-cache agent of Fig. 2a for `cache`.
    ///
    /// Ports: in 0 = network ejection, in 1 = core triggers,
    /// out 0 = network injection.
    ///
    /// # Panics
    ///
    /// Panics if `cache` is the directory node.
    pub fn cache_agent(&self, net: &mut Network, cache: u32) -> AgentSpec {
        assert_ne!(cache, self.directory, "the directory node hosts no cache");
        let get_x = self.get_x(net, cache);
        let put_x = self.put_x(net, cache);
        let inv = self.inv(net, cache);
        let ack = self.ack(net, cache);
        let miss = net.intern(Packet::kind("miss").with_src(cache));
        let repl = net.intern(Packet::kind("repl").with_src(cache));

        let mut b = AutomatonBuilder::new(format!("cache{cache}"), 2, 1);
        let i = b.state("I");
        let m = b.state("M");
        let mi = b.state("MI");
        b.set_initial(i);
        // I --miss?/getX!--> M
        b.on_packet(i, m, 1, miss, Some((0, get_x)));
        // M --repl?/putX!--> MI  and  M --inv?/putX!--> MI
        b.on_packet(m, mi, 1, repl, Some((0, put_x)));
        b.on_packet(m, mi, 0, inv, Some((0, put_x)));
        // MI --ack?--> I
        b.on_packet(mi, i, 0, ack, None);
        // Stale invalidations (the cache already gave the block up via a
        // replacement) are silently dropped; without these transitions
        // unconsumable `inv`s could fill the ejection queue and deadlock the
        // system at *every* queue size.
        b.on_packet(i, i, 0, inv, None);
        b.on_packet(mi, mi, 0, inv, None);
        let automaton = b
            .build()
            .expect("abstract MI cache automaton is well-formed");

        AgentSpec {
            automaton,
            net_in: 0,
            net_out: 0,
            core_in: Some(1),
            core_triggers: vec![miss, repl],
            aux_out: None,
        }
    }

    /// Builds the directory agent of Fig. 2b.
    ///
    /// Ports: in 0 = network ejection, out 0 = network injection.
    pub fn directory_agent(&self, net: &mut Network) -> AgentSpec {
        let caches: Vec<u32> = self.cache_nodes().collect();
        let mut b = AutomatonBuilder::new("dir", 1, 1);
        let i = b.state("I");
        b.set_initial(i);
        for &c in &caches {
            let m_c = b.state(format!("M({c})"));
            let mi_c = b.state(format!("MI({c})"));
            let get_x = self.get_x(net, c);
            let put_x = self.put_x(net, c);
            let inv = self.inv(net, c);
            let ack = self.ack(net, c);
            // I --getX(c)?--> M(c)
            b.on_packet(i, m_c, 0, get_x, None);
            // M(c) --(internal choice)/inv(c)!--> MI(c)
            b.spontaneous_emit(m_c, mi_c, 0, inv);
            // M(c) --putX(c)?/ack(c)!--> I   (replacement initiated by the core)
            b.on_packet(m_c, i, 0, put_x, Some((0, ack)));
            // MI(c) --putX(c)?/ack(c)!--> I
            b.on_packet(mi_c, i, 0, put_x, Some((0, ack)));
        }
        let automaton = b
            .build()
            .expect("abstract MI directory automaton is well-formed");
        AgentSpec {
            automaton,
            net_in: 0,
            net_out: 0,
            core_in: None,
            core_triggers: Vec::new(),
            aux_out: None,
        }
    }

    /// Builds the agent for an arbitrary node according to its role.
    pub fn agent(&self, net: &mut Network, node: u32) -> AgentSpec {
        match self.role_of(node) {
            Role::Cache => self.cache_agent(net, node),
            Role::Directory => self.directory_agent(net),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_automaton_matches_fig_2a() {
        let protocol = AbstractMi::new(4, 0);
        let mut net = Network::new();
        let spec = protocol.cache_agent(&mut net, 2);
        let a = &spec.automaton;
        assert_eq!(a.state_count(), 3);
        // Four protocol transitions of Fig. 2a plus two stale-inv drops.
        assert_eq!(a.transition_count(), 6);
        assert_eq!(a.state_name(a.initial()), "I");
        assert!(spec.needs_core_source());
        // The cache accepts inv and ack from the network port.
        let inv = net
            .colors()
            .lookup(&Packet::kind("inv").with_src(0).with_dst(2))
            .unwrap();
        let ack = net
            .colors()
            .lookup(&Packet::kind("ack").with_src(0).with_dst(2))
            .unwrap();
        assert!(a.ever_accepts(0, inv));
        assert!(a.ever_accepts(0, ack));
        // It emits getX and putX towards the directory.
        let get_x = net
            .colors()
            .lookup(&Packet::kind("getX").with_src(2).with_dst(0))
            .unwrap();
        assert!(a.ever_emits(0, get_x));
    }

    #[test]
    fn directory_automaton_has_two_states_per_cache() {
        let protocol = AbstractMi::new(9, 4);
        let mut net = Network::new();
        let spec = protocol.directory_agent(&mut net);
        assert_eq!(spec.automaton.state_count(), 1 + 2 * 8);
        // getX from each cache, putX from each cache (×2 states) and one
        // spontaneous invalidation per cache.
        assert_eq!(spec.automaton.transition_count(), 8 * 4);
        assert!(!spec.needs_core_source());
    }

    #[test]
    fn roles_partition_the_nodes() {
        let protocol = AbstractMi::new(4, 3);
        assert_eq!(protocol.role_of(3), Role::Directory);
        assert_eq!(protocol.role_of(0), Role::Cache);
        assert_eq!(protocol.cache_nodes().count(), 3);
        assert_eq!(protocol.directory_node(), 3);
    }

    #[test]
    #[should_panic(expected = "no cache")]
    fn cache_agent_for_directory_node_panics() {
        let protocol = AbstractMi::new(4, 1);
        let mut net = Network::new();
        let _ = protocol.cache_agent(&mut net, 1);
    }

    #[test]
    fn message_kinds_are_the_four_of_the_paper() {
        assert_eq!(AbstractMi::message_kinds(), ["getX", "putX", "inv", "ack"]);
    }
}
