//! Message classes for virtual-channel assignment.

/// The virtual-channel class of a coherence message.
///
/// The paper's common remedy attempt — "add virtual channels for different
/// message types" — separates request-class traffic (cache → directory)
/// from response-class traffic (directory/owner → cache).  Fabric
/// generators map each class to its own set of link queues.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum MessageClass {
    /// Requests travelling towards the directory (`getX`, `putX`, `GetM`,
    /// `PutM`, `DmaReq`; for MESI `GetS`, `GetX`, `Upg`, `PutS`, `PutX`).
    Request,
    /// Responses and directory-initiated traffic (`inv`, `ack`, `Data`,
    /// `FwdGetM`, `WBAck`, `Nack`; for MESI `Inv`, `Ack`, `DataS`,
    /// `DataE`, `DataX`).
    Response,
}

impl MessageClass {
    /// Returns the virtual-channel plane index of this class.
    pub fn plane(self) -> usize {
        match self {
            MessageClass::Request => 0,
            MessageClass::Response => 1,
        }
    }

    /// Classifies a message kind (shared by all protocol families).
    pub fn of_kind(kind: &str) -> MessageClass {
        match kind {
            "getX" | "putX" | "GetM" | "PutM" | "DmaReq" | "GetS" | "GetX" | "Upg" | "PutS"
            | "PutX" => MessageClass::Request,
            _ => MessageClass::Response,
        }
    }

    /// Number of planes used when virtual channels are enabled.
    pub const PLANES: usize = 2;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_and_responses_map_to_distinct_planes() {
        assert_eq!(MessageClass::of_kind("getX"), MessageClass::Request);
        assert_eq!(MessageClass::of_kind("PutM"), MessageClass::Request);
        assert_eq!(MessageClass::of_kind("inv"), MessageClass::Response);
        assert_eq!(MessageClass::of_kind("Data"), MessageClass::Response);
        assert_ne!(
            MessageClass::Request.plane(),
            MessageClass::Response.plane()
        );
        assert!(MessageClass::Request.plane() < MessageClass::PLANES);
    }
}
