//! Agent specifications shared by all protocols.

use advocat_automata::XmasAutomaton;
use advocat_xmas::ColorId;

/// The role an agent plays at a mesh node.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Role {
    /// An L2 cache controller.
    Cache,
    /// The (single) directory controller.
    Directory,
}

/// A protocol agent ready to be attached to a fabric node.
///
/// The fabric generator connects
///
/// * out-port [`AgentSpec::net_out`] to the node's injection logic,
/// * in-port [`AgentSpec::net_in`] to the node's ejection logic,
/// * in-port [`AgentSpec::core_in`] (when present) to a local fair source
///   injecting [`AgentSpec::core_triggers`] (core-side misses and
///   replacements, or DMA requests for the directory),
/// * out-port [`AgentSpec::aux_out`] (when present) to a local fair sink
///   (e.g. DMA completions that leave the coherence fabric).
#[derive(Clone, Debug)]
pub struct AgentSpec {
    /// The agent automaton.
    pub automaton: XmasAutomaton,
    /// In-port receiving packets from the network.
    pub net_in: usize,
    /// Out-port injecting packets into the network.
    pub net_out: usize,
    /// In-port fed by a local trigger source, if any.
    pub core_in: Option<usize>,
    /// Colors the local trigger source injects.
    pub core_triggers: Vec<ColorId>,
    /// Out-port drained by a local fair sink, if any.
    pub aux_out: Option<usize>,
}

impl AgentSpec {
    /// Returns `true` when the agent needs a local trigger source.
    pub fn needs_core_source(&self) -> bool {
        self.core_in.is_some() && !self.core_triggers.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use advocat_automata::AutomatonBuilder;

    #[test]
    fn needs_core_source_requires_port_and_triggers() {
        let mut b = AutomatonBuilder::new("a", 1, 1);
        b.state("only");
        let automaton = b.build().unwrap();
        let spec = AgentSpec {
            automaton: automaton.clone(),
            net_in: 0,
            net_out: 0,
            core_in: None,
            core_triggers: Vec::new(),
            aux_out: None,
        };
        assert!(!spec.needs_core_source());
        let spec = AgentSpec {
            automaton,
            net_in: 0,
            net_out: 0,
            core_in: Some(1),
            core_triggers: Vec::new(),
            aux_out: None,
        };
        assert!(!spec.needs_core_source());
    }
}
