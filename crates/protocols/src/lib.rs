//! Directory-based cache-coherence protocols modelled as XMAS automata.
//!
//! The ADVOCAT case study (Section 5) places two MI protocols on a 2D
//! mesh; the crate has since grown a MESI family with shared states:
//!
//! * [`AbstractMi`] — the deliberately minimal protocol of Fig. 2: an L2
//!   cache with states `I`, `M`, `MI` and a directory with states `I`,
//!   `M(c)`, `MI(c)`, exchanging four message kinds (`getX`, `putX`, `inv`,
//!   `ack`).  Data transfer, forwarding and nacks are omitted; this is the
//!   protocol on which the paper exhibits the cross-layer deadlock of
//!   Fig. 3 when queues are too small.
//! * [`FullMi`] — a GEM5-inspired MI protocol with a five-state L2 cache,
//!   a `4 + n`-state directory, cache-to-cache forwarding, nacks,
//!   replacement acknowledgments and a DMA engine, using eight message
//!   kinds.
//! * [`Mesi`] — a four-stable-state (I/S/E/M) cache with transient states
//!   for upgrade, downgrade and writeback races, and a *counting*
//!   directory whose `S(k)` states track a bounded sharer set.  Ten
//!   message kinds, broadcast invalidation sweeps, and a directory whose
//!   state count grows quadratically with the cache count — the protocol
//!   family that stresses the invariant generator with shared states.
//!
//! All protocols expose the same interface: given a mutable
//! [`advocat_xmas::Network`] (for interning packet colors) they produce an
//! [`AgentSpec`] per node — the agent automaton plus the description of how
//! its ports attach to the fabric and to local trigger sources.  The
//! `advocat-noc` crate consumes these specs when generating a fabric.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod abstract_mi;
mod full_mi;
mod mesi;
mod messages;
mod spec;

pub use abstract_mi::AbstractMi;
pub use full_mi::FullMi;
pub use mesi::Mesi;
pub use messages::MessageClass;
pub use spec::{AgentSpec, Role};
