//! A GEM5-inspired MI protocol (Section 5, "MI Protocol").
//!
//! Compared to the abstract protocol of Fig. 2 this version adds the
//! features the paper lists for its GEM5-derived model:
//!
//! * **data transfer** — the directory or the current owner answers a
//!   `GetM` with a `Data` message,
//! * **cache-to-cache forwarding** — on a `GetM` for an owned block the
//!   directory forwards the request (`FwdGetM`) to the owner, which sends
//!   `Data` directly to the requester,
//! * **acking/nacking of replacements** — a `PutM` is answered with
//!   `WBAck` (accepted) or `Nack` (stale, e.g. ownership already moved),
//! * **DMA accesses** — a DMA engine issues `DmaReq`s to the directory,
//!   which invalidates the current owner before completing the access.
//!
//! The L2 cache has five states (`I`, `IM`, `M`, `MI`, `II`), the directory
//! `4 + n` states (`I`, `M(c)` per cache, `MI`, `MA`, `MD`) and eight
//! message kinds are used, matching the counts reported in the paper.

use advocat_automata::AutomatonBuilder;
use advocat_xmas::{ColorId, Network, Packet};

use crate::spec::{AgentSpec, Role};

/// The GEM5-inspired MI protocol with forwarding, nacks and DMA.
///
/// # Examples
///
/// ```
/// use advocat_protocols::FullMi;
/// use advocat_xmas::Network;
///
/// let protocol = FullMi::new(4, 3);
/// let mut net = Network::new();
/// let cache = protocol.cache_agent(&mut net, 0);
/// let directory = protocol.directory_agent(&mut net);
/// assert_eq!(cache.automaton.state_count(), 5);
/// assert_eq!(directory.automaton.state_count(), 4 + 3);
/// assert_eq!(FullMi::message_kinds().len(), 8);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FullMi {
    num_nodes: u32,
    directory: u32,
}

impl FullMi {
    /// Creates a protocol instance for `num_nodes` mesh nodes with the
    /// directory (and the DMA engine attached to it) at node `directory`.
    ///
    /// # Panics
    ///
    /// Panics if `directory >= num_nodes` or there are fewer than two nodes.
    pub fn new(num_nodes: u32, directory: u32) -> Self {
        assert!(num_nodes >= 2, "a mesh needs at least two nodes");
        assert!(directory < num_nodes, "directory must be one of the nodes");
        FullMi {
            num_nodes,
            directory,
        }
    }

    /// The eight message kinds exchanged by the protocol.
    pub fn message_kinds() -> [&'static str; 8] {
        [
            "GetM", "PutM", "FwdGetM", "Inv", "Data", "WBAck", "Nack", "DmaReq",
        ]
    }

    /// Returns the node hosting the directory.
    pub fn directory_node(&self) -> u32 {
        self.directory
    }

    /// Returns the number of nodes (caches plus directory).
    pub fn num_nodes(&self) -> u32 {
        self.num_nodes
    }

    /// Iterates over the cache nodes.
    pub fn cache_nodes(&self) -> impl Iterator<Item = u32> + '_ {
        (0..self.num_nodes).filter(move |n| *n != self.directory)
    }

    /// Returns the role of a node.
    pub fn role_of(&self, node: u32) -> Role {
        if node == self.directory {
            Role::Directory
        } else {
            Role::Cache
        }
    }

    fn msg(&self, net: &mut Network, kind: &str, src: u32, dst: u32) -> ColorId {
        net.intern(Packet::kind(kind).with_src(src).with_dst(dst))
    }

    /// Builds the five-state L2-cache agent for `cache`.
    ///
    /// Ports: in 0 = network ejection, in 1 = core triggers,
    /// out 0 = network injection.
    ///
    /// # Panics
    ///
    /// Panics if `cache` is the directory node.
    pub fn cache_agent(&self, net: &mut Network, cache: u32) -> AgentSpec {
        assert_ne!(cache, self.directory, "the directory node hosts no cache");
        let dir = self.directory;
        let get_m = self.msg(net, "GetM", cache, dir);
        let put_m = self.msg(net, "PutM", cache, dir);
        let inv = self.msg(net, "Inv", dir, cache);
        let wb_ack = self.msg(net, "WBAck", dir, cache);
        let nack = self.msg(net, "Nack", dir, cache);
        let data_from_dir = self.msg(net, "Data", dir, cache);
        let miss = net.intern(Packet::kind("miss").with_src(cache));
        let repl = net.intern(Packet::kind("repl").with_src(cache));

        let mut b = AutomatonBuilder::new(format!("cache{cache}"), 2, 1);
        let i = b.state("I");
        let im = b.state("IM");
        let m = b.state("M");
        let mi = b.state("MI");
        let ii = b.state("II");
        b.set_initial(i);

        // I --miss?/GetM!--> IM
        b.on_packet(i, im, 1, miss, Some((0, get_m)));
        // IM --Data? (from the directory or any other cache)--> M
        b.on_packet(im, m, 0, data_from_dir, None);
        for other in self.cache_nodes().collect::<Vec<_>>() {
            if other != cache {
                let data_c2c = self.msg(net, "Data", other, cache);
                b.on_packet(im, m, 0, data_c2c, None);
            }
        }
        // IM --Nack?--> I  (request bounced; a later miss retries)
        b.on_packet(im, i, 0, nack, None);
        // M --repl?/PutM!--> MI   and   M --Inv?/PutM!--> MI
        b.on_packet(m, mi, 1, repl, Some((0, put_m)));
        b.on_packet(m, mi, 0, inv, Some((0, put_m)));
        // M --FwdGetM(from c')?/Data(to c')!--> I  (cache-to-cache transfer)
        for other in self.cache_nodes().collect::<Vec<_>>() {
            if other != cache {
                let fwd = self.msg(net, "FwdGetM", other, cache);
                let data_to_other = self.msg(net, "Data", cache, other);
                b.on_packet(m, i, 0, fwd, Some((0, data_to_other)));
            }
        }
        // MI --WBAck?--> I,  MI --Nack?--> M  (writeback refused, still owner)
        b.on_packet(mi, i, 0, wb_ack, None);
        b.on_packet(mi, m, 0, nack, None);
        // MI --FwdGetM?/Data!--> II  (forward overtook the writeback)
        for other in self.cache_nodes().collect::<Vec<_>>() {
            if other != cache {
                let fwd = self.msg(net, "FwdGetM", other, cache);
                let data_to_other = self.msg(net, "Data", cache, other);
                b.on_packet(mi, ii, 0, fwd, Some((0, data_to_other)));
            }
        }
        // II --WBAck?--> I,  II --Nack?--> I
        b.on_packet(ii, i, 0, wb_ack, None);
        b.on_packet(ii, i, 0, nack, None);
        // Stale invalidations are dropped in every state that has already
        // given the block up (or never owned it); otherwise unconsumable
        // `Inv`s accumulate and deadlock the fabric at every queue size.
        for state in [i, im, mi, ii] {
            b.on_packet(state, state, 0, inv, None);
        }

        let automaton = b.build().expect("full MI cache automaton is well-formed");
        AgentSpec {
            automaton,
            net_in: 0,
            net_out: 0,
            core_in: Some(1),
            core_triggers: vec![miss, repl],
            aux_out: None,
        }
    }

    /// Builds the `4 + n`-state directory agent with its DMA interface.
    ///
    /// Ports: in 0 = network ejection, in 1 = DMA requests,
    /// out 0 = network injection, out 1 = DMA completions.
    pub fn directory_agent(&self, net: &mut Network) -> AgentSpec {
        let dir = self.directory;
        let dma_node = self.num_nodes; // pseudo node id for the DMA engine
        let caches: Vec<u32> = self.cache_nodes().collect();
        let dma_req = self.msg(net, "DmaReq", dma_node, dir);
        let dma_done = self.msg(net, "WBAck", dir, dma_node);

        let mut b = AutomatonBuilder::new("dir", 2, 2);
        let i = b.state("I");
        b.set_initial(i);
        let mi = b.state("MI");
        let ma = b.state("MA");
        let md = b.state("MD");

        // Uncached DMA access: service it directly and acknowledge the DMA.
        b.on_packet(i, md, 1, dma_req, None);
        b.spontaneous_emit(md, i, 1, dma_done);
        // Completion of a cached DMA access (reached from MI below).
        b.spontaneous_emit(ma, i, 1, dma_done);

        for &c in &caches {
            let m_c = b.state(format!("M({c})"));
            let get_m = self.msg(net, "GetM", c, dir);
            let put_m = self.msg(net, "PutM", c, dir);
            let data_to_c = self.msg(net, "Data", dir, c);
            let wb_ack_c = self.msg(net, "WBAck", dir, c);
            let nack_c = self.msg(net, "Nack", dir, c);
            let inv_c = self.msg(net, "Inv", dir, c);

            // I --GetM(c)?/Data(c)!--> M(c)
            b.on_packet(i, m_c, 0, get_m, Some((0, data_to_c)));
            // I --PutM(c)?/Nack(c)!--> I   (stale writeback)
            b.on_packet(i, i, 0, put_m, Some((0, nack_c)));
            // M(c) --PutM(c)?/WBAck(c)!--> I
            b.on_packet(m_c, i, 0, put_m, Some((0, wb_ack_c)));
            // M(c) --GetM(c')?/FwdGetM(c'→c)!--> M(c')  (ownership moves)
            for &other in &caches {
                if other != c {
                    let get_other = self.msg(net, "GetM", other, dir);
                    let fwd = self.msg(net, "FwdGetM", other, c);
                    let m_other = b.state(format!("M({other})"));
                    b.on_packet(m_c, m_other, 0, get_other, Some((0, fwd)));
                    // M(c) --PutM(c')?/Nack(c')!--> M(c)  (stale writeback)
                    let put_other = self.msg(net, "PutM", other, dir);
                    let nack_other = self.msg(net, "Nack", dir, other);
                    b.on_packet(m_c, m_c, 0, put_other, Some((0, nack_other)));
                }
            }
            // M(c) --DmaReq?/Inv(c)!--> MI  (invalidate the owner for DMA)
            b.on_packet(m_c, mi, 1, dma_req, Some((0, inv_c)));
            // MI --PutM(c)?/WBAck(c)!--> MA  (writeback received, finish DMA)
            b.on_packet(mi, ma, 0, put_m, Some((0, wb_ack_c)));
        }

        let automaton = b
            .build()
            .expect("full MI directory automaton is well-formed");
        AgentSpec {
            automaton,
            net_in: 0,
            net_out: 0,
            core_in: Some(1),
            core_triggers: vec![dma_req],
            aux_out: Some(1),
        }
    }

    /// Builds the agent for an arbitrary node according to its role.
    pub fn agent(&self, net: &mut Network, node: u32) -> AgentSpec {
        match self.role_of(node) {
            Role::Cache => self.cache_agent(&mut *net, node),
            Role::Directory => self.directory_agent(net),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_has_five_states_and_uses_forwarding() {
        let protocol = FullMi::new(4, 3);
        let mut net = Network::new();
        let spec = protocol.cache_agent(&mut net, 0);
        let a = &spec.automaton;
        assert_eq!(a.state_count(), 5);
        // A forwarded request from cache 1 must be accepted in M and in MI.
        let fwd = net
            .colors()
            .lookup(&Packet::kind("FwdGetM").with_src(1).with_dst(0))
            .unwrap();
        assert!(a.ever_accepts(0, fwd));
        // Data is sent cache-to-cache to the requester.
        let data = net
            .colors()
            .lookup(&Packet::kind("Data").with_src(0).with_dst(1))
            .unwrap();
        assert!(a.ever_emits(0, data));
    }

    #[test]
    fn directory_has_four_plus_n_states() {
        for n in [4u32, 9, 16] {
            let protocol = FullMi::new(n, 0);
            let mut net = Network::new();
            let spec = protocol.directory_agent(&mut net);
            assert_eq!(
                spec.automaton.state_count(),
                4 + (n as usize - 1),
                "directory states for {n} nodes"
            );
            assert!(spec.needs_core_source());
            assert_eq!(spec.aux_out, Some(1));
        }
    }

    #[test]
    fn eight_message_kinds_are_declared() {
        let kinds = FullMi::message_kinds();
        assert_eq!(kinds.len(), 8);
        let mut unique = kinds.to_vec();
        unique.sort();
        unique.dedup();
        assert_eq!(unique.len(), 8);
    }

    #[test]
    fn dma_requests_drive_the_invalidation_flow() {
        let protocol = FullMi::new(3, 2);
        let mut net = Network::new();
        let spec = protocol.directory_agent(&mut net);
        let a = &spec.automaton;
        // From M(c), a DMA request produces an Inv towards the owner.
        let inv = net
            .colors()
            .lookup(&Packet::kind("Inv").with_src(2).with_dst(0))
            .unwrap();
        assert!(a.ever_emits(0, inv));
        // The DMA completion leaves on the auxiliary port.
        let done = net
            .colors()
            .lookup(&Packet::kind("WBAck").with_src(2).with_dst(3))
            .unwrap();
        assert!(a.ever_emits(1, done));
    }
}
