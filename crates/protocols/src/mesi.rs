//! A directory-based MESI protocol with shared states.
//!
//! The MI flavours model a single-owner world: at most one cache holds the
//! block, and the directory is a pointer machine.  MESI introduces *shared*
//! states — several caches may hold read-only copies at once — and with
//! them the scenario class where the interesting cross-layer deadlocks
//! live: invalidation broadcasts fan one request out into `n − 1`
//! directory-initiated messages whose acknowledgments all funnel back
//! through the same fabric, and upgrade/downgrade/writeback races overlap
//! requests with the sweeps that retire them.
//!
//! * **L2 cache** (per node): the four stable MESI states `I`, `S`, `E`,
//!   `M` plus five transient states covering the three race families —
//!   `IS`/`IM` (fill in flight), `SM` (upgrade in flight, revocable by a
//!   concurrent invalidation), `MI`/`SI` (writeback in flight, crossing
//!   directory-initiated invalidations).
//! * **Directory**: a *counting* sharer set.  `S(k)` records that `k`
//!   caches hold read-only copies without recording *which* — the classic
//!   bounded-directory abstraction.  Exclusive ownership is tracked
//!   exactly (`E(c)`), and three transient families implement the
//!   protocol's multi-message operations: `B(r,i)` broadcast states
//!   emitting one `Inv` per step, `C(r,p)` collect states counting the `p`
//!   outstanding invalidation acknowledgments for requestor `r`, and
//!   `EI`/`EIS` owner-invalidation states for exclusive and shared grants.
//!
//! Ten message kinds travel the fabric: `GetS`, `GetX`, `Upg`, `PutS`,
//! `PutX` in the request class and `Inv`, `Ack`, `DataS`, `DataE`,
//! `DataX` in the response class (see [`crate::MessageClass`]).  The
//! exclusive data grant is split by purpose — `DataE` resolves a read
//! fill into `E`, `DataX` resolves a write request into `M` — the way
//! real MESI responses carry the state the requestor must enter.  The
//! split also matters formally: it gives every transient cache state a
//! uniquely attributable resolution flow, which is what lets the flow
//! method derive *equality* invariants tying directory service states to
//! requestor states (a shared dual-purpose grant lumps the `GetS` and
//! `GetX` streams into one equivalence class and the link is lost).
//! Data payloads are abstracted away, exactly as in the MI models: a
//! dirty writeback forced by an invalidation is folded into the `Ack`,
//! which keeps the invalidation/acknowledgment accounting exact — every
//! `Inv` the directory sends is answered by exactly one cache→directory
//! `Ack`, whatever state the target is in when the `Inv` lands.
//!
//! The counting abstraction is deliberately lossy about *identities*: a
//! stale `PutS` arriving after its sender was already swept can decrement
//! the count past the true sharer population.  Broadcast invalidation
//! makes this harmless for deadlock analysis — sweeps go to every
//! non-requestor regardless of the count, so orphaned copies are cleaned
//! up by the next exclusive request — but it is the reason this model
//! verifies deadlock freedom, not coherence.

use advocat_automata::{AutomatonBuilder, StateId};
use advocat_xmas::{ColorId, Network, Packet};

use crate::spec::{AgentSpec, Role};

/// The per-cache message colors the directory exchanges with one cache.
struct CacheMsgs {
    get_s: ColorId,
    get_x: ColorId,
    upg: ColorId,
    put_s: ColorId,
    put_x: ColorId,
    ack_up: ColorId,
    inv: ColorId,
    ack_down: ColorId,
    data_s: ColorId,
    data_e: ColorId,
    data_x: ColorId,
}

/// The directory-based MESI protocol with a counting sharer set.
///
/// # Examples
///
/// ```
/// use advocat_protocols::Mesi;
/// use advocat_xmas::Network;
///
/// let protocol = Mesi::new(4, 3);
/// let mut net = Network::new();
/// let cache = protocol.cache_agent(&mut net, 0);
/// let directory = protocol.directory_agent(&mut net);
/// // I, IS, IM, S, SM, E, M, MI, SI.
/// assert_eq!(cache.automaton.state_count(), 9);
/// // Shared states multiply the directory: I + S(k) + E(c) + sweeps.
/// assert_eq!(directory.automaton.state_count(), Mesi::directory_states(3));
/// assert_eq!(Mesi::message_kinds().len(), 10);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Mesi {
    num_nodes: u32,
    directory: u32,
}

impl Mesi {
    /// Creates a protocol instance for `num_nodes` fabric terminals with
    /// the directory at terminal `directory`; all other terminals host
    /// caches.
    ///
    /// # Panics
    ///
    /// Panics if `directory >= num_nodes` or there are fewer than two
    /// nodes.
    pub fn new(num_nodes: u32, directory: u32) -> Self {
        assert!(num_nodes >= 2, "a fabric needs at least two nodes");
        assert!(directory < num_nodes, "directory must be one of the nodes");
        Mesi {
            num_nodes,
            directory,
        }
    }

    /// The ten message kinds exchanged over the fabric.
    pub fn message_kinds() -> [&'static str; 10] {
        [
            "GetS", "GetX", "Upg", "PutS", "PutX", "Inv", "Ack", "DataS", "DataE", "DataX",
        ]
    }

    /// Number of directory states for `caches` cache agents: `I`, one
    /// `S(k)` per count, one `E(c)` per cache, and the transient broadcast
    /// (`B`), collect (`C`) and owner-invalidation (`EI`/`EIS`) families.
    ///
    /// For `n ≥ 2` caches this is quadratic in `n` where the MI
    /// directories are linear — exactly the state-count pressure shared
    /// states put on the invariant generator.
    pub fn directory_states(caches: usize) -> usize {
        let n = caches;
        if n == 0 {
            return 1;
        }
        // I + S(1..=n) + E(c) + B(r, 1..=n-2) + C(r, 1..=n-1) + EI + EIS.
        1 + n + n + n * n.saturating_sub(2) + n * (n - 1) + 2 * n * (n - 1)
    }

    /// Returns the node hosting the directory.
    pub fn directory_node(&self) -> u32 {
        self.directory
    }

    /// Returns the number of nodes (caches plus directory).
    pub fn num_nodes(&self) -> u32 {
        self.num_nodes
    }

    /// Iterates over the cache nodes.
    pub fn cache_nodes(&self) -> impl Iterator<Item = u32> + '_ {
        (0..self.num_nodes).filter(move |n| *n != self.directory)
    }

    /// Returns the role of a node.
    pub fn role_of(&self, node: u32) -> Role {
        if node == self.directory {
            Role::Directory
        } else {
            Role::Cache
        }
    }

    fn msg(&self, net: &mut Network, kind: &str, src: u32, dst: u32) -> ColorId {
        net.intern(Packet::kind(kind).with_src(src).with_dst(dst))
    }

    fn cache_msgs(&self, net: &mut Network, cache: u32) -> CacheMsgs {
        let dir = self.directory;
        CacheMsgs {
            get_s: self.msg(net, "GetS", cache, dir),
            get_x: self.msg(net, "GetX", cache, dir),
            upg: self.msg(net, "Upg", cache, dir),
            put_s: self.msg(net, "PutS", cache, dir),
            put_x: self.msg(net, "PutX", cache, dir),
            ack_up: self.msg(net, "Ack", cache, dir),
            inv: self.msg(net, "Inv", dir, cache),
            ack_down: self.msg(net, "Ack", dir, cache),
            data_s: self.msg(net, "DataS", dir, cache),
            data_e: self.msg(net, "DataE", dir, cache),
            data_x: self.msg(net, "DataX", dir, cache),
        }
    }

    /// Builds the nine-state L2-cache agent for `cache`.
    ///
    /// Ports: in 0 = network ejection, in 1 = core triggers (`load`,
    /// `store`, `repl`), out 0 = network injection.
    ///
    /// Every state answers a directory `Inv` with an `Ack` — including the
    /// transient and invalid states, where the invalidation is stale.
    /// This keeps the directory's acknowledgment counting exact under
    /// upgrade, downgrade and writeback races.
    ///
    /// # Panics
    ///
    /// Panics if `cache` is the directory node.
    pub fn cache_agent(&self, net: &mut Network, cache: u32) -> AgentSpec {
        assert_ne!(cache, self.directory, "the directory node hosts no cache");
        let cm = self.cache_msgs(net, cache);
        let load = net.intern(Packet::kind("load").with_src(cache));
        let store = net.intern(Packet::kind("store").with_src(cache));
        let repl = net.intern(Packet::kind("repl").with_src(cache));

        let mut b = AutomatonBuilder::new(format!("cache{cache}"), 2, 1);
        let i = b.state("I");
        let is = b.state("IS");
        let im = b.state("IM");
        let s = b.state("S");
        let sm = b.state("SM");
        let e = b.state("E");
        let m = b.state("M");
        let mi = b.state("MI");
        let si = b.state("SI");
        b.set_initial(i);

        // Fills.  I --load?/GetS!--> IS, I --store?/GetX!--> IM.
        b.on_packet(i, is, 1, load, Some((0, cm.get_s)));
        b.on_packet(i, im, 1, store, Some((0, cm.get_x)));
        // IS resolves to S (shared grant) or E (exclusive grant: the MESI
        // optimisation when the directory had no other sharer).
        b.on_packet(is, s, 0, cm.data_s, None);
        b.on_packet(is, e, 0, cm.data_e, None);
        b.on_packet(im, m, 0, cm.data_x, None);

        // Upgrade race.  S --store?/Upg!--> SM; a concurrent invalidation
        // revokes the shared copy mid-upgrade and the in-flight Upg is
        // serviced by the directory as a full GetX (so SM falls back to
        // IM, waiting for exclusive data).
        b.on_packet(s, sm, 1, store, Some((0, cm.upg)));
        b.on_packet(sm, m, 0, cm.data_x, None);
        b.on_packet(sm, im, 0, cm.inv, Some((0, cm.ack_up)));

        // Silent E→M upgrade: exclusivity already grants write permission.
        b.on_packet(e, m, 1, store, None);

        // Downgrades and writebacks.
        b.on_packet(s, si, 1, repl, Some((0, cm.put_s)));
        b.on_packet(e, mi, 1, repl, Some((0, cm.put_x)));
        b.on_packet(m, mi, 1, repl, Some((0, cm.put_x)));
        b.on_packet(mi, i, 0, cm.ack_down, None);
        b.on_packet(si, i, 0, cm.ack_down, None);

        // Invalidations.  Stable states give the copy up (the forced
        // writeback of a dirty block is folded into the Ack — data is
        // abstracted); every other state answers the (then stale) Inv so
        // the directory's acknowledgment count stays exact.
        b.on_packet(s, i, 0, cm.inv, Some((0, cm.ack_up)));
        b.on_packet(e, i, 0, cm.inv, Some((0, cm.ack_up)));
        b.on_packet(m, i, 0, cm.inv, Some((0, cm.ack_up)));
        for state in [i, is, im, mi, si] {
            b.on_packet(state, state, 0, cm.inv, Some((0, cm.ack_up)));
        }

        let automaton = b.build().expect("MESI cache automaton is well-formed");
        AgentSpec {
            automaton,
            net_in: 0,
            net_out: 0,
            core_in: Some(1),
            core_triggers: vec![load, store, repl],
            aux_out: None,
        }
    }

    /// Builds the counting directory agent.
    ///
    /// Ports: in 0 = network ejection, out 0 = network injection.
    ///
    /// The directory serialises protocol operations: while a broadcast
    /// sweep or an owner invalidation is in flight it consumes only the
    /// acknowledgments that retire it (plus any writeback that crosses it,
    /// which is acknowledged in place); further requests wait in the
    /// fabric.  Because every cache answers every `Inv` exactly once, at
    /// most one operation's invalidations are ever outstanding.
    ///
    /// The collect states `C(r,p)` drain those acknowledgments in a
    /// **deterministic order** (the broadcast order) rather than counting
    /// them anonymously.  This is a deliberate modelling choice, not a
    /// simplification of convenience: an anonymous collector is provably
    /// beyond the flow method.  Its correctness rests on "each cache acks
    /// each `Inv` exactly once *per operation*", but the flow system only
    /// sees cumulative counters — a scenario where one cache's
    /// acknowledgments from different operations are double-counted while
    /// another's invalidation is left dangling satisfies every
    /// conservation equality with nonnegative counters, so no derivable
    /// linear invariant (equality *or* bound) can exclude the resulting
    /// spurious deadlock candidates.  Fixing the drain order restores
    /// per-cache attribution, and the derived invariants then pin every
    /// sweep state to the exact set of in-flight `Inv`/`Ack` messages.
    /// The xMAS blocking abstraction loses nothing by the fixed order:
    /// queue occupants are order-free for consumability, so no artificial
    /// ordering deadlock is introduced.
    pub fn directory_agent(&self, net: &mut Network) -> AgentSpec {
        let caches: Vec<u32> = self.cache_nodes().collect();
        let n = caches.len();
        let msgs: Vec<CacheMsgs> = caches.iter().map(|&c| self.cache_msgs(net, c)).collect();

        let mut b = AutomatonBuilder::new("dir", 1, 1);
        let i = b.state("I");
        b.set_initial(i);
        let s_k: Vec<StateId> = (1..=n).map(|k| b.state(format!("S({k})"))).collect();
        let e_c: Vec<StateId> = caches.iter().map(|c| b.state(format!("E({c})"))).collect();
        let shared = |k: usize| -> StateId {
            if k == 0 {
                i
            } else {
                s_k[k - 1]
            }
        };

        // Stale-writeback self-loops: consume the Put and acknowledge it
        // without changing the sharing state.  Needed in every state that
        // can observe a writeback crossing an in-flight operation;
        // `except` skips a cache whose own writebacks are impossible there
        // (a sweep requestor waits for its grant and cannot replace).
        let absorb_puts = |b: &mut AutomatonBuilder, state: StateId, except: Option<usize>| {
            for (zi, zm) in msgs.iter().enumerate() {
                if Some(zi) == except {
                    continue;
                }
                b.on_packet(state, state, 0, zm.put_x, Some((0, zm.ack_down)));
                b.on_packet(state, state, 0, zm.put_s, Some((0, zm.ack_down)));
            }
        };

        // --- I: no copies anywhere. -------------------------------------
        for (ci, cm) in msgs.iter().enumerate() {
            // The exclusive grant on a read miss from I is the E-state
            // optimisation that distinguishes MESI from MSI.
            b.on_packet(i, e_c[ci], 0, cm.get_s, Some((0, cm.data_e)));
            b.on_any(
                i,
                e_c[ci],
                [
                    ((0, cm.get_x), Some((0, cm.data_x))),
                    ((0, cm.upg), Some((0, cm.data_x))),
                ],
            );
        }
        absorb_puts(&mut b, i, None);

        // --- S(k): k read-only copies (identities unknown). --------------
        for k in 1..=n {
            let here = shared(k);
            for (ci, cm) in msgs.iter().enumerate() {
                // Another reader joins; at the population cap the count
                // saturates (a GetS from a current sharer is impossible,
                // but the counting abstraction cannot see that).
                b.on_packet(
                    here,
                    shared((k + 1).min(n)),
                    0,
                    cm.get_s,
                    Some((0, cm.data_s)),
                );
                // A reader leaves.  A stale PutS (sender already swept)
                // over-decrements — harmless for deadlock freedom, see the
                // module docs.
                b.on_packet(here, shared(k - 1), 0, cm.put_s, Some((0, cm.ack_down)));
                // A stale dirty writeback is acknowledged in place.
                b.on_packet(here, here, 0, cm.put_x, Some((0, cm.ack_down)));

                // An exclusive request starts the invalidation sweep: Inv
                // every cache except the requestor (one message per step),
                // then collect the same number of Acks.  Upg and GetX are
                // serviced identically — the requestor's cache state (SM
                // vs IM) decides what the eventual DataX grant means.
                let others: Vec<usize> = (0..n).filter(|&j| j != ci).collect();
                let r = caches[ci];
                if others.is_empty() {
                    // Single-cache fabric: nothing to invalidate.
                    b.on_any(
                        here,
                        e_c[ci],
                        [
                            ((0, cm.get_x), Some((0, cm.data_x))),
                            ((0, cm.upg), Some((0, cm.data_x))),
                        ],
                    );
                } else {
                    let first_inv = msgs[others[0]].inv;
                    let after_first = if others.len() == 1 {
                        b.state(format!("C({r},1)"))
                    } else {
                        b.state(format!("B({r},1)"))
                    };
                    b.on_any(
                        here,
                        after_first,
                        [
                            ((0, cm.get_x), Some((0, first_inv))),
                            ((0, cm.upg), Some((0, first_inv))),
                        ],
                    );
                }
            }
        }

        // --- Broadcast and collect chains, once per requestor. -----------
        for (ci, cm) in msgs.iter().enumerate() {
            let others: Vec<usize> = (0..n).filter(|&j| j != ci).collect();
            if others.is_empty() {
                continue;
            }
            let r = caches[ci];
            let m_count = others.len();
            // B(r,i): i invalidations sent, emit the next spontaneously.
            for sent in 1..m_count {
                let here = b.state(format!("B({r},{sent})"));
                let next = if sent + 1 == m_count {
                    b.state(format!("C({r},{m_count})"))
                } else {
                    b.state(format!("B({r},{})", sent + 1))
                };
                b.spontaneous_emit(here, next, 0, msgs[others[sent]].inv);
            }
            // C(r,p): p acknowledgments outstanding, collected in fixed order.
            for p in (1..=m_count).rev() {
                let here = b.state(format!("C({r},{p})"));
                let expect = others[m_count - p];
                if p > 1 {
                    let next = b.state(format!("C({r},{})", p - 1));
                    b.on_packet(here, next, 0, msgs[expect].ack_up, None);
                } else {
                    b.on_packet(here, e_c[ci], 0, msgs[expect].ack_up, Some((0, cm.data_x)));
                }
                absorb_puts(&mut b, here, Some(ci));
            }
        }

        // --- E(x): cache x holds the block exclusively (clean or dirty). --
        for (xi, xm) in msgs.iter().enumerate() {
            let e_x = e_c[xi];
            // Owner writeback ends the ownership.
            b.on_packet(e_x, i, 0, xm.put_x, Some((0, xm.ack_down)));
            // Stale writebacks from everyone else are acknowledged in
            // place; so is any PutS (the owner cannot hold a shared copy).
            for (zi, zm) in msgs.iter().enumerate() {
                if zi != xi {
                    b.on_packet(e_x, e_x, 0, zm.put_x, Some((0, zm.ack_down)));
                }
                b.on_packet(e_x, e_x, 0, zm.put_s, Some((0, zm.ack_down)));
            }
            // Requests from other caches invalidate the owner first.
            for (yi, ym) in msgs.iter().enumerate() {
                if yi == xi {
                    continue;
                }
                let x = caches[xi];
                let y = caches[yi];
                let ei = b.state(format!("EI({x},{y})"));
                let eis = b.state(format!("EIS({x},{y})"));
                b.on_any(
                    e_x,
                    ei,
                    [
                        ((0, ym.get_x), Some((0, xm.inv))),
                        ((0, ym.upg), Some((0, xm.inv))),
                    ],
                );
                b.on_packet(e_x, eis, 0, ym.get_s, Some((0, xm.inv)));
                // The owner's acknowledgment completes the transfer (a
                // forced dirty writeback is folded into the Ack).
                b.on_packet(ei, e_c[yi], 0, xm.ack_up, Some((0, ym.data_x)));
                b.on_packet(eis, shared(1), 0, xm.ack_up, Some((0, ym.data_s)));
                absorb_puts(&mut b, ei, None);
                absorb_puts(&mut b, eis, None);
            }
        }

        let automaton = b.build().expect("MESI directory automaton is well-formed");
        AgentSpec {
            automaton,
            net_in: 0,
            net_out: 0,
            core_in: None,
            core_triggers: Vec::new(),
            aux_out: None,
        }
    }

    /// Builds the agent for an arbitrary node according to its role.
    pub fn agent(&self, net: &mut Network, node: u32) -> AgentSpec {
        match self.role_of(node) {
            Role::Cache => self.cache_agent(net, node),
            Role::Directory => self.directory_agent(net),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_has_nine_states_and_answers_inv_everywhere() {
        let protocol = Mesi::new(4, 3);
        let mut net = Network::new();
        let spec = protocol.cache_agent(&mut net, 0);
        let a = &spec.automaton;
        assert_eq!(a.state_count(), 9);
        assert!(spec.needs_core_source());
        assert_eq!(spec.core_triggers.len(), 3);
        let inv = net
            .colors()
            .lookup(&Packet::kind("Inv").with_src(3).with_dst(0))
            .unwrap();
        let ack_up = net
            .colors()
            .lookup(&Packet::kind("Ack").with_src(0).with_dst(3))
            .unwrap();
        // Every state consumes Inv, and the response is always an Ack.
        for state in a.states() {
            let handles_inv = a
                .transitions_from(state)
                .any(|t| a.transition(t).accepts(0, inv));
            assert!(handles_inv, "state {} must answer Inv", a.state_name(state));
        }
        for t in a.transitions() {
            if t.accepts(0, inv) {
                assert_eq!(t.emission_for(0, inv), Some(Some((0, ack_up))));
            }
        }
    }

    #[test]
    fn directory_state_count_is_quadratic_in_the_cache_count() {
        for num_nodes in [3u32, 4, 9] {
            let protocol = Mesi::new(num_nodes, 0);
            let mut net = Network::new();
            let spec = protocol.directory_agent(&mut net);
            let n = (num_nodes - 1) as usize;
            assert_eq!(
                spec.automaton.state_count(),
                Mesi::directory_states(n),
                "directory states for {n} caches"
            );
            assert!(!spec.needs_core_source());
        }
    }

    #[test]
    fn sweep_invalidates_every_non_requestor_exactly_once() {
        // 4 nodes, directory at 3: requestor 0's sweep must emit Inv to 1
        // and 2 but never to 0.
        let protocol = Mesi::new(4, 3);
        let mut net = Network::new();
        let spec = protocol.directory_agent(&mut net);
        let a = &spec.automaton;
        let inv_to = |c: u32, net: &Network| {
            net.colors()
                .lookup(&Packet::kind("Inv").with_src(3).with_dst(c))
                .unwrap()
        };
        let get_x_0 = net
            .colors()
            .lookup(&Packet::kind("GetX").with_src(0).with_dst(3))
            .unwrap();
        // The transition consuming GetX(0) from S(k) emits the first Inv.
        let sweep_start: Vec<_> = a
            .transitions()
            .iter()
            .filter(|t| t.accepts(0, get_x_0))
            .collect();
        assert!(!sweep_start.is_empty());
        let emitted: Vec<ColorId> = sweep_start
            .iter()
            .flat_map(|t| t.emissions())
            .map(|(_, c)| c)
            .collect();
        assert!(
            !emitted.contains(&inv_to(0, &net)),
            "never Inv the requestor"
        );
        // Across the whole automaton both other caches are invalidated.
        assert!(a.ever_emits(0, inv_to(1, &net)));
        assert!(a.ever_emits(0, inv_to(2, &net)));
    }

    #[test]
    fn exclusive_grant_from_i_exercises_the_e_state() {
        let protocol = Mesi::new(3, 2);
        let mut net = Network::new();
        let dir = protocol.directory_agent(&mut net);
        let get_s = net
            .colors()
            .lookup(&Packet::kind("GetS").with_src(0).with_dst(2))
            .unwrap();
        let data_e = net
            .colors()
            .lookup(&Packet::kind("DataE").with_src(2).with_dst(0))
            .unwrap();
        let a = &dir.automaton;
        let i = a.state_by_name("I").unwrap();
        let grants_exclusive = a.transitions_from(i).any(|t| {
            let t = a.transition(t);
            t.accepts(0, get_s) && t.emissions().contains(&(0, data_e))
        });
        assert!(grants_exclusive, "a read miss on an idle line grants E");
    }

    #[test]
    fn two_node_fabrics_degenerate_to_single_inv_sweeps() {
        // One cache, one directory: upgrades need no invalidations at all.
        let protocol = Mesi::new(2, 1);
        let mut net = Network::new();
        let dir = protocol.directory_agent(&mut net);
        assert_eq!(dir.automaton.state_count(), Mesi::directory_states(1));
        let cache = protocol.cache_agent(&mut net, 0);
        assert_eq!(cache.automaton.state_count(), 9);
    }

    #[test]
    fn message_kinds_split_into_requests_and_responses() {
        use crate::MessageClass;
        let kinds = Mesi::message_kinds();
        assert_eq!(kinds.len(), 10);
        let requests = kinds
            .iter()
            .filter(|k| MessageClass::of_kind(k) == MessageClass::Request)
            .count();
        assert_eq!(requests, 5, "GetS/GetX/Upg/PutS/PutX are requests");
    }

    #[test]
    fn data_grants_are_split_by_purpose() {
        // DataE resolves only read fills (IS→E); DataX resolves only write
        // requests (IM/SM→M).  The split keeps the GetS and GetX/Upg
        // request streams separable by the invariant generator.
        let protocol = Mesi::new(3, 2);
        let mut net = Network::new();
        let cache = protocol.cache_agent(&mut net, 0);
        let a = &cache.automaton;
        let data_e = net
            .colors()
            .lookup(&Packet::kind("DataE").with_src(2).with_dst(0))
            .unwrap();
        let data_x = net
            .colors()
            .lookup(&Packet::kind("DataX").with_src(2).with_dst(0))
            .unwrap();
        let is = a.state_by_name("IS").unwrap();
        let im = a.state_by_name("IM").unwrap();
        let sm = a.state_by_name("SM").unwrap();
        for t in a.transitions() {
            if t.accepts(0, data_e) {
                assert_eq!(t.from, is, "DataE is consumed only in IS");
            }
            if t.accepts(0, data_x) {
                assert!(t.from == im || t.from == sm, "DataX only in IM/SM");
            }
        }
        assert!(a.ever_accepts(0, data_e));
        assert!(a.ever_accepts(0, data_x));
    }

    #[test]
    #[should_panic(expected = "no cache")]
    fn cache_agent_for_directory_node_panics() {
        let protocol = Mesi::new(4, 1);
        let mut net = Network::new();
        let _ = protocol.cache_agent(&mut net, 1);
    }
}
