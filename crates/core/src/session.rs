//! Legacy incremental verification sessions.
//!
//! [`VerificationSession`] predates the unified query surface: it froze
//! the deadlock specification at construction, so only queue capacities
//! could vary per query.  [`crate::QueryEngine`] supersedes it — the
//! target and the invariant strengthening are per-[`Query`] dimensions of
//! the same persistent session — and this module keeps the old names
//! compiling as thin shims for one release.

use std::ops::RangeInclusive;

use advocat_automata::System;
use advocat_deadlock::{DeadlockSpec, DeadlockTarget, Query};
use advocat_invariants::InvariantSet;
use advocat_logic::CheckConfig;

use crate::query::{QueryEngine, SessionStats};
use crate::report::Report;

/// An incremental verification session with a frozen deadlock spec.
///
/// Superseded by [`QueryEngine`], which answers capacity, target and
/// invariant-ablation queries from one session instead of freezing the
/// spec at construction.
///
/// # Migration
///
/// The spec argument dissolves into each [`Query`]'s target; everything
/// else maps one-to-one (`for_fabric` likewise, minus its spec):
///
/// ```
/// use advocat::prelude::*;
///
/// let config = MeshConfig::new(2, 2, 1).with_directory(1, 1);
/// let system = build_mesh_for_sweep(&config, 3)?;
/// // Before: VerificationSession::new(system, spec, 3..=3)
/// //             .check_capacity(3)
/// let report = QueryEngine::on(system, 3..=3)
///     .check(&Query::new().capacity(3).target(DeadlockTarget::Any));
/// assert!(report.is_deadlock_free());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[deprecated(
    since = "0.3.0",
    note = "use `QueryEngine` — the deadlock target and invariant strengthening are \
            per-`Query` dimensions there, not frozen at construction"
)]
#[derive(Debug)]
pub struct VerificationSession {
    engine: QueryEngine,
    /// The frozen spec's target; `None` when the spec enabled no
    /// condition (every query is then trivially deadlock-free).
    target: Option<DeadlockTarget>,
}

#[allow(deprecated)]
impl VerificationSession {
    /// Builds a session for `system` with default solver limits.
    ///
    /// # Panics
    ///
    /// Panics when `capacities` is empty.
    pub fn new(system: System, spec: DeadlockSpec, capacities: RangeInclusive<usize>) -> Self {
        VerificationSession::with_config(system, spec, CheckConfig::default(), capacities)
    }

    /// Builds a session for an arbitrary topology fabric
    /// (see [`QueryEngine::for_fabric`]).
    ///
    /// # Errors
    ///
    /// Returns a [`advocat_noc::FabricError`] when the fabric
    /// configuration is invalid or its routing function fails the
    /// channel-dependency audit.
    ///
    /// # Panics
    ///
    /// Panics when `capacities` is empty.
    pub fn for_fabric(
        config: &advocat_noc::FabricConfig,
        spec: DeadlockSpec,
        capacities: RangeInclusive<usize>,
    ) -> Result<Self, advocat_noc::FabricError> {
        Ok(VerificationSession {
            engine: QueryEngine::for_fabric(config, capacities)?,
            target: spec.as_target(),
        })
    }

    /// Builds a session with explicit SMT resource limits per query.
    ///
    /// # Panics
    ///
    /// Panics when `capacities` is empty.
    pub fn with_config(
        system: System,
        spec: DeadlockSpec,
        config: CheckConfig,
        capacities: RangeInclusive<usize>,
    ) -> Self {
        VerificationSession {
            engine: QueryEngine::with_config(system, config, capacities),
            target: spec.as_target(),
        }
    }

    /// Answers the deadlock question with every queue capacity pinned to
    /// `capacity`, reusing all solver state from earlier queries.
    ///
    /// # Panics
    ///
    /// Panics when `capacity` lies outside the session's capacity range.
    pub fn check_capacity(&mut self, capacity: usize) -> Report {
        match self.target {
            Some(target) => self
                .engine
                .check(&Query::new().capacity(capacity).target(target)),
            None => {
                // The engine is never consulted, so enforce the documented
                // range contract here.
                assert!(
                    self.engine.capacity_range().contains(&capacity),
                    "capacity {capacity} outside the session range {:?}",
                    self.engine.capacity_range()
                );
                self.engine.trivially_free()
            }
        }
    }

    /// Cumulative statistics of the session's shared SAT solver (all
    /// queries so far).
    pub fn sat_stats(&self) -> advocat_logic::SatStats {
        self.engine.sat_stats()
    }

    /// The capacity range the session accepts.
    pub fn capacity_range(&self) -> RangeInclusive<usize> {
        self.engine.capacity_range()
    }

    /// The verified system.
    pub fn system(&self) -> &System {
        self.engine.system()
    }

    /// The cross-layer invariants the session derived (shared by every
    /// query).
    pub fn invariants(&self) -> &InvariantSet {
        self.engine.invariants()
    }

    /// Cumulative statistics over all queries answered so far.
    pub fn stats(&self) -> SessionStats {
        self.engine.stats()
    }
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;
    use advocat_noc::{build_mesh_for_sweep, MeshConfig};

    #[test]
    fn session_shim_matches_the_engine_on_the_2x2_mesh() {
        let config = MeshConfig::new(2, 2, 1).with_directory(1, 1);
        let system = build_mesh_for_sweep(&config, 4).unwrap();
        let mut session = VerificationSession::new(system, DeadlockSpec::default(), 1..=4);
        let system = build_mesh_for_sweep(&config, 4).unwrap();
        let mut engine = QueryEngine::on(system, 1..=4);
        for capacity in 1..=4usize {
            assert_eq!(
                session.check_capacity(capacity).is_deadlock_free(),
                engine
                    .check(&Query::new().capacity(capacity))
                    .is_deadlock_free(),
                "capacity {capacity}"
            );
        }
        assert_eq!(session.stats().queries, 4);
    }

    #[test]
    fn empty_specs_answer_trivially_free() {
        let config = MeshConfig::new(2, 2, 1).with_directory(1, 1);
        let system = build_mesh_for_sweep(&config, 2).unwrap();
        let neither = DeadlockSpec {
            stuck_packet: false,
            dead_automaton: false,
        };
        let mut session = VerificationSession::new(system, neither, 1..=2);
        let report = session.check_capacity(1);
        assert!(report.is_deadlock_free());
        assert_eq!(report.analysis().stats.sat_effort(), 0);
        assert_eq!(session.stats().queries, 1);
    }

    #[test]
    #[should_panic(expected = "outside the session range")]
    fn empty_specs_still_enforce_the_capacity_range() {
        let config = MeshConfig::new(2, 2, 1).with_directory(1, 1);
        let system = build_mesh_for_sweep(&config, 2).unwrap();
        let neither = DeadlockSpec {
            stuck_packet: false,
            dead_automaton: false,
        };
        let mut session = VerificationSession::new(system, neither, 1..=2);
        let _ = session.check_capacity(99);
    }

    #[test]
    fn session_reports_share_the_derived_invariants() {
        let config = MeshConfig::new(2, 2, 1).with_directory(1, 1);
        let system = build_mesh_for_sweep(&config, 3).unwrap();
        let mut session = VerificationSession::new(system, DeadlockSpec::default(), 2..=3);
        let report = session.check_capacity(3);
        assert!(report.is_deadlock_free());
        assert_eq!(report.invariants().len(), session.invariants().len());
        assert!(!report.invariants().is_empty());
    }
}
