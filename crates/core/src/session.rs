//! Incremental verification sessions.
//!
//! A [`VerificationSession`] runs the expensive, capacity-independent part
//! of the ADVOCAT pipeline — color derivation, invariant generation and
//! the structural deadlock encoding — exactly once, and then answers any
//! number of queue-capacity queries from one persistent solver.  Learnt
//! clauses and theory lemmas accumulate across queries, so a sweep over
//! sixteen capacities costs far fewer SAT conflicts and propagations than
//! sixteen cold [`crate::Verifier::analyze`] calls.

use std::ops::RangeInclusive;
use std::time::Duration;

use advocat_automata::{derive_colors, System};
use advocat_deadlock::{DeadlockSpec, EncodingTemplate};
use advocat_invariants::{derive_invariants, InvariantSet};
use advocat_logic::CheckConfig;

use crate::report::Report;

/// Cumulative statistics over every query a session has answered.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SessionStats {
    /// Number of capacity queries answered.
    pub queries: u64,
    /// Total SAT conflicts across all queries.
    pub sat_conflicts: u64,
    /// Total SAT unit propagations across all queries.
    pub sat_propagations: u64,
    /// Learnt-database reductions across all queries.  Reduction is what
    /// keeps a long session's per-query cost from growing with its length.
    pub reduced_dbs: u64,
    /// Clauses the solver deleted across all queries (worst-half learnt
    /// clauses plus permanently satisfied clauses of popped query scopes).
    pub deleted_clauses: u64,
    /// Learnt clauses alive in the shared solver after the latest query.
    pub live_learnts: u64,
    /// Learnt clauses ever stored by the shared solver (monotone; the gap
    /// to [`SessionStats::live_learnts`] is what reduction reclaimed).
    pub total_learnt: u64,
    /// Total wall-clock time spent answering queries (excluding session
    /// construction).
    pub query_elapsed: Duration,
}

impl SessionStats {
    /// Total SAT effort — conflicts plus propagations — of the session.
    pub fn sat_effort(&self) -> u64 {
        self.sat_conflicts + self.sat_propagations
    }
}

/// An incremental verification session: one system, one derived encoding
/// template, one persistent solver, many queue-capacity queries.
///
/// # Examples
///
/// The Figure-3 result of the paper, answered by a single session: the 2×2
/// directory mesh deadlocks with queues of size 2 but is free with 3.
///
/// ```
/// use advocat::prelude::*;
///
/// let system = build_mesh_for_sweep(&MeshConfig::new(2, 2, 1).with_directory(1, 1), 4)?;
/// let mut session = VerificationSession::new(system, DeadlockSpec::default(), 2..=4);
/// assert!(!session.check_capacity(2).is_deadlock_free());
/// assert!(session.check_capacity(3).is_deadlock_free());
/// assert_eq!(session.stats().queries, 2);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct VerificationSession {
    system: System,
    invariants: InvariantSet,
    template: EncodingTemplate,
    config: CheckConfig,
    stats: SessionStats,
}

impl VerificationSession {
    /// Builds a session for `system` with default solver limits.
    ///
    /// The session derives colors and invariants once and builds the
    /// capacity-parameterised encoding for every capacity in `capacities`.
    ///
    /// # Panics
    ///
    /// Panics when `capacities` is empty.
    pub fn new(system: System, spec: DeadlockSpec, capacities: RangeInclusive<usize>) -> Self {
        VerificationSession::with_config(system, spec, CheckConfig::default(), capacities)
    }

    /// Builds a session for an arbitrary topology fabric: the fabric is
    /// built once at the largest capacity of the range
    /// ([`advocat_noc::build_fabric_for_sweep`]) and every capacity query
    /// reuses the one persistent solver.  This is what lets the *same*
    /// sweep run unchanged on a mesh, torus, ring or fat tree.
    ///
    /// # Errors
    ///
    /// Returns a [`advocat_noc::FabricError`] when the fabric
    /// configuration is invalid or its routing function fails the
    /// channel-dependency audit.
    ///
    /// # Panics
    ///
    /// Panics when `capacities` is empty.
    ///
    /// # Examples
    ///
    /// ```
    /// use advocat::prelude::*;
    ///
    /// let config = FabricConfig::new(Topology::ring(4)?, 1).with_directory(1);
    /// let mut session =
    ///     VerificationSession::for_fabric(&config, DeadlockSpec::default(), 1..=3)?;
    /// assert!(!session.check_capacity(1).is_deadlock_free());
    /// assert!(session.check_capacity(2).is_deadlock_free());
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    pub fn for_fabric(
        config: &advocat_noc::FabricConfig,
        spec: DeadlockSpec,
        capacities: RangeInclusive<usize>,
    ) -> Result<Self, advocat_noc::FabricError> {
        let system = advocat_noc::build_fabric_for_sweep(config, *capacities.end())?;
        Ok(VerificationSession::new(system, spec, capacities))
    }

    /// Builds a session with explicit SMT resource limits per query.
    ///
    /// # Panics
    ///
    /// Panics when `capacities` is empty.
    pub fn with_config(
        system: System,
        spec: DeadlockSpec,
        config: CheckConfig,
        capacities: RangeInclusive<usize>,
    ) -> Self {
        let colors = derive_colors(&system);
        let invariants = derive_invariants(&system, &colors);
        let template = EncodingTemplate::new(&system, &colors, &invariants, &spec, capacities);
        VerificationSession {
            system,
            invariants,
            template,
            config,
            stats: SessionStats::default(),
        }
    }

    /// Answers the deadlock question with every queue capacity pinned to
    /// `capacity`, reusing all solver state from earlier queries.
    ///
    /// # Panics
    ///
    /// Panics when `capacity` lies outside the session's capacity range.
    pub fn check_capacity(&mut self, capacity: usize) -> Report {
        let analysis = self.template.check_capacity(capacity, &self.config);
        self.stats.queries += 1;
        self.stats.sat_conflicts += analysis.stats.sat_conflicts;
        self.stats.sat_propagations += analysis.stats.sat_propagations;
        self.stats.reduced_dbs += analysis.stats.sat_reduced_dbs;
        self.stats.deleted_clauses += analysis.stats.sat_deleted_clauses;
        self.stats.live_learnts = analysis.stats.sat_live_learnts;
        self.stats.total_learnt = analysis.stats.sat_total_learnt;
        self.stats.query_elapsed += analysis.stats.elapsed;
        Report::new(&self.system, self.invariants.clone(), analysis)
    }

    /// Cumulative statistics of the session's shared SAT solver (all
    /// queries so far), including the live and total learnt-clause counts
    /// the database-reduction pass maintains.
    pub fn sat_stats(&self) -> advocat_logic::SatStats {
        self.template.sat_stats()
    }

    /// The capacity range the session accepts.
    pub fn capacity_range(&self) -> RangeInclusive<usize> {
        self.template.capacity_range()
    }

    /// The verified system.
    pub fn system(&self) -> &System {
        &self.system
    }

    /// The cross-layer invariants the session derived (shared by every
    /// query).
    pub fn invariants(&self) -> &InvariantSet {
        &self.invariants
    }

    /// Cumulative statistics over all queries answered so far.
    pub fn stats(&self) -> SessionStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use advocat_noc::{build_mesh_for_sweep, MeshConfig};

    use crate::Verifier;

    #[test]
    fn session_matches_cold_verifier_on_the_2x2_mesh() {
        let config = MeshConfig::new(2, 2, 1).with_directory(1, 1);
        let system = build_mesh_for_sweep(&config, 4).unwrap();
        let mut session = VerificationSession::new(system, DeadlockSpec::default(), 1..=4);
        for capacity in 1..=4usize {
            let session_free = session.check_capacity(capacity).is_deadlock_free();
            let cold_system = advocat_noc::build_mesh(&config.with_queue_size(capacity)).unwrap();
            let cold_free = Verifier::new().analyze(&cold_system).is_deadlock_free();
            assert_eq!(session_free, cold_free, "capacity {capacity}");
        }
        assert_eq!(session.stats().queries, 4);
    }

    #[test]
    fn session_reports_share_the_derived_invariants() {
        let config = MeshConfig::new(2, 2, 1).with_directory(1, 1);
        let system = build_mesh_for_sweep(&config, 3).unwrap();
        let mut session = VerificationSession::new(system, DeadlockSpec::default(), 2..=3);
        let report = session.check_capacity(3);
        assert!(report.is_deadlock_free());
        assert_eq!(report.invariants().len(), session.invariants().len());
        assert!(!report.invariants().is_empty());
    }
}
