//! Protocol-family selection and cross-protocol comparison sweeps.
//!
//! The fabric generator hosts several coherence protocols behind one
//! [`ProtocolKind`] switch; this module gives that axis a first-class
//! place in the Query API.  A [`ProtocolFamily`] names a protocol the way
//! a [`Query`](crate::Query) names a question, and
//! [`QueryEngine::compare_protocols`] runs the *same* sizing sweep for a
//! set of families on the *same* fabric — one engine (hence one encoding
//! template and one persistent solver) per family, with the aggregated
//! [`SessionStats`] certifying that an MI-vs-MESI study built exactly one
//! template per protocol rather than one per capacity probe.

use std::fmt;
use std::ops::RangeInclusive;

use advocat_deadlock::Query;
use advocat_noc::{FabricConfig, FabricError, ProtocolKind};

use crate::query::{QueryEngine, SessionStats};
use crate::sizing::SizingResult;

/// A coherence protocol family the fabric generator can host.
///
/// This mirrors [`ProtocolKind`] (the `advocat-noc` configuration enum)
/// one-to-one, adding the protocol metadata the comparison drivers and
/// reports need — a stable display name and the size of each family's
/// message vocabulary.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ProtocolFamily {
    /// The artificial MI protocol of Fig. 2 of the paper.
    AbstractMi,
    /// The GEM5-inspired MI protocol with forwarding, nacks and DMA.
    FullMi,
    /// The MESI family: shared states, a counting directory and broadcast
    /// invalidation sweeps.
    Mesi,
}

impl ProtocolFamily {
    /// Every protocol family, in presentation order.
    pub const ALL: [ProtocolFamily; 3] = [
        ProtocolFamily::AbstractMi,
        ProtocolFamily::FullMi,
        ProtocolFamily::Mesi,
    ];

    /// The `advocat-noc` configuration value selecting this family.
    pub fn kind(self) -> ProtocolKind {
        match self {
            ProtocolFamily::AbstractMi => ProtocolKind::AbstractMi,
            ProtocolFamily::FullMi => ProtocolKind::FullMi,
            ProtocolFamily::Mesi => ProtocolKind::Mesi,
        }
    }

    /// A stable, human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            ProtocolFamily::AbstractMi => "abstract-mi",
            ProtocolFamily::FullMi => "full-mi",
            ProtocolFamily::Mesi => "mesi",
        }
    }

    /// Number of message kinds the family's agents exchange over the
    /// fabric.
    pub fn message_kind_count(self) -> usize {
        match self {
            ProtocolFamily::AbstractMi => advocat_protocols::AbstractMi::message_kinds().len(),
            ProtocolFamily::FullMi => advocat_protocols::FullMi::message_kinds().len(),
            ProtocolFamily::Mesi => advocat_protocols::Mesi::message_kinds().len(),
        }
    }
}

impl fmt::Display for ProtocolFamily {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl From<ProtocolKind> for ProtocolFamily {
    fn from(kind: ProtocolKind) -> Self {
        match kind {
            ProtocolKind::AbstractMi => ProtocolFamily::AbstractMi,
            ProtocolKind::FullMi => ProtocolFamily::FullMi,
            ProtocolKind::Mesi => ProtocolFamily::Mesi,
        }
    }
}

impl From<ProtocolFamily> for ProtocolKind {
    fn from(family: ProtocolFamily) -> Self {
        family.kind()
    }
}

/// One protocol family's result within a [`ProtocolComparison`]: the full
/// sizing search and the engine's cumulative statistics.
#[derive(Clone, Debug)]
pub struct FamilyOutcome {
    /// The protocol family this outcome describes.
    pub family: ProtocolFamily,
    /// The sizing search over the comparison's capacity range.
    pub sizing: SizingResult,
    /// The statistics of the one engine that answered every probe.
    pub stats: SessionStats,
}

impl FamilyOutcome {
    /// The smallest capacity proven deadlock-free, if any in range was.
    pub fn minimal_free_capacity(&self) -> Option<usize> {
        self.sizing.minimal_queue_size
    }
}

/// The result of a cross-protocol sizing comparison
/// ([`QueryEngine::compare_protocols`]).
#[derive(Clone, Debug, Default)]
pub struct ProtocolComparison {
    /// One outcome per requested family, in request order.
    pub outcomes: Vec<FamilyOutcome>,
}

impl ProtocolComparison {
    /// Total encoding templates built across the whole study — exactly
    /// one per compared family by construction, never one per capacity
    /// probe.
    pub fn templates_built(&self) -> u64 {
        self.outcomes.iter().map(|o| o.stats.templates_built).sum()
    }

    /// Total queries answered across all families.
    pub fn total_queries(&self) -> u64 {
        self.outcomes.iter().map(|o| o.stats.queries).sum()
    }

    /// The outcome of one family, if it was part of the study.
    pub fn outcome(&self, family: ProtocolFamily) -> Option<&FamilyOutcome> {
        self.outcomes.iter().find(|o| o.family == family)
    }

    /// The minimal deadlock-free capacity of one family, if it was part
    /// of the study and any capacity in range was proven free.
    pub fn minimal(&self, family: ProtocolFamily) -> Option<usize> {
        self.outcome(family)?.minimal_free_capacity()
    }
}

impl QueryEngine {
    /// Runs the same minimal-capacity sweep for several protocol families
    /// on the same fabric: per family, one engine is built over `fabric`
    /// with that family's agents ([`FabricConfig::with_protocol`]) and
    /// [`QueryEngine::minimal_capacity`] bisects `capacities` under
    /// `base`'s target and invariant dimensions.
    ///
    /// Every probe of a family reuses that family's persistent solver, so
    /// the whole study builds exactly `families.len()` encoding templates
    /// ([`ProtocolComparison::templates_built`]) — the cross-protocol
    /// analogue of the capacity/target/ablation reuse inside one engine.
    ///
    /// # Errors
    ///
    /// Returns the first [`FabricError`] raised while building a family's
    /// fabric (the topology and routing audit are shared, so this is
    /// typically all-or-nothing).
    ///
    /// # Panics
    ///
    /// Panics when `capacities` is empty.
    ///
    /// # Examples
    ///
    /// ```
    /// use advocat::prelude::*;
    ///
    /// let fabric = FabricConfig::new(Topology::mesh(2, 2)?, 1).with_directory(3);
    /// let comparison = QueryEngine::compare_protocols(
    ///     &fabric,
    ///     &[ProtocolFamily::AbstractMi, ProtocolFamily::Mesi],
    ///     &Query::new(),
    ///     1..=4,
    /// )?;
    /// assert_eq!(comparison.templates_built(), 2);
    /// assert_eq!(comparison.minimal(ProtocolFamily::AbstractMi), Some(3));
    /// assert_eq!(comparison.minimal(ProtocolFamily::Mesi), Some(3));
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    pub fn compare_protocols(
        fabric: &FabricConfig,
        families: &[ProtocolFamily],
        base: &Query,
        capacities: RangeInclusive<usize>,
    ) -> Result<ProtocolComparison, FabricError> {
        let mut outcomes = Vec::with_capacity(families.len());
        for &family in families {
            let config = fabric.clone().with_protocol(family.kind());
            let mut engine = QueryEngine::for_fabric(&config, capacities.clone())?;
            let sizing = engine.minimal_capacity(base);
            outcomes.push(FamilyOutcome {
                family,
                sizing,
                stats: engine.stats(),
            });
        }
        Ok(ProtocolComparison { outcomes })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use advocat_noc::Topology;

    #[test]
    fn families_and_kinds_round_trip() {
        for family in ProtocolFamily::ALL {
            assert_eq!(ProtocolFamily::from(family.kind()), family);
            assert_eq!(ProtocolKind::from(family), family.kind());
        }
        assert_eq!(ProtocolFamily::AbstractMi.message_kind_count(), 4);
        assert_eq!(ProtocolFamily::FullMi.message_kind_count(), 8);
        assert_eq!(ProtocolFamily::Mesi.message_kind_count(), 10);
        assert_eq!(ProtocolFamily::Mesi.to_string(), "mesi");
    }

    #[test]
    fn comparison_accessors_answer_per_family() {
        let fabric = FabricConfig::new(Topology::mesh(2, 2).unwrap(), 1).with_directory(3);
        let comparison = QueryEngine::compare_protocols(
            &fabric,
            &[ProtocolFamily::AbstractMi],
            &Query::new(),
            2..=4,
        )
        .unwrap();
        assert_eq!(comparison.outcomes.len(), 1);
        assert_eq!(comparison.templates_built(), 1);
        assert!(comparison.total_queries() >= 2);
        assert_eq!(comparison.minimal(ProtocolFamily::AbstractMi), Some(3));
        assert_eq!(comparison.minimal(ProtocolFamily::Mesi), None);
        assert!(comparison.outcome(ProtocolFamily::Mesi).is_none());
    }
}
