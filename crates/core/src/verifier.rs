//! The one-call verification pipeline.

use advocat_automata::{derive_colors, System};
use advocat_deadlock::{verify_with, DeadlockSpec};
use advocat_invariants::derive_invariants;
use advocat_logic::CheckConfig;

use crate::report::Report;

/// Runs the complete ADVOCAT pipeline on a [`System`].
///
/// A `Verifier` carries the deadlock specification (which conditions count
/// as a deadlock) and the SMT resource limits; both have sensible defaults.
///
/// # Examples
///
/// ```
/// use advocat::prelude::*;
///
/// let system = build_mesh(&MeshConfig::new(2, 2, 3).with_directory(1, 1))?;
/// let report = Verifier::new().analyze(&system);
/// assert!(report.is_deadlock_free());
/// assert!(report.invariants().len() > 0);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Clone, Debug)]
pub struct Verifier {
    spec: DeadlockSpec,
    config: CheckConfig,
    use_invariants: bool,
}

impl Default for Verifier {
    fn default() -> Self {
        Verifier::new()
    }
}

impl Verifier {
    /// Creates a verifier with the default deadlock specification and
    /// solver limits, with invariant generation enabled.
    pub fn new() -> Self {
        Verifier {
            spec: DeadlockSpec::default(),
            config: CheckConfig::default(),
            use_invariants: true,
        }
    }

    /// Replaces the deadlock specification.
    pub fn with_spec(mut self, spec: DeadlockSpec) -> Self {
        self.spec = spec;
        self
    }

    /// Replaces the SMT resource limits.
    pub fn with_config(mut self, config: CheckConfig) -> Self {
        self.config = config;
        self
    }

    /// Enables or disables the use of derived invariants (disabling them
    /// reproduces the "deadlock candidates without invariants" behaviour of
    /// Section 3 of the paper).
    pub fn with_invariants(mut self, enabled: bool) -> Self {
        self.use_invariants = enabled;
        self
    }

    /// Runs the pipeline and returns a full report.
    pub fn analyze(&self, system: &System) -> Report {
        let colors = derive_colors(system);
        let invariants = if self.use_invariants {
            derive_invariants(system, &colors)
        } else {
            Default::default()
        };
        let analysis = verify_with(system, &colors, &invariants, &self.spec, &self.config);
        Report::new(system, invariants, analysis)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use advocat_noc::{build_mesh, MeshConfig};

    #[test]
    fn verifier_with_and_without_invariants_differ_on_the_2x2_mesh() {
        let system = build_mesh(&MeshConfig::new(2, 2, 3).with_directory(1, 1)).unwrap();
        let with = Verifier::new().analyze(&system);
        assert!(with.is_deadlock_free());
        let without = Verifier::new().with_invariants(false).analyze(&system);
        assert!(!without.is_deadlock_free());
        assert_eq!(without.invariants().len(), 0);
    }

    #[test]
    fn builder_setters_are_chainable() {
        let spec = DeadlockSpec {
            stuck_packet: true,
            dead_automaton: false,
        };
        let verifier = Verifier::new()
            .with_spec(spec)
            .with_config(CheckConfig::default())
            .with_invariants(true);
        // Just ensure the configuration sticks and the verifier is usable.
        let system = build_mesh(&MeshConfig::new(2, 2, 2).with_directory(0, 0)).unwrap();
        let _ = verifier.analyze(&system);
    }
}
