//! The one-call verification pipeline (legacy surface).

use advocat_automata::System;
use advocat_deadlock::{DeadlockSpec, Query};
use advocat_invariants::InvariantSet;
use advocat_logic::CheckConfig;

use crate::query::{structural_range, QueryEngine};
use crate::report::Report;

/// Runs the complete ADVOCAT pipeline on a [`System`].
///
/// A `Verifier` carries the deadlock specification (which conditions count
/// as a deadlock) and the SMT resource limits; both have sensible defaults.
/// It is now a thin driver over [`QueryEngine`]: one engine per call, one
/// [`Query`] at the system's structural queue capacities.  Callers that ask
/// more than one question of the same system should hold a `QueryEngine`
/// instead and reuse it across queries.
///
/// # Examples
///
/// ```
/// use advocat::prelude::*;
///
/// let system = build_mesh(&MeshConfig::new(2, 2, 3).with_directory(1, 1))?;
/// # #[allow(deprecated)]
/// let report = Verifier::new().analyze(&system);
/// assert!(report.is_deadlock_free());
/// assert!(report.invariants().len() > 0);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Clone, Debug)]
pub struct Verifier {
    spec: DeadlockSpec,
    config: CheckConfig,
    use_invariants: bool,
}

impl Default for Verifier {
    fn default() -> Self {
        Verifier::new()
    }
}

impl Verifier {
    /// Creates a verifier with the default deadlock specification and
    /// solver limits, with invariant generation enabled.
    pub fn new() -> Self {
        Verifier {
            spec: DeadlockSpec::default(),
            config: CheckConfig::default(),
            use_invariants: true,
        }
    }

    /// Replaces the deadlock specification.
    pub fn with_spec(mut self, spec: DeadlockSpec) -> Self {
        self.spec = spec;
        self
    }

    /// Replaces the SMT resource limits.
    pub fn with_config(mut self, config: CheckConfig) -> Self {
        self.config = config;
        self
    }

    /// Enables or disables the use of derived invariants (disabling them
    /// reproduces the "deadlock candidates without invariants" behaviour of
    /// Section 3 of the paper).
    pub fn with_invariants(mut self, enabled: bool) -> Self {
        self.use_invariants = enabled;
        self
    }

    /// Runs the pipeline and returns a full report.
    ///
    /// Every call clones the system and constructs a fresh engine just to
    /// answer one structural query — callers in a loop should hold a
    /// [`QueryEngine`] instead and amortise that cost across queries.
    ///
    /// # Migration
    ///
    /// `Verifier::new().analyze(&system)` becomes a structural query on an
    /// engine; the `with_spec`/`with_invariants` knobs move into the
    /// [`Query`]:
    ///
    /// ```
    /// use advocat::prelude::*;
    ///
    /// let system = build_mesh(&MeshConfig::new(2, 2, 3).with_directory(1, 1))?;
    /// // Before: Verifier::new().with_invariants(false).analyze(&system)
    /// let report = QueryEngine::structural(system)
    ///     .check(&Query::new().invariants(false));
    /// assert!(!report.is_deadlock_free());
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    #[deprecated(
        since = "0.3.0",
        note = "build a `QueryEngine` over the system and `check` a `Query` — one engine \
                answers capacity, target and invariant-ablation sweeps incrementally"
    )]
    pub fn analyze(&self, system: &System) -> Report {
        let range = structural_range(system);
        let mut engine = if self.use_invariants {
            QueryEngine::with_config(system.clone(), self.config.clone(), range)
        } else {
            QueryEngine::with_invariants(
                system.clone(),
                InvariantSet::default(),
                self.config.clone(),
                range,
            )
        };
        match self.spec.as_target() {
            Some(target) => engine.check(&Query::new().target(target)),
            None => engine.trivially_free(),
        }
    }
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;
    use advocat_noc::{build_mesh, MeshConfig};

    #[test]
    fn verifier_with_and_without_invariants_differ_on_the_2x2_mesh() {
        let system = build_mesh(&MeshConfig::new(2, 2, 3).with_directory(1, 1)).unwrap();
        let with = Verifier::new().analyze(&system);
        assert!(with.is_deadlock_free());
        let without = Verifier::new().with_invariants(false).analyze(&system);
        assert!(!without.is_deadlock_free());
        assert_eq!(without.invariants().len(), 0);
    }

    #[test]
    fn builder_setters_are_chainable() {
        let spec = DeadlockSpec {
            stuck_packet: true,
            dead_automaton: false,
        };
        let verifier = Verifier::new()
            .with_spec(spec)
            .with_config(CheckConfig::default())
            .with_invariants(true);
        // Just ensure the configuration sticks and the verifier is usable.
        let system = build_mesh(&MeshConfig::new(2, 2, 2).with_directory(0, 0)).unwrap();
        let _ = verifier.analyze(&system);
    }

    #[test]
    fn empty_specs_are_trivially_free() {
        let neither = DeadlockSpec {
            stuck_packet: false,
            dead_automaton: false,
        };
        let system = build_mesh(&MeshConfig::new(2, 2, 2).with_directory(1, 1)).unwrap();
        let report = Verifier::new().with_spec(neither).analyze(&system);
        assert!(report.is_deadlock_free());
        assert_eq!(report.analysis().stats.sat_effort(), 0);
    }

    #[test]
    fn structural_ranges_cover_heterogeneous_queues() {
        let system = build_mesh(&MeshConfig::new(2, 2, 3).with_directory(1, 1)).unwrap();
        assert_eq!(structural_range(&system), 3..=3);
        let empty = System::new(advocat_xmas::Network::new());
        assert_eq!(structural_range(&empty), 1..=1);
    }
}
