//! ADVOCAT — Automated Deadlock Verification for On-chip Cache coherence
//! and inTerconnects.
//!
//! This crate is the public facade of the ADVOCAT reproduction (Verbeek,
//! Yaghini, Eghbal, Bagherzadeh — DATE 2016).  It ties together the
//! substrate crates into the paper's fully automatic pipeline:
//!
//! 1. model the communication fabric in xMAS (`advocat-xmas`,
//!    `advocat-noc`) and the protocol agents as XMAS automata
//!    (`advocat-automata`, `advocat-protocols`),
//! 2. derive the per-channel color over-approximation `T`
//!    ([`advocat_automata::derive_colors`]),
//! 3. derive cross-layer invariants relating automaton states to en-route
//!    packets (`advocat-invariants`),
//! 4. encode the block/idle deadlock equations plus the invariants as an
//!    SMT instance and solve it (`advocat-deadlock`, `advocat-logic`),
//! 5. optionally confirm candidates by explicit-state exploration
//!    (`advocat-explorer`).
//!
//! The public surface is the **Query API**: a [`QueryEngine`] holds one
//! system, one derived encoding and one persistent solver, and answers any
//! number of [`Query`]s — each a point in the capacity × [`DeadlockTarget`]
//! × invariant-strengthening space, every dimension a retractable selector
//! in the same session.  On top of it sit [`QueryEngine::minimal_capacity`]
//! (the queue-sizing search behind Figure 4 of the paper) and [`run_batch`]
//! (parallel scenarios, one session per scenario).  The pre-query entry
//! points — [`Verifier::analyze`], [`VerificationSession`],
//! [`minimal_queue_size`], [`minimal_queue_size_for_fabric`] and
//! [`verify_batch`] — remain as deprecated shims over the same engine for
//! one release.
//!
//! # Examples
//!
//! The Fig. 3 result of the paper — the 2×2 directory mesh deadlocks with
//! queues of size 2 but not 3 — and its spec ablation, answered by one
//! engine:
//!
//! ```
//! use advocat::prelude::*;
//!
//! let system = build_mesh_for_sweep(&MeshConfig::new(2, 2, 1).with_directory(1, 1), 3)?;
//! let mut engine = QueryEngine::on(system, 2..=3);
//! assert!(!engine.check(&Query::new().capacity(2)).is_deadlock_free());
//! assert!(engine.check(&Query::new().capacity(3)).is_deadlock_free());
//! // Same session, different question: only the stuck-packet symptom.
//! let stuck = Query::new().capacity(2).target(DeadlockTarget::StuckPacket);
//! assert!(!engine.check(&stuck).is_deadlock_free());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod batch;
mod compose;
mod family;
pub mod prelude;
mod query;
mod report;
pub mod service;
mod session;
mod sizing;
mod verifier;

#[allow(deprecated)]
pub use batch::verify_batch;
pub use batch::{run_batch, BatchOutcome, BatchScenario, ScenarioFabric};
pub use compose::{ComposeOptions, ComposeStats, Composition};
pub use family::{FamilyOutcome, ProtocolComparison, ProtocolFamily};
pub use query::{QueryEngine, SessionStats};
pub use report::Report;
pub use service::{
    Fingerprint, JobError, JobId, JobOutcome, JobRequest, JsonSubmitError, OutcomeError, PoolStats,
    Service, ServiceConfig, ServiceStats, SubmitError, TopologySpec, VerifyJob,
};
#[allow(deprecated)]
pub use session::VerificationSession;
#[allow(deprecated)]
pub use sizing::{minimal_queue_size, minimal_queue_size_for_fabric};
pub use sizing::{SizingOptions, SizingProbe, SizingResult};
pub use verifier::Verifier;

// The query vocabulary lives next to the encoding in `advocat-deadlock`;
// re-export it here so engine users need only this crate.
pub use advocat_deadlock::{CapacitySelection, DeadlockTarget, Query};

// Re-export the building blocks so downstream users only need one
// dependency for common workflows.
pub use advocat_automata as automata;
pub use advocat_deadlock as deadlock;
pub use advocat_explorer as explorer;
pub use advocat_invariants as invariants;
pub use advocat_logic as logic;
pub use advocat_noc as noc;
pub use advocat_num as num;
pub use advocat_protocols as protocols;
pub use advocat_telemetry as telemetry;
pub use advocat_xmas as xmas;
