//! ADVOCAT — Automated Deadlock Verification for On-chip Cache coherence
//! and inTerconnects.
//!
//! This crate is the public facade of the ADVOCAT reproduction (Verbeek,
//! Yaghini, Eghbal, Bagherzadeh — DATE 2016).  It ties together the
//! substrate crates into the paper's fully automatic pipeline:
//!
//! 1. model the communication fabric in xMAS (`advocat-xmas`,
//!    `advocat-noc`) and the protocol agents as XMAS automata
//!    (`advocat-automata`, `advocat-protocols`),
//! 2. derive the per-channel color over-approximation `T`
//!    ([`advocat_automata::derive_colors`]),
//! 3. derive cross-layer invariants relating automaton states to en-route
//!    packets (`advocat-invariants`),
//! 4. encode the block/idle deadlock equations plus the invariants as an
//!    SMT instance and solve it (`advocat-deadlock`, `advocat-logic`),
//! 5. optionally confirm candidates by explicit-state exploration
//!    (`advocat-explorer`).
//!
//! The main entry points are [`Verifier`] (one verification run, returning
//! a [`Report`]), [`VerificationSession`] (an incremental session answering
//! many queue-capacity queries from one persistent solver),
//! [`minimal_queue_size`] (the queue-sizing search behind Figure 4 of the
//! paper, a binary search on top of a session) and [`verify_batch`]
//! (parallel verification of independent scenarios).
//!
//! # Examples
//!
//! Verify a 2×2 mesh running the abstract MI protocol (Fig. 3 of the
//! paper): queues of size 2 admit a cross-layer deadlock, size 3 does not.
//!
//! ```
//! use advocat::prelude::*;
//!
//! let deadlocking = build_mesh(&MeshConfig::new(2, 2, 2).with_directory(1, 1))?;
//! let report = Verifier::new().analyze(&deadlocking);
//! assert!(!report.is_deadlock_free());
//!
//! let safe = build_mesh(&MeshConfig::new(2, 2, 3).with_directory(1, 1))?;
//! let report = Verifier::new().analyze(&safe);
//! assert!(report.is_deadlock_free());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod batch;
pub mod prelude;
mod report;
mod session;
mod sizing;
mod verifier;

pub use batch::{verify_batch, BatchOutcome, BatchScenario, ScenarioFabric};
pub use report::Report;
pub use session::{SessionStats, VerificationSession};
pub use sizing::{minimal_queue_size, minimal_queue_size_for_fabric, SizingOptions, SizingResult};
pub use verifier::Verifier;

// Re-export the building blocks so downstream users only need one
// dependency for common workflows.
pub use advocat_automata as automata;
pub use advocat_deadlock as deadlock;
pub use advocat_explorer as explorer;
pub use advocat_invariants as invariants;
pub use advocat_logic as logic;
pub use advocat_noc as noc;
pub use advocat_num as num;
pub use advocat_protocols as protocols;
pub use advocat_xmas as xmas;
