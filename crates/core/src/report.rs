//! Verification reports.

use advocat_automata::{System, SystemStats};
use advocat_deadlock::{Analysis, Counterexample, Verdict};
use advocat_invariants::{format_invariant, InvariantSet};

/// Everything a verification run produced: the verdict and its statistics,
/// the derived invariants (already rendered to text), and the size of the
/// verified model.
#[derive(Clone, Debug)]
pub struct Report {
    invariants: InvariantSet,
    invariant_text: Vec<String>,
    analysis: Analysis,
    system_stats: SystemStats,
    attribution: Option<String>,
}

impl Report {
    pub(crate) fn new(system: &System, invariants: InvariantSet, analysis: Analysis) -> Report {
        let invariant_text = invariants
            .iter()
            .map(|inv| format_invariant(system, inv))
            .collect();
        Report {
            invariants,
            invariant_text,
            analysis,
            system_stats: system.stats(),
            attribution: None,
        }
    }

    /// A report for a composed run, where no whole-fabric system exists:
    /// the size statistics are the sum over the certified tiles (their
    /// environment closures included), and a candidate carries an
    /// attribution naming the tile or boundary interface it touches.
    pub(crate) fn composed(
        system_stats: SystemStats,
        analysis: Analysis,
        attribution: Option<String>,
    ) -> Report {
        Report {
            invariants: InvariantSet::default(),
            invariant_text: Vec::new(),
            analysis,
            system_stats,
            attribution,
        }
    }

    /// Returns `true` when the system was proven deadlock-free.
    pub fn is_deadlock_free(&self) -> bool {
        self.analysis.verdict.is_deadlock_free()
    }

    /// Returns the verdict.
    pub fn verdict(&self) -> &Verdict {
        &self.analysis.verdict
    }

    /// Returns the deadlock candidate, if one was found.
    pub fn counterexample(&self) -> Option<&Counterexample> {
        self.analysis.verdict.counterexample()
    }

    /// Returns the derived cross-layer invariants.
    pub fn invariants(&self) -> &InvariantSet {
        &self.invariants
    }

    /// Returns the invariants rendered as human-readable equalities.
    pub fn invariant_text(&self) -> &[String] {
        &self.invariant_text
    }

    /// Returns the full deadlock analysis (verdict plus solver statistics).
    pub fn analysis(&self) -> &Analysis {
        &self.analysis
    }

    /// Returns the size statistics of the verified system.
    pub fn system_stats(&self) -> SystemStats {
        self.system_stats
    }

    /// For composed runs: which tile or boundary interface a candidate
    /// (or a tile-level failure) touches.  `None` on flat runs and on
    /// deadlock-free composed runs.
    pub fn attribution(&self) -> Option<&str> {
        self.attribution.as_deref()
    }

    /// The phase-attributed solver profile of the run.  `None` unless the
    /// check ran with an enabled telemetry handle (see
    /// [`SolverConfig::telemetry`](advocat_logic::SolverConfig)).
    pub fn solver_profile(&self) -> Option<&advocat_logic::SolverProfile> {
        self.analysis.profile.as_ref()
    }

    /// Renders a short multi-line summary in the style of the paper's
    /// experimental-results paragraphs.
    pub fn summary(&self) -> String {
        let verdict = match &self.analysis.verdict {
            Verdict::DeadlockFree => "deadlock-free".to_owned(),
            Verdict::PotentialDeadlock(_) => "potential deadlock".to_owned(),
            Verdict::Unknown => "unknown (resource limit)".to_owned(),
        };
        let at = match &self.attribution {
            Some(location) => format!(" at {location}"),
            None => String::new(),
        };
        let mut summary = format!(
            "{} primitives, {} automata, {} queues; {} invariants; verdict: {}{} in {:.2?} \
             ({} refinements; learnt DB {} live / {} total, {} reductions)",
            self.system_stats.primitives,
            self.system_stats.automata,
            self.system_stats.queues,
            self.invariants.len(),
            verdict,
            at,
            self.analysis.stats.elapsed,
            self.analysis.stats.refinements,
            self.analysis.stats.sat_live_learnts,
            self.analysis.stats.sat_total_learnt,
            self.analysis.stats.sat_reduced_dbs,
        );
        if let Some(profile) = &self.analysis.profile {
            summary.push_str(&format!("\nsolver profile: {profile}"));
        }
        summary
    }
}

#[cfg(test)]
mod tests {
    use crate::{Query, QueryEngine};
    use advocat_noc::{build_mesh, MeshConfig};

    #[test]
    fn report_exposes_invariants_and_summary() {
        let system = build_mesh(&MeshConfig::new(2, 2, 3).with_directory(1, 1)).unwrap();
        let report = QueryEngine::on(system, 3..=3).check(&Query::new());
        assert!(report.is_deadlock_free());
        assert!(report.counterexample().is_none());
        assert_eq!(report.invariants().len(), report.invariant_text().len());
        assert!(report.invariant_text().iter().any(|t| t.contains('=')));
        let summary = report.summary();
        assert!(summary.contains("deadlock-free"));
        assert!(summary.contains("4 automata"));
        // Telemetry was disabled, so no profile line is rendered.
        assert!(report.solver_profile().is_none());
        assert!(!summary.contains("solver profile"));
    }

    #[test]
    fn summary_renders_the_solver_profile_when_telemetry_is_on() {
        use advocat_logic::{CheckConfig, SolverConfig, Telemetry};

        let system = build_mesh(&MeshConfig::new(2, 2, 3).with_directory(1, 1)).unwrap();
        let config = CheckConfig {
            solver: SolverConfig {
                telemetry: Telemetry::null(),
                ..SolverConfig::default()
            },
            ..CheckConfig::default()
        };
        let report = QueryEngine::with_config(system, config, 3..=3).check(&Query::new());
        let profile = report.solver_profile().expect("telemetry was enabled");
        assert!(profile.propagate.count > 0);
        let summary = report.summary();
        assert!(summary.contains("solver profile: propagate"), "{summary}");
        assert!(summary.contains("analyze"), "{summary}");
    }

    #[test]
    fn report_carries_the_counterexample_when_deadlocking() {
        let system = build_mesh(&MeshConfig::new(2, 2, 2).with_directory(1, 1)).unwrap();
        let report = QueryEngine::on(system, 2..=2).check(&Query::new());
        assert!(!report.is_deadlock_free());
        let cex = report.counterexample().expect("candidate present");
        assert!(cex.total_packets() >= 1 || !cex.dead_automata.is_empty());
        assert!(report.summary().contains("potential deadlock"));
    }
}
