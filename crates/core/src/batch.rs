//! Parallel verification of independent scenarios.
//!
//! Design-space exploration rarely asks one question: it sweeps
//! topologies, directory placements, protocols and deadlock
//! specifications.  The scenarios are independent, so [`verify_batch`]
//! fans them out over `std::thread` workers pulling from a shared queue —
//! wall-clock time scales with the slowest scenario rather than the sum.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use advocat_deadlock::DeadlockSpec;
use advocat_logic::CheckConfig;
use advocat_noc::{build_fabric, FabricConfig, FabricError, MeshConfig};

use crate::report::Report;
use crate::verifier::Verifier;

/// What a [`BatchScenario`] builds and verifies: a classic mesh
/// description or a topology-generic fabric.
#[derive(Clone, Debug)]
pub enum ScenarioFabric {
    /// A 2D mesh with XY routing (the paper's configuration).
    Mesh(MeshConfig),
    /// Any topology × routing-function fabric (boxed: a full fabric
    /// description is much larger than a mesh one).
    Fabric(Box<FabricConfig>),
}

impl ScenarioFabric {
    fn build(&self) -> Result<advocat_automata::System, FabricError> {
        match self {
            ScenarioFabric::Mesh(config) => {
                let fabric = config.to_fabric()?;
                build_fabric(&fabric)
            }
            ScenarioFabric::Fabric(config) => build_fabric(config),
        }
    }
}

/// One independent verification scenario of a batch.
#[derive(Clone, Debug)]
pub struct BatchScenario {
    /// A human-readable label carried into the outcome.
    pub name: String,
    /// The fabric to build and verify.
    pub fabric: ScenarioFabric,
    /// Which conditions count as a deadlock.
    pub spec: DeadlockSpec,
    /// SMT resource limits for this scenario.
    pub config: CheckConfig,
}

impl BatchScenario {
    /// Creates a mesh scenario with the default deadlock specification and
    /// solver limits.
    pub fn new(name: impl Into<String>, mesh: MeshConfig) -> Self {
        BatchScenario {
            name: name.into(),
            fabric: ScenarioFabric::Mesh(mesh),
            spec: DeadlockSpec::default(),
            config: CheckConfig::default(),
        }
    }

    /// Creates a scenario for an arbitrary topology fabric.
    pub fn for_fabric(name: impl Into<String>, fabric: FabricConfig) -> Self {
        BatchScenario {
            name: name.into(),
            fabric: ScenarioFabric::Fabric(Box::new(fabric)),
            spec: DeadlockSpec::default(),
            config: CheckConfig::default(),
        }
    }

    /// Replaces the deadlock specification.
    pub fn with_spec(mut self, spec: DeadlockSpec) -> Self {
        self.spec = spec;
        self
    }

    /// Replaces the SMT resource limits.
    pub fn with_config(mut self, config: CheckConfig) -> Self {
        self.config = config;
        self
    }
}

/// The per-scenario result of a [`verify_batch`] run.
#[derive(Clone, Debug)]
pub struct BatchOutcome {
    /// The scenario's label.
    pub name: String,
    /// The verification report, or the fabric-construction error.
    pub result: Result<Report, FabricError>,
    /// Wall-clock time this scenario took on its worker (fabric
    /// construction plus the full pipeline).
    pub elapsed: Duration,
}

impl BatchOutcome {
    /// Returns `true` when the scenario was verified deadlock-free.
    pub fn is_deadlock_free(&self) -> bool {
        matches!(&self.result, Ok(report) if report.is_deadlock_free())
    }
}

/// Verifies every scenario, fanning the work across at most `workers`
/// operating-system threads, and returns the outcomes in scenario order.
///
/// Workers pull scenarios from a shared counter, so an expensive scenario
/// does not hold up the remaining ones.  `workers` is clamped to
/// `1..=scenarios.len()`; pass `std::thread::available_parallelism()` for
/// a machine-sized pool.
///
/// # Examples
///
/// ```
/// use advocat::prelude::*;
///
/// let scenarios = vec![
///     BatchScenario::new("2x2 corner, qs 2", MeshConfig::new(2, 2, 2)),
///     BatchScenario::for_fabric(
///         "ring of 4, qs 2",
///         FabricConfig::new(Topology::ring(4)?, 2),
///     ),
/// ];
/// let outcomes = verify_batch(&scenarios, 2);
/// assert_eq!(outcomes.len(), 2);
/// assert!(outcomes.iter().all(|o| o.result.is_ok()));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn verify_batch(scenarios: &[BatchScenario], workers: usize) -> Vec<BatchOutcome> {
    if scenarios.is_empty() {
        return Vec::new();
    }
    let workers = workers.clamp(1, scenarios.len());
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<BatchOutcome>>> =
        scenarios.iter().map(|_| Mutex::new(None)).collect();

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let index = next.fetch_add(1, Ordering::Relaxed);
                let Some(scenario) = scenarios.get(index) else {
                    break;
                };
                let start = Instant::now();
                let result = scenario.fabric.build().map(|system| {
                    Verifier::new()
                        .with_spec(scenario.spec)
                        .with_config(scenario.config)
                        .analyze(&system)
                });
                let outcome = BatchOutcome {
                    name: scenario.name.clone(),
                    result,
                    elapsed: start.elapsed(),
                };
                *slots[index]
                    .lock()
                    .expect("no worker panicked holding the slot") = Some(outcome);
            });
        }
    });

    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("no worker panicked holding the slot")
                .expect("every index below len was processed")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use advocat_noc::{build_mesh, Topology};

    #[test]
    fn batch_results_come_back_in_scenario_order() {
        let scenarios = vec![
            BatchScenario::new("deadlocking", MeshConfig::new(2, 2, 2).with_directory(1, 1)),
            BatchScenario::new("free", MeshConfig::new(2, 2, 3).with_directory(1, 1)),
            BatchScenario::new("invalid", MeshConfig::new(1, 1, 1)),
        ];
        let outcomes = verify_batch(&scenarios, 4);
        assert_eq!(outcomes.len(), 3);
        assert_eq!(outcomes[0].name, "deadlocking");
        assert!(!outcomes[0].is_deadlock_free());
        assert!(outcomes[1].is_deadlock_free());
        assert!(outcomes[2].result.is_err());
    }

    #[test]
    fn batch_agrees_with_sequential_verification() {
        let configs = [
            MeshConfig::new(2, 2, 2).with_directory(0, 0),
            MeshConfig::new(2, 2, 3).with_directory(0, 0),
            MeshConfig::new(2, 2, 3).with_directory(1, 1),
        ];
        let scenarios: Vec<BatchScenario> = configs
            .iter()
            .enumerate()
            .map(|(i, c)| BatchScenario::new(format!("scenario {i}"), *c))
            .collect();
        let outcomes = verify_batch(&scenarios, 2);
        for (config, outcome) in configs.iter().zip(&outcomes) {
            let sequential = Verifier::new()
                .analyze(&build_mesh(config).unwrap())
                .is_deadlock_free();
            assert_eq!(outcome.is_deadlock_free(), sequential);
        }
    }

    #[test]
    fn one_batch_spans_topology_families() {
        let scenarios = vec![
            BatchScenario::for_fabric(
                "ring4 qs2",
                FabricConfig::new(Topology::ring(4).unwrap(), 2).with_directory(1),
            ),
            BatchScenario::for_fabric(
                "fat-tree qs1",
                FabricConfig::new(Topology::fat_tree(2, 2).unwrap(), 1).with_directory(3),
            ),
            BatchScenario::new("mesh qs3", MeshConfig::new(2, 2, 3).with_directory(1, 1)),
        ];
        let outcomes = verify_batch(&scenarios, 3);
        assert!(outcomes[0].is_deadlock_free(), "datelined ring at qs 2");
        assert!(
            !outcomes[1].is_deadlock_free(),
            "fat tree deadlocks at qs 1"
        );
        assert!(outcomes[2].is_deadlock_free());
    }

    #[test]
    fn empty_batch_and_oversized_worker_counts_are_fine() {
        assert!(verify_batch(&[], 8).is_empty());
        let scenarios = vec![BatchScenario::new("one", MeshConfig::new(2, 2, 3))];
        let outcomes = verify_batch(&scenarios, 64);
        assert_eq!(outcomes.len(), 1);
    }
}
