//! Parallel verification of independent scenarios.
//!
//! Design-space exploration rarely asks one question: it sweeps
//! topologies, directory placements, protocols, deadlock targets and
//! queue capacities.  The scenarios are independent, so [`run_batch`]
//! fans them out across worker threads — wall-clock time scales with the
//! slowest scenario rather than the sum — and *within* each scenario
//! every query is answered by one persistent
//! [`QueryEngine`](crate::QueryEngine) session, so a scenario's capacity
//! sweep reuses its encoding and everything its solver learnt instead of
//! re-analyzing cold per capacity.
//!
//! Since the service layer landed, `run_batch` is a thin wrapper over a
//! private [`Service`]: each scenario expands to `(fabric, capacity)`
//! jobs via [`Service::submit_sweep`], the work-stealing scheduler fans
//! them out, and the warm-engine pool's ticket discipline reproduces
//! exactly the old one-session-per-scenario behaviour (same verdicts,
//! same witnesses, same per-scenario stats).

use std::ops::RangeInclusive;
use std::sync::Arc;
use std::time::Duration;

use advocat_automata::System;
use advocat_deadlock::DeadlockSpec;
use advocat_logic::CheckConfig;
use advocat_noc::{
    build_fabric_for_sweep, build_tile_fabric, FabricConfig, FabricError, MeshConfig, Partition,
};

use crate::query::SessionStats;
use crate::report::Report;
use crate::service::{JobError, Service, ServiceConfig};

/// What a [`BatchScenario`] builds and verifies: a classic mesh
/// description or a topology-generic fabric.
#[derive(Clone, Debug)]
pub enum ScenarioFabric {
    /// A 2D mesh with XY routing (the paper's configuration).
    Mesh(MeshConfig),
    /// Any topology × routing-function fabric (boxed: a full fabric
    /// description is much larger than a mesh one).
    Fabric(Box<FabricConfig>),
    /// One tile of a partitioned fabric, closed at its boundary with
    /// environment sources and sinks
    /// ([`advocat_noc::build_tile_fabric`]).  Tiles of the same structural
    /// class share a fingerprint, so a composed run certifies each class
    /// once warm (see [`crate::QueryEngine::compose`]).
    Tile {
        /// The whole-fabric configuration the tile is cut from.
        fabric: Box<FabricConfig>,
        /// The partition defining the tile.
        partition: Arc<Partition>,
        /// The tile's index within the partition.
        tile: usize,
    },
}

impl ScenarioFabric {
    /// The queue capacity the scenario description itself pins.
    pub(crate) fn queue_size(&self) -> usize {
        match self {
            ScenarioFabric::Mesh(config) => config.queue_size,
            ScenarioFabric::Fabric(config) => config.queue_size,
            ScenarioFabric::Tile { fabric, .. } => fabric.queue_size,
        }
    }

    /// Builds the fabric with queues sized for a sweep up to
    /// `max_capacity`.
    pub(crate) fn build_for_sweep(&self, max_capacity: usize) -> Result<System, FabricError> {
        let fabric = match self {
            ScenarioFabric::Mesh(config) => config.to_fabric()?,
            ScenarioFabric::Fabric(config) => (**config).clone(),
            ScenarioFabric::Tile {
                fabric,
                partition,
                tile,
            } => {
                let sized = (**fabric).clone().with_queue_size(max_capacity);
                return build_tile_fabric(&sized, partition, *tile);
            }
        };
        build_fabric_for_sweep(&fabric, max_capacity)
    }
}

/// One independent verification scenario of a batch.
#[derive(Clone, Debug)]
pub struct BatchScenario {
    /// A human-readable label carried into the outcome.
    pub name: String,
    /// The fabric to build and verify.
    pub fabric: ScenarioFabric,
    /// Which conditions count as a deadlock.
    pub spec: DeadlockSpec,
    /// SMT resource limits for this scenario.
    pub config: CheckConfig,
    /// Optional capacity sweep: when set, the scenario's one session
    /// answers every capacity in the range (ascending) instead of only the
    /// fabric's own queue size.
    pub sweep: Option<RangeInclusive<usize>>,
}

impl BatchScenario {
    /// Creates a mesh scenario with the default deadlock specification and
    /// solver limits.
    pub fn new(name: impl Into<String>, mesh: MeshConfig) -> Self {
        BatchScenario {
            name: name.into(),
            fabric: ScenarioFabric::Mesh(mesh),
            spec: DeadlockSpec::default(),
            config: CheckConfig::default(),
            sweep: None,
        }
    }

    /// Creates a scenario for an arbitrary topology fabric.
    pub fn for_fabric(name: impl Into<String>, fabric: FabricConfig) -> Self {
        BatchScenario {
            name: name.into(),
            fabric: ScenarioFabric::Fabric(Box::new(fabric)),
            spec: DeadlockSpec::default(),
            config: CheckConfig::default(),
            sweep: None,
        }
    }

    /// Replaces the deadlock specification.
    pub fn with_spec(mut self, spec: DeadlockSpec) -> Self {
        self.spec = spec;
        self
    }

    /// Replaces the SMT resource limits.
    pub fn with_config(mut self, config: CheckConfig) -> Self {
        self.config = config;
        self
    }

    /// Sweeps every capacity in `capacities` through the scenario's one
    /// session (the fabric is built once, at the top of the range).
    ///
    /// # Panics
    ///
    /// [`run_batch`] panics when the range is empty.
    pub fn with_sweep(mut self, capacities: RangeInclusive<usize>) -> Self {
        self.sweep = Some(capacities);
        self
    }
}

/// The per-scenario result of a [`run_batch`] run.
#[derive(Clone, Debug)]
pub struct BatchOutcome {
    /// The scenario's label.
    pub name: String,
    /// The verification report at the scenario's own queue size (or, when
    /// a sweep excludes that size, at the sweep's largest capacity) — or
    /// the fabric-construction error.
    pub result: Result<Report, FabricError>,
    /// Every `(capacity, report)` the scenario's session answered, in
    /// ascending capacity order.  One entry without a sweep; one per
    /// capacity with one.
    pub sweep: Vec<(usize, Report)>,
    /// Cumulative statistics of the scenario's one verification session —
    /// the evidence that a sweep reused its encoding (`templates_built`
    /// stays 1) rather than re-analyzing cold.  `None` when the fabric
    /// failed to build.
    pub stats: Option<SessionStats>,
    /// Wall-clock time spent *working* on this scenario: fabric
    /// construction plus every query, summed over its jobs.  Time the
    /// jobs waited for a worker is **not** included (the service reports
    /// queue wait separately, per job, as
    /// [`JobOutcome::queue_wait`](crate::JobOutcome::queue_wait)).
    pub elapsed: Duration,
    /// Wall-clock time this scenario's jobs spent *waiting* — for a
    /// worker, or for their turn on the scenario's shared engine — summed
    /// over its jobs.  `queued_for + elapsed` is the scenario's total
    /// occupancy of the service; keeping the two separate is what lets a
    /// saturated batch distinguish slow solving from a congested queue.
    pub queued_for: Duration,
}

impl BatchOutcome {
    /// Returns `true` when the scenario was verified deadlock-free (at its
    /// primary capacity; see [`BatchOutcome::result`]).
    pub fn is_deadlock_free(&self) -> bool {
        matches!(&self.result, Ok(report) if report.is_deadlock_free())
    }
}

/// Verifies every scenario, fanning the work across at most `workers`
/// operating-system threads, and returns the outcomes in scenario order.
///
/// Each scenario expands into one job per swept capacity on a private
/// [`Service`]; the service's warm-engine pool guarantees the whole sweep
/// runs on one persistent [`QueryEngine`](crate::QueryEngine) session, in
/// ascending capacity order, exactly as if the scenario ran alone on one
/// thread — while the work-stealing scheduler keeps every worker busy
/// across scenarios.  **`workers == 0` means machine-sized**: the pool
/// uses [`std::thread::available_parallelism`].  Any other value is
/// clamped to the number of jobs.
///
/// # Examples
///
/// ```
/// use advocat::prelude::*;
///
/// let scenarios = vec![
///     BatchScenario::new("2x2 sweep", MeshConfig::new(2, 2, 2).with_directory(1, 1))
///         .with_sweep(2..=3),
///     BatchScenario::for_fabric(
///         "ring of 4, qs 2",
///         FabricConfig::new(Topology::ring(4)?, 2),
///     ),
/// ];
/// let outcomes = run_batch(&scenarios, 2);
/// assert_eq!(outcomes.len(), 2);
/// assert_eq!(outcomes[0].sweep.len(), 2);
/// assert_eq!(outcomes[0].stats.unwrap().templates_built, 1);
/// assert!(outcomes.iter().all(|o| o.result.is_ok()));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn run_batch(scenarios: &[BatchScenario], workers: usize) -> Vec<BatchOutcome> {
    if scenarios.is_empty() {
        return Vec::new();
    }
    let total_jobs: usize = scenarios
        .iter()
        .map(|s| s.sweep.clone().map_or(1, Iterator::count))
        .sum();
    let workers = if workers == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        workers
    }
    .clamp(1, total_jobs.max(1));

    let service = Service::new(
        ServiceConfig::default()
            .with_workers(workers)
            .with_queue_capacity(total_jobs.max(1))
            .with_max_engines(scenarios.len()),
    );
    let ids: Vec<usize> = scenarios
        .iter()
        .map(|scenario| service.submit_sweep(scenario).len())
        .collect();
    let mut outcomes = service.drain().into_iter();

    scenarios
        .iter()
        .zip(ids)
        .map(|(scenario, jobs)| {
            let own_size = scenario.fabric.queue_size();
            let mut sweep = Vec::with_capacity(jobs);
            let mut stats = SessionStats::default();
            let mut elapsed = Duration::ZERO;
            let mut queued_for = Duration::ZERO;
            let mut fabric_error = None;
            for outcome in outcomes.by_ref().take(jobs) {
                elapsed += outcome.work_elapsed;
                queued_for += outcome.queue_wait;
                match outcome.result {
                    Ok(report) => sweep.push((outcome.capacity, report)),
                    Err(JobError::Fabric(error)) => fabric_error = Some(error),
                    Err(other) => {
                        unreachable!("batch jobs run without timeouts: {other}")
                    }
                }
                if let Some(delta) = &outcome.session_delta {
                    stats.absorb(delta);
                }
            }
            let (result, sweep, stats) = match fabric_error {
                Some(error) => (Err(error), Vec::new(), None),
                None => {
                    let primary = sweep
                        .iter()
                        .find(|(capacity, _)| *capacity == own_size)
                        .or_else(|| sweep.last())
                        .map(|(_, report)| report.clone())
                        .expect("non-empty capacity range");
                    (Ok(primary), sweep, Some(stats))
                }
            };
            BatchOutcome {
                name: scenario.name.clone(),
                result,
                sweep,
                stats,
                elapsed,
                queued_for,
            }
        })
        .collect()
}

/// Verifies every scenario at its own queue size.
#[deprecated(
    since = "0.3.0",
    note = "use `run_batch` (same signature, same outcomes, \
                                      plus per-scenario sweeps and session stats)"
)]
pub fn verify_batch(scenarios: &[BatchScenario], workers: usize) -> Vec<BatchOutcome> {
    run_batch(scenarios, workers)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::QueryEngine;
    use advocat_deadlock::{DeadlockTarget, Query};
    use advocat_noc::Topology;

    #[test]
    fn batch_results_come_back_in_scenario_order() {
        let scenarios = vec![
            BatchScenario::new("deadlocking", MeshConfig::new(2, 2, 2).with_directory(1, 1)),
            BatchScenario::new("free", MeshConfig::new(2, 2, 3).with_directory(1, 1)),
            BatchScenario::new("invalid", MeshConfig::new(1, 1, 1)),
        ];
        let outcomes = run_batch(&scenarios, 4);
        assert_eq!(outcomes.len(), 3);
        assert_eq!(outcomes[0].name, "deadlocking");
        assert!(!outcomes[0].is_deadlock_free());
        assert!(outcomes[1].is_deadlock_free());
        assert!(outcomes[2].result.is_err());
        assert!(outcomes[2].stats.is_none());
    }

    #[test]
    fn batch_agrees_with_sequential_verification() {
        let configs = [
            MeshConfig::new(2, 2, 2).with_directory(0, 0),
            MeshConfig::new(2, 2, 3).with_directory(0, 0),
            MeshConfig::new(2, 2, 3).with_directory(1, 1),
        ];
        let scenarios: Vec<BatchScenario> = configs
            .iter()
            .enumerate()
            .map(|(i, c)| BatchScenario::new(format!("scenario {i}"), *c))
            .collect();
        let outcomes = run_batch(&scenarios, 2);
        for (config, outcome) in configs.iter().zip(&outcomes) {
            let system = advocat_noc::build_mesh(config).unwrap();
            let sequential = QueryEngine::on(system, config.queue_size..=config.queue_size)
                .check(&Query::new().capacity(config.queue_size))
                .is_deadlock_free();
            assert_eq!(outcome.is_deadlock_free(), sequential);
        }
    }

    #[test]
    fn one_batch_spans_topology_families() {
        let scenarios = vec![
            BatchScenario::for_fabric(
                "ring4 qs2",
                FabricConfig::new(Topology::ring(4).unwrap(), 2).with_directory(1),
            ),
            BatchScenario::for_fabric(
                "fat-tree qs1",
                FabricConfig::new(Topology::fat_tree(2, 2).unwrap(), 1).with_directory(3),
            ),
            BatchScenario::new("mesh qs3", MeshConfig::new(2, 2, 3).with_directory(1, 1)),
        ];
        let outcomes = run_batch(&scenarios, 3);
        assert!(outcomes[0].is_deadlock_free(), "datelined ring at qs 2");
        assert!(
            !outcomes[1].is_deadlock_free(),
            "fat tree deadlocks at qs 1"
        );
        assert!(outcomes[2].is_deadlock_free());
    }

    #[test]
    fn capacity_sweeps_reuse_one_session_per_scenario() {
        let scenarios = vec![
            BatchScenario::new("mesh sweep", MeshConfig::new(2, 2, 2).with_directory(1, 1))
                .with_sweep(1..=4),
            BatchScenario::for_fabric(
                "ring sweep",
                FabricConfig::new(Topology::ring(4).unwrap(), 1).with_directory(1),
            )
            .with_sweep(1..=3),
        ];
        let outcomes = run_batch(&scenarios, 2);

        let mesh = &outcomes[0];
        let free: Vec<bool> = mesh
            .sweep
            .iter()
            .map(|(_, report)| report.is_deadlock_free())
            .collect();
        assert_eq!(free, vec![false, false, true, true], "mesh threshold is 3");
        // The primary report sits at the scenario's own queue size (2).
        assert!(!mesh.is_deadlock_free());
        let stats = mesh.stats.expect("session stats per scenario");
        assert_eq!(stats.templates_built, 1, "one encoding for the sweep");
        assert_eq!(stats.queries, 4);

        let ring = &outcomes[1];
        let free: Vec<bool> = ring
            .sweep
            .iter()
            .map(|(_, report)| report.is_deadlock_free())
            .collect();
        assert_eq!(free, vec![false, true, true], "ring threshold is 2");
        assert_eq!(ring.stats.expect("stats").queries, 3);
    }

    #[test]
    fn sweeping_scenarios_cost_less_than_cold_per_capacity_batches() {
        let config = MeshConfig::new(2, 2, 1).with_directory(1, 1);
        let sweep = BatchScenario::new("sweep", config).with_sweep(1..=6);
        let outcomes = run_batch(&[sweep], 1);
        let session_effort = outcomes[0].stats.expect("stats").sat_effort();

        let cold: Vec<BatchScenario> = (1..=6)
            .map(|qs| BatchScenario::new(format!("qs {qs}"), config.with_queue_size(qs)))
            .collect();
        let cold_outcomes = run_batch(&cold, 1);
        let cold_effort: u64 = cold_outcomes
            .iter()
            .map(|o| o.stats.expect("stats").sat_effort())
            .sum();
        // Same verdicts, shared session: the sweep is strictly cheaper.
        for (i, outcome) in cold_outcomes.iter().enumerate() {
            assert_eq!(
                outcomes[0].sweep[i].1.is_deadlock_free(),
                outcome.is_deadlock_free(),
                "capacity {}",
                i + 1
            );
        }
        assert!(
            session_effort < cold_effort,
            "sweep effort {session_effort} is not below per-capacity effort {cold_effort}"
        );
    }

    #[test]
    fn batch_scenarios_honour_the_deadlock_target() {
        let mesh = MeshConfig::new(2, 2, 2).with_directory(1, 1);
        let scenarios = vec![
            BatchScenario::new("stuck", mesh)
                .with_spec(DeadlockSpec::from(DeadlockTarget::StuckPacket)),
            BatchScenario::new("neither", mesh).with_spec(DeadlockSpec {
                stuck_packet: false,
                dead_automaton: false,
            }),
        ];
        let outcomes = run_batch(&scenarios, 2);
        let cex = outcomes[0]
            .result
            .as_ref()
            .unwrap()
            .counterexample()
            .expect("size 2 deadlocks");
        assert!(cex.witnesses(DeadlockTarget::StuckPacket));
        assert!(outcomes[1].is_deadlock_free(), "nothing to look for");
    }

    #[test]
    #[allow(deprecated)]
    fn empty_batch_and_oversized_worker_counts_are_fine() {
        assert!(verify_batch(&[], 8).is_empty());
        let scenarios = vec![BatchScenario::new("one", MeshConfig::new(2, 2, 3))];
        let outcomes = verify_batch(&scenarios, 64);
        assert_eq!(outcomes.len(), 1);
        assert_eq!(outcomes[0].sweep.len(), 1);
    }
}
