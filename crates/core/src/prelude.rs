//! Convenience re-exports for the common ADVOCAT workflows.
//!
//! ```
//! use advocat::prelude::*;
//!
//! let system = build_mesh(&MeshConfig::new(2, 2, 3).with_directory(1, 1))?;
//! let mut engine = QueryEngine::on(system, 3..=3);
//! assert!(engine.check(&Query::new().capacity(3)).is_deadlock_free());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#[allow(deprecated)]
pub use crate::{
    minimal_queue_size, minimal_queue_size_for_fabric, verify_batch, VerificationSession,
};

pub use crate::{
    run_batch, BatchOutcome, BatchScenario, ComposeOptions, ComposeStats, Composition,
    FamilyOutcome, ProtocolComparison, ProtocolFamily, QueryEngine, Report, ScenarioFabric,
    SessionStats, SizingOptions, SizingProbe, SizingResult, Verifier,
};

pub use crate::service::{
    Fingerprint, JobError, JobId, JobOutcome, JobRequest, JsonSubmitError, OutcomeError, PoolStats,
    Service, ServiceConfig, ServiceStats, SubmitError, TopologySpec, VerifyJob,
};

pub use advocat_automata::{derive_colors, AutomatonBuilder, System};
pub use advocat_deadlock::{
    verify_system, CapacitySelection, DeadlockSpec, DeadlockTarget, EncodingTemplate, Query,
    Verdict,
};
pub use advocat_explorer::{explore, explore_parallel, random_walk, ExplorerConfig};
pub use advocat_invariants::{derive_invariants, format_invariant};
pub use advocat_logic::{CheckConfig, SolverConfig};
pub use advocat_noc::{
    audit_routing, boundary_graph, build_fabric, build_fabric_for_sweep, build_mesh,
    build_mesh_for_sweep, build_tile_fabric, default_routing, fabric_dot, BoundaryPort,
    DimensionOrdered, FabricConfig, FabricError, FatTreeRouting, MeshConfig, Partition,
    ProtocolKind, RoutingFunction, TableRouting, Topology, UpDownRouting,
};
pub use advocat_protocols::{AbstractMi, FullMi, Mesi};
pub use advocat_telemetry::{MetricsRegistry, SolverProfile, Telemetry, TraceBuffer};
pub use advocat_xmas::{Network, Packet};
