//! Compositional verification: certified tiles plus a boundary check.
//!
//! A flat encoding of a large fabric is one monolithic SMT instance whose
//! size — and solving time — grows with the whole fabric.  The composed
//! flow cuts the fabric along a [`Partition`] and never builds the flat
//! instance at all:
//!
//! 1. every tile is closed at its boundary with free environment sources
//!    and sinks ([`advocat_noc::build_tile_fabric`]) and certified
//!    deadlock-free on its own small encoding — through the service pool,
//!    so the 60 interior tiles of a big mesh all hit the one warm engine
//!    their shared structural class built;
//! 2. each tile's derived invariants are projected onto its cut queues,
//!    yielding an [`advocat_invariants::InterfaceContract`] of sound
//!    occupancy bounds;
//! 3. the global question is asked over **contract variables only**:
//!    [`advocat_deadlock::check_composition`] searches for a cycle of
//!    full, mutually-waiting boundary ports subject to the contracts.
//!
//! `Unsat` at step 3 (with every tile certified) means the composition is
//! deadlock-free; `Sat` is a *candidate* attributed to the interface it
//! touches ([`Report::attribution`]).  The abstraction is coarser than
//! the flat encoding — candidates may be spurious where a flat run would
//! prove freedom — so for small fabrics, where flat is cheap anyway, the
//! engine transparently falls back to the flat encoding
//! ([`ComposeOptions::flat_fallback_max_nodes`]); on large fabrics the
//! composed path is the only one that completes in reasonable time.
//!
//! # Examples
//!
//! ```
//! use std::sync::Arc;
//! use advocat::prelude::*;
//!
//! let config = FabricConfig::new(Topology::mesh(2, 2)?, 3).with_directory(3);
//! let partition = Arc::new(Partition::per_node(&config.topology));
//! let mut composition = QueryEngine::compose(
//!     config,
//!     partition,
//!     ComposeOptions::new(2..=3),
//! )?;
//! let report = composition.check(&Query::new().capacity(3));
//! assert!(report.is_deadlock_free());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use std::ops::RangeInclusive;
use std::sync::Arc;
use std::time::Instant;

use advocat_automata::{derive_colors, System, SystemStats};
use advocat_deadlock::{
    check_composition, Analysis, AnalysisStats, BoundaryOutcome, CapacitySelection,
    CompositionModel, Counterexample, DeadlockSpec, DeadlockTarget, InterfacePort, Query, Verdict,
};
use advocat_invariants::{
    derive_invariants, project_interface, ContractPort, InterfaceContract, InvariantSet,
};
use advocat_logic::CheckConfig;
use advocat_noc::{
    boundary_graph, build_tile_fabric, BoundaryGraph, ConfigDigest, FabricConfig, FabricError,
    Partition, PortDirection,
};
use advocat_xmas::ColorMap;

use crate::batch::ScenarioFabric;
use crate::query::QueryEngine;
use crate::report::Report;
use crate::service::{Service, ServiceConfig, VerifyJob};

/// Options of a composed verification.
#[derive(Clone, Debug)]
pub struct ComposeOptions {
    /// The capacity range tile engines are built over (every queried
    /// capacity must lie inside it, exactly as for a flat engine).
    pub capacities: RangeInclusive<usize>,
    /// SMT resource limits for tile certification and the boundary check.
    pub check: CheckConfig,
    /// Fabrics with at most this many topology nodes are answered by the
    /// flat encoding instead (`0` disables the fallback entirely).  Flat
    /// is exact and cheap at this scale, so small configurations keep
    /// flat-identical verdicts; the composed machinery is for fabrics
    /// beyond it.
    pub flat_fallback_max_nodes: usize,
    /// Worker threads for tile certification (`0` = machine-sized).
    pub workers: usize,
}

impl ComposeOptions {
    /// Defaults: default solver limits, flat fallback up to 9 nodes
    /// (covering the paper's 2×2/3×3 study meshes), machine-sized workers.
    pub fn new(capacities: RangeInclusive<usize>) -> Self {
        ComposeOptions {
            capacities,
            check: CheckConfig::default(),
            flat_fallback_max_nodes: 9,
            workers: 0,
        }
    }

    /// Replaces the SMT resource limits.
    pub fn with_check(mut self, check: CheckConfig) -> Self {
        self.check = check;
        self
    }

    /// Sets the flat-fallback node bound (`0` disables the fallback).
    pub fn with_flat_fallback(mut self, max_nodes: usize) -> Self {
        self.flat_fallback_max_nodes = max_nodes;
        self
    }

    /// Sets the tile-certification worker count (`0` = machine-sized).
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }
}

/// Counters describing how a [`Composition`] answered its queries so far.
#[derive(Clone, Copy, Debug, Default)]
pub struct ComposeStats {
    /// Tiles in the partition.
    pub tiles: usize,
    /// Distinct structural tile classes (the number of engines a composed
    /// sweep needs — an 8×8 mesh has interior, edge, corner and
    /// directory-hosting classes, not 64 engines).
    pub distinct_classes: usize,
    /// Cut ports in the boundary graph.
    pub boundary_ports: usize,
    /// Tile engines built cold by the certification service.
    pub engines_built: u64,
    /// Tile jobs that ran on an already-warm engine.
    pub warm_hits: u64,
    /// Queries answered by the flat fallback instead of composition.
    pub flat_fallbacks: u64,
}

/// One tile's certified-build artefacts, kept for contract projection and
/// attribution.
struct TileData {
    name: String,
    system: System,
    colors: ColorMap,
    invariants: InvariantSet,
    ports: Vec<ContractPort>,
}

/// A composed verification session over one partitioned fabric: tiles are
/// certified through a private warm-engine service, contracts projected,
/// and the boundary checked — once per [`Composition::check`] call, with
/// engines staying warm across calls.  See the documentation of
/// [`QueryEngine::compose`] for the architecture.
pub struct Composition {
    config: FabricConfig,
    partition: Arc<Partition>,
    options: ComposeOptions,
    service: Service,
    tiles: Vec<TileData>,
    graph: BoundaryGraph,
    distinct_classes: usize,
    flat: Option<Box<QueryEngine>>,
    flat_fallbacks: u64,
}

impl std::fmt::Debug for Composition {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Composition")
            .field("tiles", &self.tiles.len())
            .field("distinct_classes", &self.distinct_classes)
            .field("boundary_ports", &self.graph.ports.len())
            .finish()
    }
}

impl QueryEngine {
    /// Opens a composed verification session: cuts `config` along
    /// `partition`, builds and validates every tile's closed subsystem
    /// (deriving its colors and invariants), and prepares the boundary
    /// waiting graph.  No SMT solving happens yet — queries do, via
    /// [`Composition::check`].
    ///
    /// # Errors
    ///
    /// Returns a [`FabricError`] when a tile subsystem cannot be built
    /// (which implies the flat fabric could not be built either).
    pub fn compose(
        config: FabricConfig,
        partition: Arc<Partition>,
        options: ComposeOptions,
    ) -> Result<Composition, FabricError> {
        let mut tiles = Vec::with_capacity(partition.num_tiles());
        let mut classes: Vec<ConfigDigest> = Vec::new();
        for tile in 0..partition.num_tiles() {
            let system = build_tile_fabric(&config, &partition, tile)?;
            let colors = derive_colors(&system);
            let invariants = derive_invariants(&system, &colors);
            let ports = partition
                .boundary_ports(&config, tile)
                .into_iter()
                .map(|p| ContractPort {
                    queue: p.name,
                    class: p.class,
                    ingress: p.direction == PortDirection::Ingress,
                })
                .collect();
            tiles.push(TileData {
                name: partition.tile(tile).name.clone(),
                system,
                colors,
                invariants,
                ports,
            });
            let digest = partition.tile_class_digest(&config, tile);
            if !classes.contains(&digest) {
                classes.push(digest);
            }
        }
        let graph = boundary_graph(&config, &partition);
        let service = Service::new(
            ServiceConfig::default()
                .with_workers(options.workers)
                .with_queue_capacity(tiles.len().max(1))
                // One engine per structural class, plus headroom so the
                // LRU never evicts a class mid-sweep.
                .with_max_engines(classes.len() + 1)
                // The certification service inherits the caller's
                // telemetry handle, so tile jobs trace and profile under
                // the same sink as the boundary check.
                .with_telemetry(options.check.solver.telemetry.clone()),
        );
        Ok(Composition {
            config,
            partition,
            options,
            service,
            tiles,
            graph,
            distinct_classes: classes.len(),
            flat: None,
            flat_fallbacks: 0,
        })
    }
}

impl Composition {
    /// Answers one [`Query`] for the whole fabric.
    ///
    /// Small fabrics (at most
    /// [`ComposeOptions::flat_fallback_max_nodes`] topology nodes) are
    /// answered by a lazily built flat engine — exact, and cheap at that
    /// scale.  Beyond it the composed path runs: every tile certified at
    /// the queried capacity (warm engines shared per structural class),
    /// contracts projected, boundary checked.  A deadlock-free composed
    /// verdict is sound; a composed candidate is over-approximate and
    /// carries an attribution naming the tile or interface it touches.
    ///
    /// # Panics
    ///
    /// Panics when the query pins a capacity outside
    /// [`ComposeOptions::capacities`], mirroring the flat engine.
    pub fn check(&mut self, query: &Query) -> Report {
        let nodes = self.config.topology.num_nodes();
        if self.options.flat_fallback_max_nodes > 0 && nodes <= self.options.flat_fallback_max_nodes
        {
            self.flat_fallbacks += 1;
            return self.flat_engine().check(query);
        }
        self.check_composed(query)
    }

    /// The lazily built flat-fallback engine.
    fn flat_engine(&mut self) -> &mut QueryEngine {
        if self.flat.is_none() {
            let engine = QueryEngine::for_fabric_with(
                &self.config,
                self.options.check.clone(),
                self.options.capacities.clone(),
            )
            .expect("tiles built, so the flat fabric builds");
            self.flat = Some(Box::new(engine));
        }
        self.flat.as_mut().expect("just built")
    }

    /// The composed path: certify every tile, then check the boundary.
    fn check_composed(&mut self, query: &Query) -> Report {
        let start = Instant::now();
        let telemetry = self.options.check.solver.telemetry.clone();
        let capacity = match query.capacity_selection() {
            CapacitySelection::Uniform(capacity) => capacity,
            CapacitySelection::Structural => self.config.queue_size,
        };
        let spec = DeadlockSpec::from(query.deadlock_target());
        let certify_span = telemetry.span_with("compose.certify", || {
            vec![
                ("tiles", self.tiles.len().to_string()),
                ("classes", self.distinct_classes.to_string()),
                ("capacity", capacity.to_string()),
            ]
        });
        for (index, tile) in self.tiles.iter().enumerate() {
            self.service.submit(
                VerifyJob::over(
                    tile.name.clone(),
                    ScenarioFabric::Tile {
                        fabric: Box::new(self.config.clone()),
                        partition: Arc::clone(&self.partition),
                        tile: index,
                    },
                )
                .with_spec(spec)
                .with_config(self.options.check.clone())
                .at_capacity(capacity)
                .with_engine_range(self.options.capacities.clone())
                .with_invariants(query.invariants_enabled()),
            );
        }

        let mut stats = AnalysisStats::default();
        let mut failing: Option<(String, Verdict)> = None;
        for outcome in self.service.drain() {
            match outcome.result {
                Ok(report) => {
                    accumulate(&mut stats, &report.analysis().stats);
                    if !report.is_deadlock_free() && failing.is_none() {
                        failing = Some((outcome.name, report.analysis().verdict.clone()));
                    }
                }
                Err(_) => {
                    if failing.is_none() {
                        failing = Some((outcome.name, Verdict::Unknown));
                    }
                }
            }
        }
        drop(certify_span);
        if let Some((tile, verdict)) = failing {
            // A tile that is not certified free under its liberal
            // environment closure already yields the composed candidate
            // (or resource-limit verdict), attributed to the tile.
            stats.elapsed = start.elapsed();
            return Report::composed(
                self.aggregate_system_stats(),
                Analysis {
                    verdict,
                    stats,
                    profile: None,
                },
                Some(format!("tile {tile}")),
            );
        }

        let boundary_span = telemetry.span_with("compose.boundary", || {
            vec![
                ("ports", self.graph.ports.len().to_string()),
                ("capacity", capacity.to_string()),
            ]
        });
        let model = self.composition_model(capacity, query.invariants_enabled());
        let boundary = check_composition(&model, &self.options.check);
        drop(boundary_span);
        stats.elapsed = start.elapsed();
        let (verdict, attribution) = match boundary.outcome {
            BoundaryOutcome::Free => (Verdict::DeadlockFree, None),
            BoundaryOutcome::Unknown => (Verdict::Unknown, None),
            BoundaryOutcome::Candidate { ports } => {
                let attribution = self.attribute_ports(&ports);
                let mut cex = Counterexample::default();
                for name in &ports {
                    cex.queue_contents.push((
                        name.clone(),
                        "boundary packet".to_owned(),
                        capacity as i64,
                    ));
                }
                cex.witnessed = vec![DeadlockTarget::StuckPacket];
                (Verdict::PotentialDeadlock(cex), Some(attribution))
            }
        };
        Report::composed(
            self.aggregate_system_stats(),
            Analysis {
                verdict,
                stats,
                profile: None,
            },
            attribution,
        )
    }

    /// The interface contracts of every tile at `capacity`, in tile order.
    pub fn contracts(&self, capacity: usize) -> Vec<InterfaceContract> {
        self.tiles
            .iter()
            .map(|tile| {
                project_interface(
                    &tile.system,
                    &tile.colors,
                    &tile.invariants,
                    &tile.name,
                    &tile.ports,
                    capacity,
                )
            })
            .collect()
    }

    /// Counters of the session so far (tile/class/boundary sizes are
    /// fixed at [`QueryEngine::compose`] time; the engine counters grow
    /// with every composed query).
    pub fn stats(&self) -> ComposeStats {
        let pool = self.service.pool_stats();
        ComposeStats {
            tiles: self.tiles.len(),
            distinct_classes: self.distinct_classes,
            boundary_ports: self.graph.ports.len(),
            engines_built: pool.engines_built,
            warm_hits: pool.warm_hits,
            flat_fallbacks: self.flat_fallbacks,
        }
    }

    /// The partition the session composes over.
    pub fn partition(&self) -> &Partition {
        &self.partition
    }

    /// Builds the port-level abstraction the boundary check runs on.
    fn composition_model(&self, capacity: usize, invariants: bool) -> CompositionModel {
        let ports = self
            .graph
            .ports
            .iter()
            .map(|p| InterfacePort {
                name: p.name.clone(),
                capacity,
                deps: p.deps.clone(),
            })
            .collect();
        let constraints = if invariants {
            self.contracts(capacity)
                .into_iter()
                .flat_map(|contract| contract.rows)
                .collect()
        } else {
            Vec::new()
        };
        CompositionModel { ports, constraints }
    }

    /// Names the interface (and its two tiles) of a boundary candidate.
    fn attribute_ports(&self, ports: &[String]) -> String {
        let named = ports.first().and_then(|name| {
            self.graph
                .ports
                .iter()
                .find(|p| &p.name == name)
                .map(|p| (name, p))
        });
        match named {
            Some((name, port)) => {
                let from = &self.partition.tile(port.from_tile).name;
                let to = &self.partition.tile(port.to_tile).name;
                let more = match ports.len() {
                    0 | 1 => String::new(),
                    n => format!(" and {} more", n - 1),
                };
                format!("interface {name} (tile {from} → tile {to}){more}")
            }
            None => "boundary".to_owned(),
        }
    }

    /// Sum of the certified tiles' size statistics (environment closures
    /// included, so slightly above the flat fabric's numbers).
    fn aggregate_system_stats(&self) -> SystemStats {
        let mut total = SystemStats::default();
        for tile in &self.tiles {
            let stats = tile.system.stats();
            total.primitives += stats.primitives;
            total.queues += stats.queues;
            total.automata += stats.automata;
            total.channels += stats.channels;
            total.colors = total.colors.max(stats.colors);
        }
        total
    }
}

fn accumulate(total: &mut AnalysisStats, delta: &AnalysisStats) {
    total.invariants += delta.invariants;
    total.int_vars += delta.int_vars;
    total.bool_vars += delta.bool_vars;
    total.linear_atoms += delta.linear_atoms;
    total.refinements += delta.refinements;
    total.sat_conflicts += delta.sat_conflicts;
    total.sat_propagations += delta.sat_propagations;
    total.sat_reduced_dbs += delta.sat_reduced_dbs;
    total.sat_deleted_clauses += delta.sat_deleted_clauses;
    total.sat_live_learnts += delta.sat_live_learnts;
    total.sat_total_learnt += delta.sat_total_learnt;
}

#[cfg(test)]
mod tests {
    use super::*;
    use advocat_noc::Topology;

    #[test]
    fn small_fabrics_fall_back_to_the_flat_engine() {
        let config = FabricConfig::new(Topology::mesh(2, 2).unwrap(), 2).with_directory(3);
        let partition = Arc::new(Partition::per_node(&config.topology));
        let mut composition =
            QueryEngine::compose(config, partition, ComposeOptions::new(2..=3)).unwrap();
        assert!(!composition
            .check(&Query::new().capacity(2))
            .is_deadlock_free());
        assert!(composition
            .check(&Query::new().capacity(3))
            .is_deadlock_free());
        let stats = composition.stats();
        assert_eq!(stats.flat_fallbacks, 2);
        assert_eq!(stats.engines_built, 0, "no tile engine was needed");
    }

    #[test]
    fn composed_runs_certify_each_class_once() {
        let config = FabricConfig::new(Topology::mesh(3, 3).unwrap(), 3).with_directory(4);
        let partition = Arc::new(Partition::per_node(&config.topology));
        let options = ComposeOptions::new(3..=3).with_flat_fallback(0);
        let mut composition = QueryEngine::compose(config, partition, options).unwrap();
        let report = composition.check(&Query::new().capacity(3));
        // Composition may report a (spurious) boundary candidate, but a
        // deadlock-free answer must be sound; either way every tile ran.
        let stats = composition.stats();
        assert_eq!(stats.tiles, 9);
        // Corner, edge, interior and directory-hosting classes.
        assert!(stats.distinct_classes <= 4, "{stats:?}");
        assert_eq!(
            stats.engines_built as usize, stats.distinct_classes,
            "one cold build per class"
        );
        assert_eq!(stats.warm_hits, 9 - stats.engines_built);
        if !report.is_deadlock_free() {
            assert!(report.attribution().is_some(), "candidates are attributed");
        }
    }

    #[test]
    fn contracts_project_per_tile() {
        let config = FabricConfig::new(Topology::mesh(2, 2).unwrap(), 2).with_directory(3);
        let partition = Arc::new(Partition::per_node(&config.topology));
        let composition =
            QueryEngine::compose(config, partition, ComposeOptions::new(2..=2)).unwrap();
        let contracts = composition.contracts(2);
        assert_eq!(contracts.len(), 4);
        assert!(contracts.iter().all(|c| !c.flows.is_empty()));
    }
}
