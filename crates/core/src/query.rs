//! The unified query surface: one engine, many questions.
//!
//! A [`QueryEngine`] runs the expensive, question-independent part of the
//! ADVOCAT pipeline — color derivation, invariant generation and the
//! structural deadlock encoding — exactly once, and then answers any
//! number of [`Query`]s from one persistent solver.  Every dimension of a
//! query is a retractable selector in that solver: the queue capacity
//! (uniform or structural), the [`advocat_deadlock::DeadlockTarget`], and
//! whether invariant strengthening applies.  Learnt clauses and theory
//! lemmas accumulate across *all* of them, so a capacity sweep under one
//! deadlock target makes the same sweep under the other target markedly
//! cheaper than a cold session — the spec-ablation analogue of the classic
//! sizing-sweep reuse.

use std::ops::RangeInclusive;
use std::time::Duration;

use advocat_automata::{derive_colors, System};
use advocat_deadlock::{CapacitySelection, EncodingTemplate, Query};
use advocat_invariants::{derive_invariants, InvariantSet};
use advocat_logic::CheckConfig;

use crate::report::Report;

/// Cumulative statistics over every query an engine has answered.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SessionStats {
    /// Encoding templates built over the engine's life.  An engine builds
    /// exactly one by construction, so this certifies that a whole study —
    /// capacity sweeps, target flips, invariant ablations — ran inside one
    /// engine rather than across several; the *per-query* no-re-encode
    /// evidence is the conflict/propagation deltas (see
    /// `tests/spec_ablation.rs`, which asserts a second target's sweep
    /// stays below a cold session's conflicts).
    pub templates_built: u64,
    /// Number of queries answered.
    pub queries: u64,
    /// Total SAT conflicts across all queries.
    pub sat_conflicts: u64,
    /// Total SAT unit propagations across all queries.
    pub sat_propagations: u64,
    /// Learnt-database reductions across all queries.  Reduction is what
    /// keeps a long session's per-query cost from growing with its length.
    pub reduced_dbs: u64,
    /// Clauses the solver deleted across all queries (worst-half learnt
    /// clauses plus permanently satisfied clauses of popped query scopes).
    pub deleted_clauses: u64,
    /// Learnt clauses alive in the shared solver after the latest query.
    pub live_learnts: u64,
    /// Learnt clauses ever stored by the shared solver (monotone; the gap
    /// to [`SessionStats::live_learnts`] is what reduction reclaimed).
    pub total_learnt: u64,
    /// Total wall-clock time spent answering queries (excluding engine
    /// construction).
    pub query_elapsed: Duration,
}

impl SessionStats {
    /// Total SAT effort — conflicts plus propagations — of the session.
    pub fn sat_effort(&self) -> u64 {
        self.sat_conflicts + self.sat_propagations
    }

    /// The stats accumulated since `baseline` was captured from the same
    /// session: cumulative counters are subtracted (saturating, so a stale
    /// baseline degrades to the raw value instead of panicking), while the
    /// point-in-time gauges ([`SessionStats::live_learnts`],
    /// [`SessionStats::total_learnt`]) keep their latest snapshot.  The
    /// verification service uses this to attribute a pooled engine's work
    /// to the individual jobs that ran on it.
    pub fn delta_since(&self, baseline: &SessionStats) -> SessionStats {
        SessionStats {
            templates_built: self
                .templates_built
                .saturating_sub(baseline.templates_built),
            queries: self.queries.saturating_sub(baseline.queries),
            sat_conflicts: self.sat_conflicts.saturating_sub(baseline.sat_conflicts),
            sat_propagations: self
                .sat_propagations
                .saturating_sub(baseline.sat_propagations),
            reduced_dbs: self.reduced_dbs.saturating_sub(baseline.reduced_dbs),
            deleted_clauses: self
                .deleted_clauses
                .saturating_sub(baseline.deleted_clauses),
            live_learnts: self.live_learnts,
            total_learnt: self.total_learnt,
            query_elapsed: self.query_elapsed.saturating_sub(baseline.query_elapsed),
        }
    }

    /// Accumulates another session's (or delta's) counters into `self`;
    /// gauges take the other side's latest snapshot.  The inverse of
    /// [`SessionStats::delta_since`], used to fold per-job deltas back into
    /// a per-scenario view.
    pub fn absorb(&mut self, other: &SessionStats) {
        self.templates_built += other.templates_built;
        self.queries += other.queries;
        self.sat_conflicts += other.sat_conflicts;
        self.sat_propagations += other.sat_propagations;
        self.reduced_dbs += other.reduced_dbs;
        self.deleted_clauses += other.deleted_clauses;
        self.live_learnts = other.live_learnts;
        self.total_learnt = other.total_learnt;
        self.query_elapsed += other.query_elapsed;
    }
}

/// An incremental verification engine: one system, one derived encoding
/// template, one persistent solver, many [`Query`]s.
///
/// # Examples
///
/// The Figure-3 result of the paper plus its spec ablation, answered by a
/// single engine: the 2×2 directory mesh deadlocks with queues of size 2
/// but is free with 3 — under either deadlock formulation.
///
/// ```
/// use advocat::prelude::*;
///
/// let system = build_mesh_for_sweep(&MeshConfig::new(2, 2, 1).with_directory(1, 1), 4)?;
/// let mut engine = QueryEngine::on(system, 2..=4);
/// assert!(!engine.check(&Query::new().capacity(2)).is_deadlock_free());
/// assert!(engine.check(&Query::new().capacity(3)).is_deadlock_free());
/// let stuck = Query::new().capacity(3).target(DeadlockTarget::StuckPacket);
/// assert!(engine.check(&stuck).is_deadlock_free());
/// assert_eq!(engine.stats().queries, 3);
/// assert_eq!(engine.stats().templates_built, 1);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct QueryEngine {
    system: System,
    invariants: InvariantSet,
    template: EncodingTemplate,
    config: CheckConfig,
    stats: SessionStats,
    /// For engines that sized their own fabric for the sweep
    /// ([`QueryEngine::for_fabric`]): the fabric's *configured* queue
    /// size, which is what a [`CapacitySelection::Structural`] query must
    /// mean there — the built system's queues were widened to the sweep
    /// maximum, so the as-built sizes would be misleading.
    structural_capacity: Option<usize>,
}

/// The capacity range covering every queue's structural size, so an engine
/// built over it can answer the structural-capacity query for a (possibly
/// heterogeneous) system.  Queue-less systems get the degenerate `1..=1`
/// (the encoding requires a non-empty range).
pub(crate) fn structural_range(system: &System) -> RangeInclusive<usize> {
    advocat_deadlock::structural_capacity_range(system).unwrap_or(1..=1)
}

impl QueryEngine {
    /// Builds an engine for `system` with default solver limits, deriving
    /// colors and invariants once and building the query-parameterised
    /// encoding for every capacity in `capacities`.
    ///
    /// # Panics
    ///
    /// Panics when `capacities` is empty.
    pub fn on(system: System, capacities: RangeInclusive<usize>) -> Self {
        QueryEngine::with_config(system, CheckConfig::default(), capacities)
    }

    /// Builds an engine whose capacity range covers exactly the system's
    /// structural queue sizes — the drop-in replacement for a one-shot
    /// verification of the system as built:
    /// `QueryEngine::structural(system).check(&Query::new())`.
    ///
    /// Queue-less systems get the degenerate range `1..=1` (the encoding
    /// requires a non-empty range; with no queues nothing is pinned).
    pub fn structural(system: System) -> Self {
        let range = structural_range(&system);
        QueryEngine::on(system, range)
    }

    /// Builds an engine with explicit SMT resource limits per query.
    ///
    /// # Panics
    ///
    /// Panics when `capacities` is empty.
    pub fn with_config(
        system: System,
        config: CheckConfig,
        capacities: RangeInclusive<usize>,
    ) -> Self {
        let colors = derive_colors(&system);
        let invariants = derive_invariants(&system, &colors);
        QueryEngine::assemble(system, &colors, invariants, config, capacities)
    }

    /// Builds an engine over a precomputed invariant set (which must have
    /// been derived for `system`, or be empty to skip strengthening
    /// entirely — note queries can also retract a derived set per query
    /// via [`Query::invariants`]).
    ///
    /// # Panics
    ///
    /// Panics when `capacities` is empty.
    pub fn with_invariants(
        system: System,
        invariants: InvariantSet,
        config: CheckConfig,
        capacities: RangeInclusive<usize>,
    ) -> Self {
        let colors = derive_colors(&system);
        QueryEngine::assemble(system, &colors, invariants, config, capacities)
    }

    /// Shared tail of every constructor: builds the one template of the
    /// engine's life from an already-derived color map.
    fn assemble(
        system: System,
        colors: &advocat_xmas::ColorMap,
        invariants: InvariantSet,
        config: CheckConfig,
        capacities: RangeInclusive<usize>,
    ) -> Self {
        let _span = config.solver.telemetry.span_with("template.build", || {
            vec![
                ("primitives", system.network().primitive_count().to_string()),
                ("invariants", invariants.len().to_string()),
                ("capacities", format!("{capacities:?}")),
            ]
        });
        let template = EncodingTemplate::build(&system, colors, &invariants, capacities);
        QueryEngine {
            system,
            invariants,
            template,
            config,
            stats: SessionStats {
                templates_built: 1,
                ..SessionStats::default()
            },
            structural_capacity: None,
        }
    }

    /// Builds an engine for an arbitrary topology fabric: the fabric is
    /// built once at the largest capacity of the range
    /// ([`advocat_noc::build_fabric_for_sweep`]) and every query reuses
    /// the one persistent solver.  This is what lets the *same* sweep run
    /// unchanged on a mesh, torus, ring or fat tree.
    ///
    /// A [`CapacitySelection::Structural`] query on such an engine means
    /// the fabric's **configured** `queue_size` (which must then lie in
    /// `capacities`), not the sweep-widened sizes the system was built
    /// with.
    ///
    /// # Errors
    ///
    /// Returns a [`advocat_noc::FabricError`] when the fabric
    /// configuration is invalid or its routing function fails the
    /// channel-dependency audit.
    ///
    /// # Panics
    ///
    /// Panics when `capacities` is empty.
    ///
    /// # Examples
    ///
    /// ```
    /// use advocat::prelude::*;
    ///
    /// let config = FabricConfig::new(Topology::ring(4)?, 1).with_directory(1);
    /// let mut engine = QueryEngine::for_fabric(&config, 1..=3)?;
    /// assert!(!engine.check(&Query::new().capacity(1)).is_deadlock_free());
    /// assert!(engine.check(&Query::new().capacity(2)).is_deadlock_free());
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    pub fn for_fabric(
        config: &advocat_noc::FabricConfig,
        capacities: RangeInclusive<usize>,
    ) -> Result<Self, advocat_noc::FabricError> {
        QueryEngine::for_fabric_with(config, CheckConfig::default(), capacities)
    }

    /// [`QueryEngine::for_fabric`] with explicit SMT resource limits.
    ///
    /// # Errors
    ///
    /// Returns a [`advocat_noc::FabricError`] when the fabric
    /// configuration is invalid or its routing function fails the
    /// channel-dependency audit.
    ///
    /// # Panics
    ///
    /// Panics when `capacities` is empty.
    pub fn for_fabric_with(
        config: &advocat_noc::FabricConfig,
        check_config: CheckConfig,
        capacities: RangeInclusive<usize>,
    ) -> Result<Self, advocat_noc::FabricError> {
        let system = advocat_noc::build_fabric_for_sweep(config, *capacities.end())?;
        let mut engine = QueryEngine::with_config(system, check_config, capacities);
        // The sweep build widened every queue to the range maximum, so
        // "structural" must keep meaning the fabric as configured.
        engine.structural_capacity = Some(config.queue_size);
        Ok(engine)
    }

    /// Answers one [`Query`], reusing all solver state from earlier
    /// queries regardless of which capacities, targets or invariant
    /// settings those asked about.
    ///
    /// # Examples
    ///
    /// The README's Query-API tour: every dimension — capacity, deadlock
    /// target, invariant strengthening — flips freely between queries,
    /// and nothing is ever re-encoded:
    ///
    /// ```
    /// use advocat::prelude::*;
    ///
    /// let config = MeshConfig::new(2, 2, 1).with_directory(1, 1);
    /// let mut engine = QueryEngine::on(build_mesh_for_sweep(&config, 3)?, 2..=3);
    /// for target in [DeadlockTarget::StuckPacket, DeadlockTarget::DeadAutomaton] {
    ///     for capacity in 2..=3 {
    ///         let report = engine.check(&Query::new().capacity(capacity).target(target));
    ///         assert_eq!(report.is_deadlock_free(), capacity >= 3);
    ///     }
    /// }
    /// // The Section-3 ablation is one more query, not a new pipeline.
    /// assert!(!engine.check(&Query::new().capacity(3).invariants(false)).is_deadlock_free());
    /// assert_eq!(engine.stats().templates_built, 1); // nothing was re-encoded
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    ///
    /// # Panics
    ///
    /// Panics when the query pins a capacity outside the engine's range.
    pub fn check(&mut self, query: &Query) -> Report {
        // On a self-sized fabric engine, a structural query means the
        // fabric's configured queue size (see `structural_capacity`).
        let query = match (query.capacity_selection(), self.structural_capacity) {
            (CapacitySelection::Structural, Some(configured)) => query.capacity(configured),
            _ => *query,
        };
        let query = &query;
        let analysis = self.template.check(query, &self.config);
        self.stats.queries += 1;
        self.stats.sat_conflicts += analysis.stats.sat_conflicts;
        self.stats.sat_propagations += analysis.stats.sat_propagations;
        self.stats.reduced_dbs += analysis.stats.sat_reduced_dbs;
        self.stats.deleted_clauses += analysis.stats.sat_deleted_clauses;
        self.stats.live_learnts = analysis.stats.sat_live_learnts;
        self.stats.total_learnt = analysis.stats.sat_total_learnt;
        self.stats.query_elapsed += analysis.stats.elapsed;
        // An ablated query used no invariants: its report must not list
        // them (matching the historical `with_invariants(false)` surface).
        let invariants = if query.invariants_enabled() {
            self.invariants.clone()
        } else {
            InvariantSet::default()
        };
        Report::new(&self.system, invariants, analysis)
    }

    /// A report for a question with nothing to look for (the legacy
    /// "no deadlock condition enabled" spec): trivially deadlock-free,
    /// no solving.
    pub(crate) fn trivially_free(&mut self) -> Report {
        use advocat_deadlock::{Analysis, AnalysisStats, Verdict};
        self.stats.queries += 1;
        let analysis = Analysis {
            verdict: Verdict::DeadlockFree,
            stats: AnalysisStats {
                invariants: self.invariants.len(),
                ..AnalysisStats::default()
            },
            profile: None,
        };
        Report::new(&self.system, self.invariants.clone(), analysis)
    }

    /// Cumulative statistics of the engine's shared SAT solver (all
    /// queries so far), including the live and total learnt-clause counts
    /// the database-reduction pass maintains.
    pub fn sat_stats(&self) -> advocat_logic::SatStats {
        self.template.sat_stats()
    }

    /// The capacity range the engine accepts.
    pub fn capacity_range(&self) -> RangeInclusive<usize> {
        self.template.capacity_range()
    }

    /// The verified system.
    pub fn system(&self) -> &System {
        &self.system
    }

    /// The cross-layer invariants the engine derived (shared by every
    /// query; retractable per query via [`Query::invariants`]).
    pub fn invariants(&self) -> &InvariantSet {
        &self.invariants
    }

    /// The per-query SMT resource limits.
    pub fn config(&self) -> &CheckConfig {
        &self.config
    }

    /// Races `workers` diversified CDCL workers on every subsequent query
    /// (see [`advocat_logic::SolverConfig::portfolio`]); `1` restores
    /// sequential solving.  Verdicts, witnesses and sizing thresholds are
    /// identical in both modes — the portfolio only changes how fast the
    /// engine gets there — so this can be flipped mid-session.
    pub fn set_portfolio(&mut self, workers: usize) {
        self.config.solver.portfolio = workers.max(1);
    }

    /// Cumulative statistics over all queries answered so far.
    pub fn stats(&self) -> SessionStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use advocat_deadlock::DeadlockTarget;
    use advocat_noc::{build_mesh, build_mesh_for_sweep, MeshConfig};

    #[test]
    fn engine_matches_cold_verification_on_the_2x2_mesh() {
        let config = MeshConfig::new(2, 2, 1).with_directory(1, 1);
        let system = build_mesh_for_sweep(&config, 4).unwrap();
        let mut engine = QueryEngine::on(system, 1..=4);
        for capacity in 1..=4usize {
            let engine_free = engine
                .check(&Query::new().capacity(capacity))
                .is_deadlock_free();
            let cold_system = build_mesh(&config.with_queue_size(capacity)).unwrap();
            let cold_free = advocat_deadlock::verify_system(
                &cold_system,
                &advocat_deadlock::DeadlockSpec::default(),
            )
            .verdict
            .is_deadlock_free();
            assert_eq!(engine_free, cold_free, "capacity {capacity}");
        }
        assert_eq!(engine.stats().queries, 4);
        assert_eq!(engine.stats().templates_built, 1);
    }

    #[test]
    fn one_engine_answers_capacities_targets_and_ablations() {
        let config = MeshConfig::new(2, 2, 1).with_directory(1, 1);
        let system = build_mesh_for_sweep(&config, 3).unwrap();
        let mut engine = QueryEngine::on(system, 2..=3);
        assert!(!engine.check(&Query::new().capacity(2)).is_deadlock_free());
        assert!(engine.check(&Query::new().capacity(3)).is_deadlock_free());
        let stuck = engine.check(&Query::new().capacity(2).target(DeadlockTarget::StuckPacket));
        let cex = stuck.counterexample().expect("stuck-packet candidate");
        assert!(cex.witnesses(DeadlockTarget::StuckPacket));
        assert!(!engine
            .check(&Query::new().capacity(3).invariants(false))
            .is_deadlock_free());
        assert!(engine.check(&Query::new().capacity(3)).is_deadlock_free());
        assert_eq!(engine.stats().queries, 5);
        assert_eq!(engine.stats().templates_built, 1);
    }

    #[test]
    fn fabric_engines_answer_structural_queries_at_the_configured_size() {
        use advocat_noc::{FabricConfig, Topology};
        // queue_size 1 deadlocks on the ring; the sweep builds the system
        // at capacity 3.  A structural query must answer for the fabric as
        // configured (1), not as sweep-widened (3).
        let config = FabricConfig::new(Topology::ring(4).unwrap(), 1).with_directory(1);
        let mut engine = QueryEngine::for_fabric(&config, 1..=3).unwrap();
        assert!(!engine.check(&Query::new()).is_deadlock_free());
        assert_eq!(
            engine.check(&Query::new()).is_deadlock_free(),
            engine.check(&Query::new().capacity(1)).is_deadlock_free()
        );
        assert!(engine.check(&Query::new().capacity(2)).is_deadlock_free());
    }

    #[test]
    fn ablated_reports_list_no_invariants() {
        let config = MeshConfig::new(2, 2, 1).with_directory(1, 1);
        let system = build_mesh_for_sweep(&config, 3).unwrap();
        let mut engine = QueryEngine::on(system, 3..=3);
        let ablated = engine.check(&Query::new().capacity(3).invariants(false));
        assert!(!ablated.is_deadlock_free());
        assert_eq!(ablated.invariants().len(), 0);
        assert_eq!(ablated.analysis().stats.invariants, 0);
        // The engine still holds the derived set for strengthened queries.
        let strengthened = engine.check(&Query::new().capacity(3));
        assert_eq!(strengthened.invariants().len(), engine.invariants().len());
        assert!(!strengthened.invariants().is_empty());
    }

    #[test]
    fn engine_reports_share_the_derived_invariants() {
        let config = MeshConfig::new(2, 2, 1).with_directory(1, 1);
        let system = build_mesh_for_sweep(&config, 3).unwrap();
        let mut engine = QueryEngine::on(system, 2..=3);
        let report = engine.check(&Query::new().capacity(3));
        assert!(report.is_deadlock_free());
        assert_eq!(report.invariants().len(), engine.invariants().len());
        assert!(!report.invariants().is_empty());
    }
}
