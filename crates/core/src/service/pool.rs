//! The sharded warm-engine pool.
//!
//! Engines are keyed by [`Fingerprint`] across a fixed number of
//! lock-striped shards.  Each entry owns at most one [`QueryEngine`] and a
//! **ticket turnstile**: every job is assigned a ticket at submission, and
//! the entry serves tickets strictly in order.  A worker whose job's turn
//! has not come parks the job *at the entry* (freeing the worker — nothing
//! ever blocks on the turnstile) and the job is re-scheduled by whichever
//! worker retires the preceding ticket.  The discipline buys two things:
//!
//! * **checkout exclusivity** — the serving ticket is unique, so the
//!   engine needs no lock while solving;
//! * **determinism** — the engine sees the same query sequence regardless
//!   of worker count, so verdicts *and counterexample witnesses* are
//!   reproducible (the solver's model depends on its learnt-clause state,
//!   which depends on query history).
//!
//! Cold engines are evicted least-recently-used once the pool exceeds its
//! engine cap; entries with outstanding tickets are never evicted.

use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use advocat_noc::FabricError;
use advocat_telemetry::Telemetry;

use super::fingerprint::Fingerprint;
use super::scheduler::ScheduledJob;
use crate::query::QueryEngine;

/// Number of lock stripes; fixed, small, and far above any realistic
/// worker count's contention needs.
const SHARDS: usize = 16;

/// What an entry currently holds.
pub(crate) enum EngineSlot {
    /// No engine yet (cold, or evicted).
    Empty,
    /// A warm engine ready for checkout.
    Ready(Box<QueryEngine>),
    /// The serving ticket's worker took the engine out.
    CheckedOut,
    /// The fabric build failed; every later ticket fails fast with the
    /// same error instead of re-attempting a deterministic failure.
    Failed(FabricError),
}

pub(crate) struct EntryState {
    /// Next ticket to hand out at submission.
    pub next_ticket: u64,
    /// The ticket currently allowed to use the engine.
    pub now_serving: u64,
    pub slot: EngineSlot,
    /// Jobs whose turn has not come, keyed by ticket.
    pub parked: BTreeMap<u64, ScheduledJob>,
    /// Logical LRU timestamp of the last checkout.
    pub last_used: u64,
}

/// One fingerprint's pool entry (the fingerprint itself is the map key).
pub(crate) struct EngineEntry {
    pub state: Mutex<EntryState>,
}

/// Cumulative statistics of a service's engine pool.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Engines built cold (each one is a full fabric + invariant +
    /// template derivation).  With a warm pool this is the number of
    /// *distinct* fingerprints seen (minus re-builds after eviction), not
    /// the number of jobs.
    pub engines_built: u64,
    /// Jobs that checked out an already-warm engine.
    pub warm_hits: u64,
    /// Jobs that found their fingerprint's fabric unbuildable (including
    /// the one that discovered it).
    pub build_failures: u64,
    /// Warm engines dropped by the LRU cap.
    pub evictions: u64,
    /// Warm engines currently alive.
    pub live_engines: usize,
    /// Successful engine checkouts: every job that actually got an engine,
    /// warm or cold.  Balances exactly:
    /// `checkouts == warm_hits + engines_built` (timeouts and build
    /// failures never check anything out).
    pub checkouts: u64,
    /// Cold builds for a fingerprint the pool had built before — the
    /// engine was lost to eviction or a worker panic and had to be
    /// re-derived.  A subset of [`PoolStats::engines_built`]:
    /// `engines_built == first_time_builds + rebuilds`.
    pub rebuilds: u64,
}

impl PoolStats {
    /// Fraction of engine checkouts that hit a warm engine — the headline
    /// number of the pool (`0.0` when nothing has run yet).
    pub fn warm_hit_rate(&self) -> f64 {
        let checkouts = self.warm_hits + self.engines_built;
        if checkouts == 0 {
            0.0
        } else {
            self.warm_hits as f64 / checkouts as f64
        }
    }

    /// Cold builds for fingerprints never built before (see
    /// [`PoolStats::rebuilds`]).
    pub fn first_time_builds(&self) -> u64 {
        self.engines_built - self.rebuilds
    }
}

pub(crate) struct EnginePool {
    shards: Vec<Mutex<HashMap<Fingerprint, Arc<EngineEntry>>>>,
    max_engines: usize,
    clock: AtomicU64,
    engines_built: AtomicU64,
    warm_hits: AtomicU64,
    build_failures: AtomicU64,
    evictions: AtomicU64,
    live: AtomicUsize,
    checkouts: AtomicU64,
    rebuilds: AtomicU64,
    /// Every fingerprint ever built: a later build of one of these is a
    /// *rebuild* (its engine was evicted or lost to a panic).
    ever_built: Mutex<HashSet<Fingerprint>>,
    telemetry: Telemetry,
}

impl EnginePool {
    pub(crate) fn new(max_engines: usize, telemetry: Telemetry) -> Self {
        EnginePool {
            shards: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
            max_engines: max_engines.max(1),
            clock: AtomicU64::new(0),
            engines_built: AtomicU64::new(0),
            warm_hits: AtomicU64::new(0),
            build_failures: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            live: AtomicUsize::new(0),
            checkouts: AtomicU64::new(0),
            rebuilds: AtomicU64::new(0),
            ever_built: Mutex::new(HashSet::new()),
            telemetry,
        }
    }

    /// Issues the next ticket for `fingerprint`, creating the entry on
    /// first sight.  Called at submission time, so ticket order equals
    /// submission order.
    pub(crate) fn ticket(&self, fingerprint: Fingerprint) -> (Arc<EngineEntry>, u64) {
        let shard = &self.shards[fingerprint.shard(SHARDS)];
        let mut map = shard.lock().expect("pool shard lock");
        let entry = map
            .entry(fingerprint)
            .or_insert_with(|| {
                Arc::new(EngineEntry {
                    state: Mutex::new(EntryState {
                        next_ticket: 0,
                        now_serving: 0,
                        slot: EngineSlot::Empty,
                        parked: BTreeMap::new(),
                        last_used: 0,
                    }),
                })
            })
            .clone();
        drop(map);
        let mut state = entry.state.lock().expect("pool entry lock");
        let turn = state.next_ticket;
        state.next_ticket += 1;
        drop(state);
        (entry, turn)
    }

    /// Bumps the logical clock (LRU ordering) and returns the new stamp.
    pub(crate) fn touch(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::Relaxed) + 1
    }

    pub(crate) fn note_warm_hit(&self) {
        self.warm_hits.fetch_add(1, Ordering::Relaxed);
        self.checkouts.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a cold build of `fingerprint`; returns `true` when it is a
    /// *rebuild* (the fingerprint had been built before and its engine was
    /// evicted or lost).
    pub(crate) fn note_build(&self, fingerprint: Fingerprint) -> bool {
        self.engines_built.fetch_add(1, Ordering::Relaxed);
        self.checkouts.fetch_add(1, Ordering::Relaxed);
        self.live.fetch_add(1, Ordering::Relaxed);
        let rebuild = !self
            .ever_built
            .lock()
            .expect("pool history lock")
            .insert(fingerprint);
        if rebuild {
            self.rebuilds.fetch_add(1, Ordering::Relaxed);
        }
        rebuild
    }

    pub(crate) fn note_build_failure(&self) {
        self.build_failures.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn note_engine_lost(&self) {
        self.live.fetch_sub(1, Ordering::Relaxed);
    }

    /// Evicts least-recently-used idle engines until the pool is back
    /// under its cap.  An entry is evictable only when its engine is in
    /// the slot (not checked out) and every issued ticket has been served
    /// — evicting under outstanding tickets would rebuild the engine
    /// mid-stream and break the warm guarantee those jobs were promised.
    pub(crate) fn enforce_cap(&self) {
        while self.live.load(Ordering::Relaxed) > self.max_engines {
            let mut victim: Option<(u64, Fingerprint)> = None;
            for shard in &self.shards {
                let map = shard.lock().expect("pool shard lock");
                for (fingerprint, entry) in map.iter() {
                    let state = entry.state.lock().expect("pool entry lock");
                    let idle = matches!(state.slot, EngineSlot::Ready(_))
                        && state.now_serving == state.next_ticket;
                    if idle && victim.is_none_or(|(best, _)| state.last_used < best) {
                        victim = Some((state.last_used, *fingerprint));
                    }
                }
            }
            let Some((_, fingerprint)) = victim else {
                return; // everything is busy; allow the temporary overshoot
            };
            let shard = &self.shards[fingerprint.shard(SHARDS)];
            let mut map = shard.lock().expect("pool shard lock");
            if let Some(entry) = map.get(&fingerprint) {
                let mut state = entry.state.lock().expect("pool entry lock");
                // Re-check under the lock: a ticket may have arrived since.
                if matches!(state.slot, EngineSlot::Ready(_))
                    && state.now_serving == state.next_ticket
                {
                    state.slot = EngineSlot::Empty;
                    drop(state);
                    map.remove(&fingerprint);
                    self.live.fetch_sub(1, Ordering::Relaxed);
                    self.evictions.fetch_add(1, Ordering::Relaxed);
                    self.telemetry.event_with("engine.evict", || {
                        vec![
                            ("fingerprint", format!("{fingerprint:?}")),
                            ("live", self.live.load(Ordering::Relaxed).to_string()),
                        ]
                    });
                } else {
                    return; // raced with new work; try again next build
                }
            }
        }
    }

    pub(crate) fn stats(&self) -> PoolStats {
        PoolStats {
            engines_built: self.engines_built.load(Ordering::Relaxed),
            warm_hits: self.warm_hits.load(Ordering::Relaxed),
            build_failures: self.build_failures.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            live_engines: self.live.load(Ordering::Relaxed),
            checkouts: self.checkouts.load(Ordering::Relaxed),
            rebuilds: self.rebuilds.load(Ordering::Relaxed),
        }
    }
}
