//! Engine fingerprints: which jobs may share a warm engine.
//!
//! A pooled [`crate::QueryEngine`] is reusable for a job exactly when the
//! job would have built an identical engine: same fabric structure
//! ([`advocat_noc::ConfigDigest`]), same capacity range (the template is
//! built over the whole sweep range), same solver limits
//! ([`CheckConfig`]), and the same deadlock specification shape.  The
//! [`Fingerprint`] hashes all four; equal fingerprints hit the same pool
//! entry.

use std::fmt;
use std::ops::RangeInclusive;

use advocat_deadlock::DeadlockSpec;
use advocat_logic::CheckConfig;
use advocat_noc::ConfigDigest;

use crate::batch::ScenarioFabric;

/// The pool key of a verification job: everything that determines the
/// engine a job needs.  Derived, not constructed — see
/// the crate-private `Fingerprint::of_job`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Fingerprint(u64, u64);

impl fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}{:016x}", self.0, self.1)
    }
}

/// Dual-stream FNV-1a accumulator (the service-layer sibling of the
/// hasher behind [`advocat_noc::ConfigDigest`]).
struct Mix {
    a: u64,
    b: u64,
}

impl Mix {
    fn new() -> Self {
        Mix {
            a: 0xcbf2_9ce4_8422_2325,
            b: 0x6c62_272e_07bb_0142,
        }
    }

    fn u64(&mut self, value: u64) {
        for &byte in &value.to_le_bytes() {
            self.a = (self.a ^ u64::from(byte)).wrapping_mul(0x0000_0100_0000_01b3);
            self.b = (self.b ^ u64::from(byte).rotate_left(17)).wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    fn bool(&mut self, value: bool) {
        self.u64(u64::from(value));
    }
}

impl Fingerprint {
    /// Computes the pool key for a job over `fabric`, solved for every
    /// capacity in `range` under `config`, looking for `spec`.
    pub(crate) fn of_job(
        fabric: &ScenarioFabric,
        range: &RangeInclusive<usize>,
        config: &CheckConfig,
        spec: &DeadlockSpec,
    ) -> Fingerprint {
        let mut mix = Mix::new();
        match fabric_digest(fabric) {
            Ok(digest) => {
                mix.bool(true);
                mix.u64(digest.0);
                mix.u64(digest.1);
            }
            // An unbuildable fabric still needs a deterministic key so
            // every job describing it shares the one cached build failure.
            Err(raw) => {
                mix.bool(false);
                for word in raw {
                    mix.u64(word);
                }
            }
        }
        mix.u64(*range.start() as u64);
        mix.u64(*range.end() as u64);
        mix.u64(config.max_refinements);
        mix.u64(config.theory_node_budget);
        mix.bool(config.solver.clause_reduction);
        mix.u64(config.solver.first_reduce);
        mix.u64(config.solver.reduce_interval);
        mix.u64(u64::from(config.solver.keep_lbd));
        mix.u64(config.solver.luby_base);
        mix.u64(config.solver.restart_ema_ratio.to_bits());
        mix.bool(config.solver.phase_saving);
        mix.bool(config.solver.default_phase);
        mix.u64(config.solver.portfolio as u64);
        mix.u64(u64::from(config.solver.glue_share_lbd));
        mix.u64(config.solver.diversity_seed);
        mix.bool(spec.stuck_packet);
        mix.bool(spec.dead_automaton);
        Fingerprint(mix.a, mix.b)
    }

    /// Shard selector for the pool's lock striping.
    pub(crate) fn shard(&self, shards: usize) -> usize {
        (self.0 as usize) % shards
    }
}

/// Canonical digest of a scenario fabric; for configurations whose
/// translation to a buildable fabric fails, a raw field encoding (the
/// digest does not need to be *meaningful* there, only deterministic).
fn fabric_digest(fabric: &ScenarioFabric) -> Result<ConfigDigest, Vec<u64>> {
    match fabric {
        ScenarioFabric::Fabric(config) => Ok(config.structure_digest()),
        // Tiles key by their structural *class*: two tiles whose cut-out
        // subfabrics are isomorphic (same internal structure, same typed
        // boundary) share an engine, which is what lets a big mesh certify
        // through a handful of warm engines.
        ScenarioFabric::Tile {
            fabric,
            partition,
            tile,
        } => Ok(partition.tile_class_digest(fabric, *tile)),
        ScenarioFabric::Mesh(config) => match config.to_fabric() {
            Ok(translated) => Ok(translated.structure_digest()),
            Err(_) => Err(vec![
                u64::from(config.width),
                u64::from(config.height),
                u64::from(config.directory.0),
                u64::from(config.directory.1),
                config.queue_size as u64,
                match config.protocol {
                    advocat_noc::ProtocolKind::AbstractMi => 0,
                    advocat_noc::ProtocolKind::FullMi => 1,
                    advocat_noc::ProtocolKind::Mesi => 2,
                },
                u64::from(config.virtual_channels),
            ]),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use advocat_noc::{FabricConfig, MeshConfig, Topology};

    #[test]
    fn equivalent_descriptions_share_a_fingerprint() {
        let mesh = ScenarioFabric::Mesh(MeshConfig::new(2, 2, 2).with_directory(1, 1));
        let fabric = ScenarioFabric::Fabric(Box::new(
            FabricConfig::new(Topology::mesh(2, 2).unwrap(), 9).with_directory(3),
        ));
        let (range, config, spec) = (1..=4, CheckConfig::default(), DeadlockSpec::default());
        assert_eq!(
            Fingerprint::of_job(&mesh, &range, &config, &spec),
            Fingerprint::of_job(&fabric, &range, &config, &spec),
        );
    }

    #[test]
    fn range_config_and_spec_split_the_pool() {
        let fabric = ScenarioFabric::Mesh(MeshConfig::new(2, 2, 2));
        let base = Fingerprint::of_job(
            &fabric,
            &(1..=4),
            &CheckConfig::default(),
            &DeadlockSpec::default(),
        );
        let other_range = Fingerprint::of_job(
            &fabric,
            &(1..=5),
            &CheckConfig::default(),
            &DeadlockSpec::default(),
        );
        let tighter = CheckConfig {
            max_refinements: 7,
            ..CheckConfig::default()
        };
        let other_config =
            Fingerprint::of_job(&fabric, &(1..=4), &tighter, &DeadlockSpec::default());
        let stuck_only = DeadlockSpec {
            stuck_packet: true,
            dead_automaton: false,
        };
        let other_spec =
            Fingerprint::of_job(&fabric, &(1..=4), &CheckConfig::default(), &stuck_only);
        assert_ne!(base, other_range);
        assert_ne!(base, other_config);
        assert_ne!(base, other_spec);
    }

    #[test]
    fn same_class_tiles_share_a_fingerprint() {
        use advocat_noc::Partition;
        use std::sync::Arc;

        let config = FabricConfig::new(Topology::mesh(3, 3).unwrap(), 2).with_directory(4);
        let partition = Arc::new(Partition::per_node(&config.topology));
        let tile_job = |tile: usize| ScenarioFabric::Tile {
            fabric: Box::new(config.clone()),
            partition: Arc::clone(&partition),
            tile,
        };
        let (range, check, spec) = (1..=3, CheckConfig::default(), DeadlockSpec::default());
        // All four corner tiles are one structural class; the directory
        // node in the centre is its own.
        let corner = Fingerprint::of_job(&tile_job(0), &range, &check, &spec);
        assert_eq!(
            corner,
            Fingerprint::of_job(&tile_job(2), &range, &check, &spec)
        );
        assert_eq!(
            corner,
            Fingerprint::of_job(&tile_job(6), &range, &check, &spec)
        );
        assert_eq!(
            corner,
            Fingerprint::of_job(&tile_job(8), &range, &check, &spec)
        );
        let centre = Fingerprint::of_job(&tile_job(4), &range, &check, &spec);
        assert_ne!(corner, centre);
    }

    #[test]
    fn invalid_meshes_still_fingerprint_deterministically() {
        let bad = ScenarioFabric::Mesh(MeshConfig::new(1, 1, 1));
        let (range, config, spec) = (1..=1, CheckConfig::default(), DeadlockSpec::default());
        assert_eq!(
            Fingerprint::of_job(&bad, &range, &config, &spec),
            Fingerprint::of_job(&bad, &range, &config, &spec),
        );
        let other_bad = ScenarioFabric::Mesh(MeshConfig::new(1, 1, 2));
        assert_ne!(
            Fingerprint::of_job(&bad, &range, &config, &spec),
            Fingerprint::of_job(&other_bad, &range, &config, &spec),
        );
    }
}
