//! The long-running verification service: many clients, one warm fleet.
//!
//! [`run_batch`](crate::run_batch) parallelises *one* caller's scenarios;
//! a [`Service`] is the production shape of the same idea — a persistent,
//! concurrent front door that amortises engine construction **across**
//! submissions.  Three layers:
//!
//! * a **sharded warm-engine pool** ([`PoolStats`]): engines are keyed by
//!   a [`Fingerprint`] of the canonical fabric structure, capacity range,
//!   solver limits and deadlock spec, so a job whose fabric the service
//!   has already seen checks out a warm [`crate::QueryEngine`] — template,
//!   invariants and every learnt clause included — instead of cold-building
//!   its own;
//! * a **work-stealing scheduler**: per-worker deques with steal-half and
//!   a bounded injector for admission control (see
//!   [`Service::try_submit`]);
//! * a **ticket turnstile** per pool entry: same-fingerprint jobs run in
//!   submission order, which keeps verdicts and counterexample witnesses
//!   identical at any worker count.
//!
//! Jobs are `(fabric, capacity)`-granular ([`VerifyJob`]), so a giant
//! sweep becomes many schedulable units; [`Service::submit_sweep`] splits
//! a [`BatchScenario`] accordingly, and
//! [`run_batch`](crate::run_batch) is nowadays a thin wrapper over
//! `submit_sweep` + [`Service::drain`].
//!
//! # Examples
//!
//! ```
//! use advocat::prelude::*;
//!
//! let service = Service::new(ServiceConfig::default().with_workers(2));
//! // Two jobs, one fabric: the second hits the warm engine.
//! let mesh = MeshConfig::new(2, 2, 2).with_directory(1, 1);
//! service.submit(VerifyJob::mesh("cap 2", mesh).at_capacity(2).with_engine_range(2..=3));
//! service.submit(VerifyJob::mesh("cap 3", mesh).at_capacity(3).with_engine_range(2..=3));
//! let outcomes = service.drain();
//! assert!(!outcomes[0].is_deadlock_free());
//! assert!(outcomes[1].is_deadlock_free());
//! assert!(outcomes[1].warm_hit);
//! assert_eq!(service.pool_stats().engines_built, 1);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

mod fingerprint;
mod json;
mod pool;
mod scheduler;

pub use fingerprint::Fingerprint;
pub use json::{
    outcome_to_json, requests_from_json, validate_json, JobRequest, JsonError, TopologySpec,
};
pub use pool::PoolStats;
pub use scheduler::SubmitError;

use std::collections::VecDeque;
use std::fmt;
use std::ops::RangeInclusive;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use advocat_deadlock::{DeadlockSpec, Query};
use advocat_logic::CheckConfig;
use advocat_noc::{FabricConfig, FabricError, MeshConfig};
use advocat_telemetry::{Counter, Gauge, Histogram, Telemetry};

use crate::batch::{BatchScenario, ScenarioFabric};
use crate::query::{QueryEngine, SessionStats};
use crate::report::Report;

use pool::{EngineEntry, EnginePool, EngineSlot};
use scheduler::{ScheduledJob, Scheduler};

/// Configuration of a [`Service`].
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// Worker threads; `0` means
    /// [`std::thread::available_parallelism`].
    pub workers: usize,
    /// Bound of the pending-job queue — the admission-control knob.
    /// [`Service::submit`] blocks while the queue is full;
    /// [`Service::try_submit`] refuses instead.
    pub queue_capacity: usize,
    /// Cap on warm engines held by the pool; least-recently-used idle
    /// engines are evicted beyond it.
    pub max_engines: usize,
    /// Default per-job wall-clock budget (a job may override it).  A job
    /// that exceeds its budget *while queued* is refused without running;
    /// one that exceeds it mid-work finishes and is flagged
    /// ([`JobOutcome::deadline_exceeded`]) — queries are never interrupted
    /// mid-solve.
    pub default_timeout: Option<Duration>,
    /// `false` disables the warm pool entirely: every job builds and
    /// discards a private engine.  This is the cold baseline the
    /// `--bench service` comparison runs against; production wants `true`.
    pub warm_pool: bool,
    /// Observability handle (disabled by default).  When enabled the
    /// service traces job execution, engine checkouts and evictions,
    /// keeps queue/steal/latency metrics in the handle's registry, and
    /// passes the handle down into every job's solver configuration
    /// (jobs that bring their own enabled handle keep it).
    pub telemetry: Telemetry,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: 0,
            queue_capacity: 1024,
            max_engines: 64,
            default_timeout: None,
            warm_pool: true,
            telemetry: Telemetry::disabled(),
        }
    }
}

impl ServiceConfig {
    /// Sets the worker-thread count (`0` = machine-sized).
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Sets the pending-queue bound.
    pub fn with_queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = capacity;
        self
    }

    /// Sets the warm-engine cap.
    pub fn with_max_engines(mut self, max_engines: usize) -> Self {
        self.max_engines = max_engines;
        self
    }

    /// Sets the default per-job timeout.
    pub fn with_default_timeout(mut self, timeout: Duration) -> Self {
        self.default_timeout = Some(timeout);
        self
    }

    /// Enables or disables the warm-engine pool.
    pub fn with_warm_pool(mut self, enabled: bool) -> Self {
        self.warm_pool = enabled;
        self
    }

    /// Attaches a telemetry handle: traces, metrics and solver profiles
    /// for everything the service runs.
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }
}

/// One `(fabric, capacity)`-granular verification job.
///
/// The unit of scheduling: a sweep over many capacities is many jobs
/// sharing an [`Fingerprint`] (set [`VerifyJob::with_engine_range`] to the
/// sweep range on each), so they reuse one pooled engine — in submission
/// order — while unrelated jobs run beside them on other workers.
#[derive(Clone, Debug)]
pub struct VerifyJob {
    /// Human-readable label carried into the outcome.
    pub name: String,
    /// The fabric to verify.
    pub fabric: ScenarioFabric,
    /// Which conditions count as a deadlock.
    pub spec: DeadlockSpec,
    /// SMT resource limits.
    pub config: CheckConfig,
    /// The queue capacity to ask about; `None` means the fabric's own
    /// configured queue size.
    pub capacity: Option<usize>,
    /// The capacity range the pooled engine is built over.  Jobs agreeing
    /// on fabric, spec, solver limits *and* this range share an engine;
    /// defaults to `capacity..=capacity`.  Widened if it does not contain
    /// the queried capacity.
    pub engine_range: Option<RangeInclusive<usize>>,
    /// Whether derived invariants strengthen the encoding (the Section-3
    /// ablation flips this off).
    pub invariants: bool,
    /// Per-job wall-clock budget overriding the service default.
    pub timeout: Option<Duration>,
}

impl VerifyJob {
    /// A job over a 2D-mesh configuration, at its configured queue size.
    pub fn mesh(name: impl Into<String>, config: MeshConfig) -> Self {
        VerifyJob::over(name, ScenarioFabric::Mesh(config))
    }

    /// A job over an arbitrary topology fabric.
    pub fn fabric(name: impl Into<String>, config: FabricConfig) -> Self {
        VerifyJob::over(name, ScenarioFabric::Fabric(Box::new(config)))
    }

    /// A job over an already-wrapped scenario fabric.
    pub fn over(name: impl Into<String>, fabric: ScenarioFabric) -> Self {
        VerifyJob {
            name: name.into(),
            fabric,
            spec: DeadlockSpec::default(),
            config: CheckConfig::default(),
            capacity: None,
            engine_range: None,
            invariants: true,
            timeout: None,
        }
    }

    /// Replaces the deadlock specification.
    pub fn with_spec(mut self, spec: DeadlockSpec) -> Self {
        self.spec = spec;
        self
    }

    /// Replaces the SMT resource limits.
    pub fn with_config(mut self, config: CheckConfig) -> Self {
        self.config = config;
        self
    }

    /// Pins the queried capacity.
    pub fn at_capacity(mut self, capacity: usize) -> Self {
        self.capacity = Some(capacity);
        self
    }

    /// Sets the engine's capacity range (the warm-sharing key for sweeps).
    pub fn with_engine_range(mut self, range: RangeInclusive<usize>) -> Self {
        self.engine_range = Some(range);
        self
    }

    /// Enables or disables invariant strengthening.
    pub fn with_invariants(mut self, enabled: bool) -> Self {
        self.invariants = enabled;
        self
    }

    /// Sets this job's wall-clock budget.
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.timeout = Some(timeout);
        self
    }
}

/// Identifier of a submitted job: its submission index, which is also the
/// order [`Service::drain`] returns outcomes in.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct JobId(pub u64);

impl fmt::Display for JobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// Why a job produced no report.
#[derive(Clone, Debug)]
pub enum JobError {
    /// The fabric could not be built (shared by every job of the
    /// fingerprint: the first failure is cached).
    Fabric(FabricError),
    /// The job's wall-clock budget expired while it was still queued; it
    /// was refused without touching an engine.
    TimedOut {
        /// How long the job had waited when it was refused.
        waited: Duration,
    },
    /// The worker running the job panicked; the engine it held was
    /// discarded (the next same-fingerprint job rebuilds cold).
    EngineLost {
        /// The panic message, when one was recoverable.
        message: String,
    },
}

impl fmt::Display for JobError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JobError::Fabric(e) => write!(f, "fabric build failed: {e}"),
            JobError::TimedOut { waited } => {
                write!(f, "timed out after waiting {waited:.2?} in the queue")
            }
            JobError::EngineLost { message } => {
                write!(f, "worker panicked while running the job: {message}")
            }
        }
    }
}

impl std::error::Error for JobError {}

/// Everything the service reports about one finished job.
#[derive(Clone, Debug)]
pub struct JobOutcome {
    /// The job's submission identifier.
    pub id: JobId,
    /// The label given at submission.
    pub name: String,
    /// The capacity the job asked about.
    pub capacity: usize,
    /// The pool key the job ran under.
    pub fingerprint: Fingerprint,
    /// The verification report, or why there is none.
    pub result: Result<Report, JobError>,
    /// Time between admission and the moment a worker started the job —
    /// scheduling plus turnstile wait, kept *separate* from the work
    /// (`run_batch`'s old `elapsed` conflated the two).
    pub queue_wait: Duration,
    /// Time spent working: engine build (for the cold job of a
    /// fingerprint) plus the query itself.
    pub work_elapsed: Duration,
    /// Whether the job checked out an already-warm engine.
    pub warm_hit: bool,
    /// The job ran to completion but blew through its wall-clock budget
    /// doing so (queries are never interrupted mid-solve).
    pub deadline_exceeded: bool,
    /// This job's share of its engine's [`SessionStats`]: the stats delta
    /// its queries caused.  `templates_built` is `1` exactly for the job
    /// that cold-built the engine.  `None` when no engine ran.
    pub session_delta: Option<SessionStats>,
}

impl JobOutcome {
    /// Returns `true` when the job produced a deadlock-free report.
    pub fn is_deadlock_free(&self) -> bool {
        matches!(&self.result, Ok(report) if report.is_deadlock_free())
    }

    /// The phase-attributed solver profile of this job's query — present
    /// when the job ran under an enabled telemetry handle and produced a
    /// report.
    pub fn solver_profile(&self) -> Option<&advocat_logic::SolverProfile> {
        self.result
            .as_ref()
            .ok()
            .and_then(|report| report.solver_profile())
    }
}

/// One job's outcome slot: distinguishing "not finished yet" from
/// "already handed out" is what lets [`Service::wait_outcome`] answer
/// by-id queries (the front-end's `GET /v1/jobs/{id}`) truthfully.
enum Slot {
    /// The job has been admitted but no outcome has landed.
    Pending,
    /// The outcome landed and nobody has consumed it.
    Ready(Box<JobOutcome>),
    /// The outcome was consumed (by [`Service::next_outcome`],
    /// [`Service::drain`] or a by-id wait); it will not be seen again.
    Taken,
}

struct ResultStore {
    slots: Vec<Slot>,
    ready: VecDeque<u64>,
    submitted: u64,
    completed: u64,
    consumed: u64,
}

/// Why a by-id outcome query ([`Service::take_outcome`],
/// [`Service::wait_outcome`]) returned no outcome and never will.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OutcomeError {
    /// No job with this id was ever admitted.
    Unknown(JobId),
    /// The job finished but its outcome was already consumed — outcomes
    /// are delivered at most once.
    Taken(JobId),
}

impl fmt::Display for OutcomeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OutcomeError::Unknown(id) => write!(f, "job {id} was never admitted"),
            OutcomeError::Taken(id) => write!(f, "job {id}'s outcome was already consumed"),
        }
    }
}

impl std::error::Error for OutcomeError {}

/// Point-in-time snapshot of a [`Service`]'s health: the warm pool,
/// the admission queue and the job ledger in one struct.  This is the
/// payload of the front-end's `GET /healthz`; every field is also
/// available through the metrics registry when telemetry is enabled,
/// but the snapshot needs no telemetry and is always coherent (one
/// lock acquisition for the ledger numbers).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ServiceStats {
    /// Cumulative warm-engine pool statistics.
    pub pool: PoolStats,
    /// Jobs waiting in the bounded admission queue right now.
    pub queued: usize,
    /// The admission queue's bound (the backpressure knob).
    pub queue_capacity: usize,
    /// Jobs admitted since the service started.
    pub submitted: u64,
    /// Jobs that have produced an outcome.
    pub completed: u64,
    /// Jobs admitted but not yet finished (`submitted - completed`).
    pub pending: u64,
    /// Worker threads serving the scheduler.
    pub workers: usize,
    /// Successful steal operations so far.
    pub steals: u64,
}

impl ServiceStats {
    /// Renders the snapshot as one JSON object, in the house wire style
    /// (hand-rolled, serde-free) — the `GET /healthz` response body.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"workers\":{},\"queued\":{},\"queue_capacity\":{},\"submitted\":{},\
             \"completed\":{},\"pending\":{},\"steals\":{},\"pool\":{{\
             \"engines_built\":{},\"warm_hits\":{},\"build_failures\":{},\
             \"evictions\":{},\"live_engines\":{},\"checkouts\":{},\"rebuilds\":{},\
             \"warm_hit_rate\":{:.4}}}}}",
            self.workers,
            self.queued,
            self.queue_capacity,
            self.submitted,
            self.completed,
            self.pending,
            self.steals,
            self.pool.engines_built,
            self.pool.warm_hits,
            self.pool.build_failures,
            self.pool.evictions,
            self.pool.live_engines,
            self.pool.checkouts,
            self.pool.rebuilds,
            self.pool.warm_hit_rate(),
        )
    }
}

/// Refusals from [`Service::try_submit_json`]: either the text was not a
/// valid job request, or the whole request set could not be admitted
/// atomically.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum JsonSubmitError {
    /// The text failed to parse or described an unbuildable topology; no
    /// jobs were admitted.
    Json(JsonError),
    /// The bounded queue lacks room for the request's full job set; no
    /// jobs were admitted (admission is all-or-nothing, so a partial
    /// sweep never dangles).
    QueueFull {
        /// How many jobs the request would have admitted.
        jobs: usize,
        /// The queue bound that refused them.
        capacity: usize,
    },
}

impl fmt::Display for JsonSubmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JsonSubmitError::Json(e) => write!(f, "{e}"),
            JsonSubmitError::QueueFull { jobs, capacity } => write!(
                f,
                "the bounded job queue (capacity {capacity}) cannot admit {jobs} more jobs"
            ),
        }
    }
}

impl std::error::Error for JsonSubmitError {}

/// The service's pre-registered instruments (one registry lookup each at
/// construction, plain atomic updates afterwards).  Present only when the
/// service was configured with an enabled telemetry handle.
struct ServiceMetrics {
    queue_wait: Histogram,
    work: Histogram,
    warm_hits: Counter,
    cold_builds: Counter,
    rebuilds: Counter,
    live_learnts: Gauge,
    total_learnts: Gauge,
}

impl ServiceMetrics {
    fn register(telemetry: &Telemetry) -> Option<ServiceMetrics> {
        let metrics = telemetry.metrics()?;
        Some(ServiceMetrics {
            queue_wait: metrics.histogram(
                "service_job_queue_wait_seconds",
                "Admission-to-start wait of each job (scheduling plus turnstile)",
            ),
            work: metrics.histogram(
                "service_job_work_seconds",
                "Work time of each job: engine build (cold jobs) plus the query",
            ),
            warm_hits: metrics.counter(
                "service_warm_hits_total",
                "Jobs that checked out an already-warm engine",
            ),
            cold_builds: metrics.counter(
                "service_cold_builds_total",
                "Jobs that cold-built their fingerprint's engine for the first time",
            ),
            rebuilds: metrics.counter(
                "service_rebuilds_total",
                "Cold builds for fingerprints whose engine was evicted or lost",
            ),
            live_learnts: metrics.gauge(
                "sat_live_learnt_clauses",
                "Learnt clauses alive in the most recently reported engine",
            ),
            total_learnts: metrics.gauge(
                "sat_total_learnt_clauses",
                "Learnt clauses ever stored by the most recently reported engine",
            ),
        })
    }
}

struct Shared {
    scheduler: Scheduler,
    pool: EnginePool,
    warm_pool: bool,
    default_timeout: Option<Duration>,
    results: Mutex<ResultStore>,
    results_cv: Condvar,
    telemetry: Telemetry,
    metrics: Option<ServiceMetrics>,
}

/// A long-running, concurrent verification service.  See the
/// [module documentation](self) for the architecture and an example.
///
/// Dropping the service shuts it down: workers stop after their current
/// job and any still-queued jobs are discarded, so call
/// [`Service::drain`] (or consume every outcome) first.
pub struct Service {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl fmt::Debug for Service {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Service")
            .field("workers", &self.workers.len())
            .field("pool", &self.shared.pool.stats())
            .finish()
    }
}

impl Service {
    /// Starts the service: spawns the worker threads and the (initially
    /// empty) engine pool.
    pub fn new(config: ServiceConfig) -> Self {
        let workers = if config.workers == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            config.workers
        };
        let registry = config.telemetry.metrics();
        let depth_gauge = registry.as_ref().map(|m| {
            m.gauge(
                "service_queue_depth",
                "Jobs waiting in the bounded admission queue",
            )
        });
        let steal_counter = registry.as_ref().map(|m| {
            m.counter(
                "service_steals_total",
                "Successful steal operations (each may move several jobs)",
            )
        });
        let shared = Arc::new(Shared {
            scheduler: Scheduler::new(workers, config.queue_capacity, depth_gauge, steal_counter),
            pool: EnginePool::new(config.max_engines, config.telemetry.clone()),
            warm_pool: config.warm_pool,
            default_timeout: config.default_timeout,
            results: Mutex::new(ResultStore {
                slots: Vec::new(),
                ready: VecDeque::new(),
                submitted: 0,
                completed: 0,
                consumed: 0,
            }),
            results_cv: Condvar::new(),
            metrics: ServiceMetrics::register(&config.telemetry),
            telemetry: config.telemetry,
        });
        let handles = (0..workers)
            .map(|index| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("advocat-worker-{index}"))
                    .spawn(move || worker_loop(shared, index))
                    .expect("spawning a service worker")
            })
            .collect();
        Service {
            shared,
            workers: handles,
        }
    }

    /// Submits one job, blocking while the bounded queue is full.
    /// Returns its [`JobId`] (also its position in [`Service::drain`]).
    pub fn submit(&self, job: VerifyJob) -> JobId {
        let shared = &self.shared;
        let id = shared
            .scheduler
            .push_with(|| self.prepare(job))
            .expect("blocking submit never refuses");
        JobId(id)
    }

    /// Submits one job unless the bounded queue is full — the
    /// non-blocking admission-control path.
    ///
    /// # Errors
    ///
    /// Returns [`SubmitError::QueueFull`] (with the job untouched
    /// service-side) when admission would have to wait.
    pub fn try_submit(&self, job: VerifyJob) -> Result<JobId, SubmitError> {
        self.shared
            .scheduler
            .try_push_with(|| self.prepare(job))
            .map(JobId)
    }

    /// Splits a [`BatchScenario`] into per-capacity jobs sharing one
    /// pooled engine (the scenario's sweep range is the engine range) and
    /// submits them all, blocking on backpressure.  Returns the job ids in
    /// ascending capacity order.
    pub fn submit_sweep(&self, scenario: &BatchScenario) -> Vec<JobId> {
        let own = scenario.fabric.queue_size();
        let range = scenario.sweep.clone().unwrap_or(own..=own);
        range
            .clone()
            .map(|capacity| {
                self.submit(
                    VerifyJob::over(scenario.name.clone(), scenario.fabric.clone())
                        .with_spec(scenario.spec)
                        .with_config(scenario.config.clone())
                        .at_capacity(capacity)
                        .with_engine_range(range.clone()),
                )
            })
            .collect()
    }

    /// Parses [`JobRequest`]s from JSON (a single object or an array) and
    /// submits each as a sweep of per-capacity jobs.
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] when the text is not valid job JSON; no
    /// jobs are submitted in that case.
    pub fn submit_json(&self, text: &str) -> Result<Vec<JobId>, JsonError> {
        let requests = requests_from_json(text)?;
        let mut jobs = Vec::new();
        for request in &requests {
            jobs.extend(request.to_jobs()?);
        }
        Ok(jobs.into_iter().map(|job| self.submit(job)).collect())
    }

    /// Like [`Service::submit_json`], but admission is **non-blocking and
    /// all-or-nothing**: either every job of the request set fits in the
    /// bounded queue and all are admitted, or none is.  This is the
    /// admission path of the HTTP front-end, where a full queue must turn
    /// into `429 Too Many Requests` instead of a stalled connection.
    ///
    /// # Errors
    ///
    /// [`JsonSubmitError::Json`] when the text is not valid job JSON;
    /// [`JsonSubmitError::QueueFull`] when the queue lacks room for the
    /// whole set.  No jobs are admitted in either case.
    pub fn try_submit_json(&self, text: &str) -> Result<Vec<JobId>, JsonSubmitError> {
        let requests = requests_from_json(text).map_err(JsonSubmitError::Json)?;
        let mut jobs = Vec::new();
        for request in &requests {
            jobs.extend(request.to_jobs().map_err(JsonSubmitError::Json)?);
        }
        let count = jobs.len();
        let mut pending = jobs.into_iter();
        self.shared
            .scheduler
            .try_push_all_with(count, || {
                self.prepare(pending.next().expect("one job per reserved slot"))
            })
            .map(|ids| ids.into_iter().map(JobId).collect())
            .map_err(|SubmitError::QueueFull| JsonSubmitError::QueueFull {
                jobs: count,
                capacity: self.shared.scheduler.capacity(),
            })
    }

    /// Resolves a submitted job into its scheduled form: capacity, engine
    /// range, fingerprint, pool ticket and outcome slot.
    fn prepare(&self, mut job: VerifyJob) -> ScheduledJob {
        let shared = &self.shared;
        // Jobs inherit the service's telemetry handle unless they brought
        // their own enabled one.  The handle never reaches the
        // fingerprint, so warm-pool keying is telemetry-blind.
        if !job.config.solver.telemetry.is_enabled() {
            job.config.solver.telemetry = shared.telemetry.clone();
        }
        let capacity = job.capacity.unwrap_or_else(|| job.fabric.queue_size());
        let range = match job.engine_range.clone() {
            None => capacity..=capacity,
            Some(range) => *range.start().min(&capacity)..=*range.end().max(&capacity),
        };
        let fingerprint = Fingerprint::of_job(&job.fabric, &range, &job.config, &job.spec);
        let (entry, turn) = if shared.warm_pool {
            let (entry, turn) = shared.pool.ticket(fingerprint);
            (Some(entry), turn)
        } else {
            (None, 0)
        };
        let timeout = job.timeout.or(shared.default_timeout);
        let id = {
            let mut results = shared.results.lock().expect("result store lock");
            let id = results.submitted;
            results.submitted += 1;
            results.slots.push(Slot::Pending);
            id
        };
        ScheduledJob {
            id,
            fingerprint,
            job,
            capacity,
            range,
            entry,
            turn,
            submitted_at: Instant::now(),
            timeout,
        }
    }

    /// Blocks until the next unconsumed outcome is available and returns
    /// it, in **completion** order (streaming consumers want results as
    /// they land).  Returns `None` once every submitted job's outcome has
    /// been consumed.
    pub fn next_outcome(&self) -> Option<JobOutcome> {
        let shared = &self.shared;
        let mut results = shared.results.lock().expect("result store lock");
        loop {
            while let Some(id) = results.ready.pop_front() {
                if let Some(outcome) = take_slot(&mut results, id) {
                    return Some(outcome);
                }
            }
            if results.consumed >= results.submitted {
                return None;
            }
            results = shared.results_cv.wait(results).expect("result store lock");
        }
    }

    /// Takes job `id`'s outcome if it has landed, without blocking.
    /// `Ok(None)` means the job is still queued or running.
    ///
    /// # Errors
    ///
    /// [`OutcomeError::Unknown`] for an id never admitted;
    /// [`OutcomeError::Taken`] when the outcome was already consumed
    /// (delivery is at most once).
    pub fn take_outcome(&self, id: JobId) -> Result<Option<JobOutcome>, OutcomeError> {
        let mut results = self.shared.results.lock().expect("result store lock");
        poll_slot(&mut results, id)
    }

    /// Blocks until job `id`'s outcome lands (or `timeout` expires, when
    /// one is given) and takes it.  `Ok(None)` means the wait timed out
    /// with the job still in flight — the front-end's long-poll path
    /// (`GET /v1/jobs/{id}?wait_ms=…`).
    ///
    /// # Errors
    ///
    /// As [`Service::take_outcome`].
    pub fn wait_outcome(
        &self,
        id: JobId,
        timeout: Option<Duration>,
    ) -> Result<Option<JobOutcome>, OutcomeError> {
        let deadline = timeout.map(|t| Instant::now() + t);
        let shared = &self.shared;
        let mut results = shared.results.lock().expect("result store lock");
        loop {
            match poll_slot(&mut results, id)? {
                Some(outcome) => return Ok(Some(outcome)),
                None => match deadline {
                    None => {
                        results = shared.results_cv.wait(results).expect("result store lock");
                    }
                    Some(deadline) => {
                        let now = Instant::now();
                        if now >= deadline {
                            return Ok(None);
                        }
                        results = shared
                            .results_cv
                            .wait_timeout(results, deadline - now)
                            .expect("result store lock")
                            .0;
                    }
                },
            }
        }
    }

    /// Waits for every submitted job to finish and returns all outcomes
    /// not yet consumed by [`Service::next_outcome`], in **submission**
    /// order.
    pub fn drain(&self) -> Vec<JobOutcome> {
        let shared = &self.shared;
        let mut results = shared.results.lock().expect("result store lock");
        while results.completed < results.submitted {
            results = shared.results_cv.wait(results).expect("result store lock");
        }
        let mut outcomes = Vec::new();
        for slot in results.slots.iter_mut() {
            if matches!(slot, Slot::Ready(_)) {
                if let Slot::Ready(outcome) = std::mem::replace(slot, Slot::Taken) {
                    outcomes.push(*outcome);
                }
            }
        }
        results.consumed += outcomes.len() as u64;
        results.ready.clear();
        outcomes
    }

    /// Waits until every admitted job has finished (without consuming any
    /// outcome), or until `timeout` expires.  Returns `true` when the
    /// service went idle — the graceful-drain hook: a front-end that has
    /// stopped admitting calls this, then flushes sinks, then exits.
    pub fn await_idle(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let shared = &self.shared;
        let mut results = shared.results.lock().expect("result store lock");
        while results.completed < results.submitted {
            let now = Instant::now();
            if now >= deadline {
                return false;
            }
            results = shared
                .results_cv
                .wait_timeout(results, deadline - now)
                .expect("result store lock")
                .0;
        }
        true
    }

    /// Jobs admitted but not yet finished.
    pub fn pending(&self) -> u64 {
        let results = self.shared.results.lock().expect("result store lock");
        results.submitted - results.completed
    }

    /// Jobs waiting in the bounded admission queue right now.
    pub fn queued(&self) -> usize {
        self.shared.scheduler.queued()
    }

    /// Successful steal operations so far (each may have moved several
    /// jobs from a victim worker's deque to an idle one's).
    pub fn steals(&self) -> u64 {
        self.shared.scheduler.steals()
    }

    /// Cumulative statistics of the warm-engine pool.
    pub fn pool_stats(&self) -> PoolStats {
        self.shared.pool.stats()
    }

    /// The bound of the admission queue (see
    /// [`ServiceConfig::queue_capacity`]).
    pub fn queue_capacity(&self) -> usize {
        self.shared.scheduler.capacity()
    }

    /// A coherent point-in-time snapshot of the service: pool, queue and
    /// job-ledger statistics in one struct (the `/healthz` payload).
    pub fn stats(&self) -> ServiceStats {
        let (submitted, completed) = {
            let results = self.shared.results.lock().expect("result store lock");
            (results.submitted, results.completed)
        };
        ServiceStats {
            pool: self.shared.pool.stats(),
            queued: self.shared.scheduler.queued(),
            queue_capacity: self.shared.scheduler.capacity(),
            submitted,
            completed,
            pending: submitted - completed,
            workers: self.workers.len(),
            steals: self.shared.scheduler.steals(),
        }
    }
}

/// Takes the outcome in slot `id` if it is ready, updating the consumed
/// count.  (Free function because it borrows only the store, not the
/// service.)
fn take_slot(results: &mut ResultStore, id: u64) -> Option<JobOutcome> {
    match results.slots.get_mut(id as usize) {
        Some(slot @ Slot::Ready(_)) => {
            let Slot::Ready(outcome) = std::mem::replace(slot, Slot::Taken) else {
                unreachable!("matched Ready above");
            };
            results.consumed += 1;
            Some(*outcome)
        }
        _ => None,
    }
}

/// By-id poll against the store: distinguishes ready, pending, consumed
/// and never-admitted.
fn poll_slot(results: &mut ResultStore, id: JobId) -> Result<Option<JobOutcome>, OutcomeError> {
    match results.slots.get(id.0 as usize) {
        None => Err(OutcomeError::Unknown(id)),
        Some(Slot::Taken) => Err(OutcomeError::Taken(id)),
        Some(Slot::Pending) => Ok(None),
        Some(Slot::Ready(_)) => Ok(take_slot(results, id.0)),
    }
}

impl Drop for Service {
    fn drop(&mut self) {
        self.shared.scheduler.shutdown();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(shared: Arc<Shared>, index: usize) {
    loop {
        let seen = shared.scheduler.activity();
        match shared.scheduler.find_work(index) {
            Some(job) => execute(&shared, index, job),
            None => {
                if shared.scheduler.is_shutdown() {
                    break;
                }
                shared.scheduler.idle_wait(seen);
            }
        }
    }
}

/// The trace fields identifying one scheduled job.
fn job_fields(sj: &ScheduledJob) -> Vec<(&'static str, String)> {
    vec![
        ("job", sj.id.to_string()),
        ("name", sj.job.name.clone()),
        ("capacity", sj.capacity.to_string()),
    ]
}

/// Runs (or parks) one scheduled job on the calling worker.
fn execute(shared: &Shared, worker: usize, mut sj: ScheduledJob) {
    let Some(entry) = sj.entry.take() else {
        let _span = shared
            .telemetry
            .span_with("job.execute", || job_fields(&sj));
        let outcome = run_pool_free(&sj);
        record(shared, outcome);
        return;
    };

    let mut state = entry.state.lock().expect("pool entry lock");
    if state.now_serving != sj.turn {
        // Not this job's turn yet: park it at the entry (the `entry` Arc
        // stays out of the job to avoid a reference cycle) and free the
        // worker.  The job is re-scheduled when its predecessor retires.
        shared.telemetry.event_with("job.park", || {
            let mut fields = job_fields(&sj);
            fields.push(("turn", sj.turn.to_string()));
            fields
        });
        state.parked.insert(sj.turn, sj);
        return;
    }

    let _span = shared
        .telemetry
        .span_with("job.execute", || job_fields(&sj));

    // Admission-control timeout: refuse jobs that out-waited their budget
    // before spending any engine time on them.
    let queue_wait = sj.submitted_at.elapsed();
    if sj.timeout.is_some_and(|limit| queue_wait > limit) {
        drop(state);
        record(
            shared,
            outcome_without_work(&sj, JobError::TimedOut { waited: queue_wait }, queue_wait),
        );
        advance(shared, worker, &entry);
        return;
    }

    match std::mem::replace(&mut state.slot, EngineSlot::CheckedOut) {
        EngineSlot::CheckedOut => unreachable!("the turnstile serialises checkouts"),
        EngineSlot::Failed(error) => {
            state.slot = EngineSlot::Failed(error.clone());
            drop(state);
            shared.pool.note_build_failure();
            record(
                shared,
                outcome_without_work(&sj, JobError::Fabric(error), queue_wait),
            );
            advance(shared, worker, &entry);
        }
        EngineSlot::Ready(engine) => {
            state.last_used = shared.pool.touch();
            drop(state);
            shared.pool.note_warm_hit();
            if let Some(metrics) = &shared.metrics {
                metrics.warm_hits.inc();
            }
            shared.telemetry.event_with("engine.checkout", || {
                let mut fields = job_fields(&sj);
                fields.push(("slot", "warm".to_owned()));
                fields
            });
            let (engine, outcome) = run_on_engine(&sj, engine, true, queue_wait, Duration::ZERO);
            return_engine(shared, &entry, engine);
            record(shared, outcome);
            advance(shared, worker, &entry);
        }
        EngineSlot::Empty => {
            state.last_used = shared.pool.touch();
            drop(state);
            let build_start = Instant::now();
            match build_engine(&sj) {
                Err(error) => {
                    entry.state.lock().expect("pool entry lock").slot =
                        EngineSlot::Failed(error.clone());
                    shared.pool.note_build_failure();
                    let mut outcome =
                        outcome_without_work(&sj, JobError::Fabric(error), queue_wait);
                    outcome.work_elapsed = build_start.elapsed();
                    record(shared, outcome);
                    advance(shared, worker, &entry);
                }
                Ok(engine) => {
                    let rebuild = shared.pool.note_build(sj.fingerprint);
                    if let Some(metrics) = &shared.metrics {
                        if rebuild {
                            metrics.rebuilds.inc();
                        } else {
                            metrics.cold_builds.inc();
                        }
                    }
                    shared.telemetry.event_with("engine.checkout", || {
                        let mut fields = job_fields(&sj);
                        fields.push(("slot", if rebuild { "rebuild" } else { "cold" }.to_owned()));
                        fields
                    });
                    let (engine, outcome) =
                        run_on_engine(&sj, engine, false, queue_wait, build_start.elapsed());
                    return_engine(shared, &entry, engine);
                    advance(shared, worker, &entry);
                    // Enforce the cap before publishing the outcome, so a
                    // drained caller observes the pool already within (or
                    // knowingly over) its bound.
                    shared.pool.enforce_cap();
                    record(shared, outcome);
                }
            }
        }
    }
}

/// Puts a checked-out engine back (or records its loss after a panic).
fn return_engine(shared: &Shared, entry: &Arc<EngineEntry>, engine: Option<Box<QueryEngine>>) {
    let mut state = entry.state.lock().expect("pool entry lock");
    match engine {
        Some(engine) => state.slot = EngineSlot::Ready(engine),
        None => {
            state.slot = EngineSlot::Empty;
            shared.pool.note_engine_lost();
        }
    }
}

/// Retires the entry's serving ticket and re-schedules the next parked
/// job, if it has already arrived.
fn advance(shared: &Shared, worker: usize, entry: &Arc<EngineEntry>) {
    let mut state = entry.state.lock().expect("pool entry lock");
    state.now_serving += 1;
    let next = state.now_serving;
    if let Some(mut job) = state.parked.remove(&next) {
        job.entry = Some(Arc::clone(entry));
        drop(state);
        shared.scheduler.push_local(worker, job);
    }
}

/// Builds the engine a job's fingerprint calls for: the fabric at the
/// range maximum, one template over the whole range.
fn build_engine(sj: &ScheduledJob) -> Result<Box<QueryEngine>, FabricError> {
    let system = sj.job.fabric.build_for_sweep(*sj.range.end())?;
    Ok(Box::new(QueryEngine::with_config(
        system,
        sj.job.config.clone(),
        sj.range.clone(),
    )))
}

/// Answers the job's query on a checked-out engine, panic-safely.  Returns
/// the engine (`None` when the query panicked and poisoned it) and the
/// outcome.
fn run_on_engine(
    sj: &ScheduledJob,
    mut engine: Box<QueryEngine>,
    warm: bool,
    queue_wait: Duration,
    build_elapsed: Duration,
) -> (Option<Box<QueryEngine>>, JobOutcome) {
    let started = Instant::now();
    let capacity = sj.capacity;
    let target = sj.job.spec.as_target();
    let invariants = sj.job.invariants;
    let attempt = catch_unwind(AssertUnwindSafe(move || {
        // A warm engine's cumulative stats belong to earlier jobs; the
        // delta below isolates this job's share.  The cold baseline is
        // zero so the builder job's delta keeps `templates_built == 1`.
        let baseline = if warm {
            engine.stats()
        } else {
            SessionStats::default()
        };
        let report = match target {
            None => engine.trivially_free(),
            Some(target) => engine.check(
                &Query::new()
                    .capacity(capacity)
                    .target(target)
                    .invariants(invariants),
            ),
        };
        let delta = engine.stats().delta_since(&baseline);
        (engine, report, delta)
    }));
    let work_elapsed = build_elapsed + started.elapsed();
    let total = queue_wait + work_elapsed;
    let deadline_exceeded = sj.timeout.is_some_and(|limit| total > limit);
    match attempt {
        Ok((engine, report, delta)) => (
            Some(engine),
            JobOutcome {
                id: JobId(sj.id),
                name: sj.job.name.clone(),
                capacity,
                fingerprint: sj.fingerprint,
                result: Ok(report),
                queue_wait,
                work_elapsed,
                warm_hit: warm,
                deadline_exceeded,
                session_delta: Some(delta),
            },
        ),
        Err(panic) => (
            None,
            JobOutcome {
                id: JobId(sj.id),
                name: sj.job.name.clone(),
                capacity,
                fingerprint: sj.fingerprint,
                result: Err(JobError::EngineLost {
                    message: panic_message(&panic),
                }),
                queue_wait,
                work_elapsed,
                warm_hit: warm,
                deadline_exceeded,
                session_delta: None,
            },
        ),
    }
}

/// The pool-disabled path: build a private engine, answer, discard.
fn run_pool_free(sj: &ScheduledJob) -> JobOutcome {
    let queue_wait = sj.submitted_at.elapsed();
    if sj.timeout.is_some_and(|limit| queue_wait > limit) {
        return outcome_without_work(sj, JobError::TimedOut { waited: queue_wait }, queue_wait);
    }
    let build_start = Instant::now();
    match build_engine(sj) {
        Err(error) => {
            let mut outcome = outcome_without_work(sj, JobError::Fabric(error), queue_wait);
            outcome.work_elapsed = build_start.elapsed();
            outcome
        }
        Ok(engine) => {
            let (_, outcome) = run_on_engine(sj, engine, false, queue_wait, build_start.elapsed());
            outcome
        }
    }
}

fn outcome_without_work(sj: &ScheduledJob, error: JobError, queue_wait: Duration) -> JobOutcome {
    JobOutcome {
        id: JobId(sj.id),
        name: sj.job.name.clone(),
        capacity: sj.capacity,
        fingerprint: sj.fingerprint,
        result: Err(error),
        queue_wait,
        work_elapsed: Duration::ZERO,
        warm_hit: false,
        deadline_exceeded: false,
        session_delta: None,
    }
}

fn record(shared: &Shared, outcome: JobOutcome) {
    if let Some(metrics) = &shared.metrics {
        metrics.queue_wait.observe(outcome.queue_wait);
        // The work histogram only counts jobs that actually ran (timed-out
        // and refused jobs never touched an engine).
        if outcome.session_delta.is_some() {
            metrics.work.observe(outcome.work_elapsed);
        }
        if let Some(delta) = &outcome.session_delta {
            metrics.live_learnts.set(delta.live_learnts as i64);
            metrics.total_learnts.set(delta.total_learnt as i64);
        }
    }
    let mut results = shared.results.lock().expect("result store lock");
    let id = outcome.id.0;
    results.slots[id as usize] = Slot::Ready(Box::new(outcome));
    results.ready.push_back(id);
    results.completed += 1;
    drop(results);
    shared.results_cv.notify_all();
}

fn panic_message(panic: &(dyn std::any::Any + Send)) -> String {
    if let Some(message) = panic.downcast_ref::<&str>() {
        (*message).to_owned()
    } else if let Some(message) = panic.downcast_ref::<String>() {
        message.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}
