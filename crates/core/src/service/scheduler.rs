//! The work-stealing scheduler of the verification service.
//!
//! Jobs enter through a **bounded injector** queue (the admission-control
//! point: when it is full, submitters block — or, via
//! [`crate::Service::try_submit`], get an immediate refusal).  Each worker
//! owns a deque: it pops its own work LIFO (freshly unparked jobs stay
//! cache-warm), refills from the injector FIFO, and when both are dry it
//! **steals half** of a victim's deque, oldest jobs first — the classic
//! steal-half discipline, so a worker that got handed a giant sweep sheds
//! the bulk of it to the first idle thief instead of being nibbled one job
//! at a time.
//!
//! Blocking is deliberately boring: sleeping workers wake on a condition
//! variable with a short timeout, so a missed notification costs a
//! millisecond, never a deadlock.

use std::collections::VecDeque;
use std::ops::RangeInclusive;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use advocat_telemetry::{Counter, Gauge};

use super::pool::EngineEntry;
use super::VerifyJob;

/// A submitted job, resolved for execution: the concrete capacity, the
/// engine range, the pool entry it must run on (in submission-ticket
/// order) and its admission timestamp.
pub(crate) struct ScheduledJob {
    /// Submission index — doubles as the outcome slot.
    pub id: u64,
    /// The pool key the job was filed under (reported in the outcome).
    pub fingerprint: super::Fingerprint,
    /// The job description as submitted.
    pub job: VerifyJob,
    /// The capacity this job queries (resolved from the job/fabric).
    pub capacity: usize,
    /// The capacity range of the engine the job runs on.
    pub range: RangeInclusive<usize>,
    /// The warm-pool entry (`None` when the pool is disabled: the job
    /// builds and discards a private engine).
    pub entry: Option<Arc<EngineEntry>>,
    /// The job's ticket on its pool entry: same-fingerprint jobs execute
    /// in ticket order, which makes warm-engine results independent of the
    /// worker count.
    pub turn: u64,
    /// When the job was admitted (queue wait is measured from here).
    pub submitted_at: Instant,
    /// Wall-clock budget for the job, if any.
    pub timeout: Option<Duration>,
}

/// How long an idle worker sleeps before re-scanning for work; an upper
/// bound on the cost of any lost wakeup.
const IDLE_NAP: Duration = Duration::from_millis(1);

struct Injector {
    queue: VecDeque<ScheduledJob>,
    shutdown: bool,
}

/// Bounded injector + per-worker deques.
pub(crate) struct Scheduler {
    injector: Mutex<Injector>,
    /// Signalled when injector space frees up (submitters wait on this).
    space: Condvar,
    /// Signalled when work appears anywhere (sleeping workers wait).
    work: Condvar,
    sleep: Mutex<()>,
    locals: Vec<Mutex<VecDeque<ScheduledJob>>>,
    capacity: usize,
    /// Bumped on every push so an idle worker can cheaply detect news.
    activity: AtomicU64,
    /// Successful steal operations (each may move several jobs).
    steals: AtomicU64,
    /// Live mirror of the injector depth in the service's metrics
    /// registry, when telemetry is enabled.
    depth_gauge: Option<Gauge>,
    /// Steal counter in the metrics registry, when telemetry is enabled.
    steal_counter: Option<Counter>,
}

/// Refusals from [`Service::try_submit`](super::Service::try_submit).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SubmitError {
    /// The bounded job queue is at capacity; retry later or use the
    /// blocking submit.
    QueueFull,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::QueueFull => write!(f, "the service's bounded job queue is full"),
        }
    }
}

impl std::error::Error for SubmitError {}

impl Scheduler {
    pub(crate) fn new(
        workers: usize,
        capacity: usize,
        depth_gauge: Option<Gauge>,
        steal_counter: Option<Counter>,
    ) -> Self {
        Scheduler {
            injector: Mutex::new(Injector {
                queue: VecDeque::new(),
                shutdown: false,
            }),
            space: Condvar::new(),
            work: Condvar::new(),
            sleep: Mutex::new(()),
            locals: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
            capacity: capacity.max(1),
            activity: AtomicU64::new(0),
            steals: AtomicU64::new(0),
            depth_gauge,
            steal_counter,
        }
    }

    fn note_depth(&self, depth: usize) {
        if let Some(gauge) = &self.depth_gauge {
            gauge.set(depth as i64);
        }
    }

    /// Blocking admission: waits for queue space, *then* materialises the
    /// job (tickets and outcome slots are only allocated once admission is
    /// certain — that keeps the ticket order equal to the admission order)
    /// and enqueues it.  Returns the job's id.
    pub(crate) fn push_with(&self, make: impl FnOnce() -> ScheduledJob) -> Option<u64> {
        let mut injector = self.injector.lock().expect("scheduler lock");
        while injector.queue.len() >= self.capacity && !injector.shutdown {
            injector = self.space.wait(injector).expect("scheduler lock");
        }
        let job = make();
        let id = job.id;
        injector.queue.push_back(job);
        self.note_depth(injector.queue.len());
        drop(injector);
        self.announce();
        Some(id)
    }

    /// Non-blocking admission: refuses — without allocating a ticket or an
    /// outcome slot — when the queue is full.
    pub(crate) fn try_push_with(
        &self,
        make: impl FnOnce() -> ScheduledJob,
    ) -> Result<u64, SubmitError> {
        let mut injector = self.injector.lock().expect("scheduler lock");
        if injector.queue.len() >= self.capacity {
            return Err(SubmitError::QueueFull);
        }
        let job = make();
        let id = job.id;
        injector.queue.push_back(job);
        self.note_depth(injector.queue.len());
        drop(injector);
        self.announce();
        Ok(id)
    }

    /// All-or-nothing non-blocking admission of `count` jobs: either the
    /// queue has room for every one of them (they are materialised and
    /// enqueued contiguously, so their ticket order is their slot order)
    /// or none is admitted.  The front-end's `POST /v1/jobs` uses this so
    /// a refused request never leaves half a sweep behind.
    pub(crate) fn try_push_all_with(
        &self,
        count: usize,
        mut make: impl FnMut() -> ScheduledJob,
    ) -> Result<Vec<u64>, SubmitError> {
        let mut injector = self.injector.lock().expect("scheduler lock");
        if injector.queue.len() + count > self.capacity {
            return Err(SubmitError::QueueFull);
        }
        let ids = (0..count)
            .map(|_| {
                let job = make();
                let id = job.id;
                injector.queue.push_back(job);
                id
            })
            .collect();
        self.note_depth(injector.queue.len());
        drop(injector);
        self.announce();
        Ok(ids)
    }

    /// The admission queue's bound.
    pub(crate) fn capacity(&self) -> usize {
        self.capacity
    }

    /// Hands a job directly to a worker's own deque (used when a finished
    /// job unparks its engine's next ticket).
    pub(crate) fn push_local(&self, worker: usize, job: ScheduledJob) {
        self.locals[worker]
            .lock()
            .expect("worker deque lock")
            .push_back(job);
        self.announce();
    }

    fn announce(&self) {
        self.activity.fetch_add(1, Ordering::Release);
        self.work.notify_all();
    }

    /// Finds the next job for `worker`: own deque (LIFO), then the
    /// injector (FIFO, freeing admission space), then stealing half of the
    /// fullest victim's deque.
    pub(crate) fn find_work(&self, worker: usize) -> Option<ScheduledJob> {
        if let Some(job) = self.locals[worker]
            .lock()
            .expect("worker deque lock")
            .pop_back()
        {
            return Some(job);
        }

        {
            let mut injector = self.injector.lock().expect("scheduler lock");
            if let Some(job) = injector.queue.pop_front() {
                self.note_depth(injector.queue.len());
                drop(injector);
                self.space.notify_one();
                return Some(job);
            }
        }

        // Steal half of the first non-empty victim, oldest jobs first.
        let workers = self.locals.len();
        for offset in 1..workers {
            let victim = (worker + offset) % workers;
            let mut stolen: Vec<ScheduledJob> = Vec::new();
            {
                let mut deque = self.locals[victim].lock().expect("worker deque lock");
                let take = deque.len().div_ceil(2);
                for _ in 0..take {
                    if let Some(job) = deque.pop_front() {
                        stolen.push(job);
                    }
                }
            }
            if !stolen.is_empty() {
                self.steals.fetch_add(1, Ordering::Relaxed);
                if let Some(counter) = &self.steal_counter {
                    counter.inc();
                }
                let mut jobs = stolen.into_iter();
                let first = jobs.next().expect("non-empty steal");
                let rest: Vec<ScheduledJob> = jobs.collect();
                if !rest.is_empty() {
                    let mut own = self.locals[worker].lock().expect("worker deque lock");
                    for job in rest {
                        own.push_back(job);
                    }
                    drop(own);
                    self.announce();
                }
                return Some(first);
            }
        }
        None
    }

    /// Parks the calling worker until new work is announced (or the nap
    /// timeout elapses — scans are cheap, lost sleep is not).
    pub(crate) fn idle_wait(&self, seen_activity: u64) {
        if self.activity.load(Ordering::Acquire) != seen_activity {
            return;
        }
        let guard = self.sleep.lock().expect("sleep lock");
        let _ = self.work.wait_timeout(guard, IDLE_NAP).expect("sleep lock");
    }

    pub(crate) fn activity(&self) -> u64 {
        self.activity.load(Ordering::Acquire)
    }

    pub(crate) fn is_shutdown(&self) -> bool {
        self.injector.lock().expect("scheduler lock").shutdown
    }

    pub(crate) fn shutdown(&self) {
        let mut injector = self.injector.lock().expect("scheduler lock");
        injector.shutdown = true;
        injector.queue.clear();
        drop(injector);
        self.space.notify_all();
        self.work.notify_all();
    }

    /// Number of jobs waiting in the bounded injector (not yet picked up
    /// or parked; a backpressure signal for submitters).
    pub(crate) fn queued(&self) -> usize {
        self.injector.lock().expect("scheduler lock").queue.len()
    }

    /// Successful steal operations so far (each may have moved several
    /// jobs from a victim's deque).
    pub(crate) fn steals(&self) -> u64 {
        self.steals.load(Ordering::Relaxed)
    }
}
