//! A hand-rolled, dependency-free JSON job format.
//!
//! The service is meant to sit behind scripts and CI harnesses, so jobs
//! and outcomes need a wire form.  The container this project builds in is
//! offline — no serde — so this module carries its own small recursive-
//! descent parser and writer for exactly the job/outcome shapes:
//!
//! ```json
//! {
//!   "name": "mesi torus",
//!   "topology": { "kind": "torus", "width": 3, "height": 3 },
//!   "queue_size": 2,
//!   "protocol": "mesi",
//!   "directory": 4,
//!   "capacities": [1, 4],
//!   "target": "any",
//!   "invariants": true,
//!   "timeout_ms": 60000
//! }
//! ```
//!
//! A request file is one such object or an array of them
//! ([`requests_from_json`]); each request expands to one [`VerifyJob`] per
//! capacity, all sharing the sweep range (and therefore one pooled
//! engine).  Outcomes serialise with [`outcome_to_json`].

use std::fmt;
use std::ops::RangeInclusive;
use std::time::Duration;

use advocat_deadlock::DeadlockSpec;
use advocat_logic::CheckConfig;
use advocat_noc::{FabricConfig, MeshConfig, ProtocolKind, Topology};

use super::{JobError, JobOutcome, VerifyJob};

/// A malformed job request (or an unbuildable topology described by one).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub message: String,
    /// Byte offset into the input where parsing stopped (`0` for semantic
    /// errors discovered after parsing).
    pub offset: usize,
}

impl JsonError {
    fn semantic(message: impl Into<String>) -> Self {
        JsonError {
            message: message.into(),
            offset: 0,
        }
    }
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} (at byte {})", self.message, self.offset)
    }
}

impl std::error::Error for JsonError {}

/// The topology a JSON job request asks for.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TopologySpec {
    /// A `width × height` 2D mesh (XY-routed).
    Mesh {
        /// Columns.
        width: u32,
        /// Rows.
        height: u32,
    },
    /// A `width × height` 2D torus (dimension-ordered with dateline VCs).
    Torus {
        /// Columns.
        width: u32,
        /// Rows.
        height: u32,
    },
    /// A unidirectional ring.
    Ring {
        /// Node count.
        nodes: u32,
    },
    /// A k-ary fat tree.
    FatTree {
        /// Children per switch.
        arity: u32,
        /// Tree depth.
        levels: u32,
    },
}

/// One JSON job request: a fabric description plus a capacity sweep.
///
/// Expand with [`JobRequest::to_jobs`]; the jobs share one engine range,
/// so the whole sweep runs on a single pooled engine.
#[derive(Clone, Debug, PartialEq)]
pub struct JobRequest {
    /// Label carried into every outcome of the sweep.
    pub name: String,
    /// The fabric's topology.
    pub topology: TopologySpec,
    /// The fabric's configured queue capacity.
    pub queue_size: usize,
    /// The hosted cache-coherence protocol.
    pub protocol: ProtocolKind,
    /// Directory placement as a node index (`None` keeps the default).
    pub directory: Option<usize>,
    /// Whether message classes ride separate virtual channels.
    pub message_class_vcs: bool,
    /// The capacities to verify (inclusive); also the engine range.
    pub capacities: RangeInclusive<usize>,
    /// Which conditions count as a deadlock.
    pub spec: DeadlockSpec,
    /// Whether derived invariants strengthen the encoding.
    pub invariants: bool,
    /// Per-job wall-clock budget in milliseconds.
    pub timeout_ms: Option<u64>,
    /// Override for [`CheckConfig::max_refinements`].
    pub max_refinements: Option<u64>,
    /// Override for [`CheckConfig::theory_node_budget`].
    pub theory_node_budget: Option<u64>,
}

impl JobRequest {
    /// A request over `topology` with every knob at its default: queue
    /// size 2, abstract-MI protocol, capacity sweep pinned to the queue
    /// size.
    pub fn new(name: impl Into<String>, topology: TopologySpec) -> Self {
        JobRequest {
            name: name.into(),
            topology,
            queue_size: 2,
            protocol: ProtocolKind::AbstractMi,
            directory: None,
            message_class_vcs: false,
            capacities: 2..=2,
            spec: DeadlockSpec::default(),
            invariants: true,
            timeout_ms: None,
            max_refinements: None,
            theory_node_budget: None,
        }
    }

    /// Expands the request into one [`VerifyJob`] per capacity, all
    /// sharing the sweep as their engine range.
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] when the requested topology cannot be
    /// constructed (degenerate dimensions and the like).
    pub fn to_jobs(&self) -> Result<Vec<VerifyJob>, JsonError> {
        let fabric = self.build_fabric()?;
        let mut config = CheckConfig::default();
        if let Some(limit) = self.max_refinements {
            config.max_refinements = limit;
        }
        if let Some(budget) = self.theory_node_budget {
            config.theory_node_budget = budget;
        }
        Ok(self
            .capacities
            .clone()
            .map(|capacity| {
                let mut job = VerifyJob::over(self.name.clone(), fabric.clone())
                    .with_spec(self.spec)
                    .with_config(config.clone())
                    .at_capacity(capacity)
                    .with_engine_range(self.capacities.clone())
                    .with_invariants(self.invariants);
                if let Some(ms) = self.timeout_ms {
                    job = job.with_timeout(Duration::from_millis(ms));
                }
                job
            })
            .collect())
    }

    fn build_fabric(&self) -> Result<crate::batch::ScenarioFabric, JsonError> {
        use crate::batch::ScenarioFabric;
        match self.topology {
            TopologySpec::Mesh { width, height } => {
                let mut mesh = MeshConfig::new(width, height, self.queue_size)
                    .with_protocol(self.protocol)
                    .with_virtual_channels(self.message_class_vcs);
                if let Some(node) = self.directory {
                    if width == 0 {
                        return Err(JsonError::semantic("mesh width must be positive"));
                    }
                    let node = node as u32;
                    mesh = mesh.with_directory(node % width, node / width);
                }
                Ok(ScenarioFabric::Mesh(mesh))
            }
            TopologySpec::Torus { width, height } => self.wrap(Topology::torus(width, height)),
            TopologySpec::Ring { nodes } => self.wrap(Topology::ring(nodes)),
            TopologySpec::FatTree { arity, levels } => self.wrap(Topology::fat_tree(arity, levels)),
        }
    }

    fn wrap(
        &self,
        topology: Result<Topology, impl fmt::Display>,
    ) -> Result<crate::batch::ScenarioFabric, JsonError> {
        let topology = topology.map_err(|e| JsonError::semantic(format!("bad topology: {e}")))?;
        let mut fabric = FabricConfig::new(topology, self.queue_size)
            .with_protocol(self.protocol)
            .with_message_class_vcs(self.message_class_vcs);
        if let Some(node) = self.directory {
            fabric = fabric.with_directory(node);
        }
        Ok(crate::batch::ScenarioFabric::Fabric(Box::new(fabric)))
    }

    /// Serialises the request back to its JSON object form.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        push_str_field(&mut out, "name", &self.name);
        out.push_str(",\"topology\":");
        match self.topology {
            TopologySpec::Mesh { width, height } => {
                out.push_str(&format!(
                    "{{\"kind\":\"mesh\",\"width\":{width},\"height\":{height}}}"
                ));
            }
            TopologySpec::Torus { width, height } => {
                out.push_str(&format!(
                    "{{\"kind\":\"torus\",\"width\":{width},\"height\":{height}}}"
                ));
            }
            TopologySpec::Ring { nodes } => {
                out.push_str(&format!("{{\"kind\":\"ring\",\"nodes\":{nodes}}}"));
            }
            TopologySpec::FatTree { arity, levels } => {
                out.push_str(&format!(
                    "{{\"kind\":\"fat-tree\",\"arity\":{arity},\"levels\":{levels}}}"
                ));
            }
        }
        out.push_str(&format!(",\"queue_size\":{}", self.queue_size));
        out.push_str(&format!(
            ",\"protocol\":\"{}\"",
            protocol_name(self.protocol)
        ));
        if let Some(node) = self.directory {
            out.push_str(&format!(",\"directory\":{node}"));
        }
        if self.message_class_vcs {
            out.push_str(",\"message_class_vcs\":true");
        }
        out.push_str(&format!(
            ",\"capacities\":[{},{}]",
            self.capacities.start(),
            self.capacities.end()
        ));
        out.push_str(&format!(",\"target\":\"{}\"", spec_name(&self.spec)));
        out.push_str(&format!(",\"invariants\":{}", self.invariants));
        if let Some(ms) = self.timeout_ms {
            out.push_str(&format!(",\"timeout_ms\":{ms}"));
        }
        if let Some(limit) = self.max_refinements {
            out.push_str(&format!(",\"max_refinements\":{limit}"));
        }
        if let Some(budget) = self.theory_node_budget {
            out.push_str(&format!(",\"theory_node_budget\":{budget}"));
        }
        out.push('}');
        out
    }
}

/// Parses a request file: one JSON job object, or an array of them.
///
/// # Errors
///
/// Returns a [`JsonError`] locating the first syntactic or semantic
/// problem.
pub fn requests_from_json(text: &str) -> Result<Vec<JobRequest>, JsonError> {
    let value = parse(text)?;
    match value {
        Json::Object(_) => Ok(vec![request_from_value(&value)?]),
        Json::Array(items) => items.iter().map(request_from_value).collect(),
        _ => Err(JsonError::semantic(
            "expected a job object or an array of job objects",
        )),
    }
}

/// Checks that `text` is one syntactically well-formed JSON value of any
/// shape, with a position-carrying error when it is not.  The HTTP
/// front-end uses this to refuse malformed payloads before touching the
/// service, and tests use it to pin that every emitted wire string is
/// valid JSON.
///
/// # Errors
///
/// Returns the [`JsonError`] locating the first syntactic problem.
pub fn validate_json(text: &str) -> Result<(), JsonError> {
    parse(text).map(|_| ())
}

/// Serialises a finished job's outcome as one JSON object (status,
/// deadlock witness when one exists, timings, warm-hit flag and the
/// job's session-stats delta).
pub fn outcome_to_json(outcome: &JobOutcome) -> String {
    let mut out = String::from("{");
    out.push_str(&format!("\"id\":{}", outcome.id.0));
    out.push(',');
    push_str_field(&mut out, "name", &outcome.name);
    out.push_str(&format!(",\"capacity\":{}", outcome.capacity));
    out.push_str(&format!(",\"fingerprint\":\"{}\"", outcome.fingerprint));
    match &outcome.result {
        Ok(report) if report.is_deadlock_free() => {
            out.push_str(",\"status\":\"deadlock-free\"");
        }
        Ok(report) => {
            match report.counterexample() {
                Some(witness) => {
                    out.push_str(",\"status\":\"potential-deadlock\",");
                    // The full candidate state, byte-identical to the
                    // in-process `Display` rendering — what lets a remote
                    // client compare witnesses against a local run.
                    push_str_field(&mut out, "witness", &witness.to_string());
                }
                // Not free, no candidate: the solver hit a resource limit.
                None => out.push_str(",\"status\":\"unknown\""),
            }
        }
        Err(error) => {
            let kind = match error {
                JobError::Fabric(_) => "fabric-error",
                JobError::TimedOut { .. } => "timed-out",
                JobError::EngineLost { .. } => "engine-lost",
            };
            out.push_str(&format!(",\"status\":\"{kind}\","));
            push_str_field(&mut out, "error", &error.to_string());
        }
    }
    out.push_str(&format!(
        ",\"queue_wait_ms\":{:.3},\"work_elapsed_ms\":{:.3}",
        outcome.queue_wait.as_secs_f64() * 1e3,
        outcome.work_elapsed.as_secs_f64() * 1e3
    ));
    out.push_str(&format!(",\"warm_hit\":{}", outcome.warm_hit));
    out.push_str(&format!(
        ",\"deadline_exceeded\":{}",
        outcome.deadline_exceeded
    ));
    if let Some(delta) = &outcome.session_delta {
        out.push_str(&format!(
            ",\"delta\":{{\"templates_built\":{},\"queries\":{},\"sat_conflicts\":{},\"sat_propagations\":{}}}",
            delta.templates_built, delta.queries, delta.sat_conflicts, delta.sat_propagations
        ));
    }
    out.push('}');
    out
}

fn protocol_name(protocol: ProtocolKind) -> &'static str {
    match protocol {
        ProtocolKind::AbstractMi => "abstract-mi",
        ProtocolKind::FullMi => "full-mi",
        ProtocolKind::Mesi => "mesi",
    }
}

fn spec_name(spec: &DeadlockSpec) -> &'static str {
    match (spec.stuck_packet, spec.dead_automaton) {
        (true, true) => "any",
        (true, false) => "stuck-packet",
        (false, true) => "dead-automaton",
        (false, false) => "none",
    }
}

fn push_str_field(out: &mut String, key: &str, value: &str) {
    out.push('"');
    out.push_str(key);
    out.push_str("\":\"");
    for c in value.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Request extraction from parsed values.
// ---------------------------------------------------------------------------

fn request_from_value(value: &Json) -> Result<JobRequest, JsonError> {
    let Json::Object(fields) = value else {
        return Err(JsonError::semantic("each job request must be an object"));
    };
    for (key, _) in fields {
        const KNOWN: [&str; 12] = [
            "name",
            "topology",
            "queue_size",
            "protocol",
            "directory",
            "message_class_vcs",
            "capacities",
            "target",
            "invariants",
            "timeout_ms",
            "max_refinements",
            "theory_node_budget",
        ];
        if !KNOWN.contains(&key.as_str()) {
            return Err(JsonError::semantic(format!("unknown job field `{key}`")));
        }
    }
    let name = match get(fields, "name") {
        Some(Json::String(s)) => s.clone(),
        Some(_) => return Err(JsonError::semantic("`name` must be a string")),
        None => return Err(JsonError::semantic("job request is missing `name`")),
    };
    let topology = topology_from_value(
        get(fields, "topology")
            .ok_or_else(|| JsonError::semantic("job request is missing `topology`"))?,
    )?;
    let queue_size = match get(fields, "queue_size") {
        Some(value) => usize_from(value, "queue_size")?,
        None => 2,
    };
    let protocol = match get(fields, "protocol") {
        None => ProtocolKind::AbstractMi,
        Some(Json::String(s)) => match s.as_str() {
            "abstract-mi" => ProtocolKind::AbstractMi,
            "full-mi" => ProtocolKind::FullMi,
            "mesi" => ProtocolKind::Mesi,
            other => {
                return Err(JsonError::semantic(format!(
                    "unknown protocol `{other}` (expected abstract-mi, full-mi or mesi)"
                )))
            }
        },
        Some(_) => return Err(JsonError::semantic("`protocol` must be a string")),
    };
    let directory = match get(fields, "directory") {
        None => None,
        Some(value) => Some(usize_from(value, "directory")?),
    };
    let message_class_vcs = match get(fields, "message_class_vcs") {
        None => false,
        Some(Json::Bool(b)) => *b,
        Some(_) => return Err(JsonError::semantic("`message_class_vcs` must be a boolean")),
    };
    let capacities = match get(fields, "capacities") {
        None => queue_size..=queue_size,
        Some(Json::Array(items)) => match items.as_slice() {
            [start, end] => {
                let start = usize_from(start, "capacities[0]")?;
                let end = usize_from(end, "capacities[1]")?;
                if start > end {
                    return Err(JsonError::semantic("`capacities` range is reversed"));
                }
                start..=end
            }
            _ => {
                return Err(JsonError::semantic(
                    "`capacities` must be a number or a [start, end] pair",
                ))
            }
        },
        Some(value) => {
            let single = usize_from(value, "capacities")?;
            single..=single
        }
    };
    let spec = match get(fields, "target") {
        None => DeadlockSpec::default(),
        Some(Json::String(s)) => match s.as_str() {
            "any" => DeadlockSpec {
                stuck_packet: true,
                dead_automaton: true,
            },
            "stuck-packet" => DeadlockSpec {
                stuck_packet: true,
                dead_automaton: false,
            },
            "dead-automaton" => DeadlockSpec {
                stuck_packet: false,
                dead_automaton: true,
            },
            "none" => DeadlockSpec {
                stuck_packet: false,
                dead_automaton: false,
            },
            other => {
                return Err(JsonError::semantic(format!(
                    "unknown target `{other}` (expected any, stuck-packet, dead-automaton or none)"
                )))
            }
        },
        Some(_) => return Err(JsonError::semantic("`target` must be a string")),
    };
    let invariants = match get(fields, "invariants") {
        None => true,
        Some(Json::Bool(b)) => *b,
        Some(_) => return Err(JsonError::semantic("`invariants` must be a boolean")),
    };
    let timeout_ms = match get(fields, "timeout_ms") {
        None => None,
        Some(value) => Some(usize_from(value, "timeout_ms")? as u64),
    };
    let max_refinements = match get(fields, "max_refinements") {
        None => None,
        Some(value) => Some(usize_from(value, "max_refinements")? as u64),
    };
    let theory_node_budget = match get(fields, "theory_node_budget") {
        None => None,
        Some(value) => Some(usize_from(value, "theory_node_budget")? as u64),
    };
    Ok(JobRequest {
        name,
        topology,
        queue_size,
        protocol,
        directory,
        message_class_vcs,
        capacities,
        spec,
        invariants,
        timeout_ms,
        max_refinements,
        theory_node_budget,
    })
}

fn topology_from_value(value: &Json) -> Result<TopologySpec, JsonError> {
    let Json::Object(fields) = value else {
        return Err(JsonError::semantic("`topology` must be an object"));
    };
    let kind = match get(fields, "kind") {
        Some(Json::String(s)) => s.as_str(),
        _ => return Err(JsonError::semantic("`topology.kind` must be a string")),
    };
    let dim = |key: &str| -> Result<u32, JsonError> {
        match get(fields, key) {
            Some(value) => Ok(usize_from(value, key)? as u32),
            None => Err(JsonError::semantic(format!(
                "topology kind `{kind}` requires `{key}`"
            ))),
        }
    };
    match kind {
        "mesh" => Ok(TopologySpec::Mesh {
            width: dim("width")?,
            height: dim("height")?,
        }),
        "torus" => Ok(TopologySpec::Torus {
            width: dim("width")?,
            height: dim("height")?,
        }),
        "ring" => Ok(TopologySpec::Ring {
            nodes: dim("nodes")?,
        }),
        "fat-tree" => Ok(TopologySpec::FatTree {
            arity: dim("arity")?,
            levels: dim("levels")?,
        }),
        other => Err(JsonError::semantic(format!(
            "unknown topology kind `{other}` (expected mesh, torus, ring or fat-tree)"
        ))),
    }
}

fn get<'a>(fields: &'a [(String, Json)], key: &str) -> Option<&'a Json> {
    fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

fn usize_from(value: &Json, field: &str) -> Result<usize, JsonError> {
    match value {
        Json::Number(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
            Ok(*n as usize)
        }
        _ => Err(JsonError::semantic(format!(
            "`{field}` must be a non-negative integer"
        ))),
    }
}

// ---------------------------------------------------------------------------
// The parser: minimal recursive-descent JSON.
// ---------------------------------------------------------------------------

enum Json {
    Null,
    Bool(bool),
    Number(f64),
    String(String),
    Array(Vec<Json>),
    Object(Vec<(String, Json)>),
}

/// Maximum nesting depth of arrays/objects: far above any legitimate job
/// request, far below anything that could exhaust the stack.
const MAX_DEPTH: usize = 64;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

fn parse(text: &str) -> Result<Json, JsonError> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
        depth: 0,
    };
    let value = parser.value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(parser.error("trailing characters after the JSON value"));
    }
    Ok(value)
}

impl<'a> Parser<'a> {
    fn error(&self, message: impl Into<String>) -> JsonError {
        JsonError {
            message: message.into(),
            offset: self.pos,
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonError> {
        if self.bytes.get(self.pos) == Some(&byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(format!("expected `{}`", byte as char)))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        self.skip_ws();
        match self.bytes.get(self.pos) {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::String(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.error("expected a JSON value")),
        }
    }

    fn literal(&mut self, text: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.error(format!("expected `{text}`")))
        }
    }

    /// Consumes a run of ASCII digits, returning how many there were.
    fn digits(&mut self) -> usize {
        let start = self.pos;
        while matches!(self.bytes.get(self.pos), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        self.pos - start
    }

    /// Strict JSON number grammar: `-?(0|[1-9][0-9]*)(\.[0-9]+)?`
    /// `([eE][+-]?[0-9]+)?`.  The permissive scan this replaces accepted
    /// `+1`, `01`, `1.` and `.5`, none of which are JSON — a front-end
    /// must refuse them with a position, not guess.
    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        match self.bytes.get(self.pos) {
            Some(b'0') => {
                self.pos += 1;
                if matches!(self.bytes.get(self.pos), Some(b'0'..=b'9')) {
                    return Err(self.error("numbers may not have leading zeros"));
                }
            }
            Some(b'1'..=b'9') => {
                self.digits();
            }
            _ => return Err(self.error("malformed number: expected a digit")),
        }
        if self.bytes.get(self.pos) == Some(&b'.') {
            self.pos += 1;
            if self.digits() == 0 {
                return Err(self.error("malformed number: expected digits after `.`"));
            }
        }
        if matches!(self.bytes.get(self.pos), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.bytes.get(self.pos), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if self.digits() == 0 {
                return Err(self.error("malformed number: expected exponent digits"));
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("numeric bytes are ASCII");
        text.parse::<f64>()
            .map(Json::Number)
            .map_err(|_| self.error(format!("malformed number `{text}`")))
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => out.push(self.unicode_escape()?),
                        _ => return Err(self.error("unknown escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (multi-byte sequences are
                    // copied verbatim; the input is a &str, so they are valid).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.error("invalid UTF-8 inside string"))?;
                    let c = rest.chars().next().expect("non-empty remainder");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    /// Reads exactly four hex digits starting at `at` (no sign, no
    /// shortfall — `u32::from_str_radix` alone would accept `+1ab`).
    fn hex4_at(&self, at: usize) -> Result<u32, JsonError> {
        self.bytes
            .get(at..at + 4)
            .filter(|h| h.iter().all(u8::is_ascii_hexdigit))
            .and_then(|h| std::str::from_utf8(h).ok())
            .and_then(|h| u32::from_str_radix(h, 16).ok())
            .ok_or_else(|| self.error("malformed \\u escape: expected 4 hex digits"))
    }

    /// Decodes one `\u` escape with `self.pos` on the `u`, handling UTF-16
    /// surrogate pairs (`𝄞` → 𝄞) and refusing unpaired
    /// surrogates — both previously slipped through as errors without a
    /// cause or, worse, as garbage characters.  Leaves `self.pos` on the
    /// escape's final consumed byte (the caller advances past it).
    fn unicode_escape(&mut self) -> Result<char, JsonError> {
        let first = self.hex4_at(self.pos + 1)?;
        match first {
            0xD800..=0xDBFF => {
                // High surrogate: a low surrogate escape must follow.
                if self.bytes.get(self.pos + 5) != Some(&b'\\')
                    || self.bytes.get(self.pos + 6) != Some(&b'u')
                {
                    return Err(self.error("unpaired high surrogate in \\u escape"));
                }
                let second = self.hex4_at(self.pos + 7)?;
                if !(0xDC00..=0xDFFF).contains(&second) {
                    return Err(self.error("high surrogate not followed by a low surrogate"));
                }
                self.pos += 10;
                let scalar = 0x10000 + ((first - 0xD800) << 10) + (second - 0xDC00);
                char::from_u32(scalar).ok_or_else(|| self.error("\\u escape is not a scalar"))
            }
            0xDC00..=0xDFFF => Err(self.error("unpaired low surrogate in \\u escape")),
            _ => {
                self.pos += 4;
                char::from_u32(first).ok_or_else(|| self.error("\\u escape is not a scalar"))
            }
        }
    }

    /// Bounds recursion: arbitrarily deep input must fail with a parse
    /// error at a position, not blow the stack.
    fn enter(&mut self) -> Result<(), JsonError> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(self.error("value nesting exceeds the depth limit"));
        }
        Ok(())
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.enter()?;
        let result = self.array_body();
        self.depth -= 1;
        result
    }

    fn array_body(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(self.error("expected `,` or `]` in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.enter()?;
        let result = self.object_body();
        self.depth -= 1;
        result
    }

    fn object_body(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b'}') {
            self.pos += 1;
            return Ok(Json::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(fields));
                }
                _ => return Err(self.error("expected `,` or `}` in object")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a_full_request_round_trips() {
        let text = r#"{
            "name": "torus sweep",
            "topology": {"kind": "torus", "width": 3, "height": 2},
            "queue_size": 2,
            "protocol": "mesi",
            "directory": 4,
            "capacities": [1, 3],
            "target": "stuck-packet",
            "invariants": false,
            "timeout_ms": 5000
        }"#;
        let requests = requests_from_json(text).unwrap();
        assert_eq!(requests.len(), 1);
        let request = &requests[0];
        assert_eq!(
            request.topology,
            TopologySpec::Torus {
                width: 3,
                height: 2
            }
        );
        assert_eq!(request.capacities, 1..=3);
        assert!(!request.invariants);
        let reparsed = requests_from_json(&request.to_json()).unwrap();
        assert_eq!(&reparsed[0], request);
        assert_eq!(request.to_jobs().unwrap().len(), 3);
    }

    #[test]
    fn arrays_of_requests_and_defaults_work() {
        let text = r#"[
            {"name": "a", "topology": {"kind": "mesh", "width": 2, "height": 2}},
            {"name": "b", "topology": {"kind": "ring", "nodes": 4}, "capacities": 3}
        ]"#;
        let requests = requests_from_json(text).unwrap();
        assert_eq!(requests.len(), 2);
        assert_eq!(requests[0].queue_size, 2);
        assert_eq!(requests[0].capacities, 2..=2);
        assert_eq!(requests[1].capacities, 3..=3);
    }

    /// A tiny deterministic xorshift64* generator — the build environment
    /// has no `rand`, and determinism makes a failing seed reproducible.
    struct XorShift(u64);

    impl XorShift {
        fn next(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.0 = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }

        fn below(&mut self, bound: u64) -> u64 {
            self.next() % bound.max(1)
        }

        fn chance(&mut self, percent: u64) -> bool {
            self.below(100) < percent
        }
    }

    fn random_request(rng: &mut XorShift, index: usize) -> JobRequest {
        let topology = match rng.below(4) {
            0 => TopologySpec::Mesh {
                width: 1 + rng.below(4) as u32,
                height: 1 + rng.below(4) as u32,
            },
            1 => TopologySpec::Torus {
                width: 2 + rng.below(3) as u32,
                height: 2 + rng.below(3) as u32,
            },
            2 => TopologySpec::Ring {
                nodes: 2 + rng.below(6) as u32,
            },
            _ => TopologySpec::FatTree {
                arity: 2 + rng.below(2) as u32,
                levels: 2 + rng.below(2) as u32,
            },
        };
        let mut request =
            JobRequest::new(format!("random {index} \"quoted\\\u{1}\u{7}名"), topology);
        request.queue_size = 1 + rng.below(4) as usize;
        request.protocol = match rng.below(3) {
            0 => ProtocolKind::AbstractMi,
            1 => ProtocolKind::FullMi,
            _ => ProtocolKind::Mesi,
        };
        if rng.chance(50) {
            request.directory = Some(rng.below(8) as usize);
        }
        request.message_class_vcs = rng.chance(30);
        let low = 1 + rng.below(3) as usize;
        request.capacities = low..=low + rng.below(3) as usize;
        request.spec = DeadlockSpec {
            stuck_packet: rng.chance(70),
            dead_automaton: rng.chance(70),
        };
        request.invariants = rng.chance(80);
        if rng.chance(40) {
            request.timeout_ms = Some(rng.below(100_000));
        }
        if rng.chance(30) {
            request.max_refinements = Some(1 + rng.below(1_000_000));
        }
        if rng.chance(30) {
            request.theory_node_budget = Some(1 + rng.below(10_000_000));
        }
        request
    }

    /// Property: any representable request survives
    /// `to_json → requests_from_json` unchanged, alone and in arrays —
    /// including names that need every escape class.
    #[test]
    fn random_requests_round_trip_through_the_wire_format() {
        let mut rng = XorShift(0x5EED_CAFE_F00D_0001);
        let mut batch = Vec::new();
        for index in 0..256 {
            let request = random_request(&mut rng, index);
            let json = request.to_json();
            validate_json(&json).expect("emitted request JSON is well-formed");
            let reparsed = requests_from_json(&json).expect("round trip parses");
            assert_eq!(reparsed.len(), 1, "{json}");
            assert_eq!(reparsed[0], request, "{json}");
            batch.push(request);
            if batch.len() == 16 {
                let array = format!(
                    "[{}]",
                    batch
                        .iter()
                        .map(JobRequest::to_json)
                        .collect::<Vec<_>>()
                        .join(",")
                );
                assert_eq!(requests_from_json(&array).expect("array parses"), batch);
                batch.clear();
            }
        }
    }

    /// Property: mutated request text never panics the parser — it either
    /// parses (the mutation stayed inside the grammar) or errors with a
    /// position inside the input.
    #[test]
    fn mutated_request_text_never_panics() {
        let mut rng = XorShift(0xBAD5_EED5_0000_0042);
        for index in 0..128 {
            let base = random_request(&mut rng, index).to_json();
            let bytes = base.as_bytes();
            for _ in 0..16 {
                let mutated = match rng.below(3) {
                    // Truncate anywhere (may split a UTF-8 sequence).
                    0 => String::from_utf8_lossy(&bytes[..rng.below(bytes.len() as u64) as usize])
                        .into_owned(),
                    // Flip one byte to a printable ASCII character.
                    1 => {
                        let mut copy = bytes.to_vec();
                        let at = rng.below(copy.len() as u64) as usize;
                        copy[at] = b' ' + (rng.below(94) as u8);
                        String::from_utf8_lossy(&copy).into_owned()
                    }
                    // Duplicate a random slice into the middle.
                    _ => {
                        let a = rng.below(bytes.len() as u64) as usize;
                        let b = a + rng.below((bytes.len() - a) as u64 + 1) as usize;
                        let mut copy = String::from_utf8_lossy(&bytes[..b]).into_owned();
                        copy.push_str(&String::from_utf8_lossy(&bytes[a..]));
                        copy
                    }
                };
                if let Err(error) = requests_from_json(&mutated) {
                    assert!(
                        error.offset <= mutated.len(),
                        "error position {} outside input of {} bytes",
                        error.offset,
                        mutated.len()
                    );
                }
            }
        }
    }

    /// The hardening cases the front-end depends on: trailing garbage,
    /// unterminated strings and bad `\u` escapes are refused with a
    /// position; strict numbers and the depth cap hold.
    #[test]
    fn malformed_syntax_is_refused_with_positions() {
        for (text, needle) in [
            (r#"{"name": "x"} trailing"#, "trailing characters"),
            (r#"{"name": "unterminated"#, "unterminated string"),
            (r#"{"name": "bad \uZZZZ escape"}"#, "4 hex digits"),
            (
                r#"{"name": "high alone \ud834"}"#,
                "unpaired high surrogate",
            ),
            (r#"{"name": "low alone \udd1e"}"#, "unpaired low surrogate"),
            (r#"{"name": "pairless \ud834A"}"#, "unpaired high surrogate"),
            (
                r#"{"name": "pair \ud834\u0041"}"#,
                "not followed by a low surrogate",
            ),
            (r#"{"queue_size": 01}"#, "leading zeros"),
            (r#"{"queue_size": +1}"#, "expected a JSON value"),
            (r#"{"queue_size": 1.}"#, "digits after `.`"),
            (r#"{"queue_size": 1e}"#, "exponent digits"),
            (r#"{"queue_size": -}"#, "expected a digit"),
        ] {
            let error = requests_from_json(text).unwrap_err();
            assert!(
                error.message.contains(needle),
                "{text} → {error}, wanted `{needle}`"
            );
            assert!(error.offset > 0, "{text}: syntax errors carry a position");
        }
        // Surrogate pairs decode; the depth cap trips at 64 nested arrays.
        let paired =
            requests_from_json(r#"{"name": "clef 𝄞", "topology": {"kind": "ring", "nodes": 3}}"#)
                .expect("surrogate pair decodes");
        assert!(paired[0].name.contains('\u{1D11E}'));
        let deep = format!("{}1{}", "[".repeat(80), "]".repeat(80));
        let error = validate_json(&deep).unwrap_err();
        assert!(error.message.contains("depth limit"));
        validate_json(&format!("{}1{}", "[".repeat(60), "]".repeat(60)))
            .expect("60 levels is under the cap");
    }

    #[test]
    fn malformed_requests_are_refused_with_a_reason() {
        for (text, needle) in [
            ("{", "expected"),
            (r#"{"name": 3}"#, "must be a string"),
            (
                r#"{"topology": {"kind": "ring", "nodes": 4}}"#,
                "missing `name`",
            ),
            (
                r#"{"name": "x", "topology": {"kind": "moebius"}}"#,
                "unknown topology kind",
            ),
            (
                r#"{"name": "x", "topology": {"kind": "ring", "nodes": 4}, "bogus": 1}"#,
                "unknown job field",
            ),
            (
                r#"{"name": "x", "topology": {"kind": "ring", "nodes": 4}, "capacities": [3, 1]}"#,
                "reversed",
            ),
        ] {
            let error = requests_from_json(text).unwrap_err();
            assert!(
                error.message.contains(needle),
                "{text} → {error}, wanted `{needle}`"
            );
        }
    }
}
