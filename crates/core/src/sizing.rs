//! Minimal-queue-size search (Figure 4 of the paper).
//!
//! The search itself is one generic bisection driver over a
//! [`QueryEngine`] ([`QueryEngine::minimal_capacity`]); the historical
//! mesh- and fabric-specific entry points survive as deprecated shims
//! that build an engine and delegate.

use std::ops::RangeInclusive;

use advocat_deadlock::{DeadlockSpec, DeadlockTarget, Query, Verdict};
use advocat_logic::CheckConfig;
use advocat_noc::{
    build_fabric_for_sweep, build_mesh_for_sweep, FabricConfig, FabricError, MeshConfig, MeshError,
};

use crate::query::QueryEngine;

/// Options for the queue-sizing search.
#[derive(Clone, Debug)]
pub struct SizingOptions {
    /// Smallest queue size to try (inclusive).
    pub min: usize,
    /// Largest queue size to try (inclusive).
    pub max: usize,
    /// Deadlock specification to verify against.
    pub spec: DeadlockSpec,
    /// SMT resource limits per verification.
    pub config: CheckConfig,
}

impl Default for SizingOptions {
    fn default() -> Self {
        SizingOptions {
            min: 1,
            max: 16,
            spec: DeadlockSpec::default(),
            config: CheckConfig::default(),
        }
    }
}

/// One probe of a queue-sizing search: which size was checked, against
/// which deadlock target, and what came back.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SizingProbe {
    /// The uniform queue capacity the probe pinned.
    pub queue_size: usize,
    /// The deadlock target the probe answered.
    pub target: DeadlockTarget,
    /// Whether the probe proved the system deadlock-free at this size.
    pub deadlock_free: bool,
}

/// The outcome of a queue-sizing search.
#[derive(Clone, Debug, Default)]
pub struct SizingResult {
    /// The smallest queue size proven deadlock-free, if any size in range
    /// was.
    pub minimal_queue_size: Option<usize>,
    /// Every `(queue size, deadlock-free?)` pair the binary search probed,
    /// in probe order.
    ///
    /// Since the search bisects the size range instead of scanning it, the
    /// probed sizes are not contiguous and not monotone: the first entry is
    /// the range's midpoint, and later entries narrow in on the boundary.
    /// Unprobed sizes carry no entry even though the search's verdict
    /// determines them (deadlock-freedom is monotone in the capacity).
    pub evaluations: Vec<(usize, bool)>,
    /// The probes again, each recording the deadlock target it answered —
    /// the attribution needed when sizing results from different spec
    /// ablations are compared.  Probes a trivial specification answered
    /// without the engine (a legacy spec with no condition enabled) do not
    /// appear here.
    pub probes: Vec<SizingProbe>,
}

impl SizingResult {
    /// Returns `true` when the given size was probed and found
    /// deadlock-free.
    pub fn is_free_at(&self, queue_size: usize) -> bool {
        self.evaluations
            .iter()
            .any(|(size, free)| *size == queue_size && *free)
    }
}

/// The generic sizing driver: bisects `range` calling `probe(size)` (which
/// reports `(deadlock_free, undecided)`), falling back to a linear scan of
/// the remaining candidates after the first undecided probe.
///
/// Because deadlock-freedom is monotone in the queue capacity — enlarging
/// queues only removes "queue full" blocking scenarios — bisection probes
/// `O(log(max − min))` sizes.  *Proven-free-within-budget* is **not**
/// monotone (an undecided midpoint says nothing about smaller sizes), so
/// the first undecided probe switches to a scan, exactly reproducing the
/// semantics of a per-size scan: the result is the smallest size *proven*
/// deadlock-free within the budget.
fn bisect_minimal(
    range: RangeInclusive<usize>,
    mut probe: impl FnMut(usize) -> (bool, bool),
) -> (Option<usize>, Vec<(usize, bool)>) {
    let (mut lo, mut hi) = (*range.start(), *range.end());
    let mut evaluations = Vec::new();
    let mut minimal = None;
    while lo <= hi {
        let mid = lo + (hi - lo) / 2;
        let (free, undecided) = probe(mid);
        evaluations.push((mid, free));
        if undecided {
            for size in lo..=hi {
                if size == mid {
                    continue;
                }
                let (free, _) = probe(size);
                evaluations.push((size, free));
                if free {
                    minimal = Some(size);
                    break;
                }
            }
            break;
        }
        if free {
            minimal = Some(mid);
            if mid == lo {
                break;
            }
            hi = mid - 1;
        } else {
            lo = mid + 1;
        }
    }
    (minimal, evaluations)
}

impl QueryEngine {
    /// Finds the smallest capacity in the engine's range for which the
    /// system is proven deadlock-free under `base`'s target and invariant
    /// dimensions — the computation behind Figure 4 of the paper, for any
    /// spec ablation.
    ///
    /// `base`'s capacity selection is ignored; the search pins each probe
    /// uniformly.  Every probe is one incremental query, so colors,
    /// invariants, the encoding and all learnt solver state are shared
    /// across probes — and with any *other* queries this engine answered
    /// before or answers after.
    ///
    /// # Examples
    ///
    /// ```
    /// use advocat::prelude::*;
    ///
    /// let config = MeshConfig::new(2, 2, 1).with_directory(1, 1);
    /// let system = build_mesh_for_sweep(&config, 4)?;
    /// let mut engine = QueryEngine::on(system, 2..=4);
    /// let result = engine.minimal_capacity(&Query::new());
    /// assert_eq!(result.minimal_queue_size, Some(3));
    /// // Probe order: the midpoint 3 first (free), then 2 (deadlocks).
    /// assert_eq!(result.evaluations, vec![(3, true), (2, false)]);
    /// assert!(result.probes.iter().all(|p| p.target == DeadlockTarget::Any));
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    pub fn minimal_capacity(&mut self, base: &Query) -> SizingResult {
        let target = base.deadlock_target();
        let mut probes = Vec::new();
        let (minimal, evaluations) = bisect_minimal(self.capacity_range(), |size| {
            let report = self.check(&base.capacity(size));
            let undecided = matches!(report.verdict(), Verdict::Unknown);
            let free = report.is_deadlock_free();
            probes.push(SizingProbe {
                queue_size: size,
                target,
                deadlock_free: free,
            });
            (free, undecided)
        });
        SizingResult {
            minimal_queue_size: minimal,
            evaluations,
            probes,
        }
    }
}

/// Runs the sizing search for a legacy two-flag spec on a freshly built
/// engine: a spec with no condition enabled answers every probe trivially
/// free without touching the engine, reproducing the historical trace.
fn sizing_for_spec(mut engine: QueryEngine, spec: &DeadlockSpec) -> SizingResult {
    match spec.as_target() {
        Some(target) => engine.minimal_capacity(&Query::new().target(target)),
        None => {
            let (minimal, evaluations) = bisect_minimal(engine.capacity_range(), |_| (true, false));
            SizingResult {
                minimal_queue_size: minimal,
                evaluations,
                probes: Vec::new(),
            }
        }
    }
}

/// Finds the smallest queue size in `[options.min, options.max]` for which
/// the mesh described by `config` (ignoring its own `queue_size`) is proven
/// deadlock-free.
///
/// The mesh is built **once** (at the largest size of the range) and every
/// probe is answered by one incremental [`QueryEngine`].  An empty range
/// (`min > max`) returns no evaluations and no minimal size.
///
/// # Migration
///
/// Build the sweep engine yourself and call
/// [`QueryEngine::minimal_capacity`]; `SizingOptions::spec` becomes the
/// base query's target:
///
/// ```
/// use advocat::prelude::*;
///
/// let config = MeshConfig::new(2, 2, 1).with_directory(1, 1);
/// // Before: minimal_queue_size(&config, &SizingOptions { min: 2, max: 4, ..Default::default() })
/// let result = QueryEngine::on(build_mesh_for_sweep(&config, 4)?, 2..=4)
///     .minimal_capacity(&Query::new());
/// assert_eq!(result.minimal_queue_size, Some(3));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
///
/// # Errors
///
/// Returns a [`MeshError`] when the mesh configuration is invalid.
#[deprecated(
    since = "0.3.0",
    note = "build a `QueryEngine` (`QueryEngine::on` / `for_fabric`) and call \
            `minimal_capacity` with a `Query`"
)]
pub fn minimal_queue_size(
    config: &MeshConfig,
    options: &SizingOptions,
) -> Result<SizingResult, MeshError> {
    if options.min > options.max {
        return Ok(SizingResult::default());
    }
    let system = build_mesh_for_sweep(config, options.max)?;
    let engine =
        QueryEngine::with_config(system, options.config.clone(), options.min..=options.max);
    Ok(sizing_for_spec(engine, &options.spec))
}

/// The topology-generic sibling of [`minimal_queue_size`]: finds the
/// smallest queue size for which the fabric described by `config`
/// (ignoring its own `queue_size`) is proven deadlock-free.
///
/// # Migration
///
/// [`QueryEngine::for_fabric`] builds the sweep engine directly from the
/// fabric configuration:
///
/// ```
/// use advocat::prelude::*;
///
/// let config = FabricConfig::new(Topology::ring(4)?, 1).with_directory(1);
/// // Before: minimal_queue_size_for_fabric(&config, &SizingOptions { min: 1, max: 3, ..Default::default() })
/// let result = QueryEngine::for_fabric(&config, 1..=3)?
///     .minimal_capacity(&Query::new());
/// assert_eq!(result.minimal_queue_size, Some(2));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
///
/// # Errors
///
/// Returns a [`FabricError`] when the fabric configuration is invalid or
/// its routing function fails the channel-dependency audit.
#[deprecated(
    since = "0.3.0",
    note = "build a `QueryEngine` with `QueryEngine::for_fabric` and call \
            `minimal_capacity` with a `Query`"
)]
pub fn minimal_queue_size_for_fabric(
    config: &FabricConfig,
    options: &SizingOptions,
) -> Result<SizingResult, FabricError> {
    if options.min > options.max {
        return Ok(SizingResult::default());
    }
    let system = build_fabric_for_sweep(config, options.max)?;
    let engine =
        QueryEngine::with_config(system, options.config.clone(), options.min..=options.max);
    Ok(sizing_for_spec(engine, &options.spec))
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;
    use advocat_noc::Topology;

    #[test]
    fn two_by_two_mesh_needs_queues_of_three() {
        let config = MeshConfig::new(2, 2, 1).with_directory(1, 1);
        let options = SizingOptions {
            min: 2,
            max: 5,
            ..SizingOptions::default()
        };
        let result = minimal_queue_size(&config, &options).unwrap();
        assert_eq!(result.minimal_queue_size, Some(3));
        // Probes in bisection order: 3 (free), then 2 (deadlocks).
        assert_eq!(result.evaluations, vec![(3, true), (2, false)]);
        assert!(result.is_free_at(3));
        assert!(!result.is_free_at(2));
        // Every probe answered the legacy spec's target.
        assert_eq!(result.probes.len(), result.evaluations.len());
        assert!(result
            .probes
            .iter()
            .all(|p| p.target == DeadlockTarget::Any));
    }

    #[test]
    fn probes_record_the_spec_target_each_answered() {
        let config = MeshConfig::new(2, 2, 1).with_directory(1, 1);
        let system = build_mesh_for_sweep(&config, 4).unwrap();
        let mut engine = QueryEngine::on(system, 2..=4);
        let stuck = engine.minimal_capacity(&Query::new().target(DeadlockTarget::StuckPacket));
        assert!(stuck
            .probes
            .iter()
            .all(|p| p.target == DeadlockTarget::StuckPacket));
        let dead = engine.minimal_capacity(&Query::new().target(DeadlockTarget::DeadAutomaton));
        assert!(dead
            .probes
            .iter()
            .all(|p| p.target == DeadlockTarget::DeadAutomaton));
        for result in [&stuck, &dead] {
            assert_eq!(result.probes.len(), result.evaluations.len());
            for (probe, (size, free)) in result.probes.iter().zip(&result.evaluations) {
                assert_eq!(probe.queue_size, *size);
                assert_eq!(probe.deadlock_free, *free);
            }
        }
        // One engine answered both ablations.
        assert_eq!(engine.stats().templates_built, 1);
    }

    #[test]
    fn search_reports_failure_when_the_range_is_too_small() {
        let config = MeshConfig::new(2, 2, 1).with_directory(1, 1);
        let options = SizingOptions {
            min: 1,
            max: 2,
            ..SizingOptions::default()
        };
        let result = minimal_queue_size(&config, &options).unwrap();
        assert_eq!(result.minimal_queue_size, None);
        assert_eq!(result.evaluations.len(), 2);
        assert!(result.evaluations.iter().all(|(_, free)| !free));
    }

    #[test]
    fn single_size_ranges_probe_exactly_once() {
        let config = MeshConfig::new(2, 2, 1).with_directory(1, 1);
        let options = SizingOptions {
            min: 3,
            max: 3,
            ..SizingOptions::default()
        };
        let result = minimal_queue_size(&config, &options).unwrap();
        assert_eq!(result.minimal_queue_size, Some(3));
        assert_eq!(result.evaluations, vec![(3, true)]);
    }

    #[test]
    fn invalid_mesh_configurations_error_out() {
        let config = MeshConfig::new(1, 1, 1);
        assert!(minimal_queue_size(&config, &SizingOptions::default()).is_err());
    }

    #[test]
    fn fabric_sizing_spans_topology_families() {
        let options = SizingOptions {
            min: 1,
            max: 4,
            ..SizingOptions::default()
        };
        let ring = FabricConfig::new(Topology::ring(4).unwrap(), 1).with_directory(1);
        let result = minimal_queue_size_for_fabric(&ring, &options).unwrap();
        assert_eq!(result.minimal_queue_size, Some(2));
        let tree = FabricConfig::new(Topology::fat_tree(2, 2).unwrap(), 1).with_directory(3);
        let result = minimal_queue_size_for_fabric(&tree, &options).unwrap();
        assert_eq!(result.minimal_queue_size, Some(2));
        // A cyclic routing configuration errors out before any probe.
        let undatelined = FabricConfig::new(Topology::ring(4).unwrap(), 1).with_routing(
            std::sync::Arc::new(advocat_noc::DimensionOrdered::without_dateline()),
        );
        assert!(matches!(
            minimal_queue_size_for_fabric(&undatelined, &options),
            Err(FabricError::CyclicChannelDependencies { .. })
        ));
    }

    #[test]
    fn inverted_ranges_yield_no_evaluations() {
        let config = MeshConfig::new(2, 2, 1).with_directory(1, 1);
        let options = SizingOptions {
            min: 5,
            max: 3,
            ..SizingOptions::default()
        };
        let result = minimal_queue_size(&config, &options).unwrap();
        assert_eq!(result.minimal_queue_size, None);
        assert!(result.evaluations.is_empty());
    }

    #[test]
    fn undecided_probes_fall_back_to_a_linear_scan() {
        // With no refinement budget every probe is Unknown; the search must
        // still visit every size (nothing is pruned on non-evidence) and
        // prove nothing.
        let config = MeshConfig::new(2, 2, 1).with_directory(1, 1);
        let options = SizingOptions {
            min: 2,
            max: 5,
            config: advocat_logic::CheckConfig {
                max_refinements: 0,
                ..advocat_logic::CheckConfig::default()
            },
            ..SizingOptions::default()
        };
        let result = minimal_queue_size(&config, &options).unwrap();
        assert_eq!(result.minimal_queue_size, None);
        let mut probed: Vec<usize> = result.evaluations.iter().map(|(s, _)| *s).collect();
        probed.sort_unstable();
        assert_eq!(probed, vec![2, 3, 4, 5]);
        assert!(result.evaluations.iter().all(|(_, free)| !free));
    }

    #[test]
    fn trivial_specs_reproduce_the_bisection_trace_without_probing() {
        let config = MeshConfig::new(2, 2, 1).with_directory(1, 1);
        let options = SizingOptions {
            min: 2,
            max: 5,
            spec: DeadlockSpec {
                stuck_packet: false,
                dead_automaton: false,
            },
            ..SizingOptions::default()
        };
        let result = minimal_queue_size(&config, &options).unwrap();
        assert_eq!(result.minimal_queue_size, Some(2));
        assert!(result.evaluations.iter().all(|(_, free)| *free));
        assert!(result.probes.is_empty());
    }
}
