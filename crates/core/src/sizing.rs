//! Minimal-queue-size search (Figure 4 of the paper).

use advocat_deadlock::DeadlockSpec;
use advocat_logic::CheckConfig;
use advocat_noc::{build_mesh, MeshConfig, MeshError};

use crate::verifier::Verifier;

/// Options for the queue-sizing search.
#[derive(Clone, Debug)]
pub struct SizingOptions {
    /// Smallest queue size to try (inclusive).
    pub min: usize,
    /// Largest queue size to try (inclusive).
    pub max: usize,
    /// Deadlock specification to verify against.
    pub spec: DeadlockSpec,
    /// SMT resource limits per verification.
    pub config: CheckConfig,
}

impl Default for SizingOptions {
    fn default() -> Self {
        SizingOptions {
            min: 1,
            max: 16,
            spec: DeadlockSpec::default(),
            config: CheckConfig::default(),
        }
    }
}

/// The outcome of a queue-sizing search.
#[derive(Clone, Debug)]
pub struct SizingResult {
    /// The smallest queue size proven deadlock-free, if any size in range
    /// was.
    pub minimal_queue_size: Option<usize>,
    /// Every `(queue size, deadlock-free?)` pair evaluated, in order.
    pub evaluations: Vec<(usize, bool)>,
}

impl SizingResult {
    /// Returns `true` when the given size was evaluated and found
    /// deadlock-free.
    pub fn is_free_at(&self, queue_size: usize) -> bool {
        self.evaluations
            .iter()
            .any(|(size, free)| *size == queue_size && *free)
    }
}

/// Finds the smallest queue size in `[options.min, options.max]` for which
/// the mesh described by `config` (ignoring its own `queue_size`) is proven
/// deadlock-free — the computation behind Figure 4 of the paper.
///
/// Sizes are scanned in increasing order; the scan stops at the first size
/// proven deadlock-free (verification time does not depend on whether even
/// larger sizes would also be free).
///
/// # Errors
///
/// Returns a [`MeshError`] when the mesh configuration is invalid.
///
/// # Examples
///
/// ```
/// use advocat::{minimal_queue_size, SizingOptions};
/// use advocat_noc::MeshConfig;
///
/// let config = MeshConfig::new(2, 2, 1).with_directory(1, 1);
/// let result = minimal_queue_size(&config, &SizingOptions { min: 2, max: 4, ..Default::default() })?;
/// assert_eq!(result.minimal_queue_size, Some(3));
/// # Ok::<(), advocat_noc::MeshError>(())
/// ```
pub fn minimal_queue_size(
    config: &MeshConfig,
    options: &SizingOptions,
) -> Result<SizingResult, MeshError> {
    let mut evaluations = Vec::new();
    let mut minimal = None;
    for queue_size in options.min..=options.max {
        let mesh = config.with_queue_size(queue_size);
        let system = build_mesh(&mesh)?;
        let report = Verifier::new()
            .with_spec(options.spec)
            .with_config(options.config)
            .analyze(&system);
        let free = report.is_deadlock_free();
        evaluations.push((queue_size, free));
        if free {
            minimal = Some(queue_size);
            break;
        }
    }
    Ok(SizingResult {
        minimal_queue_size: minimal,
        evaluations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_by_two_mesh_needs_queues_of_three() {
        let config = MeshConfig::new(2, 2, 1).with_directory(1, 1);
        let options = SizingOptions {
            min: 2,
            max: 5,
            ..SizingOptions::default()
        };
        let result = minimal_queue_size(&config, &options).unwrap();
        assert_eq!(result.minimal_queue_size, Some(3));
        assert_eq!(result.evaluations, vec![(2, false), (3, true)]);
        assert!(result.is_free_at(3));
        assert!(!result.is_free_at(2));
    }

    #[test]
    fn search_reports_failure_when_the_range_is_too_small() {
        let config = MeshConfig::new(2, 2, 1).with_directory(1, 1);
        let options = SizingOptions {
            min: 1,
            max: 2,
            ..SizingOptions::default()
        };
        let result = minimal_queue_size(&config, &options).unwrap();
        assert_eq!(result.minimal_queue_size, None);
        assert_eq!(result.evaluations.len(), 2);
    }

    #[test]
    fn invalid_mesh_configurations_error_out() {
        let config = MeshConfig::new(1, 1, 1);
        assert!(minimal_queue_size(&config, &SizingOptions::default()).is_err());
    }
}
