//! Minimal-queue-size search (Figure 4 of the paper).

use advocat_automata::System;
use advocat_deadlock::{DeadlockSpec, Verdict};
use advocat_logic::CheckConfig;
use advocat_noc::{
    build_fabric_for_sweep, build_mesh_for_sweep, FabricConfig, FabricError, MeshConfig, MeshError,
};

use crate::session::VerificationSession;

/// Options for the queue-sizing search.
#[derive(Clone, Debug)]
pub struct SizingOptions {
    /// Smallest queue size to try (inclusive).
    pub min: usize,
    /// Largest queue size to try (inclusive).
    pub max: usize,
    /// Deadlock specification to verify against.
    pub spec: DeadlockSpec,
    /// SMT resource limits per verification.
    pub config: CheckConfig,
}

impl Default for SizingOptions {
    fn default() -> Self {
        SizingOptions {
            min: 1,
            max: 16,
            spec: DeadlockSpec::default(),
            config: CheckConfig::default(),
        }
    }
}

/// The outcome of a queue-sizing search.
#[derive(Clone, Debug)]
pub struct SizingResult {
    /// The smallest queue size proven deadlock-free, if any size in range
    /// was.
    pub minimal_queue_size: Option<usize>,
    /// Every `(queue size, deadlock-free?)` pair the binary search probed,
    /// in probe order.
    ///
    /// Since the search bisects the size range instead of scanning it, the
    /// probed sizes are not contiguous and not monotone: the first entry is
    /// the range's midpoint, and later entries narrow in on the boundary.
    /// Unprobed sizes carry no entry even though the search's verdict
    /// determines them (deadlock-freedom is monotone in the capacity).
    pub evaluations: Vec<(usize, bool)>,
}

impl SizingResult {
    /// Returns `true` when the given size was probed and found
    /// deadlock-free.
    pub fn is_free_at(&self, queue_size: usize) -> bool {
        self.evaluations
            .iter()
            .any(|(size, free)| *size == queue_size && *free)
    }
}

/// Finds the smallest queue size in `[options.min, options.max]` for which
/// the mesh described by `config` (ignoring its own `queue_size`) is proven
/// deadlock-free — the computation behind Figure 4 of the paper.
///
/// The mesh is built **once** (at the largest size of the range) and every
/// probe is answered by one incremental [`VerificationSession`], so colors,
/// invariants, the deadlock encoding and all learnt solver state are shared
/// across probes.  Because deadlock-freedom is monotone in the queue
/// capacity — enlarging queues only removes "queue full" blocking
/// scenarios — the search bisects the range instead of scanning it: it
/// probes `O(log(max − min))` sizes.
///
/// Resource-limited probes: *proven-free-within-budget* is **not** monotone
/// (an undecided midpoint says nothing about smaller sizes), so the first
/// `Unknown` verdict makes the search fall back to a linear scan of the
/// remaining candidate range, exactly reproducing the semantics of a
/// per-size scan: the result is the smallest size *proven* deadlock-free
/// within the budget.  An empty range (`min > max`) returns no evaluations
/// and no minimal size.
///
/// # Errors
///
/// Returns a [`MeshError`] when the mesh configuration is invalid.
///
/// # Examples
///
/// ```
/// use advocat::{minimal_queue_size, SizingOptions};
/// use advocat_noc::MeshConfig;
///
/// let config = MeshConfig::new(2, 2, 1).with_directory(1, 1);
/// let result = minimal_queue_size(&config, &SizingOptions { min: 2, max: 4, ..Default::default() })?;
/// assert_eq!(result.minimal_queue_size, Some(3));
/// // Probe order: the midpoint 3 first (free), then 2 (deadlocks).
/// assert_eq!(result.evaluations, vec![(3, true), (2, false)]);
/// # Ok::<(), advocat_noc::MeshError>(())
/// ```
pub fn minimal_queue_size(
    config: &MeshConfig,
    options: &SizingOptions,
) -> Result<SizingResult, MeshError> {
    if options.min > options.max {
        return Ok(SizingResult {
            minimal_queue_size: None,
            evaluations: Vec::new(),
        });
    }
    let system = build_mesh_for_sweep(config, options.max)?;
    Ok(search(system, options))
}

/// The topology-generic sibling of [`minimal_queue_size`]: finds the
/// smallest queue size for which the fabric described by `config`
/// (ignoring its own `queue_size`) is proven deadlock-free.  The fabric —
/// mesh, torus, ring, fat tree or irregular — is built once at the
/// largest size and every probe is answered by one incremental
/// [`VerificationSession`].
///
/// # Errors
///
/// Returns a [`FabricError`] when the fabric configuration is invalid or
/// its routing function fails the channel-dependency audit.
///
/// # Examples
///
/// ```
/// use advocat::{minimal_queue_size_for_fabric, SizingOptions};
/// use advocat_noc::{FabricConfig, Topology};
///
/// let config = FabricConfig::new(Topology::ring(4)?, 1).with_directory(1);
/// let options = SizingOptions { min: 1, max: 4, ..Default::default() };
/// let result = minimal_queue_size_for_fabric(&config, &options)?;
/// assert_eq!(result.minimal_queue_size, Some(2));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn minimal_queue_size_for_fabric(
    config: &FabricConfig,
    options: &SizingOptions,
) -> Result<SizingResult, FabricError> {
    if options.min > options.max {
        return Ok(SizingResult {
            minimal_queue_size: None,
            evaluations: Vec::new(),
        });
    }
    let system = build_fabric_for_sweep(config, options.max)?;
    Ok(search(system, options))
}

/// The session-backed binary search shared by both entry points.
fn search(system: System, options: &SizingOptions) -> SizingResult {
    let mut session = VerificationSession::with_config(
        system,
        options.spec,
        options.config,
        options.min..=options.max,
    );
    let mut evaluations = Vec::new();
    let mut minimal = None;
    let (mut lo, mut hi) = (options.min, options.max);
    while lo <= hi {
        let mid = lo + (hi - lo) / 2;
        let report = session.check_capacity(mid);
        let undecided = matches!(report.verdict(), Verdict::Unknown);
        let free = report.is_deadlock_free();
        evaluations.push((mid, free));
        if undecided {
            // Proven-free-within-budget is not monotone: this midpoint says
            // nothing about smaller sizes, so bisection would prune sizes
            // it never probed.  Scan the remaining candidates instead.
            for size in lo..=hi {
                if size == mid {
                    continue;
                }
                let free = session.check_capacity(size).is_deadlock_free();
                evaluations.push((size, free));
                if free {
                    minimal = Some(size);
                    break;
                }
            }
            break;
        }
        if free {
            minimal = Some(mid);
            if mid == lo {
                break;
            }
            hi = mid - 1;
        } else {
            lo = mid + 1;
        }
    }
    SizingResult {
        minimal_queue_size: minimal,
        evaluations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_by_two_mesh_needs_queues_of_three() {
        let config = MeshConfig::new(2, 2, 1).with_directory(1, 1);
        let options = SizingOptions {
            min: 2,
            max: 5,
            ..SizingOptions::default()
        };
        let result = minimal_queue_size(&config, &options).unwrap();
        assert_eq!(result.minimal_queue_size, Some(3));
        // Probes in bisection order: 3 (free), then 2 (deadlocks).
        assert_eq!(result.evaluations, vec![(3, true), (2, false)]);
        assert!(result.is_free_at(3));
        assert!(!result.is_free_at(2));
    }

    #[test]
    fn search_reports_failure_when_the_range_is_too_small() {
        let config = MeshConfig::new(2, 2, 1).with_directory(1, 1);
        let options = SizingOptions {
            min: 1,
            max: 2,
            ..SizingOptions::default()
        };
        let result = minimal_queue_size(&config, &options).unwrap();
        assert_eq!(result.minimal_queue_size, None);
        assert_eq!(result.evaluations.len(), 2);
        assert!(result.evaluations.iter().all(|(_, free)| !free));
    }

    #[test]
    fn single_size_ranges_probe_exactly_once() {
        let config = MeshConfig::new(2, 2, 1).with_directory(1, 1);
        let options = SizingOptions {
            min: 3,
            max: 3,
            ..SizingOptions::default()
        };
        let result = minimal_queue_size(&config, &options).unwrap();
        assert_eq!(result.minimal_queue_size, Some(3));
        assert_eq!(result.evaluations, vec![(3, true)]);
    }

    #[test]
    fn invalid_mesh_configurations_error_out() {
        let config = MeshConfig::new(1, 1, 1);
        assert!(minimal_queue_size(&config, &SizingOptions::default()).is_err());
    }

    #[test]
    fn fabric_sizing_spans_topology_families() {
        use advocat_noc::Topology;
        let options = SizingOptions {
            min: 1,
            max: 4,
            ..SizingOptions::default()
        };
        let ring = FabricConfig::new(Topology::ring(4).unwrap(), 1).with_directory(1);
        let result = minimal_queue_size_for_fabric(&ring, &options).unwrap();
        assert_eq!(result.minimal_queue_size, Some(2));
        let tree = FabricConfig::new(Topology::fat_tree(2, 2).unwrap(), 1).with_directory(3);
        let result = minimal_queue_size_for_fabric(&tree, &options).unwrap();
        assert_eq!(result.minimal_queue_size, Some(2));
        // A cyclic routing configuration errors out before any probe.
        let undatelined = FabricConfig::new(Topology::ring(4).unwrap(), 1).with_routing(
            std::sync::Arc::new(advocat_noc::DimensionOrdered::without_dateline()),
        );
        assert!(matches!(
            minimal_queue_size_for_fabric(&undatelined, &options),
            Err(FabricError::CyclicChannelDependencies { .. })
        ));
    }

    #[test]
    fn inverted_ranges_yield_no_evaluations() {
        let config = MeshConfig::new(2, 2, 1).with_directory(1, 1);
        let options = SizingOptions {
            min: 5,
            max: 3,
            ..SizingOptions::default()
        };
        let result = minimal_queue_size(&config, &options).unwrap();
        assert_eq!(result.minimal_queue_size, None);
        assert!(result.evaluations.is_empty());
    }

    #[test]
    fn undecided_probes_fall_back_to_a_linear_scan() {
        // With no refinement budget every probe is Unknown; the search must
        // still visit every size (nothing is pruned on non-evidence) and
        // prove nothing.
        let config = MeshConfig::new(2, 2, 1).with_directory(1, 1);
        let options = SizingOptions {
            min: 2,
            max: 5,
            config: advocat_logic::CheckConfig {
                max_refinements: 0,
                ..advocat_logic::CheckConfig::default()
            },
            ..SizingOptions::default()
        };
        let result = minimal_queue_size(&config, &options).unwrap();
        assert_eq!(result.minimal_queue_size, None);
        let mut probed: Vec<usize> = result.evaluations.iter().map(|(s, _)| *s).collect();
        probed.sort_unstable();
        assert_eq!(probed, vec![2, 3, 4, 5]);
        assert!(result.evaluations.iter().all(|(_, free)| !free));
    }
}
