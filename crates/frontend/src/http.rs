//! A minimal HTTP/1.1 wire layer: exactly what the front-end's routes
//! need, hand-rolled in the house dependency-free style.
//!
//! Supported: request line + headers (16 KiB cap), `Content-Length`
//! bodies (4 MiB cap), keep-alive, fixed-length responses and chunked
//! transfer encoding (for the trace stream).  Not supported, by design:
//! pipelining beyond one in-flight request, trailers, compression,
//! HTTP/2 — callers are scripts, the CLI and CI harnesses.

use std::collections::HashMap;
use std::fmt;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;

/// Hard cap on the request line plus all headers.
pub(crate) const MAX_HEAD: usize = 16 * 1024;
/// Hard cap on a request body.
pub(crate) const MAX_BODY: usize = 4 * 1024 * 1024;

/// A wire-layer failure while reading a request or response.
#[derive(Debug)]
pub enum HttpError {
    /// The underlying socket failed (includes read/write deadline hits).
    Io(std::io::Error),
    /// The peer sent bytes that are not the HTTP we speak; the string
    /// names the violation.
    Malformed(String),
    /// The head or body exceeded its cap.
    TooLarge(&'static str),
}

impl fmt::Display for HttpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HttpError::Io(error) => write!(f, "socket error: {error}"),
            HttpError::Malformed(what) => write!(f, "malformed HTTP: {what}"),
            HttpError::TooLarge(what) => write!(f, "{what} exceeds the front-end's limit"),
        }
    }
}

impl std::error::Error for HttpError {}

impl From<std::io::Error> for HttpError {
    fn from(error: std::io::Error) -> Self {
        HttpError::Io(error)
    }
}

/// One parsed request: method, split path/query, lowercased headers and
/// the raw body.
#[derive(Debug)]
pub struct Request {
    /// The HTTP method, uppercased as received (`GET`, `POST`, …).
    pub method: String,
    /// The path component, percent-decoding deliberately not applied
    /// (route segments here are numeric ids).
    pub path: String,
    /// The query string after `?`, empty when absent.
    pub query: String,
    /// Header map with lowercased names; duplicate headers keep the last
    /// value (none of the headers this server reads repeat legally).
    pub headers: HashMap<String, String>,
    /// The request body (empty unless `Content-Length` said otherwise).
    pub body: Vec<u8>,
}

impl Request {
    /// The body as UTF-8, or `None` when it is not valid UTF-8.
    pub fn body_utf8(&self) -> Option<&str> {
        std::str::from_utf8(&self.body).ok()
    }

    /// Whether the client asked to close the connection after this
    /// exchange (HTTP/1.1 defaults to keep-alive).
    pub fn wants_close(&self) -> bool {
        self.headers
            .get("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }

    /// Looks up a `key=value` pair in the query string.
    pub fn query_param(&self, key: &str) -> Option<&str> {
        self.query.split('&').find_map(|pair| {
            let (k, v) = pair.split_once('=')?;
            (k == key).then_some(v)
        })
    }
}

/// Reads one request off `reader`.  Returns `Ok(None)` on a clean EOF
/// before any byte (the peer closed a keep-alive connection).
pub(crate) fn read_request(
    reader: &mut BufReader<TcpStream>,
) -> Result<Option<Request>, HttpError> {
    let Some(line) = read_head_line(reader, &mut 0)? else {
        return Ok(None);
    };
    let mut parts = line.split(' ');
    let (Some(method), Some(target), Some(version)) = (parts.next(), parts.next(), parts.next())
    else {
        return Err(HttpError::Malformed(format!("bad request line `{line}`")));
    };
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::Malformed(format!("unsupported {version}")));
    }
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_owned(), q.to_owned()),
        None => (target.to_owned(), String::new()),
    };

    let mut consumed = line.len();
    let mut headers = HashMap::new();
    loop {
        let Some(line) = read_head_line(reader, &mut consumed)? else {
            return Err(HttpError::Malformed("EOF inside headers".into()));
        };
        if line.is_empty() {
            break;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(HttpError::Malformed(format!("bad header `{line}`")));
        };
        headers.insert(name.trim().to_ascii_lowercase(), value.trim().to_owned());
    }

    let body = match headers.get("content-length") {
        None => Vec::new(),
        Some(text) => {
            let length: usize = text
                .parse()
                .map_err(|_| HttpError::Malformed(format!("bad Content-Length `{text}`")))?;
            if length > MAX_BODY {
                return Err(HttpError::TooLarge("request body"));
            }
            let mut body = vec![0u8; length];
            reader.read_exact(&mut body)?;
            body
        }
    };

    Ok(Some(Request {
        method: method.to_owned(),
        path,
        query,
        headers,
        body,
    }))
}

/// Reads one CRLF-terminated head line, charging its length against the
/// running head budget.  `Ok(None)` means EOF before any byte.
fn read_head_line(
    reader: &mut BufReader<TcpStream>,
    consumed: &mut usize,
) -> Result<Option<String>, HttpError> {
    let mut line = String::new();
    let read = reader.read_line(&mut line)?;
    if read == 0 {
        return Ok(None);
    }
    *consumed += read;
    if *consumed > MAX_HEAD {
        return Err(HttpError::TooLarge("request head"));
    }
    while line.ends_with('\n') || line.ends_with('\r') {
        line.pop();
    }
    Ok(Some(line))
}

/// A status code plus its reason phrase.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StatusLine(pub u16);

impl StatusLine {
    /// The standard reason phrase for the codes this server emits.
    pub fn reason(self) -> &'static str {
        match self.0 {
            200 => "OK",
            202 => "Accepted",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            410 => "Gone",
            429 => "Too Many Requests",
            500 => "Internal Server Error",
            503 => "Service Unavailable",
            504 => "Gateway Timeout",
            _ => "Response",
        }
    }
}

/// A response under construction: status, extra headers, body.
#[derive(Debug)]
pub struct Response {
    status: StatusLine,
    headers: Vec<(String, String)>,
    body: Vec<u8>,
}

impl Response {
    /// An empty response with `status`.
    pub fn new(status: u16) -> Response {
        Response {
            status: StatusLine(status),
            headers: Vec::new(),
            body: Vec::new(),
        }
    }

    /// A JSON response (sets `Content-Type: application/json`).
    pub fn json(status: u16, body: impl Into<String>) -> Response {
        Response::new(status)
            .header("Content-Type", "application/json")
            .body(body.into().into_bytes())
    }

    /// A plain-text response.
    pub fn text(status: u16, body: impl Into<String>) -> Response {
        Response::new(status)
            .header("Content-Type", "text/plain; version=0.0.4")
            .body(body.into().into_bytes())
    }

    /// Adds a header.
    pub fn header(mut self, name: &str, value: impl Into<String>) -> Response {
        self.headers.push((name.to_owned(), value.into()));
        self
    }

    /// Sets the body (sent with `Content-Length`).
    pub fn body(mut self, body: Vec<u8>) -> Response {
        self.body = body;
        self
    }

    /// The status code.
    pub fn status(&self) -> u16 {
        self.status.0
    }

    /// Writes the complete response.
    pub(crate) fn write_to(&self, stream: &mut TcpStream) -> std::io::Result<()> {
        let mut head = format!("HTTP/1.1 {} {}\r\n", self.status.0, self.status.reason());
        for (name, value) in &self.headers {
            head.push_str(&format!("{name}: {value}\r\n"));
        }
        head.push_str(&format!("Content-Length: {}\r\n\r\n", self.body.len()));
        stream.write_all(head.as_bytes())?;
        stream.write_all(&self.body)?;
        stream.flush()
    }
}

/// Writer half of a chunked response: head first, then any number of
/// chunks, then [`ChunkedWriter::finish`].
pub(crate) struct ChunkedWriter<'a> {
    stream: &'a mut TcpStream,
}

impl<'a> ChunkedWriter<'a> {
    /// Sends the response head announcing chunked transfer encoding.
    pub(crate) fn begin(
        stream: &'a mut TcpStream,
        status: u16,
        content_type: &str,
        extra: &[(&str, &str)],
    ) -> std::io::Result<ChunkedWriter<'a>> {
        let line = StatusLine(status);
        let mut head = format!("HTTP/1.1 {} {}\r\n", status, line.reason());
        head.push_str(&format!("Content-Type: {content_type}\r\n"));
        for (name, value) in extra {
            head.push_str(&format!("{name}: {value}\r\n"));
        }
        head.push_str("Transfer-Encoding: chunked\r\n\r\n");
        stream.write_all(head.as_bytes())?;
        Ok(ChunkedWriter { stream })
    }

    /// Sends one non-empty chunk (empty input is skipped — an empty
    /// chunk would terminate the stream).
    pub(crate) fn chunk(&mut self, data: &[u8]) -> std::io::Result<()> {
        if data.is_empty() {
            return Ok(());
        }
        write!(self.stream, "{:x}\r\n", data.len())?;
        self.stream.write_all(data)?;
        self.stream.write_all(b"\r\n")?;
        self.stream.flush()
    }

    /// Sends the terminating zero-length chunk.
    pub(crate) fn finish(self) -> std::io::Result<()> {
        self.stream.write_all(b"0\r\n\r\n")?;
        self.stream.flush()
    }
}
