//! The `advocat` command-line client.
//!
//! ```text
//! advocat submit [FILE]            submit a job request (file or stdin), print ids
//! advocat wait ID [--wait-ms N]    poll/block for one outcome, print it
//! advocat batch [FILE] [--wait-ms N]  submit and wait for a whole batch
//! advocat metrics                  print the Prometheus exposition
//! advocat trace [--wait-ms N]      stream the trace ring for a window
//! advocat health                   print the service stats snapshot
//! advocat shutdown                 ask the daemon to drain
//! ```
//!
//! Every subcommand takes `--server HOST:PORT` (default
//! `127.0.0.1:7177`, overridable via `ADVOCAT_SERVER`).  The exit code
//! is `0` for a 2xx response, `2` for usage errors, `3` when the
//! server refused (4xx/5xx), and `1` for transport failures.

use std::io::Read;

use crate::client::{Client, ClientConfig, Exchange};

/// The port `advocatd` binds when none is given.
pub const DEFAULT_PORT: u16 = 7177;

/// Parsed common flags plus the positional remainder.
struct Args {
    server: String,
    wait_ms: Option<u64>,
    positional: Vec<String>,
}

/// Runs one `advocat` invocation (`args` excludes the program name).
/// Returns the process exit code; output goes to stdout/stderr.
pub fn run(args: &[String]) -> i32 {
    let Some((command, rest)) = args.split_first() else {
        eprintln!("{USAGE}");
        return 2;
    };
    let parsed = match parse_args(rest) {
        Ok(parsed) => parsed,
        Err(message) => {
            eprintln!("advocat: {message}\n{USAGE}");
            return 2;
        }
    };

    let mut client = match Client::connect(parsed.server.clone(), ClientConfig::default()) {
        Ok(client) => client,
        Err(error) => {
            eprintln!("advocat: {error}");
            return 1;
        }
    };

    let exchange = match command.as_str() {
        "submit" => match read_payload(&parsed) {
            Ok(payload) => client.submit(&payload).map(|result| match result {
                Ok(ids) => Exchange {
                    status: 200,
                    headers: Vec::new(),
                    body: format!(
                        "{{\"ids\":[{}]}}",
                        ids.iter().map(u64::to_string).collect::<Vec<_>>().join(",")
                    ),
                },
                Err(exchange) => exchange,
            }),
            Err(message) => {
                eprintln!("advocat: {message}");
                return 2;
            }
        },
        "wait" => {
            let Some(id) = parsed.positional.first().and_then(|s| s.parse().ok()) else {
                eprintln!("advocat: wait needs a numeric job id\n{USAGE}");
                return 2;
            };
            client.wait(id, parsed.wait_ms.unwrap_or(60_000))
        }
        "batch" => match read_payload(&parsed) {
            Ok(payload) => client.batch(&payload, parsed.wait_ms.unwrap_or(300_000)),
            Err(message) => {
                eprintln!("advocat: {message}");
                return 2;
            }
        },
        "metrics" => client.metrics(),
        "trace" => client.trace(parsed.wait_ms.unwrap_or(1_000)),
        "health" => client.health(),
        "shutdown" => client.shutdown(),
        other => {
            eprintln!("advocat: unknown command `{other}`\n{USAGE}");
            return 2;
        }
    };

    match exchange {
        Ok(exchange) => {
            println!("{}", exchange.body.trim_end());
            if (200..300).contains(&exchange.status) {
                0
            } else {
                eprintln!("advocat: server answered {}", exchange.status);
                3
            }
        }
        Err(error) => {
            eprintln!("advocat: {error}");
            1
        }
    }
}

const USAGE: &str = "usage: advocat <submit [FILE] | wait ID | batch [FILE] | metrics | trace | health | shutdown> [--server HOST:PORT] [--wait-ms N]";

fn parse_args(args: &[String]) -> Result<Args, String> {
    let mut parsed = Args {
        server: std::env::var("ADVOCAT_SERVER")
            .unwrap_or_else(|_| format!("127.0.0.1:{DEFAULT_PORT}")),
        wait_ms: None,
        positional: Vec::new(),
    };
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--server" => {
                parsed.server = iter
                    .next()
                    .ok_or("--server needs a HOST:PORT argument")?
                    .clone();
            }
            "--wait-ms" => {
                parsed.wait_ms = Some(
                    iter.next()
                        .ok_or("--wait-ms needs a number")?
                        .parse()
                        .map_err(|_| "--wait-ms needs a number".to_owned())?,
                );
            }
            flag if flag.starts_with("--") => {
                return Err(format!("unknown flag `{flag}`"));
            }
            positional => parsed.positional.push(positional.to_owned()),
        }
    }
    Ok(parsed)
}

/// The JSON payload for submit/batch: the positional FILE, or stdin
/// when none (or `-`) was given.
fn read_payload(args: &Args) -> Result<String, String> {
    match args.positional.first().map(String::as_str) {
        Some("-") | None => {
            let mut payload = String::new();
            std::io::stdin()
                .read_to_string(&mut payload)
                .map_err(|e| format!("reading stdin: {e}"))?;
            Ok(payload)
        }
        Some(path) => std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}")),
    }
}
