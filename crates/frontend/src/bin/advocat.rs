//! The `advocat` CLI: a thin shell over [`advocat_frontend::cli`].

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    std::process::exit(advocat_frontend::cli::run(&args));
}
