//! The ADVOCAT verification daemon: one [`Service`] behind the HTTP
//! front-end, draining gracefully on SIGTERM.
//!
//! ```text
//! advocatd [--addr HOST:PORT] [--workers N] [--queue N] [--max-engines N]
//!          [--ring N] [--port-file PATH]
//! ```
//!
//! `--ring 0` disables telemetry entirely (`/metrics` and `/v1/trace`
//! then answer 404).  `--port-file` writes the resolved `HOST:PORT` —
//! the handshake CI uses with an ephemeral `--addr 127.0.0.1:0`.

use std::sync::Arc;
use std::time::Duration;

use advocat::service::{Service, ServiceConfig};
use advocat_frontend::{cli, FrontendConfig, Server};
use advocat_telemetry::Telemetry;

struct Options {
    addr: String,
    workers: Option<usize>,
    queue: Option<usize>,
    max_engines: Option<usize>,
    ring: usize,
    port_file: Option<String>,
}

fn parse(args: &[String]) -> Result<Options, String> {
    let mut options = Options {
        addr: format!("127.0.0.1:{}", cli::DEFAULT_PORT),
        workers: None,
        queue: None,
        max_engines: None,
        ring: 4096,
        port_file: None,
    };
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let mut value = |flag: &str| {
            iter.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match arg.as_str() {
            "--addr" => options.addr = value("--addr")?,
            "--workers" => options.workers = Some(parse_num(&value("--workers")?, "--workers")?),
            "--queue" => options.queue = Some(parse_num(&value("--queue")?, "--queue")?),
            "--max-engines" => {
                options.max_engines = Some(parse_num(&value("--max-engines")?, "--max-engines")?);
            }
            "--ring" => options.ring = parse_num(&value("--ring")?, "--ring")?,
            "--port-file" => options.port_file = Some(value("--port-file")?),
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    Ok(options)
}

fn parse_num(text: &str, flag: &str) -> Result<usize, String> {
    text.parse()
        .map_err(|_| format!("{flag} needs a number, got `{text}`"))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let options = match parse(&args) {
        Ok(options) => options,
        Err(message) => {
            eprintln!("advocatd: {message}");
            eprintln!(
                "usage: advocatd [--addr HOST:PORT] [--workers N] [--queue N] \
                 [--max-engines N] [--ring N] [--port-file PATH]"
            );
            std::process::exit(2);
        }
    };

    let (telemetry, trace) = if options.ring == 0 {
        (Telemetry::disabled(), None)
    } else {
        let (telemetry, trace) = Telemetry::ring(options.ring);
        (telemetry, Some(trace))
    };

    let mut service_config = ServiceConfig::default().with_telemetry(telemetry.clone());
    if let Some(workers) = options.workers {
        service_config = service_config.with_workers(workers);
    }
    if let Some(queue) = options.queue {
        service_config = service_config.with_queue_capacity(queue);
    }
    if let Some(max_engines) = options.max_engines {
        service_config = service_config.with_max_engines(max_engines);
    }
    let service = Arc::new(Service::new(service_config));

    let frontend = FrontendConfig {
        addr: options.addr,
        on_sigterm: true,
        drain_timeout: Duration::from_secs(600),
        ..FrontendConfig::default()
    };
    let server = match Server::start(service, telemetry, trace, frontend) {
        Ok(server) => server,
        Err(error) => {
            eprintln!("advocatd: bind failed: {error}");
            std::process::exit(1);
        }
    };

    let addr = server.addr();
    if let Some(path) = &options.port_file {
        if let Err(error) = std::fs::write(path, addr.to_string()) {
            eprintln!("advocatd: cannot write port file {path}: {error}");
            std::process::exit(1);
        }
    }
    println!("advocatd listening on {addr}");

    // Serves until SIGTERM (or POST /v1/shutdown) starts the drain;
    // join finishes every accepted job and flushes sinks.
    let drained = server.join();
    if drained {
        println!("advocatd drained cleanly");
    } else {
        eprintln!("advocatd: drain timed out with jobs still running");
        std::process::exit(1);
    }
}
