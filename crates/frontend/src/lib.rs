//! The ADVOCAT HTTP front-end: `advocatd`, its client, and the CLI.
//!
//! The verification [`Service`](advocat::service::Service) is an
//! in-process API; this crate puts it on a socket.  [`Server`] speaks a
//! deliberately small slice of HTTP/1.1 — hand-rolled like the rest of
//! the wire layer, because the build environment is offline and the
//! house style is dependency-free — and carries the service's semantics
//! across it unchanged:
//!
//! | Route | Meaning |
//! |---|---|
//! | `POST /v1/jobs` | submit a job request (or array); all-or-nothing admission |
//! | `GET /v1/jobs/{id}` | poll (`?wait_ms=` blocks) for one outcome |
//! | `POST /v1/batch` | submit a request array and wait for every outcome |
//! | `GET /metrics` | Prometheus text exposition of the metrics registry |
//! | `GET /v1/trace` | chunked JSON-lines stream of the telemetry ring |
//! | `GET /healthz` | [`ServiceStats`](advocat::service::ServiceStats) snapshot |
//! | `POST /v1/shutdown` | begin a graceful drain |
//!
//! Back-pressure is not hidden: a full admission queue is HTTP 429 with
//! a `Retry-After`, a job that blew its wall-clock budget is 504, and a
//! malformed payload is 400 carrying the parser's byte offset.  On
//! SIGTERM (opt-in per server, because the flag is process-global) the
//! daemon stops accepting, finishes every accepted job, flushes
//! telemetry sinks and exits.
//!
//! [`Client`] is the blocking counterpart (connect-with-backoff, one
//! keep-alive connection) and [`cli`] wraps it as the `advocat
//! submit|wait|batch|metrics|trace|health|shutdown` subcommands.

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod cli;
mod client;
mod http;
mod server;
mod signal;

pub use client::{Client, ClientConfig, ClientError};
pub use http::{HttpError, Request, Response, StatusLine};
pub use server::{FrontendConfig, Server};
pub use signal::sigterm_flag;
