//! SIGTERM as an [`AtomicBool`], without a `libc` dependency.
//!
//! The build environment is offline, so the crate cannot pull in `libc`
//! or `signal-hook`; instead this module declares the one POSIX symbol
//! it needs.  The disposition is process-global, which is why servers
//! opt *in* to honoring the flag ([`crate::FrontendConfig::on_sigterm`])
//! — a test running many servers in one process must not have them all
//! drain because one of them asked for signal handling.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Once;

/// Set by the handler on the first SIGTERM delivery.
static TERM_REQUESTED: AtomicBool = AtomicBool::new(false);
static INSTALL: Once = Once::new();

/// `SIGTERM` on every platform this project targets (Linux).
const SIGTERM: i32 = 15;

#[allow(unsafe_code)]
mod sys {
    extern "C" {
        /// POSIX `signal(2)` — present in the libc that `std` already
        /// links; only the async-signal-safe store below runs in handler
        /// context.
        pub(super) fn signal(signum: i32, handler: usize) -> usize;
    }

    pub(super) extern "C" fn on_sigterm(_signum: i32) {
        // A relaxed store is async-signal-safe; everything else happens
        // on the threads polling the flag.
        super::TERM_REQUESTED.store(true, std::sync::atomic::Ordering::Relaxed);
    }

    pub(super) fn install(signum: i32) {
        // SAFETY: `signal` is the POSIX function of that name; the
        // handler does nothing but store an atomic.
        unsafe {
            signal(signum, on_sigterm as extern "C" fn(i32) as usize);
        }
    }
}

/// Installs the SIGTERM handler (idempotent) and returns the flag it
/// sets.  Poll the flag; never block on it.
pub fn sigterm_flag() -> &'static AtomicBool {
    INSTALL.call_once(|| sys::install(SIGTERM));
    &TERM_REQUESTED
}

/// Whether SIGTERM has been delivered since the handler was installed.
/// `false` forever if [`sigterm_flag`] was never called.
pub(crate) fn sigterm_pending() -> bool {
    TERM_REQUESTED.load(Ordering::Relaxed)
}
