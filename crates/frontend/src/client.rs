//! A blocking client for `advocatd`, used by the CLI and by tests.
//!
//! One client holds one keep-alive connection and replays the service's
//! wire protocol verbatim: it does not reinterpret bodies, it hands
//! back the status code and the payload.  The only parsing it does is
//! pulling job ids out of a `POST /v1/jobs` acknowledgement, because
//! `wait` needs them.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// Connection and deadline tuning for a [`Client`].
#[derive(Clone, Debug)]
pub struct ClientConfig {
    /// Total budget for establishing a connection (retries included).
    pub connect_timeout: Duration,
    /// First retry backoff; doubles per attempt, capped at one second.
    pub initial_backoff: Duration,
    /// Socket read deadline per response.
    pub read_timeout: Duration,
    /// Socket write deadline per request.
    pub write_timeout: Duration,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            connect_timeout: Duration::from_secs(5),
            initial_backoff: Duration::from_millis(50),
            read_timeout: Duration::from_secs(120),
            write_timeout: Duration::from_secs(10),
        }
    }
}

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// No connection could be established within the budget.
    Connect(std::io::Error),
    /// The connection died mid-exchange.
    Io(std::io::Error),
    /// The server's bytes were not a readable HTTP response.
    Protocol(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Connect(error) => write!(f, "could not connect: {error}"),
            ClientError::Io(error) => write!(f, "connection failed: {error}"),
            ClientError::Protocol(what) => write!(f, "bad response: {what}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(error: std::io::Error) -> Self {
        ClientError::Io(error)
    }
}

/// One HTTP exchange's result: status code, headers and body.
#[derive(Debug)]
pub struct Exchange {
    /// HTTP status code.
    pub status: u16,
    /// Response headers, names lowercased, in wire order.
    pub headers: Vec<(String, String)>,
    /// Response body (chunked bodies arrive fully decoded).
    pub body: String,
}

impl Exchange {
    /// The first header with this (lowercase) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find_map(|(k, v)| (k == name).then_some(v.as_str()))
    }
}

/// A blocking `advocatd` client over one keep-alive connection.
pub struct Client {
    addr: String,
    config: ClientConfig,
    stream: Option<BufReader<TcpStream>>,
}

impl Client {
    /// Connects to `addr` (`host:port`), retrying with doubling backoff
    /// until the connect budget runs out.
    ///
    /// # Errors
    ///
    /// Returns [`ClientError::Connect`] with the last refusal when the
    /// server never came up.
    pub fn connect(addr: impl Into<String>, config: ClientConfig) -> Result<Client, ClientError> {
        let mut client = Client {
            addr: addr.into(),
            config,
            stream: None,
        };
        client.ensure_connected()?;
        Ok(client)
    }

    fn ensure_connected(&mut self) -> Result<(), ClientError> {
        if self.stream.is_some() {
            return Ok(());
        }
        let deadline = Instant::now() + self.config.connect_timeout;
        let mut backoff = self.config.initial_backoff;
        loop {
            match TcpStream::connect(&self.addr) {
                Ok(stream) => {
                    stream
                        .set_read_timeout(Some(self.config.read_timeout))
                        .and(stream.set_write_timeout(Some(self.config.write_timeout)))
                        // Small single-write requests: without NODELAY
                        // every exchange eats a Nagle/delayed-ACK stall.
                        .and(stream.set_nodelay(true))
                        .map_err(ClientError::Connect)?;
                    self.stream = Some(BufReader::new(stream));
                    return Ok(());
                }
                Err(error) => {
                    if Instant::now() + backoff > deadline {
                        return Err(ClientError::Connect(error));
                    }
                    std::thread::sleep(backoff);
                    backoff = (backoff * 2).min(Duration::from_secs(1));
                }
            }
        }
    }

    /// Submits a JSON job request; returns the admitted ids on 200, or
    /// the refusing exchange.
    ///
    /// # Errors
    ///
    /// Transport failures only — an HTTP refusal is the `Err`-free
    /// `Err(exchange)`-style right variant of the returned result.
    pub fn submit(
        &mut self,
        request_json: &str,
    ) -> Result<Result<Vec<u64>, Exchange>, ClientError> {
        let exchange = self.request("POST", "/v1/jobs", request_json.as_bytes())?;
        if exchange.status != 200 {
            return Ok(Err(exchange));
        }
        Ok(Ok(parse_id_array(&exchange.body)))
    }

    /// Polls (or with `wait_ms > 0` blocks) for one job outcome.
    ///
    /// # Errors
    ///
    /// Transport failures.
    pub fn wait(&mut self, id: u64, wait_ms: u64) -> Result<Exchange, ClientError> {
        self.request("GET", &format!("/v1/jobs/{id}?wait_ms={wait_ms}"), b"")
    }

    /// Submits a batch and waits for all of its outcomes.
    ///
    /// # Errors
    ///
    /// Transport failures.
    pub fn batch(&mut self, request_json: &str, wait_ms: u64) -> Result<Exchange, ClientError> {
        self.request(
            "POST",
            &format!("/v1/batch?wait_ms={wait_ms}"),
            request_json.as_bytes(),
        )
    }

    /// Fetches the Prometheus metrics exposition.
    ///
    /// # Errors
    ///
    /// Transport failures.
    pub fn metrics(&mut self) -> Result<Exchange, ClientError> {
        self.request("GET", "/metrics", b"")
    }

    /// Streams the trace ring for `wait_ms`; the decoded JSON-lines
    /// arrive in the exchange body.
    ///
    /// # Errors
    ///
    /// Transport failures.
    pub fn trace(&mut self, wait_ms: u64) -> Result<Exchange, ClientError> {
        self.request("GET", &format!("/v1/trace?wait_ms={wait_ms}"), b"")
    }

    /// Fetches the `/healthz` service snapshot.
    ///
    /// # Errors
    ///
    /// Transport failures.
    pub fn health(&mut self) -> Result<Exchange, ClientError> {
        self.request("GET", "/healthz", b"")
    }

    /// Asks the server to begin a graceful drain.
    ///
    /// # Errors
    ///
    /// Transport failures.
    pub fn shutdown(&mut self) -> Result<Exchange, ClientError> {
        self.request("POST", "/v1/shutdown", b"")
    }

    /// One request/response exchange; reconnects once if the keep-alive
    /// connection had gone stale between calls.
    fn request(
        &mut self,
        method: &str,
        target: &str,
        body: &[u8],
    ) -> Result<Exchange, ClientError> {
        self.ensure_connected()?;
        match self.try_request(method, target, body) {
            Ok(exchange) => Ok(exchange),
            Err(ClientError::Io(_)) => {
                // The server may have closed an idle keep-alive
                // connection; one fresh connection, one more try.
                self.stream = None;
                self.ensure_connected()?;
                self.try_request(method, target, body)
            }
            Err(error) => Err(error),
        }
    }

    fn try_request(
        &mut self,
        method: &str,
        target: &str,
        body: &[u8],
    ) -> Result<Exchange, ClientError> {
        let reader = self.stream.as_mut().expect("connected before request");
        {
            let stream = reader.get_mut();
            let head = format!(
                "{method} {target} HTTP/1.1\r\nHost: advocatd\r\nContent-Length: {}\r\n\r\n",
                body.len()
            );
            stream.write_all(head.as_bytes())?;
            stream.write_all(body)?;
            stream.flush()?;
        }
        let exchange = read_response(reader)?;
        Ok(exchange)
    }
}

fn read_response(reader: &mut BufReader<TcpStream>) -> Result<Exchange, ClientError> {
    let status_line = read_line(reader)?;
    let mut parts = status_line.split(' ');
    let (Some(version), Some(code)) = (parts.next(), parts.next()) else {
        return Err(ClientError::Protocol(format!(
            "bad status line `{status_line}`"
        )));
    };
    if !version.starts_with("HTTP/1.") {
        return Err(ClientError::Protocol(format!("unsupported {version}")));
    }
    let status: u16 = code
        .parse()
        .map_err(|_| ClientError::Protocol(format!("bad status code `{code}`")))?;

    let mut content_length: Option<usize> = None;
    let mut chunked = false;
    let mut headers = Vec::new();
    loop {
        let line = read_line(reader)?;
        if line.is_empty() {
            break;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(ClientError::Protocol(format!("bad header `{line}`")));
        };
        let name = name.trim().to_ascii_lowercase();
        let value = value.trim();
        if name == "content-length" {
            content_length = Some(
                value
                    .parse()
                    .map_err(|_| ClientError::Protocol(format!("bad length `{value}`")))?,
            );
        } else if name == "transfer-encoding" && value.eq_ignore_ascii_case("chunked") {
            chunked = true;
        }
        headers.push((name, value.to_owned()));
    }

    let body = if chunked {
        let mut body = Vec::new();
        loop {
            let size_line = read_line(reader)?;
            let size = usize::from_str_radix(size_line.trim(), 16)
                .map_err(|_| ClientError::Protocol(format!("bad chunk size `{size_line}`")))?;
            if size == 0 {
                // Trailing CRLF after the last chunk.
                let _ = read_line(reader)?;
                break;
            }
            let mut chunk = vec![0u8; size];
            reader.read_exact(&mut chunk)?;
            body.extend_from_slice(&chunk);
            let _ = read_line(reader)?; // chunk-terminating CRLF
        }
        body
    } else {
        let mut body = vec![0u8; content_length.unwrap_or(0)];
        reader.read_exact(&mut body)?;
        body
    };

    Ok(Exchange {
        status,
        headers,
        body: String::from_utf8_lossy(&body).into_owned(),
    })
}

fn read_line(reader: &mut BufReader<TcpStream>) -> Result<String, ClientError> {
    let mut line = String::new();
    let read = reader.read_line(&mut line)?;
    if read == 0 {
        return Err(ClientError::Io(std::io::Error::new(
            std::io::ErrorKind::UnexpectedEof,
            "connection closed mid-response",
        )));
    }
    while line.ends_with('\n') || line.ends_with('\r') {
        line.pop();
    }
    Ok(line)
}

/// Pulls the numbers out of an `{"ids":[…]}` acknowledgement.  The
/// shape is fixed by our own server, so a scan is sufficient — no JSON
/// parser needed on the client side.
fn parse_id_array(body: &str) -> Vec<u64> {
    let Some(open) = body.find('[') else {
        return Vec::new();
    };
    let Some(close) = body[open..].find(']') else {
        return Vec::new();
    };
    body[open + 1..open + close]
        .split(',')
        .filter_map(|n| n.trim().parse().ok())
        .collect()
}
