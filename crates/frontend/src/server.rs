//! `advocatd`'s serving core: a bounded-accept HTTP front over one
//! [`Service`].
//!
//! The shape is deliberately boring: one accept thread hands sockets to
//! a **bounded** connection queue (full queue → immediate `503`, the
//! same no-hidden-buffering stance as the service's admission queue),
//! and a small pool of connection workers runs keep-alive loops with
//! per-connection read/write deadlines.  Service semantics map onto
//! status codes without translation loss:
//!
//! | Condition | Status |
//! |---|---|
//! | admission queue full | `429` + `Retry-After` |
//! | connection queue full | `503` + `Retry-After` |
//! | malformed JSON | `400` (body carries the byte offset) |
//! | job budget blown ([`JobError::TimedOut`]) | `504` |
//! | worker panic ([`JobError::EngineLost`]) | `500` |
//! | unbuildable fabric | `200` (a domain *result*, not a transport failure) |
//! | outcome not ready | `202` |
//! | outcome already consumed | `410` |
//! | unknown job id | `404` |
//!
//! Graceful drain (SIGTERM when opted in, or `POST /v1/shutdown`):
//! stop accepting, finish the request each connection is on, wait for
//! every accepted job to produce its outcome, flush telemetry sinks.

use std::collections::VecDeque;
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use advocat::service::{
    outcome_to_json, JobError, JobId, JobOutcome, JsonSubmitError, OutcomeError, Service,
};
use advocat_telemetry::{Telemetry, TraceBuffer};

use crate::http::{read_request, ChunkedWriter, HttpError, Request, Response};
use crate::signal;

/// Tuning for a [`Server`].
#[derive(Clone, Debug)]
pub struct FrontendConfig {
    /// Bind address; port `0` picks an ephemeral port.
    pub addr: String,
    /// Connection-worker threads (concurrent HTTP exchanges).
    pub conn_workers: usize,
    /// Bound on sockets accepted but not yet picked up by a worker;
    /// beyond it new connections get an immediate `503`.
    pub accept_backlog: usize,
    /// Per-connection read deadline (also the keep-alive idle timeout).
    pub read_timeout: Duration,
    /// Per-connection write deadline.
    pub write_timeout: Duration,
    /// How long [`Server::join`] waits for accepted jobs to finish.
    pub drain_timeout: Duration,
    /// Whether this server honors the process-global SIGTERM flag.
    /// Off by default: tests run many servers in one process, and one
    /// server's signal must not drain the others.
    pub on_sigterm: bool,
}

impl Default for FrontendConfig {
    fn default() -> Self {
        FrontendConfig {
            addr: "127.0.0.1:0".to_owned(),
            conn_workers: 4,
            accept_backlog: 64,
            read_timeout: Duration::from_secs(10),
            write_timeout: Duration::from_secs(10),
            drain_timeout: Duration::from_secs(120),
            on_sigterm: false,
        }
    }
}

/// How often the accept loop re-checks the shutdown flags between
/// non-blocking accept attempts.
const ACCEPT_NAP: Duration = Duration::from_millis(10);
/// Chunk cadence of the trace stream: how long one `wait_drain` parks.
const TRACE_SLICE: Duration = Duration::from_millis(100);
/// Default and maximum client-requested wait budgets.
const DEFAULT_JOB_WAIT: Duration = Duration::ZERO;
const DEFAULT_BATCH_WAIT: Duration = Duration::from_secs(300);
const DEFAULT_TRACE_WAIT: Duration = Duration::from_millis(500);
const MAX_WAIT: Duration = Duration::from_secs(600);

struct AcceptQueue {
    conns: VecDeque<TcpStream>,
    closed: bool,
}

struct Shared {
    service: Arc<Service>,
    telemetry: Telemetry,
    trace: Option<TraceBuffer>,
    queue: Mutex<AcceptQueue>,
    available: Condvar,
    /// Raised by `shutdown()`, `POST /v1/shutdown` or SIGTERM: the
    /// accept loop exits and keep-alive connections close after their
    /// current exchange.
    draining: AtomicBool,
    config: FrontendConfig,
}

impl Shared {
    fn drain_requested(&self) -> bool {
        self.draining.load(Ordering::Relaxed)
            || (self.config.on_sigterm && signal::sigterm_pending())
    }
}

/// A running HTTP front-end over one verification service.
///
/// Dropping the server triggers a drain and waits for it; call
/// [`Server::join`] to do the same explicitly.
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds and starts serving `service`.
    ///
    /// `telemetry` should be the same handle the service was configured
    /// with: `/metrics` renders its registry, drain flushes its sinks,
    /// and `trace` (from [`Telemetry::ring`]) feeds `/v1/trace`.
    ///
    /// # Errors
    ///
    /// Returns the I/O error of a failed bind.
    pub fn start(
        service: Arc<Service>,
        telemetry: Telemetry,
        trace: Option<TraceBuffer>,
        config: FrontendConfig,
    ) -> std::io::Result<Server> {
        if config.on_sigterm {
            signal::sigterm_flag();
        }
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;

        let shared = Arc::new(Shared {
            service,
            telemetry,
            trace,
            queue: Mutex::new(AcceptQueue {
                conns: VecDeque::new(),
                closed: false,
            }),
            available: Condvar::new(),
            draining: AtomicBool::new(false),
            config: config.clone(),
        });

        let workers = (0..config.conn_workers.max(1))
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || connection_worker(&shared))
            })
            .collect();
        let accept = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || accept_loop(&listener, &shared))
        };

        Ok(Server {
            addr,
            shared,
            accept: Some(accept),
            workers,
        })
    }

    /// The bound address (with the resolved port when `addr` asked for
    /// an ephemeral one).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Requests a graceful drain without waiting for it.
    pub fn shutdown(&self) {
        self.shared.draining.store(true, Ordering::Relaxed);
        self.shared.available.notify_all();
    }

    /// Serves until a drain is requested — by [`Server::shutdown`],
    /// `POST /v1/shutdown`, or SIGTERM (when opted in) — then finishes
    /// it: accept loop down, connections closed after their current
    /// exchange, every accepted job completed (up to the drain
    /// timeout), sinks flushed.  Returns `false` when jobs were still
    /// running at the timeout.
    pub fn join(mut self) -> bool {
        self.drain()
    }

    /// The drain sequence; blocks until a drain has been requested
    /// (the accept loop only exits on one).
    fn drain(&mut self) -> bool {
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        let idle = self
            .shared
            .service
            .await_idle(self.shared.config.drain_timeout);
        self.shared.telemetry.flush();
        idle
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        if self.accept.is_some() || !self.workers.is_empty() {
            // An implicit drop must not serve forever: request the
            // drain before waiting for it.
            self.shutdown();
            self.drain();
        }
    }
}

fn accept_loop(listener: &TcpListener, shared: &Shared) {
    while !shared.drain_requested() {
        match listener.accept() {
            Ok((stream, _)) => {
                let mut queue = shared.queue.lock().expect("accept queue lock");
                if queue.conns.len() >= shared.config.accept_backlog {
                    drop(queue);
                    refuse_connection(stream, shared);
                } else {
                    queue.conns.push_back(stream);
                    drop(queue);
                    shared.available.notify_one();
                }
            }
            Err(error) if error.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(ACCEPT_NAP);
            }
            // Transient accept failures (per-connection resets and the
            // like); back off and keep serving.
            Err(_) => std::thread::sleep(ACCEPT_NAP),
        }
    }
    let mut queue = shared.queue.lock().expect("accept queue lock");
    queue.closed = true;
    drop(queue);
    shared.available.notify_all();
}

/// The accept queue is full: tell the client so before hanging up,
/// best-effort under a short deadline.
fn refuse_connection(mut stream: TcpStream, shared: &Shared) {
    let _ = stream.set_write_timeout(Some(shared.config.write_timeout));
    let _ = Response::json(503, "{\"error\":\"connection queue full\"}")
        .header("Retry-After", "1")
        .header("Connection", "close")
        .write_to(&mut stream);
}

fn connection_worker(shared: &Shared) {
    loop {
        let stream = {
            let mut queue = shared.queue.lock().expect("accept queue lock");
            loop {
                if let Some(stream) = queue.conns.pop_front() {
                    break Some(stream);
                }
                if queue.closed {
                    break None;
                }
                queue = shared
                    .available
                    .wait_timeout(queue, ACCEPT_NAP)
                    .expect("accept queue lock")
                    .0;
            }
        };
        match stream {
            Some(stream) => handle_connection(stream, shared),
            None => return,
        }
    }
}

fn handle_connection(stream: TcpStream, shared: &Shared) {
    // NODELAY matters here: requests and responses are single small
    // writes, and Nagle vs delayed-ACK turns each exchange into a
    // ~40 ms round trip otherwise.
    if stream
        .set_read_timeout(Some(shared.config.read_timeout))
        .and(stream.set_write_timeout(Some(shared.config.write_timeout)))
        .and(stream.set_nodelay(true))
        .is_err()
    {
        return;
    }
    let Ok(mut writer) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(stream);

    loop {
        let request = match read_request(&mut reader) {
            Ok(Some(request)) => request,
            // Clean EOF: the peer is done with the connection.
            Ok(None) => return,
            Err(HttpError::Io(_)) => return,
            Err(error @ (HttpError::Malformed(_) | HttpError::TooLarge(_))) => {
                let body = format!("{{\"error\":\"{}\"}}", escape_json(&error.to_string()));
                let _ = Response::json(400, body)
                    .header("Connection", "close")
                    .write_to(&mut writer);
                return;
            }
        };
        let close = request.wants_close() || shared.drain_requested();

        // The trace route streams chunks itself; everything else
        // produces one fixed-length response.
        if request.method == "GET" && request.path == "/v1/trace" {
            if stream_trace(&request, &mut writer, shared, close).is_err() {
                return;
            }
        } else {
            let mut response = route(&request, shared);
            if close {
                response = response.header("Connection", "close");
            }
            if response.write_to(&mut writer).is_err() {
                return;
            }
        }
        if close {
            return;
        }
    }
}

fn route(request: &Request, shared: &Shared) -> Response {
    match (request.method.as_str(), request.path.as_str()) {
        ("POST", "/v1/jobs") => submit_jobs(request, shared),
        ("POST", "/v1/batch") => run_batch(request, shared),
        ("GET", path) if path.strip_prefix("/v1/jobs/").is_some() => {
            let id = path.strip_prefix("/v1/jobs/").expect("guard matched");
            poll_job(id, request, shared)
        }
        ("GET", "/metrics") => render_metrics(shared),
        ("GET", "/healthz") => Response::json(200, shared.service.stats().to_json()),
        ("POST", "/v1/shutdown") => {
            shared.draining.store(true, Ordering::Relaxed);
            shared.available.notify_all();
            Response::json(200, "{\"draining\":true}")
        }
        ("GET" | "POST", _) => Response::json(404, "{\"error\":\"no such route\"}"),
        _ => Response::json(405, "{\"error\":\"method not allowed\"}"),
    }
}

/// `POST /v1/jobs` — all-or-nothing admission of one request (or array
/// of requests); the response carries every admitted job id.
fn submit_jobs(request: &Request, shared: &Shared) -> Response {
    let Some(body) = request.body_utf8() else {
        return Response::json(400, "{\"error\":\"request body is not UTF-8\"}");
    };
    match shared.service.try_submit_json(body) {
        Ok(ids) => Response::json(200, ids_json(&ids)),
        Err(JsonSubmitError::Json(error)) => Response::json(
            400,
            format!(
                "{{\"error\":\"{}\",\"offset\":{}}}",
                escape_json(&error.message),
                error.offset
            ),
        ),
        Err(JsonSubmitError::QueueFull { jobs, capacity }) => Response::json(
            429,
            format!("{{\"error\":\"queue full\",\"jobs\":{jobs},\"capacity\":{capacity}}}"),
        )
        .header("Retry-After", "1"),
    }
}

/// `GET /v1/jobs/{id}` — polls for one outcome; `?wait_ms=` blocks.
fn poll_job(id: &str, request: &Request, shared: &Shared) -> Response {
    let Ok(id) = id.parse::<u64>() else {
        return Response::json(400, "{\"error\":\"job id must be an integer\"}");
    };
    let wait = wait_param(request, DEFAULT_JOB_WAIT);
    let taken = if wait.is_zero() {
        shared.service.take_outcome(JobId(id))
    } else {
        shared.service.wait_outcome(JobId(id), Some(wait))
    };
    match taken {
        Err(OutcomeError::Unknown(_)) => {
            Response::json(404, format!("{{\"error\":\"unknown job id\",\"id\":{id}}}"))
        }
        Err(OutcomeError::Taken(_)) => Response::json(
            410,
            format!("{{\"error\":\"outcome already consumed\",\"id\":{id}}}"),
        ),
        Ok(None) => Response::json(202, format!("{{\"status\":\"pending\",\"id\":{id}}}")),
        Ok(Some(outcome)) => outcome_response(&outcome),
    }
}

/// `POST /v1/batch` — submit an array and wait for all of its outcomes,
/// reported in submission order.
fn run_batch(request: &Request, shared: &Shared) -> Response {
    let Some(body) = request.body_utf8() else {
        return Response::json(400, "{\"error\":\"request body is not UTF-8\"}");
    };
    let ids = match shared.service.try_submit_json(body) {
        Ok(ids) => ids,
        Err(error) => {
            // Same refusal mapping as /v1/jobs.
            return match error {
                JsonSubmitError::Json(error) => Response::json(
                    400,
                    format!(
                        "{{\"error\":\"{}\",\"offset\":{}}}",
                        escape_json(&error.message),
                        error.offset
                    ),
                ),
                JsonSubmitError::QueueFull { jobs, capacity } => Response::json(
                    429,
                    format!("{{\"error\":\"queue full\",\"jobs\":{jobs},\"capacity\":{capacity}}}"),
                )
                .header("Retry-After", "1"),
            };
        }
    };

    let deadline = Instant::now() + wait_param(request, DEFAULT_BATCH_WAIT);
    let mut outcomes = Vec::with_capacity(ids.len());
    for id in &ids {
        let remaining = deadline.saturating_duration_since(Instant::now());
        match shared.service.wait_outcome(*id, Some(remaining)) {
            Ok(Some(outcome)) => outcomes.push(outcome_to_json(&outcome)),
            // Ran out of budget; the jobs keep running — hand back the
            // ids so the client can poll `/v1/jobs/{id}` individually.
            Ok(None) => {
                return Response::json(
                    504,
                    format!(
                        "{{\"error\":\"batch timed out\",\"ids\":{}}}",
                        ids_array(&ids)
                    ),
                )
            }
            Err(_) => {
                return Response::json(
                    500,
                    format!("{{\"error\":\"batch outcome lost\",\"id\":{}}}", id.0),
                )
            }
        }
    }
    Response::json(200, format!("[{}]", outcomes.join(",")))
}

/// `GET /metrics` — Prometheus text exposition.
fn render_metrics(shared: &Shared) -> Response {
    match shared.telemetry.metrics() {
        Some(registry) => Response::text(200, registry.render_prometheus()),
        None => Response::json(404, "{\"error\":\"telemetry is disabled on this server\"}"),
    }
}

/// `GET /v1/trace` — streams the telemetry ring as chunked JSON-lines
/// for the client's requested window (`?wait_ms=`, default 500 ms).
fn stream_trace(
    request: &Request,
    writer: &mut TcpStream,
    shared: &Shared,
    close: bool,
) -> std::io::Result<()> {
    let Some(trace) = &shared.trace else {
        let response = Response::json(404, "{\"error\":\"no trace ring on this server\"}");
        return if close {
            response.header("Connection", "close").write_to(writer)
        } else {
            response.write_to(writer)
        };
    };
    let deadline = Instant::now() + wait_param(request, DEFAULT_TRACE_WAIT);
    let extra: &[(&str, &str)] = if close {
        &[("Connection", "close")]
    } else {
        &[]
    };
    let mut chunked = ChunkedWriter::begin(writer, 200, "application/x-ndjson", extra)?;
    loop {
        let remaining = deadline.saturating_duration_since(Instant::now());
        if remaining.is_zero() {
            break;
        }
        let lines = trace.wait_drain(remaining.min(TRACE_SLICE));
        if !lines.is_empty() {
            let mut chunk = String::new();
            for line in &lines {
                chunk.push_str(line);
                chunk.push('\n');
            }
            chunked.chunk(chunk.as_bytes())?;
        }
        if shared.drain_requested() {
            break;
        }
    }
    chunked.finish()
}

/// Maps a finished job onto its transport status: transport-level
/// failures (budget blown, worker lost) get transport codes; a domain
/// verdict — including "this fabric cannot be built" — is a `200`.
fn outcome_response(outcome: &JobOutcome) -> Response {
    let status = match &outcome.result {
        Ok(_) | Err(JobError::Fabric(_)) => 200,
        Err(JobError::TimedOut { .. }) => 504,
        Err(JobError::EngineLost { .. }) => 500,
    };
    Response::json(status, outcome_to_json(outcome))
}

fn wait_param(request: &Request, default: Duration) -> Duration {
    request
        .query_param("wait_ms")
        .and_then(|v| v.parse::<u64>().ok())
        .map_or(default, Duration::from_millis)
        .min(MAX_WAIT)
}

fn ids_json(ids: &[JobId]) -> String {
    format!("{{\"ids\":{}}}", ids_array(ids))
}

fn ids_array(ids: &[JobId]) -> String {
    let mut out = String::from("[");
    for (i, id) in ids.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&id.0.to_string());
    }
    out.push(']');
    out
}

/// JSON string escaping for error messages (the wire layer is serde-free).
pub(crate) fn escape_json(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for ch in text.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}
