//! The ADVOCAT verification service, as its own dependency.
//!
//! The implementation lives in [`advocat::service`] (it needs access to
//! the engine internals); this crate is the stable, separately-nameable
//! facade for deployments that want to depend on "the service" without
//! spelling out the core crate's whole API.  Everything here is a
//! re-export — the types are identical to the ones in
//! `advocat::prelude::*`.
//!
//! # Examples
//!
//! ```
//! use advocat_service::{Service, ServiceConfig, VerifyJob};
//! use advocat_noc::MeshConfig;
//!
//! let service = Service::new(ServiceConfig::default().with_workers(2));
//! let mesh = MeshConfig::new(2, 2, 3).with_directory(1, 1);
//! service.submit(VerifyJob::mesh("figure 3 at qs 3", mesh));
//! let outcomes = service.drain();
//! assert!(outcomes[0].is_deadlock_free());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use advocat::service::{
    outcome_to_json, requests_from_json, validate_json, Fingerprint, JobError, JobId, JobOutcome,
    JobRequest, JsonError, JsonSubmitError, OutcomeError, PoolStats, Service, ServiceConfig,
    ServiceStats, SubmitError, TopologySpec, VerifyJob,
};

// The vocabulary types a job is built from, so service-only users need no
// second dependency for common calls.
pub use advocat::{BatchScenario, Report, ScenarioFabric, SessionStats};
pub use advocat_deadlock::{DeadlockSpec, DeadlockTarget};
pub use advocat_logic::CheckConfig;
// The observability vocabulary: a service configured with an enabled
// handle traces jobs and keeps queue/steal/latency metrics.
pub use advocat_logic::{SolverProfile, Telemetry};
pub use advocat_noc::{FabricConfig, MeshConfig, ProtocolKind, Topology};
