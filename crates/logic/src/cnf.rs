//! Tseitin transformation of [`Formula`]s into CNF over propositional atoms.
//!
//! Atoms are either Boolean SMT variables or canonicalised linear
//! inequalities of the form `Σ aᵢ·xᵢ ≤ b`.  Equalities and disequalities are
//! decomposed into conjunctions/negations of inequalities before atoms are
//! created, so the theory solver only ever deals with `≤` constraints (a
//! negated `≤` atom becomes a `≥` constraint, see [`LinearAtom::negated`]).

use std::collections::HashMap;

use crate::expr::{BoolVar, CmpOp, Formula, IntVar, LinExpr};
use crate::sat::{Lit, SatSolver, Var};

/// A canonical linear atom `Σ aᵢ·xᵢ ≤ bound`.
///
/// Terms are sorted by variable, have no zero coefficients and are divided
/// by their common gcd (with the bound floored accordingly), so structurally
/// different but equivalent comparisons map to the same atom.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct LinearAtom {
    /// Sorted `(coefficient, variable)` pairs.
    pub terms: Vec<(i64, IntVar)>,
    /// Inclusive upper bound on the weighted sum.
    pub bound: i64,
}

impl LinearAtom {
    /// Builds the canonical atom for `Σ terms ≤ bound`, or returns a
    /// constant truth value when there are no variable terms.
    fn canonicalize(mut terms: Vec<(i64, IntVar)>, mut bound: i64) -> Result<LinearAtom, bool> {
        terms.retain(|(c, _)| *c != 0);
        if terms.is_empty() {
            return Err(0 <= bound);
        }
        terms.sort_by_key(|(_, v)| *v);
        let mut g: i64 = 0;
        for (c, _) in &terms {
            g = gcd(g, c.abs());
        }
        if g > 1 {
            for (c, _) in &mut terms {
                *c /= g;
            }
            bound = bound.div_euclid(g);
        }
        Ok(LinearAtom { terms, bound })
    }

    /// Returns the atom representing the logical negation of `self`:
    /// `¬(Σ ≤ b)  ≡  Σ ≥ b+1  ≡  -Σ ≤ -b-1`.
    pub fn negated(&self) -> LinearAtom {
        LinearAtom {
            terms: self.terms.iter().map(|(c, v)| (-c, *v)).collect(),
            bound: -self.bound - 1,
        }
    }

    /// Evaluates the atom under an integer assignment.
    pub fn holds<F: FnMut(IntVar) -> i64>(&self, mut value_of: F) -> bool {
        let sum: i64 = self.terms.iter().map(|(c, v)| c * value_of(*v)).sum();
        sum <= self.bound
    }
}

fn gcd(a: i64, b: i64) -> i64 {
    let (mut a, mut b) = (a.abs(), b.abs());
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

/// Tseitin encoder mapping formulas onto a [`SatSolver`], keeping track of
/// the atom ↔ SAT-variable correspondence so the lazy SMT loop can extract
/// theory constraints from SAT models and add blocking clauses.
///
/// Formulas can be encoded under a *guard literal*
/// ([`Encoder::encode_guarded`]): every definition clause the encoding
/// emits carries the guard, so once the guard is asserted at level zero
/// (e.g. the disabled activation literal of a popped solver scope) the
/// whole encoding is permanently satisfied and the solver's
/// garbage-collection pass can reclaim it.  Atom and Boolean variable
/// mappings are shared across guards — they carry no clauses of their own,
/// so sharing them is always sound.
#[derive(Clone, Debug, Default)]
pub struct Encoder {
    bool_to_sat: HashMap<BoolVar, Var>,
    atoms: Vec<LinearAtom>,
    atom_sat: Vec<Var>,
    atom_index: HashMap<LinearAtom, usize>,
    true_lit: Option<Lit>,
}

impl Encoder {
    /// Creates an empty encoder.
    pub fn new() -> Self {
        Encoder::default()
    }

    /// Returns the literal that is constrained to be true.
    fn constant_true(&mut self, sat: &mut SatSolver) -> Lit {
        if let Some(l) = self.true_lit {
            return l;
        }
        let v = sat.new_var();
        let l = Lit::positive(v);
        sat.add_clause(&[l]);
        self.true_lit = Some(l);
        l
    }

    /// Returns the SAT variable associated with a Boolean SMT variable,
    /// allocating it on first use.
    pub fn sat_var_for_bool(&mut self, v: BoolVar, sat: &mut SatSolver) -> Var {
        if let Some(&sv) = self.bool_to_sat.get(&v) {
            return sv;
        }
        let sv = sat.new_var();
        self.bool_to_sat.insert(v, sv);
        sv
    }

    /// Returns the SAT variable for a Boolean SMT variable if it occurs in
    /// any encoded formula.
    pub fn lookup_bool(&self, v: BoolVar) -> Option<Var> {
        self.bool_to_sat.get(&v).copied()
    }

    /// Returns the linear atoms created so far together with their SAT
    /// variables.
    pub fn linear_atoms(&self) -> impl Iterator<Item = (&LinearAtom, Var)> + '_ {
        self.atoms.iter().zip(self.atom_sat.iter().copied())
    }

    /// Returns the number of distinct linear atoms.
    pub fn atom_count(&self) -> usize {
        self.atoms.len()
    }

    /// Adds a definition clause, extended by the guard literal when one is
    /// in effect.
    fn emit(&mut self, sat: &mut SatSolver, guard: Option<Lit>, lits: &[Lit]) {
        match guard {
            None => sat.add_clause(lits),
            Some(g) => {
                let mut guarded = Vec::with_capacity(lits.len() + 1);
                guarded.push(g);
                guarded.extend_from_slice(lits);
                sat.add_clause(&guarded)
            }
        };
    }

    fn atom_lit(&mut self, atom_or_const: Result<LinearAtom, bool>, sat: &mut SatSolver) -> Lit {
        match atom_or_const {
            Err(true) => self.constant_true(sat),
            Err(false) => self.constant_true(sat).negated(),
            Ok(atom) => {
                if let Some(&idx) = self.atom_index.get(&atom) {
                    return Lit::positive(self.atom_sat[idx]);
                }
                let sv = sat.new_var();
                let idx = self.atoms.len();
                self.atom_index.insert(atom.clone(), idx);
                self.atoms.push(atom);
                self.atom_sat.push(sv);
                Lit::positive(sv)
            }
        }
    }

    fn encode_cmp(
        &mut self,
        lhs: &LinExpr,
        op: CmpOp,
        rhs: &LinExpr,
        guard: Option<Lit>,
        sat: &mut SatSolver,
    ) -> Lit {
        let diff = lhs.clone() - rhs.clone();
        let (terms, constant) = diff.canonical();
        match op {
            CmpOp::Le => self.atom_lit(LinearAtom::canonicalize(terms, -constant), sat),
            CmpOp::Lt => self.atom_lit(LinearAtom::canonicalize(terms, -constant - 1), sat),
            CmpOp::Ge => {
                let neg: Vec<_> = terms.iter().map(|(c, v)| (-c, *v)).collect();
                self.atom_lit(LinearAtom::canonicalize(neg, constant), sat)
            }
            CmpOp::Gt => {
                let neg: Vec<_> = terms.iter().map(|(c, v)| (-c, *v)).collect();
                self.atom_lit(LinearAtom::canonicalize(neg, constant - 1), sat)
            }
            CmpOp::Eq => {
                let le = self.encode_cmp(lhs, CmpOp::Le, rhs, guard, sat);
                let ge = self.encode_cmp(lhs, CmpOp::Ge, rhs, guard, sat);
                self.define_and(&[le, ge], guard, sat)
            }
            CmpOp::Ne => {
                let eq = self.encode_cmp(lhs, CmpOp::Eq, rhs, guard, sat);
                eq.negated()
            }
        }
    }

    fn define_and(&mut self, lits: &[Lit], guard: Option<Lit>, sat: &mut SatSolver) -> Lit {
        let y = Lit::positive(sat.new_var());
        let mut long: Vec<Lit> = vec![y];
        for &l in lits {
            self.emit(sat, guard, &[y.negated(), l]);
            long.push(l.negated());
        }
        self.emit(sat, guard, &long);
        y
    }

    fn define_or(&mut self, lits: &[Lit], guard: Option<Lit>, sat: &mut SatSolver) -> Lit {
        let y = Lit::positive(sat.new_var());
        let mut long: Vec<Lit> = vec![y.negated()];
        for &l in lits {
            self.emit(sat, guard, &[l.negated(), y]);
            long.push(l);
        }
        self.emit(sat, guard, &long);
        y
    }

    /// Encodes a formula, returning a literal equisatisfiable with it.
    pub fn encode(&mut self, formula: &Formula, sat: &mut SatSolver) -> Lit {
        self.encode_guarded(formula, None, sat)
    }

    /// Encodes a formula with every emitted definition clause extended by
    /// `guard`, returning a literal equisatisfiable with the formula
    /// whenever `guard` is false.
    ///
    /// The intended guard is the negation of a scope's activation literal:
    /// while the scope is active the activation literal is assumed true
    /// and the definitions behave exactly as unguarded ones; once the
    /// scope is popped (the activation literal is forced false at level
    /// zero) every clause of the encoding is permanently satisfied and can
    /// be garbage-collected.  Tseitin variables are never reused across
    /// `encode` calls, so guarding their definitions cannot leak into
    /// later encodings.
    pub fn encode_guarded(
        &mut self,
        formula: &Formula,
        guard: Option<Lit>,
        sat: &mut SatSolver,
    ) -> Lit {
        match formula {
            Formula::True => self.constant_true(sat),
            Formula::False => self.constant_true(sat).negated(),
            Formula::Bool(v) => Lit::positive(self.sat_var_for_bool(*v, sat)),
            Formula::Cmp(lhs, op, rhs) => self.encode_cmp(lhs, *op, rhs, guard, sat),
            Formula::Not(inner) => self.encode_guarded(inner, guard, sat).negated(),
            Formula::And(parts) => {
                let lits: Vec<Lit> = parts
                    .iter()
                    .map(|p| self.encode_guarded(p, guard, sat))
                    .collect();
                self.define_and(&lits, guard, sat)
            }
            Formula::Or(parts) => {
                let lits: Vec<Lit> = parts
                    .iter()
                    .map(|p| self.encode_guarded(p, guard, sat))
                    .collect();
                self.define_or(&lits, guard, sat)
            }
            Formula::Implies(a, b) => {
                let la = self.encode_guarded(a, guard, sat).negated();
                let lb = self.encode_guarded(b, guard, sat);
                self.define_or(&[la, lb], guard, sat)
            }
            Formula::Iff(a, b) => {
                let la = self.encode_guarded(a, guard, sat);
                let lb = self.encode_guarded(b, guard, sat);
                let y = Lit::positive(sat.new_var());
                self.emit(sat, guard, &[y.negated(), la.negated(), lb]);
                self.emit(sat, guard, &[y.negated(), la, lb.negated()]);
                self.emit(sat, guard, &[y, la, lb]);
                self.emit(sat, guard, &[y, la.negated(), lb.negated()]);
                y
            }
        }
    }

    /// Encodes a formula and asserts it (adds a unit clause for its literal).
    pub fn assert(&mut self, formula: &Formula, sat: &mut SatSolver) {
        let lit = self.encode(formula, sat);
        sat.add_clause(&[lit]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::VarPool;

    #[test]
    fn equivalent_comparisons_share_atoms() {
        let mut pool = VarPool::new();
        let x = pool.new_int("x", 0, 5);
        let y = pool.new_int("y", 0, 5);
        let mut enc = Encoder::new();
        let mut sat = SatSolver::new();
        // 2x + 2y <= 4  and  x + y <= 2 should canonicalise identically.
        let f1 = Formula::le(
            LinExpr::term(2, x) + LinExpr::term(2, y),
            LinExpr::constant(4),
        );
        let f2 = Formula::le(LinExpr::var(x) + LinExpr::var(y), LinExpr::constant(2));
        let l1 = enc.encode(&f1, &mut sat);
        let l2 = enc.encode(&f2, &mut sat);
        assert_eq!(l1, l2);
        assert_eq!(enc.atom_count(), 1);
    }

    #[test]
    fn constant_comparison_folds_to_truth_value() {
        let mut enc = Encoder::new();
        let mut sat = SatSolver::new();
        let t = enc.encode(
            &Formula::le(LinExpr::constant(1), LinExpr::constant(2)),
            &mut sat,
        );
        let f = enc.encode(
            &Formula::le(LinExpr::constant(3), LinExpr::constant(2)),
            &mut sat,
        );
        assert_eq!(t, f.negated());
        assert_eq!(enc.atom_count(), 0);
    }

    #[test]
    fn negated_atom_excludes_exact_boundary() {
        let mut pool = VarPool::new();
        let x = pool.new_int("x", 0, 10);
        let atom = LinearAtom::canonicalize(vec![(1, x)], 4).unwrap();
        assert!(atom.holds(|_| 4));
        assert!(!atom.negated().holds(|_| 4));
        assert!(atom.negated().holds(|_| 5));
    }

    #[test]
    fn asserting_boolean_tautology_stays_satisfiable() {
        let mut pool = VarPool::new();
        let a = pool.new_bool("a");
        let mut enc = Encoder::new();
        let mut sat = SatSolver::new();
        enc.assert(
            &Formula::or([Formula::bool_var(a), Formula::not(Formula::bool_var(a))]),
            &mut sat,
        );
        assert!(sat.solve().is_ok());
    }

    #[test]
    fn asserting_contradiction_is_unsat() {
        let mut pool = VarPool::new();
        let a = pool.new_bool("a");
        let mut enc = Encoder::new();
        let mut sat = SatSolver::new();
        enc.assert(&Formula::bool_var(a), &mut sat);
        enc.assert(&Formula::not(Formula::bool_var(a)), &mut sat);
        assert!(sat.solve().is_err());
    }
}
