//! Satisfying assignments returned by the SMT solver.

use std::collections::BTreeMap;
use std::fmt;

use crate::expr::{BoolVar, IntVar, VarPool};

/// A satisfying assignment over the declared SMT variables.
///
/// Models are produced by [`crate::SmtSolver::check`]; in ADVOCAT they are
/// translated back into deadlock *counterexamples* (queue occupancies and
/// automaton states).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Model {
    bools: BTreeMap<u32, bool>,
    ints: BTreeMap<u32, i64>,
}

impl Model {
    /// Creates an empty model.
    pub fn new() -> Self {
        Model::default()
    }

    /// Records the value of a Boolean variable.
    pub fn set_bool(&mut self, var: BoolVar, value: bool) {
        self.bools.insert(var.0, value);
    }

    /// Records the value of an integer variable.
    pub fn set_int(&mut self, var: IntVar, value: i64) {
        self.ints.insert(var.0, value);
    }

    /// Returns the value of a Boolean variable (`false` when the variable
    /// did not occur in any asserted formula).
    pub fn bool_value(&self, var: BoolVar) -> bool {
        self.bools.get(&var.0).copied().unwrap_or(false)
    }

    /// Returns the value of an integer variable.
    ///
    /// # Panics
    ///
    /// Panics if the variable was never declared to the solver that produced
    /// this model.
    pub fn int_value(&self, var: IntVar) -> i64 {
        *self
            .ints
            .get(&var.0)
            .expect("integer variable not present in model")
    }

    /// Returns the value of an integer variable, if present.
    pub fn try_int_value(&self, var: IntVar) -> Option<i64> {
        self.ints.get(&var.0).copied()
    }

    /// Renders the model using the names from a variable pool, listing only
    /// non-default values (true Booleans and non-zero integers) to keep the
    /// output readable.
    pub fn display<'a>(&'a self, pool: &'a VarPool) -> ModelDisplay<'a> {
        ModelDisplay { model: self, pool }
    }
}

/// Helper returned by [`Model::display`].
pub struct ModelDisplay<'a> {
    model: &'a Model,
    pool: &'a VarPool,
}

impl fmt::Display for ModelDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (idx, value) in &self.model.ints {
            if *value != 0 {
                writeln!(f, "{} = {}", self.pool.int_name(IntVar(*idx)), value)?;
            }
        }
        for (idx, value) in &self.model.bools {
            if *value {
                writeln!(f, "{}", self.pool.bool_name(BoolVar(*idx)))?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn missing_bool_defaults_to_false() {
        let mut pool = VarPool::new();
        let a = pool.new_bool("a");
        let model = Model::new();
        assert!(!model.bool_value(a));
    }

    #[test]
    fn int_values_roundtrip() {
        let mut pool = VarPool::new();
        let x = pool.new_int("x", 0, 5);
        let mut model = Model::new();
        model.set_int(x, 3);
        assert_eq!(model.int_value(x), 3);
        assert_eq!(model.try_int_value(x), Some(3));
    }

    #[test]
    fn display_lists_nonzero_entries_with_names() {
        let mut pool = VarPool::new();
        let x = pool.new_int("queue.q0.req", 0, 5);
        let y = pool.new_int("queue.q1.ack", 0, 5);
        let b = pool.new_bool("dead.cache0");
        let mut model = Model::new();
        model.set_int(x, 2);
        model.set_int(y, 0);
        model.set_bool(b, true);
        let text = model.display(&pool).to_string();
        assert!(text.contains("queue.q0.req = 2"));
        assert!(!text.contains("queue.q1.ack"));
        assert!(text.contains("dead.cache0"));
    }
}
