//! Lock-free bounded clause exchange for portfolio solving.
//!
//! A portfolio race runs N diversified clones of one SAT solver on the
//! same clause set; the clones help each other by exchanging *glue*
//! learnt clauses (low literal-block-distance, see
//! [`SolverConfig::glue_share_lbd`](crate::sat::SolverConfig)).  CDCL
//! learnt clauses are logical consequences of the clause set **alone** —
//! assumptions enter the search as decisions, never as reasons that
//! conflict analysis could resolve on — so a clause learnt by one worker
//! under one assumption set is sound to import into any clone, under any
//! assumptions, at any time.  (`tests/` cross-checks this implication
//! property against brute-force enumeration.)
//!
//! The transport is a bounded multi-producer single-consumer ring per
//! worker ([`ClauseChannel`]), wired all-to-all by [`ClauseExchange`]:
//! worker `i` publishes into every other worker's inbox and drains only
//! its own.  Slot hand-off uses the classic sequence-number protocol
//! (Vyukov): producers claim a slot by a single compare-and-swap on the
//! head counter, publish the payload, then release the slot by bumping
//! its sequence number; the consumer observes the sequence number before
//! touching the payload.  The payload cell itself is a `Mutex<Option<_>>`
//! because this crate forbids `unsafe`; the protocol guarantees the lock
//! is uncontended (exactly one thread touches a claimed slot at a time),
//! so the fast path is the two atomic operations.  A full inbox drops the
//! clause — sharing is an optimisation, never required for soundness.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use crate::sat::Lit;

/// A learnt clause in transit between portfolio workers.
#[derive(Clone, Debug)]
pub struct SharedClause {
    /// The literals, in the exporter's (shared) variable numbering.
    pub lits: Vec<Lit>,
    /// The exporter's literal-block-distance at learn time.
    pub lbd: u32,
}

const SLOT_EMPTY_LAG: usize = 0;

/// A bounded multi-producer single-consumer ring of [`SharedClause`]s.
#[derive(Debug)]
pub struct ClauseChannel {
    slots: Vec<Slot>,
    /// Next sequence number a producer will claim.
    head: AtomicUsize,
    /// Next sequence number the consumer will drain.
    tail: AtomicUsize,
}

#[derive(Debug)]
struct Slot {
    /// Slot `i` is writable when `seq == i + k·capacity` (for lap `k`) and
    /// readable when `seq == i + k·capacity + 1`.
    seq: AtomicUsize,
    payload: Mutex<Option<SharedClause>>,
}

impl ClauseChannel {
    /// Creates a channel holding at most `capacity` clauses.
    ///
    /// # Panics
    ///
    /// Panics when `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "clause channel needs at least one slot");
        ClauseChannel {
            slots: (0..capacity)
                .map(|i| Slot {
                    seq: AtomicUsize::new(i + SLOT_EMPTY_LAG),
                    payload: Mutex::new(None),
                })
                .collect(),
            head: AtomicUsize::new(0),
            tail: AtomicUsize::new(0),
        }
    }

    /// Publishes a clause.  Returns `false` (dropping the clause) when the
    /// ring is full — the consumer is behind and sharing is best-effort.
    pub fn send(&self, clause: SharedClause) -> bool {
        let cap = self.slots.len();
        loop {
            let head = self.head.load(Ordering::Acquire);
            let slot = &self.slots[head % cap];
            let seq = slot.seq.load(Ordering::Acquire);
            if seq == head {
                // Slot is writable for this lap: claim it.
                if self
                    .head
                    .compare_exchange_weak(head, head + 1, Ordering::AcqRel, Ordering::Relaxed)
                    .is_ok()
                {
                    // The claim makes this thread the slot's only visitor
                    // until the release below, so the lock is uncontended.
                    *slot.payload.lock().expect("slot lock poisoned") = Some(clause);
                    slot.seq.store(head + 1, Ordering::Release);
                    return true;
                }
                // Lost the race for this slot; retry with the new head.
            } else if seq < head + 1 {
                // The consumer has not freed this slot yet: the ring is
                // full from this producer's point of view.
                return false;
            }
            // seq > head: another producer advanced past us; retry.
        }
    }

    /// Takes the oldest pending clause, or `None` when the ring is empty.
    /// Single consumer: only the owning worker may call this.
    pub fn try_recv(&self) -> Option<SharedClause> {
        let cap = self.slots.len();
        let tail = self.tail.load(Ordering::Acquire);
        let slot = &self.slots[tail % cap];
        let seq = slot.seq.load(Ordering::Acquire);
        if seq != tail + 1 {
            return None; // nothing published here yet
        }
        let clause = slot
            .payload
            .lock()
            .expect("slot lock poisoned")
            .take()
            .expect("published slot holds a payload");
        // Free the slot for the producer lap after next.
        slot.seq.store(tail + cap, Ordering::Release);
        self.tail.store(tail + 1, Ordering::Release);
        Some(clause)
    }
}

/// Shared counters of one portfolio race, for telemetry.
#[derive(Debug, Default)]
pub struct ExchangeStats {
    /// Clauses successfully published (to any inbox).
    pub exported: AtomicU64,
    /// Clauses attached (or enqueued as units) by an importer.
    pub imported: AtomicU64,
    /// Publications dropped because an inbox was full.
    pub dropped: AtomicU64,
}

/// One worker's view of the all-to-all exchange: an inbox to drain and
/// every other worker's inbox to publish into.  Handed to a
/// [`SatSolver`](crate::sat::SatSolver) via
/// [`set_exchange`](crate::sat::SatSolver::set_exchange).
#[derive(Clone, Debug)]
pub struct ExchangeHandle {
    inbox: Arc<ClauseChannel>,
    outboxes: Vec<Arc<ClauseChannel>>,
    stats: Arc<ExchangeStats>,
}

impl ExchangeHandle {
    /// Publishes a learnt clause to every other worker.
    pub fn publish(&self, lits: &[Lit], lbd: u32) {
        for outbox in &self.outboxes {
            let sent = outbox.send(SharedClause {
                lits: lits.to_vec(),
                lbd,
            });
            if sent {
                self.stats.exported.fetch_add(1, Ordering::Relaxed);
            } else {
                self.stats.dropped.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Takes the oldest clause other workers published to this worker.
    pub fn try_recv(&self) -> Option<SharedClause> {
        self.inbox.try_recv()
    }

    /// Records `n` successful imports in the shared counters.
    pub fn note_imported(&self, n: u64) {
        if n > 0 {
            self.stats.imported.fetch_add(n, Ordering::Relaxed);
        }
    }
}

/// The all-to-all glue-clause exchange of one portfolio race.
#[derive(Debug)]
pub struct ClauseExchange {
    inboxes: Vec<Arc<ClauseChannel>>,
    stats: Arc<ExchangeStats>,
}

impl ClauseExchange {
    /// Creates an exchange for `workers` participants with a per-inbox
    /// capacity of `capacity` clauses.
    pub fn new(workers: usize, capacity: usize) -> Self {
        ClauseExchange {
            inboxes: (0..workers)
                .map(|_| Arc::new(ClauseChannel::new(capacity)))
                .collect(),
            stats: Arc::new(ExchangeStats::default()),
        }
    }

    /// The handle of worker `i`: drains inbox `i`, publishes to the rest.
    ///
    /// # Panics
    ///
    /// Panics when `i` is not a worker index of this exchange.
    pub fn handle(&self, i: usize) -> ExchangeHandle {
        assert!(i < self.inboxes.len(), "no worker {i} in this exchange");
        ExchangeHandle {
            inbox: Arc::clone(&self.inboxes[i]),
            outboxes: self
                .inboxes
                .iter()
                .enumerate()
                .filter(|&(j, _)| j != i)
                .map(|(_, c)| Arc::clone(c))
                .collect(),
            stats: Arc::clone(&self.stats),
        }
    }

    /// An extra consume-only handle draining inbox `i` without publishing
    /// anywhere; used to fold leftover glue clauses into the persistent
    /// session solver after a race.
    pub fn drain_handle(&self, i: usize) -> ExchangeHandle {
        assert!(i < self.inboxes.len(), "no worker {i} in this exchange");
        ExchangeHandle {
            inbox: Arc::clone(&self.inboxes[i]),
            outboxes: Vec::new(),
            stats: Arc::clone(&self.stats),
        }
    }

    /// Snapshot of the shared exchange counters
    /// `(exported, imported, dropped)`.
    pub fn stats(&self) -> (u64, u64, u64) {
        (
            self.stats.exported.load(Ordering::Relaxed),
            self.stats.imported.load(Ordering::Relaxed),
            self.stats.dropped.load(Ordering::Relaxed),
        )
    }
}

/// A shared cancellation flag: the race sets it once a definitive verdict
/// is in; workers poll it once per conflict and exit promptly.
pub type CancelFlag = Arc<AtomicBool>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64 as TestCounter;

    fn clause(v: usize) -> SharedClause {
        SharedClause {
            lits: vec![Lit::positive(v)],
            lbd: 1,
        }
    }

    #[test]
    fn fifo_order_and_bounded_capacity() {
        let ch = ClauseChannel::new(2);
        assert!(ch.send(clause(0)));
        assert!(ch.send(clause(1)));
        // Full: the third send is dropped, not blocked.
        assert!(!ch.send(clause(2)));
        assert_eq!(ch.try_recv().unwrap().lits[0].var(), 0);
        assert!(ch.send(clause(3)));
        assert_eq!(ch.try_recv().unwrap().lits[0].var(), 1);
        assert_eq!(ch.try_recv().unwrap().lits[0].var(), 3);
        assert!(ch.try_recv().is_none());
    }

    #[test]
    fn ring_survives_many_laps() {
        let ch = ClauseChannel::new(3);
        for round in 0..100usize {
            assert!(ch.send(clause(round)));
            assert_eq!(ch.try_recv().unwrap().lits[0].var(), round);
        }
        assert!(ch.try_recv().is_none());
    }

    #[test]
    fn concurrent_producers_lose_nothing_that_was_accepted() {
        let ch = Arc::new(ClauseChannel::new(64));
        let accepted = Arc::new(TestCounter::new(0));
        let received = Arc::new(TestCounter::new(0));
        std::thread::scope(|scope| {
            for t in 0..4usize {
                let ch = Arc::clone(&ch);
                let accepted = Arc::clone(&accepted);
                scope.spawn(move || {
                    for i in 0..500usize {
                        if ch.send(clause(t * 1000 + i)) {
                            accepted.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                });
            }
            let ch = Arc::clone(&ch);
            let received = Arc::clone(&received);
            scope.spawn(move || {
                let mut idle = 0;
                while idle < 1000 {
                    if ch.try_recv().is_some() {
                        received.fetch_add(1, Ordering::Relaxed);
                        idle = 0;
                    } else {
                        idle += 1;
                        std::thread::yield_now();
                    }
                }
            });
        });
        // Whatever remains in the ring after the consumer gave up:
        let mut rest = 0;
        while ch.try_recv().is_some() {
            rest += 1;
        }
        assert_eq!(
            accepted.load(Ordering::Relaxed),
            received.load(Ordering::Relaxed) + rest,
            "an accepted clause was lost or duplicated"
        );
    }

    #[test]
    fn exchange_routes_between_workers_but_not_to_self() {
        let ex = ClauseExchange::new(3, 16);
        let h0 = ex.handle(0);
        let h1 = ex.handle(1);
        let h2 = ex.handle(2);
        h0.publish(&[Lit::positive(7)], 2);
        // Workers 1 and 2 receive it; worker 0 does not.
        assert!(h0.try_recv().is_none());
        assert_eq!(h1.try_recv().unwrap().lits[0].var(), 7);
        assert_eq!(h2.try_recv().unwrap().lits[0].var(), 7);
        assert!(h1.try_recv().is_none());
        let (exported, imported, dropped) = ex.stats();
        assert_eq!(exported, 2);
        assert_eq!(imported, 0);
        assert_eq!(dropped, 0);
        h1.note_imported(2);
        assert_eq!(ex.stats().1, 2);
    }
}
