//! The lazy DPLL(T) loop combining the SAT core with the bounded-LIA
//! theory solver.
//!
//! The solver has two operating modes:
//!
//! * **cold** ([`SmtSolver::new`]) — every [`SmtSolver::check`] builds a
//!   fresh CNF encoding and SAT solver, exactly reproducing an
//!   off-the-shelf one-shot solver;
//! * **persistent** ([`SmtSolver::persistent`]) — the encoding, the SAT
//!   solver (including its learnt clauses, variable activities and watcher
//!   lists) and every theory lemma survive across `check()` calls.
//!   Assertions made inside a [`SmtSolver::push`]/[`SmtSolver::pop`] scope
//!   are guarded by an activation literal and solved under assumptions
//!   ([`crate::sat::SatSolver::solve_with_assumptions`]), so popping a
//!   scope retracts them without discarding anything the solver learnt.
//!
//! Theory lemmas (blocking clauses derived from infeasible conjunctions of
//! linear atoms) are consequences of the variable bounds alone, never of
//! the asserted formulas, so in persistent mode they are added as permanent
//! clauses and keep pruning the search in every later query.

use crate::cnf::Encoder;
use crate::expr::{BoolVar, Formula, IntVar, VarPool};
use crate::model::Model;
use crate::sat::{Lit, SatSolver, SatStats, SolveOutcome, SolverConfig};
use crate::share::{CancelFlag, ClauseExchange};
use crate::theory::{self, Constraint, TheoryVerdict};
use advocat_telemetry::SolverProfile;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::time::Instant;

/// Resource limits and search parameters for a satisfiability check.
#[derive(Clone, Debug)]
pub struct CheckConfig {
    /// Maximum number of theory-driven refinement iterations before the
    /// solver gives up with [`SmtResult::Unknown`].
    pub max_refinements: u64,
    /// Search-node budget for each theory feasibility check.
    pub theory_node_budget: u64,
    /// CDCL search parameters: learnt-database reduction, restart schedule
    /// and phase saving.  Applied to the underlying SAT solver at every
    /// check, so a long-lived persistent solver can be retuned per query.
    pub solver: SolverConfig,
}

impl Default for CheckConfig {
    fn default() -> Self {
        CheckConfig {
            max_refinements: 200_000,
            theory_node_budget: 2_000_000,
            solver: SolverConfig::default(),
        }
    }
}

/// Statistics of the most recent [`SmtSolver::check`] call.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SolverStats {
    /// Number of SAT/theory refinement iterations performed.
    pub refinements: u64,
    /// Number of theory conflicts (blocking clauses added).
    pub theory_conflicts: u64,
    /// Number of distinct linear atoms in the encoding.
    pub linear_atoms: usize,
    /// Number of propositional variables allocated by the encoding.
    pub sat_variables: usize,
    /// SAT conflicts encountered during this check (persistent mode reports
    /// the delta against the solver state before the check).
    pub sat_conflicts: u64,
    /// SAT unit propagations performed during this check (delta, like
    /// [`SolverStats::sat_conflicts`]).
    pub sat_propagations: u64,
    /// Learnt-database reductions performed during this check (delta).
    pub sat_reduced_dbs: u64,
    /// Clauses deleted by database reductions during this check (delta).
    pub sat_deleted_clauses: u64,
    /// Learnt clauses alive in the SAT solver after this check (snapshot;
    /// in cold mode this is the final count of the per-check solver, which
    /// is discarded when the check returns).
    pub sat_live_learnts: u64,
    /// Learnt clauses ever stored by the SAT solver, including deleted
    /// ones (snapshot of the monotone counter, like
    /// [`SolverStats::sat_live_learnts`]).
    pub sat_total_learnt: u64,
}

/// Outcome of a satisfiability check.
#[derive(Clone, Debug, PartialEq)]
pub enum SmtResult {
    /// The assertions are satisfiable; a model is returned.
    Sat(Model),
    /// The assertions are unsatisfiable.
    Unsat,
    /// The solver exhausted its resource budget.
    Unknown,
}

impl SmtResult {
    /// Returns the model, panicking when the result is not `Sat`.
    ///
    /// # Panics
    ///
    /// Panics if the result is `Unsat` or `Unknown`.
    pub fn expect_sat(self) -> Model {
        match self {
            SmtResult::Sat(model) => model,
            other => panic!("expected a satisfiable result, got {other:?}"),
        }
    }

    /// Returns `true` when the result is `Unsat`.
    pub fn is_unsat(&self) -> bool {
        matches!(self, SmtResult::Unsat)
    }

    /// Returns `true` when the result is `Sat`.
    pub fn is_sat(&self) -> bool {
        matches!(self, SmtResult::Sat(_))
    }
}

/// The long-lived encoding state of a persistent solver.
#[derive(Clone, Debug)]
struct Incremental {
    encoder: Encoder,
    sat: SatSolver,
    /// How many leading assertions have been encoded into `sat`.
    encoded: usize,
    /// Activation literal of each open scope, innermost last.
    scope_lits: Vec<Lit>,
}

impl Default for Incremental {
    fn default() -> Self {
        Incremental {
            encoder: Encoder::new(),
            // `SatSolver::new()`, not `SatSolver::default()`: only the
            // former initialises the ok flag and the activity increment.
            sat: SatSolver::new(),
            encoded: 0,
            scope_lits: Vec::new(),
        }
    }
}

/// An SMT solver for quantifier-free formulas over Booleans and bounded
/// linear integer arithmetic.
///
/// # Examples
///
/// ```
/// use advocat_logic::{Formula, LinExpr, SmtSolver};
///
/// let mut smt = SmtSolver::new();
/// let x = smt.new_int_var("x", 0, 3);
/// smt.assert(Formula::ge(LinExpr::var(x), LinExpr::constant(2)));
/// smt.assert(Formula::le(LinExpr::var(x), LinExpr::constant(1)));
/// assert!(smt.check().is_unsat());
/// ```
///
/// Persistent mode answers a sweep of related queries from one solver,
/// retracting the per-query constraint between checks:
///
/// ```
/// use advocat_logic::{Formula, LinExpr, SmtSolver};
///
/// let mut smt = SmtSolver::persistent();
/// let x = smt.new_int_var("x", 0, 10);
/// let y = smt.new_int_var("y", 0, 10);
/// smt.assert(Formula::eq(LinExpr::var(x) + LinExpr::var(y), LinExpr::constant(6)));
/// for cap in 0..3 {
///     smt.push();
///     smt.assert(Formula::le(LinExpr::var(x), LinExpr::constant(cap)));
///     assert!(smt.check().is_sat());
///     smt.pop();
/// }
/// ```
#[derive(Clone, Debug, Default)]
pub struct SmtSolver {
    pool: VarPool,
    assertions: Vec<Formula>,
    /// Assertion-count marks of the open scopes, innermost last.
    scope_marks: Vec<usize>,
    persistent: Option<Box<Incremental>>,
    stats: SolverStats,
    /// Phase attribution of the most recent check; empty unless the
    /// check's [`SolverConfig::telemetry`] handle was enabled.
    profile: SolverProfile,
}

impl SmtSolver {
    /// Creates an empty cold-mode solver: every check builds a fresh
    /// encoding and SAT solver.
    pub fn new() -> Self {
        SmtSolver::default()
    }

    /// Creates an empty persistent solver: the encoding, learnt clauses and
    /// theory lemmas survive across [`SmtSolver::check`] calls, and scoped
    /// assertions are retracted via assumption literals.
    pub fn persistent() -> Self {
        SmtSolver {
            persistent: Some(Box::default()),
            ..SmtSolver::default()
        }
    }

    /// Returns `true` for a solver created with [`SmtSolver::persistent`].
    pub fn is_persistent(&self) -> bool {
        self.persistent.is_some()
    }

    /// Declares a fresh Boolean variable.
    pub fn new_bool_var(&mut self, name: impl Into<String>) -> BoolVar {
        self.pool.new_bool(name)
    }

    /// Declares a fresh bounded integer variable (inclusive bounds).
    pub fn new_int_var(&mut self, name: impl Into<String>, lo: i64, hi: i64) -> IntVar {
        self.pool.new_int(name, lo, hi)
    }

    /// Gives read access to the variable pool (names, bounds).
    pub fn pool(&self) -> &VarPool {
        &self.pool
    }

    /// Asserts a formula in the innermost open scope (or permanently when
    /// no scope is open).
    pub fn assert(&mut self, formula: Formula) {
        self.assertions.push(formula);
    }

    /// Returns the currently active assertions, outermost first.
    pub fn assertions(&self) -> &[Formula] {
        &self.assertions
    }

    /// Opens an assertion scope: assertions made until the matching
    /// [`SmtSolver::pop`] are retracted by it.
    pub fn push(&mut self) {
        self.scope_marks.push(self.assertions.len());
        if let Some(inc) = self.persistent.as_mut() {
            let act = Lit::positive(inc.sat.new_var());
            inc.scope_lits.push(act);
        }
    }

    /// Closes the innermost scope, retracting its assertions.  In
    /// persistent mode the scope's activation literal is permanently
    /// disabled, which satisfies every clause the scope contributed while
    /// keeping all learnt clauses and theory lemmas.
    ///
    /// # Panics
    ///
    /// Panics when no scope is open.
    pub fn pop(&mut self) {
        let mark = self.scope_marks.pop().expect("pop without a matching push");
        self.assertions.truncate(mark);
        if let Some(inc) = self.persistent.as_mut() {
            inc.encoded = inc.encoded.min(mark);
            let act = inc
                .scope_lits
                .pop()
                .expect("scope literal tracked per scope");
            inc.sat.add_clause(&[act.negated()]);
        }
    }

    /// Returns the number of open scopes.
    pub fn scope_depth(&self) -> usize {
        self.scope_marks.len()
    }

    /// Returns statistics about the most recent check.
    pub fn stats(&self) -> SolverStats {
        self.stats
    }

    /// Takes the phase-attributed solver profile of the most recent check.
    /// Empty unless that check ran with an enabled
    /// [`SolverConfig::telemetry`] handle.
    pub fn take_profile(&mut self) -> SolverProfile {
        std::mem::take(&mut self.profile)
    }

    /// Returns the cumulative statistics of the underlying SAT solver.
    ///
    /// In persistent mode the counters accumulate over the whole life of
    /// the session (that is what makes reuse visible); in cold mode there
    /// is no long-lived SAT solver and `None` is returned.
    pub fn sat_stats(&self) -> Option<SatStats> {
        self.persistent.as_ref().map(|inc| inc.sat.stats())
    }

    /// Checks satisfiability with default resource limits.
    pub fn check(&mut self) -> SmtResult {
        self.check_with(&CheckConfig::default())
    }

    /// Checks satisfiability of the active assertions with the given
    /// resource limits.
    pub fn check_with(&mut self, config: &CheckConfig) -> SmtResult {
        self.check_assuming(&[], config)
    }

    /// Checks satisfiability of the active assertions **under assumptions**:
    /// each `(variable, polarity)` pair is held at the given truth value for
    /// this check only, without being asserted.
    ///
    /// Assumptions are the third retraction mechanism next to scopes and
    /// cold re-encoding, and the cheapest of the three: nothing is encoded,
    /// nothing has to be garbage-collected afterwards, and in persistent
    /// mode everything the solver learns under one assumption set keeps
    /// pruning the search under every later one.  They are what lets a
    /// verification session flip *specification selectors* (which deadlock
    /// target is active, whether invariant strengthening applies) between
    /// queries with no re-encode at all.
    ///
    /// A variable that never occurs in any asserted formula is allocated a
    /// SAT variable on the fly, so selector variables may be declared ahead
    /// of the formulas they will eventually guard.
    pub fn check_assuming(
        &mut self,
        assumptions: &[(BoolVar, bool)],
        config: &CheckConfig,
    ) -> SmtResult {
        match self.persistent.take() {
            Some(mut inc) => {
                let result = self.check_persistent(&mut inc, assumptions, config);
                self.persistent = Some(inc);
                result
            }
            None => self.check_cold(assumptions, config),
        }
    }

    /// One-shot check: fresh encoder and SAT solver, as in the original
    /// pipeline.
    fn check_cold(&mut self, assumptions: &[(BoolVar, bool)], config: &CheckConfig) -> SmtResult {
        let mut encoder = Encoder::new();
        let mut sat = SatSolver::with_config(config.solver.clone());
        for assertion in &self.assertions {
            encoder.assert(assertion, &mut sat);
        }
        let assumed: Vec<Lit> = assumptions
            .iter()
            .map(|&(v, sign)| Lit::new(encoder.sat_var_for_bool(v, &mut sat), sign))
            .collect();
        self.stats = SolverStats {
            linear_atoms: encoder.atom_count(),
            sat_variables: sat.num_vars(),
            ..SolverStats::default()
        };
        let (result, after) = if config.solver.portfolio > 1 {
            let (race, _exchange) = race_portfolio(
                &self.pool,
                &self.assertions,
                &encoder,
                &sat,
                &assumed,
                config,
            );
            self.stats.refinements = race.refinements;
            self.stats.theory_conflicts = race.theory_conflicts;
            self.profile = race.profile;
            (race.result, race.sat_after)
        } else {
            let outcome = refine(
                &self.pool,
                &self.assertions,
                &encoder,
                &mut sat,
                &assumed,
                config,
                &mut self.stats,
                None,
            );
            self.profile = sat.take_profile();
            (outcome.into_result(), sat.stats())
        };
        self.stats.sat_conflicts = after.conflicts;
        self.stats.sat_propagations = after.propagations;
        self.stats.sat_reduced_dbs = after.reduced_dbs;
        self.stats.sat_deleted_clauses = after.deleted_clauses;
        self.stats.sat_live_learnts = after.learnt_clauses;
        self.stats.sat_total_learnt = after.total_learnt;
        result
    }

    /// Incremental check: encode only the assertions added since the last
    /// check and solve under the activation literals of the open scopes
    /// plus the caller's per-check assumption literals.
    fn check_persistent(
        &mut self,
        inc: &mut Incremental,
        assumptions: &[(BoolVar, bool)],
        config: &CheckConfig,
    ) -> SmtResult {
        for i in inc.encoded..self.assertions.len() {
            // The innermost scope whose mark covers assertion `i` guards
            // it; assertions below every mark are permanent.  The guard
            // extends every clause of the encoding — not just the
            // top-level assertion — so popping the scope leaves nothing
            // behind for the solver's garbage collection to keep.
            let guard = self
                .scope_marks
                .iter()
                .rposition(|&mark| mark <= i)
                .map(|scope| inc.scope_lits[scope]);
            let lit = inc.encoder.encode_guarded(
                &self.assertions[i],
                guard.map(|act| act.negated()),
                &mut inc.sat,
            );
            match guard {
                Some(act) => inc.sat.add_clause(&[act.negated(), lit]),
                None => inc.sat.add_clause(&[lit]),
            };
        }
        inc.encoded = self.assertions.len();

        self.stats = SolverStats {
            linear_atoms: inc.encoder.atom_count(),
            sat_variables: inc.sat.num_vars(),
            ..SolverStats::default()
        };
        inc.sat.set_config(config.solver.diversify(0));
        let before = inc.sat.stats();
        let mut assumed = inc.scope_lits.clone();
        assumed.extend(
            assumptions
                .iter()
                .map(|&(v, sign)| Lit::new(inc.encoder.sat_var_for_bool(v, &mut inc.sat), sign)),
        );
        let (result, after) = if config.solver.portfolio > 1 {
            // Race diversified clones of the session solver; the session
            // solver itself does not search, but afterwards it absorbs the
            // glue clauses the race published (inbox `portfolio` of the
            // exchange belongs to no worker and saw every export), so the
            // next check — portfolio or not — starts ahead.
            let (race, exchange) = race_portfolio(
                &self.pool,
                &self.assertions,
                &inc.encoder,
                &inc.sat,
                &assumed,
                config,
            );
            self.stats.refinements = race.refinements;
            self.stats.theory_conflicts = race.theory_conflicts;
            self.profile = race.profile;
            inc.sat
                .set_exchange(Some(exchange.drain_handle(config.solver.portfolio)));
            inc.sat.import_shared_now();
            inc.sat.set_exchange(None);
            (race.result, race.sat_after)
        } else {
            let outcome = refine(
                &self.pool,
                &self.assertions,
                &inc.encoder,
                &mut inc.sat,
                &assumed,
                config,
                &mut self.stats,
                None,
            );
            self.profile = inc.sat.take_profile();
            (outcome.into_result(), inc.sat.stats())
        };
        self.stats.sat_conflicts = after.conflicts - before.conflicts;
        self.stats.sat_propagations = after.propagations - before.propagations;
        self.stats.sat_reduced_dbs = after.reduced_dbs - before.reduced_dbs;
        self.stats.sat_deleted_clauses = after.deleted_clauses - before.deleted_clauses;
        self.stats.sat_live_learnts = after.learnt_clauses;
        self.stats.sat_total_learnt = after.total_learnt;
        result
    }
}

/// Outcome of one [`refine`] run: either a verdict, or the cancellation
/// flag of a portfolio race flipped mid-search.
enum RefineOutcome {
    Done(SmtResult),
    Interrupted,
}

impl RefineOutcome {
    /// Unwraps the verdict of an uninterruptible run (no cancel flag).
    fn into_result(self) -> SmtResult {
        match self {
            RefineOutcome::Done(result) => result,
            RefineOutcome::Interrupted => {
                unreachable!("refine only reports Interrupted when a cancel flag is attached")
            }
        }
    }
}

/// The lazy SAT/theory refinement loop shared by both modes (and, in
/// portfolio mode, run by every racing worker on its own clone of the SAT
/// solver against the shared encoder).
///
/// Blocking clauses are justified by the variable bounds alone, so they
/// are always added as permanent clauses — in persistent mode they are
/// the "theory lemmas" that survive into later checks.  They are *not*
/// consequences of the clause set by itself, which is why they travel as
/// problem clauses here and never through the portfolio glue exchange
/// (the exchange carries only CDCL learnt clauses, which are).
///
/// With a cancel flag attached the loop polls it between refinements (the
/// SAT core additionally polls once per conflict) and reports
/// [`RefineOutcome::Interrupted`] without a verdict.
#[allow(clippy::too_many_arguments)]
fn refine(
    pool: &VarPool,
    assertions: &[Formula],
    encoder: &Encoder,
    sat: &mut SatSolver,
    assumptions: &[Lit],
    config: &CheckConfig,
    stats: &mut SolverStats,
    cancel: Option<&CancelFlag>,
) -> RefineOutcome {
    let bounds: Vec<(i64, i64)> = pool.int_vars().map(|v| pool.int_bounds(v)).collect();

    loop {
        if let Some(flag) = cancel {
            if flag.load(Ordering::Relaxed) {
                return RefineOutcome::Interrupted;
            }
        }
        if stats.refinements >= config.max_refinements {
            return RefineOutcome::Done(SmtResult::Unknown);
        }
        stats.refinements += 1;

        let sat_model = match sat.solve_limited(assumptions) {
            SolveOutcome::Sat(model) => model,
            SolveOutcome::Unsat => return RefineOutcome::Done(SmtResult::Unsat),
            SolveOutcome::Interrupted => return RefineOutcome::Interrupted,
        };

        // Extract the theory constraints implied by the SAT model.
        // Atoms whose SAT variable no longer occurs in any live clause
        // (their scope was popped and garbage-collected) are skipped:
        // nothing propositional constrains them, so their default
        // model value carries no information and forcing its theory
        // counterpart would only shrink — or wrongly empty — the
        // feasible space of long-lived sessions.
        let mut constraints: Vec<Constraint> = Vec::new();
        let mut atom_lits: Vec<Lit> = Vec::new();
        for (atom, sat_var) in encoder.linear_atoms() {
            if !sat.is_constrained(sat_var) {
                continue;
            }
            let assigned_true = sat_model[sat_var];
            let effective = if assigned_true {
                atom.clone()
            } else {
                atom.negated()
            };
            constraints.push(Constraint::new(
                effective
                    .terms
                    .iter()
                    .map(|(c, v)| (*c, v.index()))
                    .collect(),
                effective.bound,
            ));
            atom_lits.push(Lit::new(sat_var, assigned_true));
        }

        match theory::solve(&bounds, &constraints, config.theory_node_budget) {
            TheoryVerdict::Sat(values) => {
                let mut model = Model::new();
                for v in pool.int_vars() {
                    model.set_int(v, values[v.index()]);
                }
                for v in pool.bool_vars() {
                    if let Some(sat_var) = encoder.lookup_bool(v) {
                        model.set_bool(v, sat_model[sat_var]);
                    }
                }
                debug_assert!(
                    assertions
                        .iter()
                        .all(|f| f
                            .evaluate(&mut |b| model.bool_value(b), &mut |i| model.int_value(i))),
                    "internal error: SMT model does not satisfy the assertions"
                );
                return RefineOutcome::Done(SmtResult::Sat(model));
            }
            TheoryVerdict::Unknown => return RefineOutcome::Done(SmtResult::Unknown),
            TheoryVerdict::Unsat => {
                stats.theory_conflicts += 1;
                let core = minimize_core(&bounds, &constraints);
                if core.is_empty() {
                    // The theory is unsatisfiable regardless of the
                    // propositional skeleton: the whole problem is unsat.
                    return RefineOutcome::Done(SmtResult::Unsat);
                }
                let blocking: Vec<Lit> = core.iter().map(|&idx| atom_lits[idx].negated()).collect();
                if !sat.add_clause(&blocking) {
                    return RefineOutcome::Done(SmtResult::Unsat);
                }
            }
        }
    }
}

/// What the winning (or, failing a definitive verdict, the first) worker
/// of a portfolio race reported.
struct RaceOutcome {
    result: SmtResult,
    refinements: u64,
    theory_conflicts: u64,
    /// The winner's cumulative SAT statistics (its clone started from the
    /// session solver's counters, so deltas against `before` attribute the
    /// race's work exactly as in the sequential path).
    sat_after: SatStats,
    profile: SolverProfile,
}

/// Races `config.solver.portfolio` diversified clones of `base_sat` on the
/// shared encoding; the first definitive (`Sat`/`Unsat`) verdict wins and
/// the losers are cancelled promptly (polled once per conflict).  Glue
/// clauses flow between the workers through a [`ClauseExchange`] whose
/// extra last inbox saw every export; the exchange is returned so a
/// persistent session solver can drain it.
///
/// Verdicts are *semantic* — every worker decides the same formula, so
/// whichever worker wins, `Sat`/`Unsat` agree with the sequential path.
/// `Unknown` is not definitive: it only becomes the race verdict when no
/// worker produced a better one.
fn race_portfolio(
    pool: &VarPool,
    assertions: &[Formula],
    encoder: &Encoder,
    base_sat: &SatSolver,
    assumed: &[Lit],
    config: &CheckConfig,
) -> (RaceOutcome, ClauseExchange) {
    let workers = config.solver.portfolio;
    let telemetry = config.solver.telemetry.clone();
    let _span = telemetry.span_with("sat.portfolio", || vec![("workers", workers.to_string())]);
    let cancel: CancelFlag = Arc::new(AtomicBool::new(false));
    let exchange = ClauseExchange::new(workers + 1, 4096);
    let (tx, rx) = mpsc::channel();

    let mut winner: Option<(usize, RaceOutcome)> = None;
    let mut fallback: Option<(usize, RaceOutcome)> = None;
    let mut cancelled_at: Option<Instant> = None;
    let mut cancel_latency = None;
    std::thread::scope(|scope| {
        for i in 0..workers {
            let tx = tx.clone();
            let cancel = Arc::clone(&cancel);
            let handle = exchange.handle(i);
            let mut sat = base_sat.clone();
            let worker_config = CheckConfig {
                solver: config.solver.diversify(i),
                ..config.clone()
            };
            scope.spawn(move || {
                sat.set_interrupt(Some(Arc::clone(&cancel)));
                sat.set_exchange(Some(handle));
                sat.set_config(worker_config.solver.clone());
                let mut stats = SolverStats::default();
                let outcome = refine(
                    pool,
                    assertions,
                    encoder,
                    &mut sat,
                    assumed,
                    &worker_config,
                    &mut stats,
                    Some(&cancel),
                );
                let _ = tx.send((i, outcome, stats, sat.stats(), sat.take_profile()));
            });
        }
        drop(tx);
        // Every worker sends exactly one message (interrupted ones too),
        // so this loop sees all of them and the scope join is immediate.
        for (i, outcome, stats, sat_after, profile) in rx.iter() {
            let now = Instant::now();
            if let Some(t) = cancelled_at {
                // Updated on every post-cancel report: by loop end it holds
                // the straggler latency, i.e. how long cancellation took.
                cancel_latency = Some(now.duration_since(t));
            }
            let race = |result| RaceOutcome {
                result,
                refinements: stats.refinements,
                theory_conflicts: stats.theory_conflicts,
                sat_after,
                profile,
            };
            match outcome {
                RefineOutcome::Done(result @ (SmtResult::Sat(_) | SmtResult::Unsat))
                    if winner.is_none() =>
                {
                    winner = Some((i, race(result)));
                    cancel.store(true, Ordering::Relaxed);
                    cancelled_at = Some(now);
                }
                RefineOutcome::Done(_) | RefineOutcome::Interrupted => {
                    if fallback.is_none() {
                        fallback = Some((i, race(SmtResult::Unknown)));
                    }
                }
            }
        }
    });

    let (winner_id, outcome) = winner
        .or(fallback)
        .expect("every portfolio worker reports exactly once");
    let (exported, imported, dropped) = exchange.stats();
    let cancel_us = cancel_latency.unwrap_or_default().as_micros() as u64;
    telemetry.event_with("sat.portfolio.race", || {
        vec![
            ("winner", winner_id.to_string()),
            ("workers", workers.to_string()),
            ("exported", exported.to_string()),
            ("imported", imported.to_string()),
            ("dropped", dropped.to_string()),
            ("cancel_us", cancel_us.to_string()),
        ]
    });
    if let Some(metrics) = telemetry.metrics() {
        metrics
            .counter("sat_portfolio_races_total", "Portfolio races run")
            .inc();
        metrics
            .counter(
                "sat_portfolio_clauses_exported_total",
                "Glue clauses published to the portfolio exchange",
            )
            .add(exported);
        metrics
            .counter(
                "sat_portfolio_clauses_imported_total",
                "Glue clauses imported from the portfolio exchange",
            )
            .add(imported);
        metrics
            .gauge(
                "sat_portfolio_last_winner",
                "Index of the worker that won the most recent race",
            )
            .set(winner_id as i64);
        metrics
            .histogram(
                "sat_portfolio_cancel_seconds",
                "Latency between the winning verdict and the last loser exiting",
            )
            .observe_us(cancel_us);
    }
    (outcome, exchange)
}

/// Deletion-based minimisation of an infeasible constraint set.
///
/// Starting from all constraint indices, repeatedly drops constraints whose
/// removal keeps the set refutable *by interval propagation alone*.  The
/// result is always a genuinely infeasible subset (possibly not minimal),
/// which is all that soundness of the blocking clause requires.  When
/// propagation alone cannot refute even the full set (the conflict was found
/// by branching), the full index set is returned.
fn minimize_core(bounds: &[(i64, i64)], constraints: &[Constraint]) -> Vec<usize> {
    let all: Vec<usize> = (0..constraints.len()).collect();
    let subset = |keep: &[usize]| -> Vec<Constraint> {
        keep.iter().map(|&i| constraints[i].clone()).collect()
    };
    if !theory::refuted_by_propagation(bounds, &subset(&all)) {
        return all;
    }
    let mut core = all;
    let mut idx = 0;
    while idx < core.len() {
        let mut candidate = core.clone();
        candidate.remove(idx);
        if theory::refuted_by_propagation(bounds, &subset(&candidate)) {
            core = candidate;
        } else {
            idx += 1;
        }
    }
    core
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::LinExpr;

    #[test]
    fn pure_boolean_problems_work() {
        let mut smt = SmtSolver::new();
        let a = smt.new_bool_var("a");
        let b = smt.new_bool_var("b");
        smt.assert(Formula::or([Formula::bool_var(a), Formula::bool_var(b)]));
        smt.assert(Formula::not(Formula::bool_var(a)));
        let model = smt.check().expect_sat();
        assert!(!model.bool_value(a));
        assert!(model.bool_value(b));
    }

    #[test]
    fn pure_arithmetic_sat_and_unsat() {
        let mut smt = SmtSolver::new();
        let x = smt.new_int_var("x", 0, 10);
        let y = smt.new_int_var("y", 0, 10);
        smt.assert(Formula::eq(
            LinExpr::var(x) + LinExpr::var(y),
            LinExpr::constant(7),
        ));
        smt.assert(Formula::ge(LinExpr::var(x), LinExpr::constant(5)));
        let model = smt.check().expect_sat();
        assert_eq!(model.int_value(x) + model.int_value(y), 7);
        assert!(model.int_value(x) >= 5);

        let mut smt = SmtSolver::new();
        let x = smt.new_int_var("x", 0, 3);
        smt.assert(Formula::gt(LinExpr::var(x), LinExpr::constant(3)));
        assert!(smt.check().is_unsat());
    }

    #[test]
    fn mixed_boolean_and_arithmetic() {
        // b -> x >= 3,  !b -> x = 0,  x >= 1  ==> b and x >= 3.
        let mut smt = SmtSolver::new();
        let b = smt.new_bool_var("b");
        let x = smt.new_int_var("x", 0, 5);
        smt.assert(Formula::implies(
            Formula::bool_var(b),
            Formula::ge(LinExpr::var(x), LinExpr::constant(3)),
        ));
        smt.assert(Formula::implies(
            Formula::not(Formula::bool_var(b)),
            Formula::eq(LinExpr::var(x), LinExpr::constant(0)),
        ));
        smt.assert(Formula::ge(LinExpr::var(x), LinExpr::constant(1)));
        let model = smt.check().expect_sat();
        assert!(model.bool_value(b));
        assert!(model.int_value(x) >= 3);
    }

    #[test]
    fn binary_indicator_variables_behave_like_the_paper_examples() {
        // The running example invariant: s1 + t0 - 1 = #q0 + #q1, with
        // s0 + s1 = 1 and t0 + t1 = 1 and queue sizes 2.  Asking for a state
        // where both queues are full must be unsatisfiable.
        let mut smt = SmtSolver::new();
        let s0 = smt.new_int_var("S.s0", 0, 1);
        let s1 = smt.new_int_var("S.s1", 0, 1);
        let t0 = smt.new_int_var("T.t0", 0, 1);
        let t1 = smt.new_int_var("T.t1", 0, 1);
        let q0 = smt.new_int_var("#q0", 0, 2);
        let q1 = smt.new_int_var("#q1", 0, 2);
        smt.assert(Formula::eq(
            LinExpr::var(s0) + LinExpr::var(s1),
            LinExpr::constant(1),
        ));
        smt.assert(Formula::eq(
            LinExpr::var(t0) + LinExpr::var(t1),
            LinExpr::constant(1),
        ));
        smt.assert(Formula::eq(
            LinExpr::var(s1) + LinExpr::var(t0) - LinExpr::constant(1),
            LinExpr::var(q0) + LinExpr::var(q1),
        ));
        smt.assert(Formula::ge(
            LinExpr::var(q0) + LinExpr::var(q1),
            LinExpr::constant(3),
        ));
        assert!(smt.check().is_unsat());
    }

    #[test]
    fn unknown_on_zero_refinement_budget() {
        let mut smt = SmtSolver::new();
        let x = smt.new_int_var("x", 0, 3);
        smt.assert(Formula::ge(LinExpr::var(x), LinExpr::constant(1)));
        let config = CheckConfig {
            max_refinements: 0,
            ..CheckConfig::default()
        };
        assert_eq!(smt.check_with(&config), SmtResult::Unknown);
    }

    #[test]
    fn iff_and_ne_operators_are_supported() {
        let mut smt = SmtSolver::new();
        let a = smt.new_bool_var("a");
        let x = smt.new_int_var("x", 0, 4);
        smt.assert(Formula::iff(
            Formula::bool_var(a),
            Formula::ne(LinExpr::var(x), LinExpr::constant(2)),
        ));
        smt.assert(Formula::not(Formula::bool_var(a)));
        let model = smt.check().expect_sat();
        assert_eq!(model.int_value(x), 2);
        assert!(!model.bool_value(a));
    }

    #[test]
    fn stats_are_populated() {
        let mut smt = SmtSolver::new();
        let x = smt.new_int_var("x", 0, 4);
        smt.assert(Formula::ge(LinExpr::var(x), LinExpr::constant(1)));
        let _ = smt.check();
        assert!(smt.stats().refinements >= 1);
        assert!(smt.stats().sat_variables >= 1);
    }

    #[test]
    fn cold_push_pop_retracts_assertions() {
        let mut smt = SmtSolver::new();
        let x = smt.new_int_var("x", 0, 5);
        smt.assert(Formula::ge(LinExpr::var(x), LinExpr::constant(2)));
        smt.push();
        smt.assert(Formula::le(LinExpr::var(x), LinExpr::constant(1)));
        assert!(smt.check().is_unsat());
        smt.pop();
        assert!(smt.check().is_sat());
        assert_eq!(smt.scope_depth(), 0);
    }

    #[test]
    fn persistent_push_pop_matches_cold_results() {
        // A small sweep answered by one persistent solver must agree with
        // fresh cold solvers at every step.
        let mut session = SmtSolver::persistent();
        let x = session.new_int_var("x", 0, 8);
        let y = session.new_int_var("y", 0, 8);
        let base = Formula::eq(LinExpr::var(x) + LinExpr::var(y), LinExpr::constant(5));
        session.assert(base.clone());
        for cap in 0..=6i64 {
            session.push();
            session.assert(Formula::le(LinExpr::var(x), LinExpr::constant(cap)));
            session.assert(Formula::ge(LinExpr::var(y), LinExpr::constant(5 - cap)));
            let persistent_sat = session.check().is_sat();
            session.pop();

            let mut cold = SmtSolver::new();
            let cx = cold.new_int_var("x", 0, 8);
            let cy = cold.new_int_var("y", 0, 8);
            cold.assert(Formula::eq(
                LinExpr::var(cx) + LinExpr::var(cy),
                LinExpr::constant(5),
            ));
            cold.assert(Formula::le(LinExpr::var(cx), LinExpr::constant(cap)));
            cold.assert(Formula::ge(LinExpr::var(cy), LinExpr::constant(5 - cap)));
            assert_eq!(persistent_sat, cold.check().is_sat(), "capacity {cap}");
        }
        assert!(session.sat_stats().is_some());
    }

    #[test]
    fn persistent_mode_keeps_scope_zero_assertions() {
        let mut smt = SmtSolver::persistent();
        let x = smt.new_int_var("x", 0, 3);
        smt.assert(Formula::ge(LinExpr::var(x), LinExpr::constant(1)));
        assert!(smt.check().is_sat());
        // A permanently contradictory assertion flips the solver to unsat…
        smt.assert(Formula::le(LinExpr::var(x), LinExpr::constant(0)));
        assert!(smt.check().is_unsat());
        // …and it stays unsat on re-check (nothing was retracted).
        assert!(smt.check().is_unsat());
    }

    #[test]
    fn persistent_unsat_scope_does_not_poison_later_queries() {
        let mut smt = SmtSolver::persistent();
        let x = smt.new_int_var("x", 0, 4);
        smt.assert(Formula::ge(LinExpr::var(x), LinExpr::constant(2)));
        smt.push();
        smt.assert(Formula::le(LinExpr::var(x), LinExpr::constant(1)));
        assert!(smt.check().is_unsat());
        smt.pop();
        smt.push();
        smt.assert(Formula::le(LinExpr::var(x), LinExpr::constant(3)));
        let model = smt.check().expect_sat();
        let v = model.int_value(x);
        assert!((2..=3).contains(&v));
        smt.pop();
    }

    #[test]
    fn nested_scopes_retract_in_order() {
        let mut smt = SmtSolver::persistent();
        let x = smt.new_int_var("x", 0, 9);
        smt.push();
        smt.assert(Formula::ge(LinExpr::var(x), LinExpr::constant(4)));
        smt.push();
        smt.assert(Formula::le(LinExpr::var(x), LinExpr::constant(3)));
        assert!(smt.check().is_unsat());
        smt.pop();
        let model = smt.check().expect_sat();
        assert!(model.int_value(x) >= 4);
        smt.pop();
        let model = smt.check().expect_sat();
        assert!(model.int_value(x) >= 0);
    }

    #[test]
    fn solver_knobs_thread_through_persistent_checks() {
        // The same sweep answered with and without clause reduction must
        // agree on every verdict, and the aggressively reduced session must
        // report reductions with a live count at or below the total.
        let sweep = |solver: crate::sat::SolverConfig| -> (Vec<bool>, SolverStats) {
            let config = CheckConfig {
                solver,
                ..CheckConfig::default()
            };
            let mut smt = SmtSolver::persistent();
            let x = smt.new_int_var("x", 0, 12);
            let y = smt.new_int_var("y", 0, 12);
            smt.assert(Formula::eq(
                LinExpr::var(x) + LinExpr::var(y),
                LinExpr::constant(9),
            ));
            let mut verdicts = Vec::new();
            for cap in 0..=12i64 {
                smt.push();
                smt.assert(Formula::le(LinExpr::var(x), LinExpr::constant(cap)));
                smt.assert(Formula::ge(LinExpr::var(y), LinExpr::constant(cap)));
                verdicts.push(smt.check_with(&config).is_sat());
                smt.pop();
            }
            (verdicts, smt.stats())
        };
        let churn = crate::sat::SolverConfig {
            first_reduce: 2,
            reduce_interval: 1,
            keep_lbd: 0,
            luby_base: 2,
            ..crate::sat::SolverConfig::default()
        };
        let unbounded = crate::sat::SolverConfig {
            clause_reduction: false,
            ..crate::sat::SolverConfig::default()
        };
        let (reduced_verdicts, reduced_stats) = sweep(churn);
        let (unbounded_verdicts, unbounded_stats) = sweep(unbounded);
        assert_eq!(reduced_verdicts, unbounded_verdicts);
        assert_eq!(unbounded_stats.sat_reduced_dbs, 0);
        assert!(reduced_stats.sat_live_learnts <= reduced_stats.sat_total_learnt);
    }

    #[test]
    fn assumptions_select_guarded_assertions_without_re_encoding() {
        let mut smt = SmtSolver::persistent();
        let sel_a = smt.new_bool_var("sel_a");
        let sel_b = smt.new_bool_var("sel_b");
        let x = smt.new_int_var("x", 0, 10);
        smt.assert(Formula::implies(
            Formula::bool_var(sel_a),
            Formula::ge(LinExpr::var(x), LinExpr::constant(7)),
        ));
        smt.assert(Formula::implies(
            Formula::bool_var(sel_b),
            Formula::le(LinExpr::var(x), LinExpr::constant(3)),
        ));
        let config = CheckConfig::default();
        let m = smt.check_assuming(&[(sel_a, true)], &config).expect_sat();
        assert!(m.int_value(x) >= 7);
        let m = smt.check_assuming(&[(sel_b, true)], &config).expect_sat();
        assert!(m.int_value(x) <= 3);
        assert!(smt
            .check_assuming(&[(sel_a, true), (sel_b, true)], &config)
            .is_unsat());
        // Nothing was asserted: retracting the assumptions restores
        // satisfiability without a pop.
        assert!(smt.check().is_sat());
    }

    #[test]
    fn assumptions_compose_with_scopes() {
        let mut smt = SmtSolver::persistent();
        let sel = smt.new_bool_var("sel");
        let x = smt.new_int_var("x", 0, 9);
        smt.assert(Formula::implies(
            Formula::bool_var(sel),
            Formula::ge(LinExpr::var(x), LinExpr::constant(5)),
        ));
        smt.push();
        smt.assert(Formula::le(LinExpr::var(x), LinExpr::constant(4)));
        assert!(smt
            .check_assuming(&[(sel, true)], &CheckConfig::default())
            .is_unsat());
        // Same scope, selector retracted: satisfiable again.
        let m = smt
            .check_assuming(&[(sel, false)], &CheckConfig::default())
            .expect_sat();
        assert!(m.int_value(x) <= 4);
        smt.pop();
        let m = smt
            .check_assuming(&[(sel, true)], &CheckConfig::default())
            .expect_sat();
        assert!(m.int_value(x) >= 5);
    }

    #[test]
    fn assumptions_work_in_cold_mode_and_on_unencoded_variables() {
        let mut smt = SmtSolver::new();
        let sel = smt.new_bool_var("sel");
        let x = smt.new_int_var("x", 0, 5);
        smt.assert(Formula::implies(
            Formula::bool_var(sel),
            Formula::ge(LinExpr::var(x), LinExpr::constant(4)),
        ));
        let m = smt
            .check_assuming(&[(sel, true)], &CheckConfig::default())
            .expect_sat();
        assert!(m.int_value(x) >= 4);
        assert!(m.bool_value(sel));
        // A variable that occurs in no assertion is allocated on the fly:
        // assuming it merely pins its value.
        let free = smt.new_bool_var("free");
        let m = smt
            .check_assuming(&[(free, false)], &CheckConfig::default())
            .expect_sat();
        assert!(!m.bool_value(free));
    }

    #[test]
    fn portfolio_checks_agree_with_sequential_in_both_modes() {
        // The same scope/assumption sweep answered sequentially and by
        // 2- and 4-worker portfolios must produce identical verdicts, in
        // cold and in persistent mode.
        let sweep = |persistent: bool, workers: usize| -> Vec<bool> {
            let config = CheckConfig {
                solver: SolverConfig::portfolio(workers),
                ..CheckConfig::default()
            };
            let mut smt = if persistent {
                SmtSolver::persistent()
            } else {
                SmtSolver::new()
            };
            let sel = smt.new_bool_var("sel");
            let x = smt.new_int_var("x", 0, 12);
            let y = smt.new_int_var("y", 0, 12);
            smt.assert(Formula::eq(
                LinExpr::var(x) + LinExpr::var(y),
                LinExpr::constant(9),
            ));
            smt.assert(Formula::implies(
                Formula::bool_var(sel),
                Formula::ge(LinExpr::var(y), LinExpr::constant(6)),
            ));
            let mut verdicts = Vec::new();
            for cap in 0..=12i64 {
                smt.push();
                smt.assert(Formula::le(LinExpr::var(x), LinExpr::constant(cap)));
                verdicts.push(smt.check_with(&config).is_sat());
                verdicts.push(smt.check_assuming(&[(sel, true)], &config).is_sat());
                smt.pop();
            }
            verdicts
        };
        for persistent in [false, true] {
            let sequential = sweep(persistent, 1);
            for workers in [2, 4] {
                assert_eq!(
                    sweep(persistent, workers),
                    sequential,
                    "portfolio({workers}) disagrees with sequential (persistent: {persistent})"
                );
            }
        }
    }

    #[test]
    fn per_check_sat_stats_are_deltas() {
        let mut smt = SmtSolver::persistent();
        let x = smt.new_int_var("x", 0, 6);
        smt.assert(Formula::ge(LinExpr::var(x), LinExpr::constant(1)));
        let _ = smt.check();
        let first = smt.stats().sat_propagations;
        let _ = smt.check();
        let cumulative = smt.sat_stats().expect("persistent").propagations;
        // The second check's delta cannot exceed the cumulative counter
        // minus the first delta.
        assert!(smt.stats().sat_propagations + first <= cumulative);
    }
}
