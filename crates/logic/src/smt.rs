//! The lazy DPLL(T) loop combining the SAT core with the bounded-LIA
//! theory solver.

use crate::cnf::Encoder;
use crate::expr::{BoolVar, Formula, IntVar, VarPool};
use crate::model::Model;
use crate::sat::{Lit, SatSolver};
use crate::theory::{self, Constraint, TheoryVerdict};

/// Resource limits for a satisfiability check.
#[derive(Clone, Copy, Debug)]
pub struct CheckConfig {
    /// Maximum number of theory-driven refinement iterations before the
    /// solver gives up with [`SmtResult::Unknown`].
    pub max_refinements: u64,
    /// Search-node budget for each theory feasibility check.
    pub theory_node_budget: u64,
}

impl Default for CheckConfig {
    fn default() -> Self {
        CheckConfig {
            max_refinements: 200_000,
            theory_node_budget: 2_000_000,
        }
    }
}

/// Statistics of the most recent [`SmtSolver::check`] call.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SolverStats {
    /// Number of SAT/theory refinement iterations performed.
    pub refinements: u64,
    /// Number of theory conflicts (blocking clauses added).
    pub theory_conflicts: u64,
    /// Number of distinct linear atoms in the encoding.
    pub linear_atoms: usize,
    /// Number of propositional variables allocated by the encoding.
    pub sat_variables: usize,
}

/// Outcome of a satisfiability check.
#[derive(Clone, Debug, PartialEq)]
pub enum SmtResult {
    /// The assertions are satisfiable; a model is returned.
    Sat(Model),
    /// The assertions are unsatisfiable.
    Unsat,
    /// The solver exhausted its resource budget.
    Unknown,
}

impl SmtResult {
    /// Returns the model, panicking when the result is not `Sat`.
    ///
    /// # Panics
    ///
    /// Panics if the result is `Unsat` or `Unknown`.
    pub fn expect_sat(self) -> Model {
        match self {
            SmtResult::Sat(model) => model,
            other => panic!("expected a satisfiable result, got {other:?}"),
        }
    }

    /// Returns `true` when the result is `Unsat`.
    pub fn is_unsat(&self) -> bool {
        matches!(self, SmtResult::Unsat)
    }

    /// Returns `true` when the result is `Sat`.
    pub fn is_sat(&self) -> bool {
        matches!(self, SmtResult::Sat(_))
    }
}

/// An SMT solver for quantifier-free formulas over Booleans and bounded
/// linear integer arithmetic.
///
/// # Examples
///
/// ```
/// use advocat_logic::{Formula, LinExpr, SmtSolver};
///
/// let mut smt = SmtSolver::new();
/// let x = smt.new_int_var("x", 0, 3);
/// smt.assert(Formula::ge(LinExpr::var(x), LinExpr::constant(2)));
/// smt.assert(Formula::le(LinExpr::var(x), LinExpr::constant(1)));
/// assert!(smt.check().is_unsat());
/// ```
#[derive(Clone, Debug, Default)]
pub struct SmtSolver {
    pool: VarPool,
    assertions: Vec<Formula>,
    stats: SolverStats,
}

impl SmtSolver {
    /// Creates an empty solver.
    pub fn new() -> Self {
        SmtSolver::default()
    }

    /// Declares a fresh Boolean variable.
    pub fn new_bool_var(&mut self, name: impl Into<String>) -> BoolVar {
        self.pool.new_bool(name)
    }

    /// Declares a fresh bounded integer variable (inclusive bounds).
    pub fn new_int_var(&mut self, name: impl Into<String>, lo: i64, hi: i64) -> IntVar {
        self.pool.new_int(name, lo, hi)
    }

    /// Gives read access to the variable pool (names, bounds).
    pub fn pool(&self) -> &VarPool {
        &self.pool
    }

    /// Asserts a formula.
    pub fn assert(&mut self, formula: Formula) {
        self.assertions.push(formula);
    }

    /// Returns the assertions added so far.
    pub fn assertions(&self) -> &[Formula] {
        &self.assertions
    }

    /// Returns statistics about the most recent check.
    pub fn stats(&self) -> SolverStats {
        self.stats
    }

    /// Checks satisfiability with default resource limits.
    pub fn check(&mut self) -> SmtResult {
        self.check_with(&CheckConfig::default())
    }

    /// Checks satisfiability with the given resource limits.
    pub fn check_with(&mut self, config: &CheckConfig) -> SmtResult {
        let mut encoder = Encoder::new();
        let mut sat = SatSolver::new();
        for assertion in &self.assertions {
            encoder.assert(assertion, &mut sat);
        }
        self.stats = SolverStats {
            linear_atoms: encoder.atom_count(),
            sat_variables: sat.num_vars(),
            ..SolverStats::default()
        };

        let bounds: Vec<(i64, i64)> = self.pool.int_vars().map(|v| self.pool.int_bounds(v)).collect();

        loop {
            if self.stats.refinements >= config.max_refinements {
                return SmtResult::Unknown;
            }
            self.stats.refinements += 1;

            let sat_model = match sat.solve() {
                Ok(model) => model,
                Err(_) => return SmtResult::Unsat,
            };

            // Extract the theory constraints implied by the SAT model.
            let mut constraints: Vec<Constraint> = Vec::new();
            let mut atom_lits: Vec<Lit> = Vec::new();
            for (atom, sat_var) in encoder.linear_atoms() {
                let assigned_true = sat_model[sat_var];
                let effective = if assigned_true {
                    atom.clone()
                } else {
                    atom.negated()
                };
                constraints.push(Constraint::new(
                    effective
                        .terms
                        .iter()
                        .map(|(c, v)| (*c, v.index()))
                        .collect(),
                    effective.bound,
                ));
                atom_lits.push(Lit::new(sat_var, assigned_true));
            }

            match theory::solve(&bounds, &constraints, config.theory_node_budget) {
                TheoryVerdict::Sat(values) => {
                    let mut model = Model::new();
                    for v in self.pool.int_vars() {
                        model.set_int(v, values[v.index()]);
                    }
                    for v in self.pool.bool_vars() {
                        if let Some(sat_var) = encoder.lookup_bool(v) {
                            model.set_bool(v, sat_model[sat_var]);
                        }
                    }
                    debug_assert!(
                        self.assertions.iter().all(|f| f.evaluate(
                            &mut |b| model.bool_value(b),
                            &mut |i| model.int_value(i)
                        )),
                        "internal error: SMT model does not satisfy the assertions"
                    );
                    return SmtResult::Sat(model);
                }
                TheoryVerdict::Unknown => return SmtResult::Unknown,
                TheoryVerdict::Unsat => {
                    self.stats.theory_conflicts += 1;
                    let core = minimize_core(&bounds, &constraints);
                    if core.is_empty() {
                        // The theory is unsatisfiable regardless of the
                        // propositional skeleton: the whole problem is unsat.
                        return SmtResult::Unsat;
                    }
                    let blocking: Vec<Lit> =
                        core.iter().map(|&idx| atom_lits[idx].negated()).collect();
                    if !sat.add_clause(&blocking) {
                        return SmtResult::Unsat;
                    }
                }
            }
        }
    }
}

/// Deletion-based minimisation of an infeasible constraint set.
///
/// Starting from all constraint indices, repeatedly drops constraints whose
/// removal keeps the set refutable *by interval propagation alone*.  The
/// result is always a genuinely infeasible subset (possibly not minimal),
/// which is all that soundness of the blocking clause requires.  When
/// propagation alone cannot refute even the full set (the conflict was found
/// by branching), the full index set is returned.
fn minimize_core(bounds: &[(i64, i64)], constraints: &[Constraint]) -> Vec<usize> {
    let all: Vec<usize> = (0..constraints.len()).collect();
    let subset = |keep: &[usize]| -> Vec<Constraint> {
        keep.iter().map(|&i| constraints[i].clone()).collect()
    };
    if !theory::refuted_by_propagation(bounds, &subset(&all)) {
        return all;
    }
    let mut core = all;
    let mut idx = 0;
    while idx < core.len() {
        let mut candidate = core.clone();
        candidate.remove(idx);
        if theory::refuted_by_propagation(bounds, &subset(&candidate)) {
            core = candidate;
        } else {
            idx += 1;
        }
    }
    core
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::LinExpr;

    #[test]
    fn pure_boolean_problems_work() {
        let mut smt = SmtSolver::new();
        let a = smt.new_bool_var("a");
        let b = smt.new_bool_var("b");
        smt.assert(Formula::or([Formula::bool_var(a), Formula::bool_var(b)]));
        smt.assert(Formula::not(Formula::bool_var(a)));
        let model = smt.check().expect_sat();
        assert!(!model.bool_value(a));
        assert!(model.bool_value(b));
    }

    #[test]
    fn pure_arithmetic_sat_and_unsat() {
        let mut smt = SmtSolver::new();
        let x = smt.new_int_var("x", 0, 10);
        let y = smt.new_int_var("y", 0, 10);
        smt.assert(Formula::eq(
            LinExpr::var(x) + LinExpr::var(y),
            LinExpr::constant(7),
        ));
        smt.assert(Formula::ge(LinExpr::var(x), LinExpr::constant(5)));
        let model = smt.check().expect_sat();
        assert_eq!(model.int_value(x) + model.int_value(y), 7);
        assert!(model.int_value(x) >= 5);

        let mut smt = SmtSolver::new();
        let x = smt.new_int_var("x", 0, 3);
        smt.assert(Formula::gt(LinExpr::var(x), LinExpr::constant(3)));
        assert!(smt.check().is_unsat());
    }

    #[test]
    fn mixed_boolean_and_arithmetic() {
        // b -> x >= 3,  !b -> x = 0,  x >= 1  ==> b and x >= 3.
        let mut smt = SmtSolver::new();
        let b = smt.new_bool_var("b");
        let x = smt.new_int_var("x", 0, 5);
        smt.assert(Formula::implies(
            Formula::bool_var(b),
            Formula::ge(LinExpr::var(x), LinExpr::constant(3)),
        ));
        smt.assert(Formula::implies(
            Formula::not(Formula::bool_var(b)),
            Formula::eq(LinExpr::var(x), LinExpr::constant(0)),
        ));
        smt.assert(Formula::ge(LinExpr::var(x), LinExpr::constant(1)));
        let model = smt.check().expect_sat();
        assert!(model.bool_value(b));
        assert!(model.int_value(x) >= 3);
    }

    #[test]
    fn binary_indicator_variables_behave_like_the_paper_examples() {
        // The running example invariant: s1 + t0 - 1 = #q0 + #q1, with
        // s0 + s1 = 1 and t0 + t1 = 1 and queue sizes 2.  Asking for a state
        // where both queues are full must be unsatisfiable.
        let mut smt = SmtSolver::new();
        let s0 = smt.new_int_var("S.s0", 0, 1);
        let s1 = smt.new_int_var("S.s1", 0, 1);
        let t0 = smt.new_int_var("T.t0", 0, 1);
        let t1 = smt.new_int_var("T.t1", 0, 1);
        let q0 = smt.new_int_var("#q0", 0, 2);
        let q1 = smt.new_int_var("#q1", 0, 2);
        smt.assert(Formula::eq(
            LinExpr::var(s0) + LinExpr::var(s1),
            LinExpr::constant(1),
        ));
        smt.assert(Formula::eq(
            LinExpr::var(t0) + LinExpr::var(t1),
            LinExpr::constant(1),
        ));
        smt.assert(Formula::eq(
            LinExpr::var(s1) + LinExpr::var(t0) - LinExpr::constant(1),
            LinExpr::var(q0) + LinExpr::var(q1),
        ));
        smt.assert(Formula::ge(
            LinExpr::var(q0) + LinExpr::var(q1),
            LinExpr::constant(3),
        ));
        assert!(smt.check().is_unsat());
    }

    #[test]
    fn unknown_on_zero_refinement_budget() {
        let mut smt = SmtSolver::new();
        let x = smt.new_int_var("x", 0, 3);
        smt.assert(Formula::ge(LinExpr::var(x), LinExpr::constant(1)));
        let config = CheckConfig {
            max_refinements: 0,
            ..CheckConfig::default()
        };
        assert_eq!(smt.check_with(&config), SmtResult::Unknown);
    }

    #[test]
    fn iff_and_ne_operators_are_supported() {
        let mut smt = SmtSolver::new();
        let a = smt.new_bool_var("a");
        let x = smt.new_int_var("x", 0, 4);
        smt.assert(Formula::iff(
            Formula::bool_var(a),
            Formula::ne(LinExpr::var(x), LinExpr::constant(2)),
        ));
        smt.assert(Formula::not(Formula::bool_var(a)));
        let model = smt.check().expect_sat();
        assert_eq!(model.int_value(x), 2);
        assert!(!model.bool_value(a));
    }

    #[test]
    fn stats_are_populated() {
        let mut smt = SmtSolver::new();
        let x = smt.new_int_var("x", 0, 4);
        smt.assert(Formula::ge(LinExpr::var(x), LinExpr::constant(1)));
        let _ = smt.check();
        assert!(smt.stats().refinements >= 1);
        assert!(smt.stats().sat_variables >= 1);
    }
}
