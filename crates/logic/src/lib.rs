//! SMT backend for ADVOCAT.
//!
//! The deadlock-detection technique of the ADVOCAT paper reduces the search
//! for a cross-layer deadlock to the satisfiability of a formula mixing
//!
//! * Boolean variables (permanent *block*/*idle* status of channels,
//!   *dead* status of automata), and
//! * linear integer arithmetic over **bounded** variables (queue
//!   occupancies `0 ≤ #q.d ≤ size(q)`, automaton state indicators
//!   `A.s ∈ {0, 1}`), constrained further by the automatically derived
//!   cross-layer invariants.
//!
//! The original work hands this instance to an off-the-shelf SMT solver;
//! because the entire fragment is *bounded*, a complete decision procedure
//! only needs a SAT solver plus a finite-domain feasibility check.  This
//! crate implements exactly that as a lazy DPLL(T) loop:
//!
//! 1. [`cnf`] — Tseitin transformation mapping a [`Formula`] to CNF over
//!    propositional atoms (Boolean variables and canonicalised linear
//!    inequalities),
//! 2. [`sat`] — a CDCL SAT solver (two-watched literals, first-UIP conflict
//!    analysis, heap-served activity-based branching with phase saving,
//!    LBD-aware Luby restarts, learnt-database reduction),
//! 3. [`theory`] — a bounded linear-integer-arithmetic solver based on
//!    interval propagation and branch & bound, producing conflict cores,
//! 4. [`smt`] — the lazy refinement loop tying the two together.
//!
//! # Examples
//!
//! ```
//! use advocat_logic::{Formula, LinExpr, SmtSolver};
//!
//! let mut smt = SmtSolver::new();
//! let x = smt.new_int_var("x", 0, 5);
//! let y = smt.new_int_var("y", 0, 5);
//! // x + y = 4  and  x >= 3
//! smt.assert(Formula::eq(LinExpr::var(x) + LinExpr::var(y), LinExpr::constant(4)));
//! smt.assert(Formula::ge(LinExpr::var(x), LinExpr::constant(3)));
//! let model = smt.check().expect_sat();
//! assert_eq!(model.int_value(x) + model.int_value(y), 4);
//! assert!(model.int_value(x) >= 3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cnf;
mod expr;
mod model;
pub mod sat;
pub mod share;
pub mod smt;
pub mod theory;

pub use advocat_telemetry::{SolverProfile, Telemetry};
pub use expr::{BoolVar, CmpOp, Formula, IntVar, LinExpr, VarPool};
pub use model::Model;
pub use sat::{SatStats, SolverConfig};
pub use share::{ClauseExchange, ExchangeHandle, SharedClause};
pub use smt::{CheckConfig, SmtResult, SmtSolver, SolverStats};
