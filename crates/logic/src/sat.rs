//! A CDCL SAT solver.
//!
//! This is the propositional core of the lazy DPLL(T) loop in [`crate::smt`].
//! It implements the standard conflict-driven clause-learning algorithm:
//! two-watched-literal unit propagation, first-UIP conflict analysis with
//! clause learning and non-chronological backjumping, exponential-decay
//! variable activities for branching (served from an indexed max-heap),
//! phase saving, Luby restarts modulated by an EMA of recent learnt-clause
//! LBDs, and periodic reduction of the learnt-clause database.
//!
//! The solver is incremental in two senses: clauses may be added between
//! calls to [`SatSolver::solve`], and [`SatSolver::solve_with_assumptions`]
//! solves under a set of assumed literals that are retracted when the call
//! returns — learnt clauses, variable activities and the watcher state all
//! survive into the next call, which is what makes closely related queries
//! (such as a queue-size sweep) cheap after the first one.  When a solve
//! under assumptions fails, [`SatSolver::last_core`] reports the subset of
//! the assumptions responsible (the *final conflict*, in MiniSat terms).
//!
//! Long sessions pay for that persistence: every learnt clause lengthens
//! the watcher lists every later propagation must scan.  The solver
//! therefore keeps learnt clauses in their own arena, tags each with its
//! *literal block distance* (LBD — the number of distinct decision levels
//! among its literals, a standard quality measure) and an activity score,
//! and periodically deletes the worst half of the deletable learnt clauses
//! ([`SolverConfig::clause_reduction`]).  The same sweep drops clauses that
//! level-zero units have permanently satisfied — in an assumption-based
//! session these are the encodings of popped scopes, which would otherwise
//! accumulate forever.
//!
//! # Examples
//!
//! ```
//! use advocat_logic::sat::{Lit, SatSolver};
//!
//! let mut solver = SatSolver::new();
//! let a = solver.new_var();
//! let b = solver.new_var();
//! solver.add_clause(&[Lit::positive(a), Lit::positive(b)]);
//! solver.add_clause(&[Lit::negative(a)]);
//! let model = solver.solve().expect("satisfiable");
//! assert!(!model[a]);
//! assert!(model[b]);
//! ```

use crate::share::{CancelFlag, ExchangeHandle};
use advocat_telemetry::{SolverProfile, Telemetry};
use std::fmt;
use std::sync::atomic::Ordering;
use std::time::Instant;

/// A propositional variable, identified by index.
pub type Var = usize;

/// A literal: a variable together with a polarity.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Lit(u32);

impl Lit {
    /// Creates the positive literal of `var`.
    pub fn positive(var: Var) -> Lit {
        Lit((var as u32) << 1)
    }

    /// Creates the negative literal of `var`.
    pub fn negative(var: Var) -> Lit {
        Lit(((var as u32) << 1) | 1)
    }

    /// Creates a literal from a variable and a sign (`true` = positive).
    pub fn new(var: Var, positive: bool) -> Lit {
        if positive {
            Lit::positive(var)
        } else {
            Lit::negative(var)
        }
    }

    /// Returns the underlying variable.
    pub fn var(self) -> Var {
        (self.0 >> 1) as usize
    }

    /// Returns `true` for a positive literal.
    pub fn is_positive(self) -> bool {
        self.0 & 1 == 0
    }

    /// Returns the complementary literal.
    pub fn negated(self) -> Lit {
        Lit(self.0 ^ 1)
    }

    fn code(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_positive() {
            write!(f, "x{}", self.var())
        } else {
            write!(f, "¬x{}", self.var())
        }
    }
}

/// Reference to a clause: an index into the problem arena, or an index
/// into the learnt arena with [`LEARNT_BIT`] set.  Problem clauses are
/// only removed when permanently satisfied; learnt clauses additionally by
/// [`SatSolver::reduce_db`], so the two arenas age differently.
type ClauseRef = usize;

const LEARNT_BIT: usize = 1 << (usize::BITS - 1);

fn is_learnt(cr: ClauseRef) -> bool {
    cr & LEARNT_BIT != 0
}

#[derive(Clone, Debug)]
struct Clause {
    lits: Vec<Lit>,
    /// Literal block distance at learn time, tightened whenever the clause
    /// participates in conflict analysis again.  Zero for problem clauses.
    lbd: u32,
    /// Bumped whenever the clause appears in conflict analysis; the
    /// reduction pass deletes low-activity, high-LBD learnt clauses first.
    activity: f64,
}

/// Tuning knobs of the CDCL search: learnt-database reduction, the restart
/// schedule and phase saving.
///
/// The defaults enable everything and are sized so that the small queries
/// of a verification sweep behave exactly as before (the first reduction
/// only fires after [`SolverConfig::first_reduce`] conflicts), while long
/// sessions keep their learnt database and watcher lists bounded.
#[derive(Clone, Debug, PartialEq)]
pub struct SolverConfig {
    /// Periodically delete the worst half of the deletable learnt clauses
    /// (and drop clauses permanently satisfied at level zero).
    pub clause_reduction: bool,
    /// Conflicts before the first database reduction.
    pub first_reduce: u64,
    /// The gap between reductions grows by this many conflicts each time,
    /// so the database is allowed to grow as the search matures.
    pub reduce_interval: u64,
    /// Learnt clauses with an LBD at or below this are never deleted
    /// ("glue" clauses); binary clauses are always kept.
    pub keep_lbd: u32,
    /// Unit of the Luby restart sequence, in conflicts.
    pub luby_base: u64,
    /// Force a restart early when the fast EMA of recent learnt-clause
    /// LBDs exceeds the slow EMA by this factor (the search is currently
    /// producing poor clauses).  Non-positive disables the modulation and
    /// leaves the pure Luby schedule.
    pub restart_ema_ratio: f64,
    /// Branch on the polarity each variable last held instead of a fixed
    /// negative default, keeping locality across restarts and queries.
    pub phase_saving: bool,
    /// Polarity of a branching decision when [`SolverConfig::phase_saving`]
    /// is off.  `false` (the default) is the historical behaviour and a
    /// good fit for the mostly-Horn deadlock encodings; portfolio
    /// diversification flips it on some workers.
    pub default_phase: bool,
    /// Number of diversified solver workers raced by
    /// [`crate::smt::SmtSolver`] per `check`.  `1` (the default) keeps the
    /// sequential path; `n > 1` races `n` clones configured by
    /// [`SolverConfig::diversify`], first definitive verdict wins.
    pub portfolio: usize,
    /// Learnt clauses with an LBD at or below this are exported to the
    /// other portfolio workers (glue clauses, in Glucose terms).  Only
    /// consulted while a clause exchange is attached.
    pub glue_share_lbd: u32,
    /// Non-zero on diversified portfolio workers: applying a config with a
    /// new non-zero seed perturbs the branching activities once (a
    /// deterministic multiplicative jitter) so clones explore the search
    /// space in different orders.  Zero leaves activities untouched.
    pub diversity_seed: u64,
    /// Observability handle (disabled by default).  When enabled the
    /// solver collects a phase-attributed [`SolverProfile`] per query and
    /// emits `sat.restart` / `sat.reduce_db` trace events; when disabled
    /// the hot loop pays a single cached-boolean branch and reads no
    /// clocks.  The handle is excluded from engine-pool fingerprints, so
    /// attaching telemetry never changes engine reuse.
    pub telemetry: Telemetry,
}

impl Default for SolverConfig {
    fn default() -> Self {
        SolverConfig {
            clause_reduction: true,
            first_reduce: 300,
            reduce_interval: 300,
            keep_lbd: 2,
            luby_base: 100,
            restart_ema_ratio: 1.25,
            phase_saving: true,
            default_phase: false,
            portfolio: 1,
            glue_share_lbd: 2,
            diversity_seed: 0,
            telemetry: Telemetry::disabled(),
        }
    }
}

impl SolverConfig {
    /// The default configuration with `workers` portfolio workers.
    pub fn portfolio(workers: usize) -> Self {
        SolverConfig {
            portfolio: workers.max(1),
            ..SolverConfig::default()
        }
    }

    /// The configuration of portfolio worker `worker`, derived from this
    /// one.  Worker 0 is the canonical configuration, unchanged, so a
    /// one-worker portfolio searches exactly like the sequential path;
    /// higher workers vary the restart schedule, phase polarity,
    /// reduction cadence and branching-activity seed.  The derivation is
    /// deterministic: the same base and index always yield the same
    /// worker.
    pub fn diversify(&self, worker: usize) -> SolverConfig {
        let mut c = self.clone();
        c.portfolio = 1;
        if worker == 0 {
            return c;
        }
        c.diversity_seed = worker as u64;
        match worker % 4 {
            // Positive-phase branching: explores the "everything blocked"
            // side of the deadlock encodings first.
            1 => {
                c.phase_saving = false;
                c.default_phase = true;
            }
            // Conservative restarts: long pure-Luby intervals, letting
            // deep searches finish.
            2 => {
                c.restart_ema_ratio = 0.0;
                c.luby_base = self.luby_base.saturating_mul(4);
            }
            // Aggressive restarts with negative-phase branching.
            3 => {
                c.luby_base = (self.luby_base / 4).max(8);
                c.phase_saving = false;
            }
            // Eager clause-database reduction with a twitchier EMA.
            _ => {
                c.first_reduce = (self.first_reduce / 2).max(50);
                c.reduce_interval = (self.reduce_interval / 2).max(50);
                c.restart_ema_ratio = 1.1;
            }
        }
        c
    }
}

/// Statistics collected by the SAT solver.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SatStats {
    /// Number of decisions made.
    pub decisions: u64,
    /// Number of unit propagations performed.
    pub propagations: u64,
    /// Number of conflicts encountered.
    pub conflicts: u64,
    /// Number of restarts performed.
    pub restarts: u64,
    /// Number of learnt clauses currently stored (live; decremented when
    /// the reduction pass deletes clauses).
    pub learnt_clauses: u64,
    /// Total number of learnt clauses ever stored (monotone).
    pub total_learnt: u64,
    /// Number of learnt-database reductions performed.
    pub reduced_dbs: u64,
    /// Number of clauses physically deleted by reductions: worst-half
    /// learnt clauses plus clauses permanently satisfied at level zero.
    pub deleted_clauses: u64,
}

/// An indexed binary max-heap over variable activities: `pop` yields the
/// unassigned-or-not variable of highest activity in O(log n), replacing a
/// linear scan over all variables per decision.
///
/// Invariant: every **unassigned** variable is in the heap (assigned
/// variables may linger and are skipped lazily when popped).
#[derive(Clone, Debug, Default)]
struct VarHeap {
    heap: Vec<Var>,
    /// Position of each variable in `heap`, or `ABSENT`.
    pos: Vec<usize>,
}

impl VarHeap {
    const ABSENT: usize = usize::MAX;

    fn push_new_var(&mut self, activity: &[f64]) {
        let v = self.pos.len();
        self.pos.push(Self::ABSENT);
        self.insert(v, activity);
    }

    fn contains(&self, v: Var) -> bool {
        self.pos[v] != Self::ABSENT
    }

    fn insert(&mut self, v: Var, activity: &[f64]) {
        if self.contains(v) {
            return;
        }
        self.pos[v] = self.heap.len();
        self.heap.push(v);
        self.sift_up(self.heap.len() - 1, activity);
    }

    fn pop(&mut self, activity: &[f64]) -> Option<Var> {
        let top = *self.heap.first()?;
        self.pos[top] = Self::ABSENT;
        let last = self.heap.pop().expect("non-empty heap");
        if !self.heap.is_empty() {
            self.heap[0] = last;
            self.pos[last] = 0;
            self.sift_down(0, activity);
        }
        Some(top)
    }

    /// Restores the heap property after `v`'s activity increased.
    fn bumped(&mut self, v: Var, activity: &[f64]) {
        if self.contains(v) {
            self.sift_up(self.pos[v], activity);
        }
    }

    fn sift_up(&mut self, mut i: usize, activity: &[f64]) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if activity[self.heap[i]] <= activity[self.heap[parent]] {
                break;
            }
            self.swap(i, parent);
            i = parent;
        }
    }

    fn sift_down(&mut self, mut i: usize, activity: &[f64]) {
        loop {
            let left = 2 * i + 1;
            if left >= self.heap.len() {
                break;
            }
            let right = left + 1;
            let mut best = left;
            if right < self.heap.len() && activity[self.heap[right]] > activity[self.heap[left]] {
                best = right;
            }
            if activity[self.heap[best]] <= activity[self.heap[i]] {
                break;
            }
            self.swap(i, best);
            i = best;
        }
    }

    fn swap(&mut self, i: usize, j: usize) {
        self.heap.swap(i, j);
        self.pos[self.heap[i]] = i;
        self.pos[self.heap[j]] = j;
    }

    /// Restores the heap property after a bulk rewrite of the activities
    /// (diversification jitter): bottom-up heapify in O(n).
    fn rebuild(&mut self, activity: &[f64]) {
        for i in (0..self.heap.len() / 2).rev() {
            self.sift_down(i, activity);
        }
    }
}

/// An exponential moving average with initialization-bias correction: the
/// raw recurrence starts from zero and would under-report until about
/// `1/alpha` samples have arrived (badly so for the slow restart EMA), so
/// [`Ema::get`] divides out the remaining bias, as in splr/Glucose.
#[derive(Clone, Copy, Debug)]
struct Ema {
    value: f64,
    alpha: f64,
    /// Remaining initialization bias: `(1 - alpha)^samples`.
    bias: f64,
}

impl Ema {
    fn new(alpha: f64) -> Self {
        Ema {
            value: 0.0,
            alpha,
            bias: 1.0,
        }
    }

    fn update(&mut self, x: f64) {
        self.value += self.alpha * (x - self.value);
        self.bias *= 1.0 - self.alpha;
    }

    fn get(&self) -> f64 {
        if self.bias >= 1.0 {
            0.0
        } else {
            self.value / (1.0 - self.bias)
        }
    }

    /// Re-centres the average on `target` without touching the remaining
    /// bias, so [`Ema::get`] reports `target` until new samples arrive.
    fn align_to(&mut self, target: f64) {
        self.value = target * (1.0 - self.bias);
    }
}

/// The `i`-th element (0-indexed) of the Luby sequence 1, 1, 2, 1, 1, 2,
/// 4, 1, 1, 2, 1, 1, 2, 4, 8, … used to pace restarts.
fn luby(mut i: u64) -> u64 {
    // Find the finite subsequence containing index `i`, then the position
    // of `i` inside it (MiniSat's formulation with base 2).
    let mut size = 1u64;
    let mut seq = 0u32;
    while size < i + 1 {
        seq += 1;
        size = 2 * size + 1;
    }
    while size - 1 != i {
        size = (size - 1) / 2;
        seq -= 1;
        i %= size;
    }
    1u64 << seq
}

/// A conflict-driven clause-learning SAT solver.
#[derive(Clone, Debug)]
pub struct SatSolver {
    /// Problem clauses (everything added through [`SatSolver::add_clause`]).
    clauses: Vec<Clause>,
    /// Learnt clauses, subject to database reduction.
    learnts: Vec<Clause>,
    watches: Vec<Vec<ClauseRef>>,
    assigns: Vec<Option<bool>>,
    levels: Vec<u32>,
    reasons: Vec<Option<ClauseRef>>,
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    qhead: usize,
    activity: Vec<f64>,
    var_inc: f64,
    cla_inc: f64,
    order: VarHeap,
    /// Occurrences of each variable across the live clauses of both
    /// arenas.  A variable with no occurrences is unconstrained: branching
    /// skips it (its model value defaults to `false`), so variables whose
    /// clauses the reduction pass reclaimed — e.g. the encodings of popped
    /// session scopes — stop costing a decision and a propagation in every
    /// later query.
    occurs: Vec<u32>,
    /// Last polarity each variable held (phase saving); initially negative,
    /// which is a good default for the mostly-Horn deadlock encodings.
    phases: Vec<bool>,
    /// Scratch for LBD computation, stamped per generation.
    lbd_stamp: Vec<u64>,
    lbd_gen: u64,
    /// Scratch for conflict analysis, cleared after every use (kept on the
    /// solver so a conflict does not pay an O(vars) allocation).
    seen: Vec<bool>,
    /// Fast/slow exponential moving averages of learnt-clause LBDs.
    ema_fast: Ema,
    ema_slow: Ema,
    /// Conflict count at which the next database reduction fires.
    next_reduce: u64,
    /// Level-zero trail length at the last satisfied-clause sweep; new
    /// permanent units (e.g. the disabled activation literal of a popped
    /// session scope) trigger another sweep at the next solve.
    simplified_trail_len: usize,
    config: SolverConfig,
    /// Cooperative-cancellation flag of a portfolio race, polled once per
    /// conflict.  `None` (the default) costs one branch per conflict.
    interrupt: Option<CancelFlag>,
    /// Glue-clause exchange of a portfolio race: learnt clauses with
    /// LBD ≤ [`SolverConfig::glue_share_lbd`] are published at learn time
    /// and foreign clauses are imported at every restart.
    exchange: Option<ExchangeHandle>,
    /// Cached `config.telemetry.is_enabled()`: the only thing the hot
    /// search loop branches on when telemetry is disabled.
    profiling: bool,
    /// Phase attribution accumulated since the last
    /// [`SatSolver::take_profile`]; empty while `profiling` is off.
    profile: SolverProfile,
    ok: bool,
    stats: SatStats,
    last_core: Vec<Lit>,
}

/// Result returned when the solver proves unsatisfiability.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Unsat;

/// Outcome of [`SatSolver::solve_limited`], the interruptible entry point
/// used by portfolio workers.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SolveOutcome {
    /// Satisfiable, with one Boolean per variable.
    Sat(Vec<bool>),
    /// Proven unsatisfiable under the given assumptions
    /// ([`SatSolver::last_core`] holds the failing assumption subset).
    Unsat,
    /// The attached interrupt flag flipped before the search concluded:
    /// another portfolio worker won the race.  No verdict; the solver is
    /// back at decision level zero with its learnt state intact.
    Interrupted,
}

impl Default for SatSolver {
    fn default() -> Self {
        SatSolver::new()
    }
}

impl SatSolver {
    /// Creates an empty solver with no variables or clauses.
    pub fn new() -> Self {
        SatSolver::with_config(SolverConfig::default())
    }

    /// Creates an empty solver with explicit search parameters.
    pub fn with_config(config: SolverConfig) -> Self {
        SatSolver {
            clauses: Vec::new(),
            learnts: Vec::new(),
            watches: Vec::new(),
            assigns: Vec::new(),
            levels: Vec::new(),
            reasons: Vec::new(),
            trail: Vec::new(),
            trail_lim: Vec::new(),
            qhead: 0,
            activity: Vec::new(),
            var_inc: 1.0,
            cla_inc: 1.0,
            order: VarHeap::default(),
            occurs: Vec::new(),
            phases: Vec::new(),
            lbd_stamp: vec![0],
            lbd_gen: 0,
            seen: Vec::new(),
            ema_fast: Ema::new(1.0 / 32.0),
            ema_slow: Ema::new(1.0 / 4096.0),
            next_reduce: config.first_reduce,
            simplified_trail_len: 0,
            interrupt: None,
            exchange: None,
            profiling: config.telemetry.is_enabled(),
            profile: SolverProfile::default(),
            config,
            ok: true,
            stats: SatStats::default(),
            last_core: Vec::new(),
        }
    }

    /// Returns the current search parameters.
    pub fn config(&self) -> &SolverConfig {
        &self.config
    }

    /// Replaces the search parameters.  Takes effect at the next solve;
    /// the reduction countdown restarts from the new
    /// [`SolverConfig::first_reduce`].
    pub fn set_config(&mut self, config: SolverConfig) {
        if self.config != config {
            self.next_reduce = self.stats.conflicts + config.first_reduce;
            self.profiling = config.telemetry.is_enabled();
            if config.diversity_seed != self.config.diversity_seed && config.diversity_seed != 0 {
                self.jitter_activities(config.diversity_seed);
            }
            self.config = config;
        }
    }

    /// Perturbs every branching activity with a deterministic
    /// multiplicative jitter derived from `seed`, so diversified portfolio
    /// clones branch in different orders even before their configs have
    /// had time to matter.  Relative magnitudes are roughly preserved
    /// (factor in `[0.5, 1.5)` plus a tiny tie-breaking offset).
    fn jitter_activities(&mut self, seed: u64) {
        let mut state = seed | 1;
        for a in &mut self.activity {
            // xorshift64
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let r = (state % 1024) as f64 / 1024.0;
            *a = *a * (0.5 + r) + r * 1e-9;
        }
        self.order.rebuild(&self.activity);
    }

    /// Attaches (or clears) the cooperative-cancellation flag of a
    /// portfolio race.  While set, the solver polls it once per conflict
    /// and [`SatSolver::solve_limited`] returns
    /// [`SolveOutcome::Interrupted`] promptly after it flips.
    pub fn set_interrupt(&mut self, interrupt: Option<CancelFlag>) {
        self.interrupt = interrupt;
    }

    /// Attaches (or clears) this solver's view of a portfolio glue-clause
    /// exchange: learnt clauses with LBD ≤
    /// [`SolverConfig::glue_share_lbd`] are published at learn time, and
    /// foreign clauses are imported at every restart.
    pub fn set_exchange(&mut self, exchange: Option<ExchangeHandle>) {
        self.exchange = exchange;
    }

    /// Takes (and resets) the phase-attributed profile accumulated since
    /// the last call.  Empty unless [`SolverConfig::telemetry`] is
    /// enabled.
    pub fn take_profile(&mut self) -> SolverProfile {
        std::mem::take(&mut self.profile)
    }

    /// Allocates a fresh variable and returns it.
    pub fn new_var(&mut self) -> Var {
        let v = self.assigns.len();
        self.assigns.push(None);
        self.levels.push(0);
        self.reasons.push(None);
        self.activity.push(0.0);
        self.phases.push(false);
        self.occurs.push(0);
        self.lbd_stamp.push(0);
        self.seen.push(false);
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        self.order.push_new_var(&self.activity);
        v
    }

    /// Returns the number of allocated variables.
    pub fn num_vars(&self) -> usize {
        self.assigns.len()
    }

    /// Returns solver statistics.
    pub fn stats(&self) -> SatStats {
        self.stats
    }

    /// Returns `true` while `var` carries any constraint: it occurs in a
    /// live clause, or it is currently assigned (in particular, forced at
    /// level zero by a unit clause).  Variables whose every clause was
    /// garbage-collected — e.g. the encoding of a popped session scope —
    /// report `false`: the solver no longer branches on them and their
    /// model value is an uninformative default.
    pub fn is_constrained(&self, var: Var) -> bool {
        self.occurs[var] > 0 || self.assigns[var].is_some()
    }

    /// Adds a clause.  Returns `false` if the solver is already known to be
    /// unsatisfiable (either before the call or as a result of it).
    ///
    /// # Panics
    ///
    /// Panics if a literal refers to a variable that was never allocated.
    pub fn add_clause(&mut self, lits: &[Lit]) -> bool {
        if !self.ok {
            return false;
        }
        self.cancel_until(0);
        // Deduplicate and detect tautologies with one sort-and-scan pass
        // (the literal code places the two polarities of a variable next
        // to each other), instead of a quadratic `contains` per literal.
        let mut clause: Vec<Lit> = lits.to_vec();
        for &lit in &clause {
            assert!(lit.var() < self.num_vars(), "literal for unknown variable");
        }
        clause.sort_unstable_by_key(|l| l.code());
        clause.dedup();
        if clause.windows(2).any(|w| w[0].var() == w[1].var()) {
            return true; // tautology
        }
        // Remove literals already false at level 0; detect satisfied clauses.
        clause.retain(|&l| self.value(l) != Some(false) || self.levels[l.var()] != 0);
        if clause
            .iter()
            .any(|&l| self.value(l) == Some(true) && self.levels[l.var()] == 0)
        {
            return true;
        }
        match clause.len() {
            0 => {
                self.ok = false;
                false
            }
            1 => {
                if !self.enqueue(clause[0], None) {
                    self.ok = false;
                    return false;
                }
                if self.propagate().is_some() {
                    self.ok = false;
                    return false;
                }
                true
            }
            _ => {
                self.attach(clause, false, 0);
                true
            }
        }
    }

    /// Appends a clause to the appropriate arena and watches its first two
    /// literals.
    fn attach(&mut self, lits: Vec<Lit>, learnt: bool, lbd: u32) -> ClauseRef {
        for &lit in &lits {
            let v = lit.var();
            if self.occurs[v] == 0 && self.assigns[v].is_none() {
                // The variable was unconstrained and may have been skipped
                // out of the branching heap; it matters again now.
                self.order.insert(v, &self.activity);
            }
            self.occurs[v] += 1;
        }
        let (arena, tag) = if learnt {
            (&mut self.learnts, LEARNT_BIT)
        } else {
            (&mut self.clauses, 0)
        };
        let cr = arena.len() | tag;
        self.watches[lits[0].code()].push(cr);
        self.watches[lits[1].code()].push(cr);
        arena.push(Clause {
            lits,
            lbd,
            activity: 0.0,
        });
        cr
    }

    fn clause(&self, cr: ClauseRef) -> &Clause {
        if is_learnt(cr) {
            &self.learnts[cr & !LEARNT_BIT]
        } else {
            &self.clauses[cr]
        }
    }

    fn clause_mut(&mut self, cr: ClauseRef) -> &mut Clause {
        if is_learnt(cr) {
            &mut self.learnts[cr & !LEARNT_BIT]
        } else {
            &mut self.clauses[cr]
        }
    }

    fn value(&self, lit: Lit) -> Option<bool> {
        self.assigns[lit.var()].map(|v| v == lit.is_positive())
    }

    fn decision_level(&self) -> u32 {
        self.trail_lim.len() as u32
    }

    fn enqueue(&mut self, lit: Lit, reason: Option<ClauseRef>) -> bool {
        match self.value(lit) {
            Some(true) => true,
            Some(false) => false,
            None => {
                self.assigns[lit.var()] = Some(lit.is_positive());
                self.levels[lit.var()] = self.decision_level();
                self.reasons[lit.var()] = reason;
                self.trail.push(lit);
                true
            }
        }
    }

    fn propagate(&mut self) -> Option<ClauseRef> {
        while self.qhead < self.trail.len() {
            let lit = self.trail[self.qhead];
            self.qhead += 1;
            self.stats.propagations += 1;
            let falsified = lit.negated();
            let watch_list = std::mem::take(&mut self.watches[falsified.code()]);
            let mut kept: Vec<ClauseRef> = Vec::with_capacity(watch_list.len());
            let mut conflict: Option<ClauseRef> = None;
            for (pos, &cr) in watch_list.iter().enumerate() {
                if conflict.is_some() {
                    kept.extend_from_slice(&watch_list[pos..]);
                    break;
                }
                // Make sure the falsified literal is at position 1.
                let (w0, w1) = {
                    let c = self.clause_mut(cr);
                    if c.lits[0] == falsified {
                        c.lits.swap(0, 1);
                    }
                    (c.lits[0], c.lits[1])
                };
                debug_assert_eq!(w1, falsified);
                if self.value(w0) == Some(true) {
                    kept.push(cr);
                    continue;
                }
                // Look for a new literal to watch.
                let mut moved = false;
                let len = self.clause(cr).lits.len();
                for k in 2..len {
                    let cand = self.clause(cr).lits[k];
                    if self.value(cand) != Some(false) {
                        self.clause_mut(cr).lits.swap(1, k);
                        self.watches[cand.code()].push(cr);
                        moved = true;
                        break;
                    }
                }
                if moved {
                    continue;
                }
                // Clause is unit or conflicting.
                kept.push(cr);
                if !self.enqueue(w0, Some(cr)) {
                    conflict = Some(cr);
                }
            }
            self.watches[falsified.code()] = kept;
            if let Some(cr) = conflict {
                self.qhead = self.trail.len();
                return Some(cr);
            }
        }
        None
    }

    fn cancel_until(&mut self, level: u32) {
        if self.decision_level() <= level {
            return;
        }
        let keep = self.trail_lim[level as usize];
        let phase_saving = self.config.phase_saving;
        for &lit in &self.trail[keep..] {
            let v = lit.var();
            if phase_saving {
                self.phases[v] = lit.is_positive();
            }
            self.assigns[v] = None;
            self.reasons[v] = None;
            self.order.insert(v, &self.activity);
        }
        self.trail.truncate(keep);
        self.trail_lim.truncate(level as usize);
        self.qhead = self.trail.len();
    }

    fn bump_var(&mut self, var: Var) {
        self.activity[var] += self.var_inc;
        if self.activity[var] > 1e100 {
            for a in &mut self.activity {
                *a *= 1e-100;
            }
            self.var_inc *= 1e-100;
        }
        self.order.bumped(var, &self.activity);
    }

    fn decay_activities(&mut self) {
        self.var_inc /= 0.95;
        self.cla_inc /= 0.999;
    }

    fn bump_clause(&mut self, cr: ClauseRef) {
        debug_assert!(is_learnt(cr));
        let inc = self.cla_inc;
        self.clause_mut(cr).activity += inc;
        if self.clause(cr).activity > 1e20 {
            for c in &mut self.learnts {
                c.activity *= 1e-20;
            }
            self.cla_inc *= 1e-20;
        }
    }

    /// Number of distinct decision levels among `lits` (their *literal
    /// block distance*), the learnt-clause quality measure of Glucose.
    fn compute_lbd(&mut self, lits: &[Lit]) -> u32 {
        self.lbd_gen += 1;
        let mut distinct = 0u32;
        for &lit in lits {
            let level = self.levels[lit.var()] as usize;
            if self.lbd_stamp[level] != self.lbd_gen {
                self.lbd_stamp[level] = self.lbd_gen;
                distinct += 1;
            }
        }
        distinct
    }

    fn analyze(&mut self, mut conflict: ClauseRef) -> (Vec<Lit>, u32) {
        let mut learnt: Vec<Lit> = vec![Lit::positive(0)]; // placeholder for the asserting literal
                                                           // The persistent scratch buffer avoids an O(vars) allocation per
                                                           // conflict; taking it out keeps the borrow checker happy across
                                                           // the `bump_var` calls below.
        let mut seen = std::mem::take(&mut self.seen);
        let mut counter = 0usize;
        let mut trail_idx = self.trail.len();
        let mut asserting = None;

        loop {
            let reason_lits: Vec<Lit> = self.clause(conflict).lits.clone();
            if is_learnt(conflict) {
                // A learnt clause that keeps causing conflicts is worth
                // keeping: bump it and tighten its stored LBD.
                self.bump_clause(conflict);
                let lbd = self.compute_lbd(&reason_lits);
                let c = self.clause_mut(conflict);
                if lbd < c.lbd {
                    c.lbd = lbd;
                }
            }
            let skip = usize::from(asserting.is_some());
            for &lit in reason_lits.iter().skip(skip) {
                let v = lit.var();
                if !seen[v] && self.levels[v] > 0 {
                    seen[v] = true;
                    self.bump_var(v);
                    if self.levels[v] >= self.decision_level() {
                        counter += 1;
                    } else {
                        learnt.push(lit);
                    }
                }
            }
            // Find the next literal of the current decision level on the trail.
            loop {
                trail_idx -= 1;
                let lit = self.trail[trail_idx];
                if seen[lit.var()] {
                    asserting = Some(lit);
                    break;
                }
            }
            let lit = asserting.expect("found a seen literal");
            counter -= 1;
            seen[lit.var()] = false;
            if counter == 0 {
                learnt[0] = lit.negated();
                break;
            }
            conflict = self.reasons[lit.var()].expect("non-decision literal has a reason");
        }

        // Every current-level mark was cleared as it was dequeued from the
        // trail; the marks that remain are exactly the learnt literals.
        for &lit in &learnt[1..] {
            seen[lit.var()] = false;
        }
        debug_assert!(seen.iter().all(|&s| !s), "analysis scratch not clean");
        self.seen = seen;

        let backjump = if learnt.len() == 1 {
            0
        } else {
            let mut max_idx = 1;
            for i in 2..learnt.len() {
                if self.levels[learnt[i].var()] > self.levels[learnt[max_idx].var()] {
                    max_idx = i;
                }
            }
            learnt.swap(1, max_idx);
            self.levels[learnt[1].var()]
        };
        (learnt, backjump)
    }

    fn pick_branch_var(&mut self) -> Option<Var> {
        while let Some(v) = self.order.pop(&self.activity) {
            if self.assigns[v].is_none() && self.occurs[v] > 0 {
                return Some(v);
            }
        }
        None
    }

    /// Deletes the worst half of the deletable learnt clauses (and, as
    /// part of the same garbage-collection pass, every clause permanently
    /// satisfied at level zero).
    fn reduce_db(&mut self) {
        // Rank the deletable learnt clauses (everything except binary and
        // glue clauses) worst-first: high LBD, then low activity.
        let mut deletable: Vec<usize> = (0..self.learnts.len())
            .filter(|&i| {
                let c = &self.learnts[i];
                c.lits.len() > 2 && c.lbd > self.config.keep_lbd
            })
            .collect();
        deletable.sort_by(|&a, &b| {
            let (ca, cb) = (&self.learnts[a], &self.learnts[b]);
            cb.lbd
                .cmp(&ca.lbd)
                .then(ca.activity.total_cmp(&cb.activity))
        });
        let mut drop_learnt = vec![false; self.learnts.len()];
        for &i in deletable.iter().take(deletable.len() / 2) {
            drop_learnt[i] = true;
        }
        self.collect_garbage(&drop_learnt);
        self.stats.reduced_dbs += 1;
        self.next_reduce = self.stats.conflicts
            + self.config.first_reduce
            + self.stats.reduced_dbs * self.config.reduce_interval;
    }

    /// Drops every clause a level-zero unit has permanently satisfied —
    /// in an assumption-based session, the guarded encodings of popped
    /// scopes.  Cheap bookkeeping makes it a no-op unless the level-zero
    /// trail grew since the last sweep.
    fn simplify(&mut self) {
        if self.trail.len() == self.simplified_trail_len {
            return;
        }
        let no_marks = vec![false; self.learnts.len()];
        self.collect_garbage(&no_marks);
    }

    /// Removes marked learnt clauses and permanently satisfied clauses
    /// from both arenas, strips falsified literals, and rebuilds the
    /// watcher lists and occurrence counts.
    ///
    /// Must be called at decision level zero with propagation complete, so
    /// every surviving clause has at least two unassigned literals after
    /// satisfied clauses are removed and falsified literals are stripped —
    /// which makes re-watching the first two literals sound.  Reasons are
    /// cleared wholesale: at level zero they are never dereferenced again
    /// (conflict analysis skips level-zero variables), and clearing them
    /// keeps no dangling references into the compacted arenas.
    fn collect_garbage(&mut self, drop_learnt: &[bool]) {
        debug_assert_eq!(self.decision_level(), 0);
        debug_assert_eq!(self.qhead, self.trail.len());

        for reason in &mut self.reasons {
            *reason = None;
        }

        let satisfied = |solver: &Self, c: &Clause| {
            c.lits
                .iter()
                .any(|&l| solver.value(l) == Some(true) && solver.levels[l.var()] == 0)
        };

        // Compact both arenas, additionally dropping clauses a level-zero
        // unit satisfies forever and stripping falsified literals.
        let mut deleted = 0u64;
        let mut compact = |solver: &mut Self, learnt: bool, drop: &[bool]| {
            let mut arena = std::mem::take(if learnt {
                &mut solver.learnts
            } else {
                &mut solver.clauses
            });
            let mut kept = Vec::with_capacity(arena.len());
            for (i, mut c) in arena.drain(..).enumerate() {
                if (learnt && drop[i]) || satisfied(solver, &c) {
                    deleted += 1;
                    continue;
                }
                c.lits
                    .retain(|&l| !(solver.value(l) == Some(false) && solver.levels[l.var()] == 0));
                debug_assert!(
                    c.lits.len() >= 2,
                    "an unsatisfied clause at level zero cannot be unit after propagation"
                );
                kept.push(c);
            }
            if learnt {
                solver.learnts = kept;
            } else {
                solver.clauses = kept;
            }
        };
        compact(self, true, drop_learnt);
        compact(self, false, &[]);

        for watch in &mut self.watches {
            watch.clear();
        }
        for (i, c) in self.clauses.iter().enumerate() {
            self.watches[c.lits[0].code()].push(i);
            self.watches[c.lits[1].code()].push(i);
        }
        for (i, c) in self.learnts.iter().enumerate() {
            self.watches[c.lits[0].code()].push(i | LEARNT_BIT);
            self.watches[c.lits[1].code()].push(i | LEARNT_BIT);
        }

        // Recount occurrences: variables all of whose clauses were just
        // deleted become unconstrained and drop out of branching entirely.
        self.occurs.iter_mut().for_each(|o| *o = 0);
        for c in self.clauses.iter().chain(self.learnts.iter()) {
            for &lit in &c.lits {
                self.occurs[lit.var()] += 1;
            }
        }

        self.stats.deleted_clauses += deleted;
        self.stats.learnt_clauses = self.learnts.len() as u64;
        self.simplified_trail_len = self.trail.len();
    }

    /// Feeds a fresh learnt-clause LBD into the restart EMAs.
    fn note_learnt_lbd(&mut self, lbd: u32) {
        let x = lbd as f64;
        self.ema_fast.update(x);
        self.ema_slow.update(x);
    }

    /// `true` when the recent learnt clauses are markedly worse (higher
    /// LBD) than the long-run average: restarting early redirects the
    /// search instead of riding out the full Luby interval.
    fn ema_wants_restart(&self) -> bool {
        self.config.restart_ema_ratio > 0.0
            && self.stats.conflicts > 128
            && self.ema_fast.get() > self.ema_slow.get() * self.config.restart_ema_ratio
    }

    /// [`SatSolver::propagate`] with phase attribution: reads the clock
    /// only while profiling is on, so the disabled path costs one branch.
    fn timed_propagate(&mut self) -> Option<ClauseRef> {
        if self.profiling {
            let start = Instant::now();
            let conflict = self.propagate();
            self.profile.propagate.add(start.elapsed());
            conflict
        } else {
            self.propagate()
        }
    }

    /// Solves the current clause set.
    ///
    /// Returns `Ok(model)` with one Boolean per variable when satisfiable,
    /// and `Err(Unsat)` otherwise.  The solver always returns to decision
    /// level zero, so further clauses can be added afterwards.
    pub fn solve(&mut self) -> Result<Vec<bool>, Unsat> {
        self.solve_with_assumptions(&[])
    }

    /// Solves the current clause set under the given assumption literals.
    ///
    /// The assumptions are treated as the first decisions of the search (in
    /// order) and are retracted before the call returns, so the same solver
    /// can answer a sequence of related queries while keeping every learnt
    /// clause, the variable activities and the watcher state.
    ///
    /// On `Err(Unsat)`, [`SatSolver::last_core`] holds the subset of the
    /// assumptions that the solver found jointly incompatible with the
    /// clause set (empty when the clause set is unsatisfiable on its own —
    /// in that case every later call also returns `Err(Unsat)`).
    ///
    /// # Panics
    ///
    /// Panics if an assumption refers to a variable that was never
    /// allocated.
    pub fn solve_with_assumptions(&mut self, assumptions: &[Lit]) -> Result<Vec<bool>, Unsat> {
        match self.solve_limited(assumptions) {
            SolveOutcome::Sat(model) => Ok(model),
            SolveOutcome::Unsat => Err(Unsat),
            SolveOutcome::Interrupted => {
                unreachable!("solve_with_assumptions is only used without an interrupt flag")
            }
        }
    }

    /// [`SatSolver::solve_with_assumptions`] with cooperative cancellation:
    /// while an interrupt flag is attached ([`SatSolver::set_interrupt`])
    /// the solver polls it once per conflict and returns
    /// [`SolveOutcome::Interrupted`] promptly after it flips, leaving the
    /// solver at decision level zero with all learnt state intact.
    pub fn solve_limited(&mut self, assumptions: &[Lit]) -> SolveOutcome {
        self.last_core.clear();
        if !self.ok {
            return SolveOutcome::Unsat;
        }
        for lit in assumptions {
            assert!(
                lit.var() < self.num_vars(),
                "assumption for unknown variable"
            );
        }
        self.cancel_until(0);
        if self.timed_propagate().is_some() {
            self.ok = false;
            return SolveOutcome::Unsat;
        }
        if self.config.clause_reduction {
            self.simplify();
        }
        let mut conflicts_since_restart = 0u64;
        let mut restart_limit = self.config.luby_base * luby(self.stats.restarts);

        loop {
            if let Some(conflict) = self.timed_propagate() {
                self.stats.conflicts += 1;
                conflicts_since_restart += 1;
                if self.profiling {
                    self.profile.conflicts += 1;
                }
                if let Some(flag) = &self.interrupt {
                    // Polled once per conflict: cheap enough for the hot
                    // loop, frequent enough for prompt cancellation.
                    if flag.load(Ordering::Relaxed) {
                        self.cancel_until(0);
                        return SolveOutcome::Interrupted;
                    }
                }
                if self.decision_level() == 0 {
                    self.ok = false;
                    return SolveOutcome::Unsat;
                }
                let analyze_start = self.profiling.then(Instant::now);
                let (learnt, backjump) = self.analyze(conflict);
                // LBD is measured before backjumping, while the literals
                // still carry the levels the conflict saw.
                let lbd = self.compute_lbd(&learnt);
                self.note_learnt_lbd(lbd);
                if let Some(start) = analyze_start {
                    self.profile.analyze.add(start.elapsed());
                }
                self.cancel_until(backjump);
                // Learnt clauses are consequences of the clause set alone
                // (assumptions are decisions, never resolved on), so glue
                // clauses are sound to hand to every portfolio sibling.
                if let Some(exchange) = &self.exchange {
                    if learnt.len() == 1 || lbd <= self.config.glue_share_lbd {
                        exchange.publish(&learnt, lbd.max(1));
                    }
                }
                if learnt.len() == 1 {
                    let ok = self.enqueue(learnt[0], None);
                    debug_assert!(ok, "asserting literal must be enqueueable");
                } else {
                    let asserting = learnt[0];
                    let cr = self.attach(learnt, true, lbd);
                    self.stats.learnt_clauses += 1;
                    self.stats.total_learnt += 1;
                    let ok = self.enqueue(asserting, Some(cr));
                    debug_assert!(ok, "asserting literal must be enqueueable");
                }
                self.decay_activities();
                continue;
            }
            if conflicts_since_restart > 0
                && (conflicts_since_restart >= restart_limit
                    || (conflicts_since_restart >= 16 && self.ema_wants_restart()))
            {
                conflicts_since_restart = 0;
                self.stats.restarts += 1;
                restart_limit = self.config.luby_base * luby(self.stats.restarts);
                let restart_start = if self.profiling {
                    // The timeline samples the EMAs before the alignment
                    // below erases what the restart decision saw.
                    self.profile
                        .restarts
                        .push(advocat_telemetry::RestartSample {
                            conflicts: self.stats.conflicts,
                            lbd_ema_fast: self.ema_fast.get(),
                            lbd_ema_slow: self.ema_slow.get(),
                        });
                    let conflicts = self.stats.conflicts;
                    self.config
                        .telemetry
                        .event_with("sat.restart", || vec![("conflicts", conflicts.to_string())]);
                    Some(Instant::now())
                } else {
                    None
                };
                // Restarting resets the fast EMA's influence by aligning it
                // with the long-run average, so one bad stretch does not
                // force a cascade of restarts.
                let long_run = self.ema_slow.get();
                self.ema_fast.align_to(long_run);
                self.cancel_until(0);
                if self.exchange.is_some() {
                    // Back at level zero anyway: fold in whatever glue the
                    // portfolio siblings published since the last restart.
                    // The propagation at the top of the loop absorbs any
                    // imported units (a level-zero conflict there is a
                    // sound Unsat: imported clauses are implied).
                    self.import_pending_shared();
                    if !self.ok {
                        return SolveOutcome::Unsat;
                    }
                }
                if let Some(start) = restart_start {
                    self.profile.restart.add(start.elapsed());
                }
                continue;
            }
            if self.config.clause_reduction && self.stats.conflicts >= self.next_reduce {
                self.cancel_until(0);
                let reduce_start = self.profiling.then(Instant::now);
                self.reduce_db();
                if let Some(start) = reduce_start {
                    self.profile.reduce.add(start.elapsed());
                    let (live, total) = (self.stats.learnt_clauses, self.stats.total_learnt);
                    self.config.telemetry.event_with("sat.reduce_db", || {
                        vec![
                            ("live_learnts", live.to_string()),
                            ("total_learnts", total.to_string()),
                        ]
                    });
                }
                continue;
            }
            // Establish the next pending assumption, if any, before
            // branching freely.  Backjumps and restarts may retract
            // assumptions; they are re-established here because the
            // decision level tracks how many are currently on the trail.
            if (self.decision_level() as usize) < assumptions.len() {
                let p = assumptions[self.decision_level() as usize];
                match self.value(p) {
                    Some(true) => {
                        // Already implied: open an empty decision level so
                        // assumption indices and decision levels stay
                        // aligned.
                        self.trail_lim.push(self.trail.len());
                    }
                    Some(false) => {
                        self.last_core = self.analyze_final(p);
                        self.cancel_until(0);
                        return SolveOutcome::Unsat;
                    }
                    None => {
                        self.stats.decisions += 1;
                        self.trail_lim.push(self.trail.len());
                        let ok = self.enqueue(p, None);
                        debug_assert!(ok, "assumption variable was unassigned");
                    }
                }
                continue;
            }
            match self.pick_branch_var() {
                None => {
                    let model: Vec<bool> =
                        self.assigns.iter().map(|a| a.unwrap_or(false)).collect();
                    self.cancel_until(0);
                    return SolveOutcome::Sat(model);
                }
                Some(v) => {
                    self.stats.decisions += 1;
                    self.trail_lim.push(self.trail.len());
                    let polarity = self.config.phase_saving && self.phases[v];
                    let ok = self.enqueue(Lit::new(v, polarity), None);
                    debug_assert!(ok, "decision variable was unassigned");
                }
            }
        }
    }

    /// Imports every clause currently pending in the attached exchange
    /// inbox (no-op without an exchange), then propagates the imported
    /// units.  Called automatically at every restart while racing; also
    /// the entry point for folding a finished race's leftover glue into
    /// the persistent session solver via a drain handle
    /// ([`crate::share::ClauseExchange::drain_handle`] +
    /// [`SatSolver::set_exchange`]).
    ///
    /// Returns the number of clauses imported.  Imported clauses are
    /// consequences of the shared clause set, so a conflict during the
    /// closing propagation soundly marks the solver unsatisfiable.
    pub fn import_shared_now(&mut self) -> u64 {
        if self.exchange.is_none() || !self.ok {
            return 0;
        }
        self.cancel_until(0);
        let imported = self.import_pending_shared();
        if self.ok && self.propagate().is_some() {
            self.ok = false;
        }
        imported
    }

    /// Drains the exchange inbox into the learnt arena.  Must be called at
    /// decision level zero.  Filters each clause against the current
    /// permanent state: clauses already satisfied at level zero (for
    /// example, those mentioning the disabled activation literal of a
    /// popped scope) are skipped, and level-zero-falsified literals are
    /// stripped.  Units are enqueued at level zero; an empty survivor
    /// marks the solver unsatisfiable (sound — imports are implied).
    fn import_pending_shared(&mut self) -> u64 {
        debug_assert_eq!(self.decision_level(), 0);
        let Some(exchange) = self.exchange.clone() else {
            return 0;
        };
        let mut imported = 0u64;
        while let Some(shared) = exchange.try_recv() {
            if self.import_clause(&shared.lits, shared.lbd) {
                imported += 1;
            }
            if !self.ok {
                break;
            }
        }
        exchange.note_imported(imported);
        imported
    }

    /// Filters and attaches one foreign clause; returns `true` when the
    /// clause was actually added (as a learnt clause or a level-zero unit).
    fn import_clause(&mut self, lits: &[Lit], lbd: u32) -> bool {
        // Defensive range filter: a foreign clause over variables this
        // clone has never allocated cannot be interpreted.  (Portfolio
        // clones share one allocation history, so this never fires there.)
        if lits.iter().any(|l| l.var() >= self.num_vars()) {
            return false;
        }
        let mut clause = Vec::with_capacity(lits.len());
        for &lit in lits {
            match self.value(lit) {
                // Permanently satisfied (e.g. by a popped scope's disabled
                // activation literal): nothing to learn.
                Some(true) if self.levels[lit.var()] == 0 => return false,
                // Permanently falsified literal: strip it.
                Some(false) if self.levels[lit.var()] == 0 => {}
                _ => clause.push(lit),
            }
        }
        match clause.len() {
            0 => {
                self.ok = false;
                false
            }
            1 => {
                if !self.enqueue(clause[0], None) {
                    self.ok = false;
                }
                true
            }
            _ => {
                self.attach(clause, true, lbd.max(1));
                self.stats.learnt_clauses += 1;
                self.stats.total_learnt += 1;
                true
            }
        }
    }

    /// Returns the final conflict of the most recent failed
    /// [`SatSolver::solve_with_assumptions`] call: a subset of the assumed
    /// literals whose conjunction is incompatible with the clause set.  The
    /// core is a correct witness but not guaranteed minimal.
    pub fn last_core(&self) -> &[Lit] {
        &self.last_core
    }

    /// Walks the implication graph backwards from a failed assumption `p`
    /// (currently assigned false) and collects the assumptions that
    /// contributed to falsifying it — MiniSat's `analyzeFinal`.
    fn analyze_final(&self, p: Lit) -> Vec<Lit> {
        let mut core = vec![p];
        if self.decision_level() == 0 || self.levels[p.var()] == 0 {
            // `¬p` follows from the clause set alone: `{p}` is the core.
            return core;
        }
        let mut seen = vec![false; self.num_vars()];
        seen[p.var()] = true;
        for i in (self.trail_lim[0]..self.trail.len()).rev() {
            let x = self.trail[i];
            if !seen[x.var()] {
                continue;
            }
            match self.reasons[x.var()] {
                // Decisions above level zero are exactly the established
                // assumptions; the trail holds the assumed literal itself.
                None => core.push(x),
                Some(cr) => {
                    for &l in &self.clause(cr).lits {
                        if l.var() != x.var() && self.levels[l.var()] > 0 {
                            seen[l.var()] = true;
                        }
                    }
                }
            }
            seen[x.var()] = false;
        }
        core
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lit(v: Var, pos: bool) -> Lit {
        Lit::new(v, pos)
    }

    /// A configuration that churns the database hard: reductions every few
    /// conflicts, nothing protected by LBD, tiny Luby unit.  Used to make
    /// the new machinery fire even on the small test instances.
    fn churn_config() -> SolverConfig {
        SolverConfig {
            clause_reduction: true,
            first_reduce: 4,
            reduce_interval: 2,
            keep_lbd: 0,
            luby_base: 2,
            restart_ema_ratio: 1.1,
            phase_saving: true,
            ..SolverConfig::default()
        }
    }

    #[test]
    fn literal_encoding_roundtrips() {
        let l = Lit::positive(7);
        assert_eq!(l.var(), 7);
        assert!(l.is_positive());
        assert_eq!(l.negated().var(), 7);
        assert!(!l.negated().is_positive());
        assert_eq!(l.negated().negated(), l);
    }

    #[test]
    fn luby_sequence_is_the_textbook_one() {
        let expected = [1u64, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8];
        let got: Vec<u64> = (0..expected.len() as u64).map(luby).collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn trivially_satisfiable() {
        let mut s = SatSolver::new();
        let a = s.new_var();
        s.add_clause(&[lit(a, true)]);
        let m = s.solve().unwrap();
        assert!(m[a]);
    }

    #[test]
    fn direct_contradiction_is_unsat() {
        let mut s = SatSolver::new();
        let a = s.new_var();
        s.add_clause(&[lit(a, true)]);
        s.add_clause(&[lit(a, false)]);
        assert_eq!(s.solve(), Err(Unsat));
    }

    #[test]
    fn duplicate_literals_and_tautologies_are_preprocessed() {
        let mut s = SatSolver::new();
        let a = s.new_var();
        let b = s.new_var();
        // Tautology: must be ignored entirely.
        assert!(s.add_clause(&[lit(a, true), lit(b, true), lit(a, false)]));
        // Duplicates collapse to a unit clause.
        assert!(s.add_clause(&[lit(b, false), lit(b, false), lit(b, false)]));
        let m = s.solve().unwrap();
        assert!(!m[b]);
    }

    #[test]
    fn chained_implications_propagate() {
        // a, a->b, b->c, c->d  =>  d must be true.
        let mut s = SatSolver::new();
        let vars: Vec<Var> = (0..4).map(|_| s.new_var()).collect();
        s.add_clause(&[lit(vars[0], true)]);
        for w in vars.windows(2) {
            s.add_clause(&[lit(w[0], false), lit(w[1], true)]);
        }
        let m = s.solve().unwrap();
        assert!(vars.iter().all(|&v| m[v]));
    }

    #[test]
    fn pigeonhole_three_pigeons_two_holes_is_unsat() {
        // p_{i,j}: pigeon i in hole j.  Each pigeon in some hole, no hole
        // with two pigeons.
        let mut s = SatSolver::new();
        let mut p = [[0usize; 2]; 3];
        for row in p.iter_mut() {
            for cell in row.iter_mut() {
                *cell = s.new_var();
            }
        }
        for row in &p {
            s.add_clause(&[lit(row[0], true), lit(row[1], true)]);
        }
        #[allow(clippy::needless_range_loop)] // j indexes two rows at once
        for j in 0..2 {
            for i in 0..3 {
                for k in (i + 1)..3 {
                    s.add_clause(&[lit(p[i][j], false), lit(p[k][j], false)]);
                }
            }
        }
        assert_eq!(s.solve(), Err(Unsat));
    }

    #[test]
    fn pigeonhole_stays_unsat_under_aggressive_reduction() {
        // Larger pigeonhole so the search actually learns clauses, solved
        // with reductions every few conflicts: deleting learnt clauses must
        // never change the verdict.
        let n = 5usize; // pigeons; n - 1 holes
        let mut s = SatSolver::with_config(churn_config());
        let p: Vec<Vec<Var>> = (0..n)
            .map(|_| (0..n - 1).map(|_| s.new_var()).collect())
            .collect();
        for row in &p {
            let clause: Vec<Lit> = row.iter().map(|&v| lit(v, true)).collect();
            s.add_clause(&clause);
        }
        #[allow(clippy::needless_range_loop)] // j indexes all rows at once
        for j in 0..n - 1 {
            for i in 0..n {
                for k in (i + 1)..n {
                    s.add_clause(&[lit(p[i][j], false), lit(p[k][j], false)]);
                }
            }
        }
        assert_eq!(s.solve(), Err(Unsat));
        let stats = s.stats();
        assert!(stats.reduced_dbs > 0, "reduction never fired: {stats:?}");
        assert!(stats.deleted_clauses > 0, "nothing deleted: {stats:?}");
        assert!(stats.learnt_clauses <= stats.total_learnt);
    }

    #[test]
    fn profile_attributes_phases_when_telemetry_is_enabled() {
        // Same pigeonhole as above, but with an enabled telemetry handle:
        // the profile must attribute the phases the stats say happened, and
        // the trace must carry the restart/reduction events.
        let n = 5usize;
        let (telemetry, trace) = Telemetry::ring(4096);
        let config = SolverConfig {
            telemetry,
            ..churn_config()
        };
        let mut s = SatSolver::with_config(config);
        let p: Vec<Vec<Var>> = (0..n)
            .map(|_| (0..n - 1).map(|_| s.new_var()).collect())
            .collect();
        for row in &p {
            let clause: Vec<Lit> = row.iter().map(|&v| lit(v, true)).collect();
            s.add_clause(&clause);
        }
        #[allow(clippy::needless_range_loop)] // j indexes all rows at once
        for j in 0..n - 1 {
            for i in 0..n {
                for k in (i + 1)..n {
                    s.add_clause(&[lit(p[i][j], false), lit(p[k][j], false)]);
                }
            }
        }
        assert_eq!(s.solve(), Err(Unsat));
        let stats = s.stats();
        let profile = s.take_profile();
        assert!(profile.propagate.count > 0, "{profile:?}");
        assert_eq!(profile.conflicts, stats.conflicts);
        // The final conflict lands at level zero and ends the query
        // without an analysis, so analyze may trail conflicts by one.
        assert!(profile.analyze.count >= stats.conflicts - 1, "{profile:?}");
        assert_eq!(profile.restart.count, stats.restarts);
        assert_eq!(profile.restarts.len() as u64, stats.restarts);
        assert_eq!(profile.reduce.count, stats.reduced_dbs);
        for pair in profile.restarts.windows(2) {
            assert!(pair[0].conflicts <= pair[1].conflicts);
        }
        // Taking the profile resets it.
        assert!(s.take_profile().is_empty());
        let lines = trace.lines();
        let restart_events = lines
            .iter()
            .filter(|l| l.contains("\"name\":\"sat.restart\""))
            .count();
        let reduce_events = lines
            .iter()
            .filter(|l| l.contains("\"name\":\"sat.reduce_db\""))
            .count();
        assert_eq!(trace.dropped(), 0, "ring too small for this instance");
        assert_eq!(restart_events as u64, stats.restarts);
        assert_eq!(reduce_events as u64, stats.reduced_dbs);
    }

    #[test]
    fn incremental_clause_addition_flips_result() {
        let mut s = SatSolver::new();
        let a = s.new_var();
        let b = s.new_var();
        s.add_clause(&[lit(a, true), lit(b, true)]);
        assert!(s.solve().is_ok());
        s.add_clause(&[lit(a, false)]);
        assert!(s.solve().is_ok());
        s.add_clause(&[lit(b, false)]);
        assert_eq!(s.solve(), Err(Unsat));
    }

    #[test]
    fn assumptions_are_retracted_between_calls() {
        let mut s = SatSolver::new();
        let a = s.new_var();
        let b = s.new_var();
        s.add_clause(&[lit(a, true), lit(b, true)]);
        // Under ¬a the solver must pick b…
        let m = s.solve_with_assumptions(&[lit(a, false)]).unwrap();
        assert!(!m[a]);
        assert!(m[b]);
        // …but ¬a is not persistent: assuming ¬b now forces a.
        let m = s.solve_with_assumptions(&[lit(b, false)]).unwrap();
        assert!(m[a]);
        assert!(!m[b]);
        // And with no assumptions the instance is still satisfiable.
        assert!(s.solve().is_ok());
    }

    #[test]
    fn failed_assumptions_produce_a_core() {
        // a -> b, b -> c; assuming a and ¬c is inconsistent.
        let mut s = SatSolver::new();
        let a = s.new_var();
        let b = s.new_var();
        let c = s.new_var();
        let d = s.new_var(); // irrelevant to the conflict
        s.add_clause(&[lit(a, false), lit(b, true)]);
        s.add_clause(&[lit(b, false), lit(c, true)]);
        let result = s.solve_with_assumptions(&[lit(d, true), lit(a, true), lit(c, false)]);
        assert_eq!(result, Err(Unsat));
        let core = s.last_core().to_vec();
        assert!(core.contains(&lit(a, true)));
        assert!(core.contains(&lit(c, false)));
        assert!(
            !core.contains(&lit(d, true)),
            "unrelated assumption in core"
        );
        // The solver remains usable and satisfiable without the assumptions.
        assert!(s.solve().is_ok());
    }

    #[test]
    fn directly_contradictory_assumptions_core_both_polarities() {
        let mut s = SatSolver::new();
        let a = s.new_var();
        assert_eq!(
            s.solve_with_assumptions(&[lit(a, true), lit(a, false)]),
            Err(Unsat)
        );
        let core = s.last_core().to_vec();
        assert!(core.contains(&lit(a, true)));
        assert!(core.contains(&lit(a, false)));
    }

    #[test]
    fn assumption_refuted_at_level_zero_is_its_own_core() {
        let mut s = SatSolver::new();
        let a = s.new_var();
        s.add_clause(&[lit(a, false)]);
        assert_eq!(s.solve_with_assumptions(&[lit(a, true)]), Err(Unsat));
        assert_eq!(s.last_core(), &[lit(a, true)]);
    }

    #[test]
    fn unsat_clause_set_reports_empty_core() {
        let mut s = SatSolver::new();
        let a = s.new_var();
        let b = s.new_var();
        s.add_clause(&[lit(a, true)]);
        s.add_clause(&[lit(a, false)]);
        assert_eq!(s.solve_with_assumptions(&[lit(b, true)]), Err(Unsat));
        assert!(s.last_core().is_empty());
    }

    #[test]
    fn phase_saving_repeats_the_previous_model() {
        // With phase saving, re-solving an unchanged satisfiable instance
        // follows the saved polarities straight back to the same model.
        let mut gen = 0xA5F1u64;
        let mut next = move || {
            gen ^= gen << 13;
            gen ^= gen >> 7;
            gen ^= gen << 17;
            gen
        };
        let mut s = SatSolver::new();
        let num_vars = 10;
        for _ in 0..num_vars {
            s.new_var();
        }
        for _ in 0..20 {
            let clause: Vec<Lit> = (0..3)
                .map(|_| Lit::new((next() % num_vars as u64) as usize, next() % 2 == 0))
                .collect();
            s.add_clause(&clause);
        }
        if let Ok(first) = s.solve() {
            let second = s.solve().expect("still satisfiable");
            assert_eq!(first, second, "phase saving lost the previous model");
        }
    }

    /// Brute-force satisfiability of `clauses` (plus optional forced
    /// `units`) over `num_vars` variables.
    fn brute_force_sat(num_vars: usize, clauses: &[Vec<Lit>], units: &[Lit]) -> bool {
        'assignments: for bits in 0..(1u32 << num_vars) {
            let val = |l: Lit| ((bits >> l.var()) & 1 == 1) == l.is_positive();
            if units.iter().any(|&l| !val(l)) {
                continue 'assignments;
            }
            if clauses.iter().all(|c| c.iter().any(|&l| val(l))) {
                return true;
            }
        }
        false
    }

    #[test]
    fn model_satisfies_all_clauses_on_random_instances() {
        // Small deterministic pseudo-random 3-SAT instances, cross-checked
        // against brute force — solved both without assumptions and under
        // random assumption sets, with aggressive database reduction, Luby
        // restarts and phase saving all active.  Failed assumption cores
        // must themselves be unsatisfiable together with the clauses.
        let mut seed = 0x2545F4914F6CDD1Du64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for instance in 0..60 {
            let num_vars = 6;
            let num_clauses = 14 + (instance % 7);
            let clauses: Vec<Vec<Lit>> = (0..num_clauses)
                .map(|_| {
                    (0..3)
                        .map(|_| {
                            let v = (next() % num_vars as u64) as usize;
                            Lit::new(v, next() % 2 == 0)
                        })
                        .collect()
                })
                .collect();
            let mut s = if instance % 2 == 0 {
                SatSolver::new()
            } else {
                SatSolver::with_config(churn_config())
            };
            for _ in 0..num_vars {
                s.new_var();
            }
            for c in &clauses {
                s.add_clause(c);
            }
            let solver_result = s.solve();
            let brute_sat = brute_force_sat(num_vars, &clauses, &[]);
            match solver_result {
                Ok(ref model) => {
                    assert!(brute_sat, "solver returned SAT on UNSAT instance");
                    for c in &clauses {
                        assert!(
                            c.iter().any(|&l| model[l.var()] == l.is_positive()),
                            "model does not satisfy clause {c:?}"
                        );
                    }
                }
                Err(Unsat) => assert!(!brute_sat, "solver returned UNSAT on SAT instance"),
            }
            // The same instance under three random assumption sets, from
            // the same (incremental) solver.
            for round in 0..3 {
                let num_assumptions = 1 + (next() % 3) as usize;
                let assumptions: Vec<Lit> = (0..num_assumptions)
                    .map(|_| {
                        let v = (next() % num_vars as u64) as usize;
                        Lit::new(v, next() % 2 == 0)
                    })
                    .collect();
                let expected = brute_force_sat(num_vars, &clauses, &assumptions);
                match s.solve_with_assumptions(&assumptions) {
                    Ok(model) => {
                        assert!(
                            expected,
                            "instance {instance} round {round}: SAT under UNSAT assumptions"
                        );
                        for c in &clauses {
                            assert!(
                                c.iter().any(|&l| model[l.var()] == l.is_positive()),
                                "model does not satisfy clause {c:?}"
                            );
                        }
                        for &a in &assumptions {
                            assert_eq!(
                                model[a.var()],
                                a.is_positive(),
                                "model violates assumption {a:?}"
                            );
                        }
                    }
                    Err(Unsat) => {
                        assert!(
                            !expected || !brute_sat,
                            "instance {instance} round {round}: UNSAT under SAT assumptions"
                        );
                        let core = s.last_core().to_vec();
                        for l in &core {
                            assert!(
                                assumptions.contains(l),
                                "core literal {l:?} is not an assumption"
                            );
                        }
                        if brute_sat {
                            assert!(
                                !brute_force_sat(num_vars, &clauses, &core),
                                "instance {instance} round {round}: reported core {core:?} \
                                 is satisfiable with the clause set"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn reduction_keeps_repeated_assumption_queries_sound() {
        // A long session on one instance: many assumption queries with the
        // database being reduced throughout must keep agreeing with brute
        // force, and the live learnt count must stay at or below the
        // monotone total.
        let mut seed = 0x9E3779B97F4A7C15u64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        let num_vars = 8usize;
        let mut s = SatSolver::with_config(churn_config());
        for _ in 0..num_vars {
            s.new_var();
        }
        let clauses: Vec<Vec<Lit>> = (0..28)
            .map(|_| {
                (0..3)
                    .map(|_| Lit::new((next() % num_vars as u64) as usize, next() % 2 == 0))
                    .collect()
            })
            .collect();
        for c in &clauses {
            s.add_clause(c);
        }
        for _ in 0..100 {
            let assumptions: Vec<Lit> = (0..(next() % 4) as usize)
                .map(|_| Lit::new((next() % num_vars as u64) as usize, next() % 2 == 0))
                .collect();
            let expected = brute_force_sat(num_vars, &clauses, &assumptions);
            let got = s.solve_with_assumptions(&assumptions).is_ok();
            assert_eq!(got, expected, "assumptions {assumptions:?}");
        }
        let stats = s.stats();
        assert!(stats.learnt_clauses <= stats.total_learnt);
    }

    #[test]
    fn diversified_configs_are_deterministic_and_worker_zero_is_canonical() {
        let base = SolverConfig::default();
        // Worker 0 must search exactly like the sequential path.
        let canonical = base.diversify(0);
        assert_eq!(
            canonical,
            SolverConfig {
                portfolio: 1,
                ..base.clone()
            }
        );
        // Derivation is deterministic and actually diversifies.
        for w in 1..12 {
            assert_eq!(base.diversify(w), base.diversify(w));
            assert_ne!(base.diversify(w), canonical, "worker {w} not diversified");
        }
        assert_ne!(base.diversify(1), base.diversify(2));
    }

    #[test]
    fn interrupt_flag_stops_the_search_without_a_verdict() {
        use std::sync::atomic::AtomicBool;
        use std::sync::Arc;
        // All eight 3-literal clauses over three variables: unsatisfiable,
        // and provably so only through conflicts — which is where the
        // interrupt flag is polled.
        let mut s = SatSolver::new();
        for _ in 0..3 {
            s.new_var();
        }
        for bits in 0..8u32 {
            let clause: Vec<Lit> = (0..3).map(|v| Lit::new(v, (bits >> v) & 1 == 0)).collect();
            s.add_clause(&clause);
        }
        let flag = Arc::new(AtomicBool::new(true));
        s.set_interrupt(Some(Arc::clone(&flag)));
        assert_eq!(s.solve_limited(&[]), SolveOutcome::Interrupted);
        // The solver survives the interruption: clearing the flag lets the
        // same search run to its real verdict.
        flag.store(false, Ordering::Relaxed);
        assert_eq!(s.solve_limited(&[]), SolveOutcome::Unsat);
    }

    /// The portfolio soundness property: every clause a solver publishes
    /// to the exchange must be a logical consequence of the clause set
    /// **alone** — never of the assumptions in force when it was learnt.
    /// Cross-checked against brute-force enumeration on random instances,
    /// with scope-style guard literals active (a guarded sub-formula plus
    /// an assumption enabling it, exactly how [`crate::smt`] encodes
    /// push/pop scopes).
    #[test]
    fn exported_clauses_are_implied_by_the_clause_set_alone() {
        use crate::share::ClauseExchange;
        let mut seed = 0xC0FFEE123456789u64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        let mut exported_total = 0u64;
        for instance in 0..40 {
            let num_vars = 7usize; // 6 problem variables + 1 scope guard
            let guard = 6usize;
            let mut clauses: Vec<Vec<Lit>> = (0..(16 + instance % 5))
                .map(|_| {
                    (0..3)
                        .map(|_| Lit::new((next() % 6) as usize, next() % 2 == 0))
                        .collect()
                })
                .collect();
            // A "scope": four clauses only active while the guard is
            // assumed true (¬guard satisfies them), as in SMT push/pop.
            for _ in 0..4 {
                let mut c: Vec<Lit> = (0..2)
                    .map(|_| Lit::new((next() % 6) as usize, next() % 2 == 0))
                    .collect();
                c.push(Lit::negative(guard));
                clauses.push(c);
            }
            let exchange = ClauseExchange::new(2, 4096);
            let mut s = SatSolver::with_config(SolverConfig {
                // Export every learnt clause, not only glue: the property
                // must hold for anything the hook could ever publish.
                glue_share_lbd: u32::MAX,
                ..churn_config()
            });
            s.set_exchange(Some(exchange.handle(0)));
            for _ in 0..num_vars {
                s.new_var();
            }
            for c in &clauses {
                s.add_clause(c);
            }
            for _ in 0..4 {
                let mut assumptions = vec![Lit::new(guard, next() % 2 == 0)];
                for _ in 0..(next() % 3) {
                    assumptions.push(Lit::new((next() % 6) as usize, next() % 2 == 0));
                }
                let _ = s.solve_with_assumptions(&assumptions);
            }
            // Drain what worker 0 published to inbox 1 and check each
            // clause against brute force: clauses ∧ ¬c must be UNSAT.
            let collector = exchange.drain_handle(1);
            while let Some(shared) = collector.try_recv() {
                exported_total += 1;
                let negation: Vec<Lit> = shared.lits.iter().map(|l| l.negated()).collect();
                assert!(
                    !brute_force_sat(num_vars, &clauses, &negation),
                    "instance {instance}: exported clause {:?} is not implied \
                     by the clause set alone",
                    shared.lits
                );
            }
        }
        assert!(
            exported_total > 0,
            "the fuzz instances never exercised the export hook"
        );
    }

    #[test]
    fn importing_shared_clauses_preserves_verdicts_under_assumptions() {
        use crate::share::ClauseExchange;
        // A two-solver mini-portfolio on one instance: both export, both
        // import (at restarts and explicitly between rounds), and both
        // must keep agreeing with brute force on every assumption round.
        let mut seed = 0xDEAD_BEEF_CAFE_0001u64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for _instance in 0..12 {
            let num_vars = 7usize;
            let clauses: Vec<Vec<Lit>> = (0..24)
                .map(|_| {
                    (0..3)
                        .map(|_| Lit::new((next() % num_vars as u64) as usize, next() % 2 == 0))
                        .collect()
                })
                .collect();
            let exchange = ClauseExchange::new(2, 4096);
            let mut a = SatSolver::with_config(churn_config());
            let mut b = SatSolver::with_config(SolverConfig::default().diversify(1));
            a.set_exchange(Some(exchange.handle(0)));
            b.set_exchange(Some(exchange.handle(1)));
            for s in [&mut a, &mut b] {
                for _ in 0..num_vars {
                    s.new_var();
                }
                for c in &clauses {
                    s.add_clause(c);
                }
            }
            for round in 0..8 {
                let assumptions: Vec<Lit> = (0..(next() % 4) as usize)
                    .map(|_| Lit::new((next() % num_vars as u64) as usize, next() % 2 == 0))
                    .collect();
                let expected = brute_force_sat(num_vars, &clauses, &assumptions);
                let got_a = a.solve_with_assumptions(&assumptions).is_ok();
                let got_b = b.solve_with_assumptions(&assumptions).is_ok();
                assert_eq!(got_a, expected, "solver A, round {round}");
                assert_eq!(got_b, expected, "solver B, round {round}");
                // Explicit absorption outside any search, mid-session.
                a.import_shared_now();
                b.import_shared_now();
            }
        }
    }
}
