//! A CDCL SAT solver.
//!
//! This is the propositional core of the lazy DPLL(T) loop in [`crate::smt`].
//! It implements the standard conflict-driven clause-learning algorithm:
//! two-watched-literal unit propagation, first-UIP conflict analysis with
//! clause learning and non-chronological backjumping, exponential-decay
//! variable activities for branching and geometric restarts.
//!
//! The solver is incremental in two senses: clauses may be added between
//! calls to [`SatSolver::solve`], and [`SatSolver::solve_with_assumptions`]
//! solves under a set of assumed literals that are retracted when the call
//! returns — learnt clauses, variable activities and the watcher state all
//! survive into the next call, which is what makes closely related queries
//! (such as a queue-size sweep) cheap after the first one.  When a solve
//! under assumptions fails, [`SatSolver::last_core`] reports the subset of
//! the assumptions responsible (the *final conflict*, in MiniSat terms).
//!
//! # Examples
//!
//! ```
//! use advocat_logic::sat::{Lit, SatSolver};
//!
//! let mut solver = SatSolver::new();
//! let a = solver.new_var();
//! let b = solver.new_var();
//! solver.add_clause(&[Lit::positive(a), Lit::positive(b)]);
//! solver.add_clause(&[Lit::negative(a)]);
//! let model = solver.solve().expect("satisfiable");
//! assert!(!model[a]);
//! assert!(model[b]);
//! ```

use std::fmt;

/// A propositional variable, identified by index.
pub type Var = usize;

/// A literal: a variable together with a polarity.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Lit(u32);

impl Lit {
    /// Creates the positive literal of `var`.
    pub fn positive(var: Var) -> Lit {
        Lit((var as u32) << 1)
    }

    /// Creates the negative literal of `var`.
    pub fn negative(var: Var) -> Lit {
        Lit(((var as u32) << 1) | 1)
    }

    /// Creates a literal from a variable and a sign (`true` = positive).
    pub fn new(var: Var, positive: bool) -> Lit {
        if positive {
            Lit::positive(var)
        } else {
            Lit::negative(var)
        }
    }

    /// Returns the underlying variable.
    pub fn var(self) -> Var {
        (self.0 >> 1) as usize
    }

    /// Returns `true` for a positive literal.
    pub fn is_positive(self) -> bool {
        self.0 & 1 == 0
    }

    /// Returns the complementary literal.
    pub fn negated(self) -> Lit {
        Lit(self.0 ^ 1)
    }

    fn code(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_positive() {
            write!(f, "x{}", self.var())
        } else {
            write!(f, "¬x{}", self.var())
        }
    }
}

#[derive(Clone, Debug)]
struct Clause {
    lits: Vec<Lit>,
}

/// Statistics collected by the SAT solver.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SatStats {
    /// Number of decisions made.
    pub decisions: u64,
    /// Number of unit propagations performed.
    pub propagations: u64,
    /// Number of conflicts encountered.
    pub conflicts: u64,
    /// Number of restarts performed.
    pub restarts: u64,
    /// Number of learnt clauses currently stored.
    pub learnt_clauses: u64,
}

/// A conflict-driven clause-learning SAT solver.
#[derive(Clone, Debug)]
pub struct SatSolver {
    clauses: Vec<Clause>,
    watches: Vec<Vec<usize>>,
    assigns: Vec<Option<bool>>,
    levels: Vec<u32>,
    reasons: Vec<Option<usize>>,
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    qhead: usize,
    activity: Vec<f64>,
    var_inc: f64,
    ok: bool,
    stats: SatStats,
    last_core: Vec<Lit>,
}

/// Result returned when the solver proves unsatisfiability.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Unsat;

impl Default for SatSolver {
    fn default() -> Self {
        SatSolver::new()
    }
}

impl SatSolver {
    /// Creates an empty solver with no variables or clauses.
    pub fn new() -> Self {
        SatSolver {
            clauses: Vec::new(),
            watches: Vec::new(),
            assigns: Vec::new(),
            levels: Vec::new(),
            reasons: Vec::new(),
            trail: Vec::new(),
            trail_lim: Vec::new(),
            qhead: 0,
            activity: Vec::new(),
            var_inc: 1.0,
            ok: true,
            stats: SatStats::default(),
            last_core: Vec::new(),
        }
    }

    /// Allocates a fresh variable and returns it.
    pub fn new_var(&mut self) -> Var {
        let v = self.assigns.len();
        self.assigns.push(None);
        self.levels.push(0);
        self.reasons.push(None);
        self.activity.push(0.0);
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        v
    }

    /// Returns the number of allocated variables.
    pub fn num_vars(&self) -> usize {
        self.assigns.len()
    }

    /// Returns solver statistics.
    pub fn stats(&self) -> SatStats {
        self.stats
    }

    /// Adds a clause.  Returns `false` if the solver is already known to be
    /// unsatisfiable (either before the call or as a result of it).
    ///
    /// # Panics
    ///
    /// Panics if a literal refers to a variable that was never allocated.
    pub fn add_clause(&mut self, lits: &[Lit]) -> bool {
        if !self.ok {
            return false;
        }
        self.cancel_until(0);
        // Deduplicate and detect tautologies.
        let mut clause: Vec<Lit> = Vec::with_capacity(lits.len());
        for &lit in lits {
            assert!(lit.var() < self.num_vars(), "literal for unknown variable");
            if clause.contains(&lit.negated()) {
                return true; // tautology
            }
            if !clause.contains(&lit) {
                clause.push(lit);
            }
        }
        // Remove literals already false at level 0; detect satisfied clauses.
        clause.retain(|&l| self.value(l) != Some(false) || self.levels[l.var()] != 0);
        if clause
            .iter()
            .any(|&l| self.value(l) == Some(true) && self.levels[l.var()] == 0)
        {
            return true;
        }
        match clause.len() {
            0 => {
                self.ok = false;
                false
            }
            1 => {
                if !self.enqueue(clause[0], None) {
                    self.ok = false;
                    return false;
                }
                if self.propagate().is_some() {
                    self.ok = false;
                    return false;
                }
                true
            }
            _ => {
                self.attach_clause(clause);
                true
            }
        }
    }

    fn attach_clause(&mut self, lits: Vec<Lit>) -> usize {
        let idx = self.clauses.len();
        self.watches[lits[0].code()].push(idx);
        self.watches[lits[1].code()].push(idx);
        self.clauses.push(Clause { lits });
        idx
    }

    fn value(&self, lit: Lit) -> Option<bool> {
        self.assigns[lit.var()].map(|v| v == lit.is_positive())
    }

    fn decision_level(&self) -> u32 {
        self.trail_lim.len() as u32
    }

    fn enqueue(&mut self, lit: Lit, reason: Option<usize>) -> bool {
        match self.value(lit) {
            Some(true) => true,
            Some(false) => false,
            None => {
                self.assigns[lit.var()] = Some(lit.is_positive());
                self.levels[lit.var()] = self.decision_level();
                self.reasons[lit.var()] = reason;
                self.trail.push(lit);
                true
            }
        }
    }

    fn propagate(&mut self) -> Option<usize> {
        while self.qhead < self.trail.len() {
            let lit = self.trail[self.qhead];
            self.qhead += 1;
            self.stats.propagations += 1;
            let falsified = lit.negated();
            let watch_list = std::mem::take(&mut self.watches[falsified.code()]);
            let mut kept: Vec<usize> = Vec::with_capacity(watch_list.len());
            let mut conflict: Option<usize> = None;
            for (pos, &ci) in watch_list.iter().enumerate() {
                if conflict.is_some() {
                    kept.extend_from_slice(&watch_list[pos..]);
                    break;
                }
                // Make sure the falsified literal is at position 1.
                let (w0, w1) = {
                    let c = &mut self.clauses[ci];
                    if c.lits[0] == falsified {
                        c.lits.swap(0, 1);
                    }
                    (c.lits[0], c.lits[1])
                };
                debug_assert_eq!(w1, falsified);
                if self.value(w0) == Some(true) {
                    kept.push(ci);
                    continue;
                }
                // Look for a new literal to watch.
                let mut moved = false;
                let len = self.clauses[ci].lits.len();
                for k in 2..len {
                    let cand = self.clauses[ci].lits[k];
                    if self.value(cand) != Some(false) {
                        self.clauses[ci].lits.swap(1, k);
                        self.watches[cand.code()].push(ci);
                        moved = true;
                        break;
                    }
                }
                if moved {
                    continue;
                }
                // Clause is unit or conflicting.
                kept.push(ci);
                if !self.enqueue(w0, Some(ci)) {
                    conflict = Some(ci);
                }
            }
            self.watches[falsified.code()] = kept;
            if let Some(ci) = conflict {
                self.qhead = self.trail.len();
                return Some(ci);
            }
        }
        None
    }

    fn cancel_until(&mut self, level: u32) {
        if self.decision_level() <= level {
            return;
        }
        let keep = self.trail_lim[level as usize];
        for &lit in &self.trail[keep..] {
            self.assigns[lit.var()] = None;
            self.reasons[lit.var()] = None;
        }
        self.trail.truncate(keep);
        self.trail_lim.truncate(level as usize);
        self.qhead = self.trail.len();
    }

    fn bump_var(&mut self, var: Var) {
        self.activity[var] += self.var_inc;
        if self.activity[var] > 1e100 {
            for a in &mut self.activity {
                *a *= 1e-100;
            }
            self.var_inc *= 1e-100;
        }
    }

    fn decay_activities(&mut self) {
        self.var_inc /= 0.95;
    }

    fn analyze(&mut self, mut conflict: usize) -> (Vec<Lit>, u32) {
        let mut learnt: Vec<Lit> = vec![Lit::positive(0)]; // placeholder for the asserting literal
        let mut seen = vec![false; self.num_vars()];
        let mut counter = 0usize;
        let mut trail_idx = self.trail.len();
        let mut asserting = None;

        loop {
            let reason_lits: Vec<Lit> = self.clauses[conflict].lits.clone();
            let skip = usize::from(asserting.is_some());
            for &lit in reason_lits.iter().skip(skip) {
                let v = lit.var();
                if !seen[v] && self.levels[v] > 0 {
                    seen[v] = true;
                    self.bump_var(v);
                    if self.levels[v] >= self.decision_level() {
                        counter += 1;
                    } else {
                        learnt.push(lit);
                    }
                }
            }
            // Find the next literal of the current decision level on the trail.
            loop {
                trail_idx -= 1;
                let lit = self.trail[trail_idx];
                if seen[lit.var()] {
                    asserting = Some(lit);
                    break;
                }
            }
            let lit = asserting.expect("found a seen literal");
            counter -= 1;
            seen[lit.var()] = false;
            if counter == 0 {
                learnt[0] = lit.negated();
                break;
            }
            conflict = self.reasons[lit.var()].expect("non-decision literal has a reason");
        }

        let backjump = if learnt.len() == 1 {
            0
        } else {
            let mut max_idx = 1;
            for i in 2..learnt.len() {
                if self.levels[learnt[i].var()] > self.levels[learnt[max_idx].var()] {
                    max_idx = i;
                }
            }
            learnt.swap(1, max_idx);
            self.levels[learnt[1].var()]
        };
        (learnt, backjump)
    }

    fn pick_branch_var(&self) -> Option<Var> {
        let mut best: Option<(Var, f64)> = None;
        for v in 0..self.num_vars() {
            if self.assigns[v].is_none() {
                let act = self.activity[v];
                match best {
                    Some((_, b)) if b >= act => {}
                    _ => best = Some((v, act)),
                }
            }
        }
        best.map(|(v, _)| v)
    }

    /// Solves the current clause set.
    ///
    /// Returns `Ok(model)` with one Boolean per variable when satisfiable,
    /// and `Err(Unsat)` otherwise.  The solver always returns to decision
    /// level zero, so further clauses can be added afterwards.
    pub fn solve(&mut self) -> Result<Vec<bool>, Unsat> {
        self.solve_with_assumptions(&[])
    }

    /// Solves the current clause set under the given assumption literals.
    ///
    /// The assumptions are treated as the first decisions of the search (in
    /// order) and are retracted before the call returns, so the same solver
    /// can answer a sequence of related queries while keeping every learnt
    /// clause, the variable activities and the watcher state.
    ///
    /// On `Err(Unsat)`, [`SatSolver::last_core`] holds the subset of the
    /// assumptions that the solver found jointly incompatible with the
    /// clause set (empty when the clause set is unsatisfiable on its own —
    /// in that case every later call also returns `Err(Unsat)`).
    ///
    /// # Panics
    ///
    /// Panics if an assumption refers to a variable that was never
    /// allocated.
    pub fn solve_with_assumptions(&mut self, assumptions: &[Lit]) -> Result<Vec<bool>, Unsat> {
        self.last_core.clear();
        if !self.ok {
            return Err(Unsat);
        }
        for lit in assumptions {
            assert!(
                lit.var() < self.num_vars(),
                "assumption for unknown variable"
            );
        }
        self.cancel_until(0);
        if self.propagate().is_some() {
            self.ok = false;
            return Err(Unsat);
        }
        let mut conflicts_since_restart = 0u64;
        let mut restart_limit = 100u64;

        loop {
            if let Some(conflict) = self.propagate() {
                self.stats.conflicts += 1;
                conflicts_since_restart += 1;
                if self.decision_level() == 0 {
                    self.ok = false;
                    return Err(Unsat);
                }
                let (learnt, backjump) = self.analyze(conflict);
                self.cancel_until(backjump);
                if learnt.len() == 1 {
                    let ok = self.enqueue(learnt[0], None);
                    debug_assert!(ok, "asserting literal must be enqueueable");
                } else {
                    let ci = self.attach_clause(learnt.clone());
                    self.stats.learnt_clauses += 1;
                    let ok = self.enqueue(learnt[0], Some(ci));
                    debug_assert!(ok, "asserting literal must be enqueueable");
                }
                self.decay_activities();
                continue;
            }
            if conflicts_since_restart >= restart_limit {
                conflicts_since_restart = 0;
                restart_limit = restart_limit + restart_limit / 2;
                self.stats.restarts += 1;
                self.cancel_until(0);
                continue;
            }
            // Establish the next pending assumption, if any, before
            // branching freely.  Backjumps and restarts may retract
            // assumptions; they are re-established here because the
            // decision level tracks how many are currently on the trail.
            if (self.decision_level() as usize) < assumptions.len() {
                let p = assumptions[self.decision_level() as usize];
                match self.value(p) {
                    Some(true) => {
                        // Already implied: open an empty decision level so
                        // assumption indices and decision levels stay
                        // aligned.
                        self.trail_lim.push(self.trail.len());
                    }
                    Some(false) => {
                        self.last_core = self.analyze_final(p);
                        self.cancel_until(0);
                        return Err(Unsat);
                    }
                    None => {
                        self.stats.decisions += 1;
                        self.trail_lim.push(self.trail.len());
                        let ok = self.enqueue(p, None);
                        debug_assert!(ok, "assumption variable was unassigned");
                    }
                }
                continue;
            }
            match self.pick_branch_var() {
                None => {
                    let model: Vec<bool> =
                        self.assigns.iter().map(|a| a.unwrap_or(false)).collect();
                    self.cancel_until(0);
                    return Ok(model);
                }
                Some(v) => {
                    self.stats.decisions += 1;
                    self.trail_lim.push(self.trail.len());
                    // Phase saving would go here; default to negative polarity,
                    // which is a good default for the mostly-Horn encodings
                    // produced by the deadlock equations.
                    let ok = self.enqueue(Lit::negative(v), None);
                    debug_assert!(ok, "decision variable was unassigned");
                }
            }
        }
    }

    /// Returns the final conflict of the most recent failed
    /// [`SatSolver::solve_with_assumptions`] call: a subset of the assumed
    /// literals whose conjunction is incompatible with the clause set.  The
    /// core is a correct witness but not guaranteed minimal.
    pub fn last_core(&self) -> &[Lit] {
        &self.last_core
    }

    /// Walks the implication graph backwards from a failed assumption `p`
    /// (currently assigned false) and collects the assumptions that
    /// contributed to falsifying it — MiniSat's `analyzeFinal`.
    fn analyze_final(&self, p: Lit) -> Vec<Lit> {
        let mut core = vec![p];
        if self.decision_level() == 0 || self.levels[p.var()] == 0 {
            // `¬p` follows from the clause set alone: `{p}` is the core.
            return core;
        }
        let mut seen = vec![false; self.num_vars()];
        seen[p.var()] = true;
        for i in (self.trail_lim[0]..self.trail.len()).rev() {
            let x = self.trail[i];
            if !seen[x.var()] {
                continue;
            }
            match self.reasons[x.var()] {
                // Decisions above level zero are exactly the established
                // assumptions; the trail holds the assumed literal itself.
                None => core.push(x),
                Some(ci) => {
                    for &l in &self.clauses[ci].lits {
                        if l.var() != x.var() && self.levels[l.var()] > 0 {
                            seen[l.var()] = true;
                        }
                    }
                }
            }
            seen[x.var()] = false;
        }
        core
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lit(v: Var, pos: bool) -> Lit {
        Lit::new(v, pos)
    }

    #[test]
    fn literal_encoding_roundtrips() {
        let l = Lit::positive(7);
        assert_eq!(l.var(), 7);
        assert!(l.is_positive());
        assert_eq!(l.negated().var(), 7);
        assert!(!l.negated().is_positive());
        assert_eq!(l.negated().negated(), l);
    }

    #[test]
    fn trivially_satisfiable() {
        let mut s = SatSolver::new();
        let a = s.new_var();
        s.add_clause(&[lit(a, true)]);
        let m = s.solve().unwrap();
        assert!(m[a]);
    }

    #[test]
    fn direct_contradiction_is_unsat() {
        let mut s = SatSolver::new();
        let a = s.new_var();
        s.add_clause(&[lit(a, true)]);
        s.add_clause(&[lit(a, false)]);
        assert_eq!(s.solve(), Err(Unsat));
    }

    #[test]
    fn chained_implications_propagate() {
        // a, a->b, b->c, c->d  =>  d must be true.
        let mut s = SatSolver::new();
        let vars: Vec<Var> = (0..4).map(|_| s.new_var()).collect();
        s.add_clause(&[lit(vars[0], true)]);
        for w in vars.windows(2) {
            s.add_clause(&[lit(w[0], false), lit(w[1], true)]);
        }
        let m = s.solve().unwrap();
        assert!(vars.iter().all(|&v| m[v]));
    }

    #[test]
    fn pigeonhole_three_pigeons_two_holes_is_unsat() {
        // p_{i,j}: pigeon i in hole j.  Each pigeon in some hole, no hole
        // with two pigeons.
        let mut s = SatSolver::new();
        let mut p = [[0usize; 2]; 3];
        for row in p.iter_mut() {
            for cell in row.iter_mut() {
                *cell = s.new_var();
            }
        }
        for row in &p {
            s.add_clause(&[lit(row[0], true), lit(row[1], true)]);
        }
        #[allow(clippy::needless_range_loop)] // j indexes two rows at once
        for j in 0..2 {
            for i in 0..3 {
                for k in (i + 1)..3 {
                    s.add_clause(&[lit(p[i][j], false), lit(p[k][j], false)]);
                }
            }
        }
        assert_eq!(s.solve(), Err(Unsat));
    }

    #[test]
    fn incremental_clause_addition_flips_result() {
        let mut s = SatSolver::new();
        let a = s.new_var();
        let b = s.new_var();
        s.add_clause(&[lit(a, true), lit(b, true)]);
        assert!(s.solve().is_ok());
        s.add_clause(&[lit(a, false)]);
        assert!(s.solve().is_ok());
        s.add_clause(&[lit(b, false)]);
        assert_eq!(s.solve(), Err(Unsat));
    }

    #[test]
    fn assumptions_are_retracted_between_calls() {
        let mut s = SatSolver::new();
        let a = s.new_var();
        let b = s.new_var();
        s.add_clause(&[lit(a, true), lit(b, true)]);
        // Under ¬a the solver must pick b…
        let m = s.solve_with_assumptions(&[lit(a, false)]).unwrap();
        assert!(!m[a]);
        assert!(m[b]);
        // …but ¬a is not persistent: assuming ¬b now forces a.
        let m = s.solve_with_assumptions(&[lit(b, false)]).unwrap();
        assert!(m[a]);
        assert!(!m[b]);
        // And with no assumptions the instance is still satisfiable.
        assert!(s.solve().is_ok());
    }

    #[test]
    fn failed_assumptions_produce_a_core() {
        // a -> b, b -> c; assuming a and ¬c is inconsistent.
        let mut s = SatSolver::new();
        let a = s.new_var();
        let b = s.new_var();
        let c = s.new_var();
        let d = s.new_var(); // irrelevant to the conflict
        s.add_clause(&[lit(a, false), lit(b, true)]);
        s.add_clause(&[lit(b, false), lit(c, true)]);
        let result = s.solve_with_assumptions(&[lit(d, true), lit(a, true), lit(c, false)]);
        assert_eq!(result, Err(Unsat));
        let core = s.last_core().to_vec();
        assert!(core.contains(&lit(a, true)));
        assert!(core.contains(&lit(c, false)));
        assert!(
            !core.contains(&lit(d, true)),
            "unrelated assumption in core"
        );
        // The solver remains usable and satisfiable without the assumptions.
        assert!(s.solve().is_ok());
    }

    #[test]
    fn directly_contradictory_assumptions_core_both_polarities() {
        let mut s = SatSolver::new();
        let a = s.new_var();
        assert_eq!(
            s.solve_with_assumptions(&[lit(a, true), lit(a, false)]),
            Err(Unsat)
        );
        let core = s.last_core().to_vec();
        assert!(core.contains(&lit(a, true)));
        assert!(core.contains(&lit(a, false)));
    }

    #[test]
    fn assumption_refuted_at_level_zero_is_its_own_core() {
        let mut s = SatSolver::new();
        let a = s.new_var();
        s.add_clause(&[lit(a, false)]);
        assert_eq!(s.solve_with_assumptions(&[lit(a, true)]), Err(Unsat));
        assert_eq!(s.last_core(), &[lit(a, true)]);
    }

    #[test]
    fn unsat_clause_set_reports_empty_core() {
        let mut s = SatSolver::new();
        let a = s.new_var();
        let b = s.new_var();
        s.add_clause(&[lit(a, true)]);
        s.add_clause(&[lit(a, false)]);
        assert_eq!(s.solve_with_assumptions(&[lit(b, true)]), Err(Unsat));
        assert!(s.last_core().is_empty());
    }

    #[test]
    fn model_satisfies_all_clauses_on_random_instances() {
        // Small deterministic pseudo-random 3-SAT instances, cross-checked
        // against brute force.
        let mut seed = 0x2545F4914F6CDD1Du64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for instance in 0..30 {
            let num_vars = 6;
            let num_clauses = 14 + (instance % 7);
            let clauses: Vec<Vec<Lit>> = (0..num_clauses)
                .map(|_| {
                    (0..3)
                        .map(|_| {
                            let v = (next() % num_vars as u64) as usize;
                            Lit::new(v, next() % 2 == 0)
                        })
                        .collect()
                })
                .collect();
            let mut s = SatSolver::new();
            for _ in 0..num_vars {
                s.new_var();
            }
            for c in &clauses {
                s.add_clause(c);
            }
            let solver_result = s.solve();
            // Brute force.
            let mut brute_sat = false;
            'assignments: for bits in 0..(1u32 << num_vars) {
                let val = |l: Lit| ((bits >> l.var()) & 1 == 1) == l.is_positive();
                if clauses.iter().all(|c| c.iter().any(|&l| val(l))) {
                    brute_sat = true;
                    break 'assignments;
                }
            }
            match solver_result {
                Ok(model) => {
                    assert!(brute_sat, "solver returned SAT on UNSAT instance");
                    for c in &clauses {
                        assert!(
                            c.iter().any(|&l| model[l.var()] == l.is_positive()),
                            "model does not satisfy clause {c:?}"
                        );
                    }
                }
                Err(Unsat) => assert!(!brute_sat, "solver returned UNSAT on SAT instance"),
            }
        }
    }
}
