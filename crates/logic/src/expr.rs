//! Variables, linear expressions and formulas.

use std::fmt;
use std::ops::{Add, Neg, Sub};

/// A Boolean SMT variable.
///
/// Boolean variables represent the *block*, *idle* and *dead* predicates of
/// the deadlock equations.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BoolVar(pub(crate) u32);

impl BoolVar {
    /// Returns the raw index of the variable.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A bounded integer SMT variable.
///
/// Integer variables represent queue occupancies and automaton state
/// indicators; every integer variable carries static lower/upper bounds.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct IntVar(pub(crate) u32);

impl IntVar {
    /// Returns the raw index of the variable.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Declarations of all variables of an SMT problem.
///
/// The pool owns the names and bounds; formulas refer to variables by the
/// lightweight [`BoolVar`] / [`IntVar`] handles.
#[derive(Clone, Debug, Default)]
pub struct VarPool {
    bools: Vec<String>,
    ints: Vec<IntDecl>,
}

#[derive(Clone, Debug)]
struct IntDecl {
    name: String,
    lo: i64,
    hi: i64,
}

impl VarPool {
    /// Creates an empty pool.
    pub fn new() -> Self {
        VarPool::default()
    }

    /// Declares a fresh Boolean variable.
    pub fn new_bool(&mut self, name: impl Into<String>) -> BoolVar {
        let v = BoolVar(self.bools.len() as u32);
        self.bools.push(name.into());
        v
    }

    /// Declares a fresh bounded integer variable with inclusive bounds.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn new_int(&mut self, name: impl Into<String>, lo: i64, hi: i64) -> IntVar {
        assert!(lo <= hi, "integer variable must have a non-empty domain");
        let v = IntVar(self.ints.len() as u32);
        self.ints.push(IntDecl {
            name: name.into(),
            lo,
            hi,
        });
        v
    }

    /// Returns the number of Boolean variables.
    pub fn bool_count(&self) -> usize {
        self.bools.len()
    }

    /// Returns the number of integer variables.
    pub fn int_count(&self) -> usize {
        self.ints.len()
    }

    /// Returns the name of a Boolean variable.
    pub fn bool_name(&self, v: BoolVar) -> &str {
        &self.bools[v.index()]
    }

    /// Returns the name of an integer variable.
    pub fn int_name(&self, v: IntVar) -> &str {
        &self.ints[v.index()].name
    }

    /// Returns the inclusive `(lo, hi)` bounds of an integer variable.
    pub fn int_bounds(&self, v: IntVar) -> (i64, i64) {
        let d = &self.ints[v.index()];
        (d.lo, d.hi)
    }

    /// Iterates over all integer variables.
    pub fn int_vars(&self) -> impl Iterator<Item = IntVar> + '_ {
        (0..self.ints.len() as u32).map(IntVar)
    }

    /// Iterates over all Boolean variables.
    pub fn bool_vars(&self) -> impl Iterator<Item = BoolVar> + '_ {
        (0..self.bools.len() as u32).map(BoolVar)
    }
}

/// A linear integer expression `Σ aᵢ·xᵢ + c`.
///
/// # Examples
///
/// ```
/// use advocat_logic::{LinExpr, VarPool};
///
/// let mut pool = VarPool::new();
/// let x = pool.new_int("x", 0, 10);
/// let y = pool.new_int("y", 0, 10);
/// let e = LinExpr::var(x) + LinExpr::var(y).scaled(2) - LinExpr::constant(3);
/// assert_eq!(e.constant_part(), -3);
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct LinExpr {
    terms: Vec<(i64, IntVar)>,
    constant: i64,
}

impl LinExpr {
    /// The zero expression.
    pub fn zero() -> Self {
        LinExpr::default()
    }

    /// A constant expression.
    pub fn constant(value: i64) -> Self {
        LinExpr {
            terms: Vec::new(),
            constant: value,
        }
    }

    /// The expression `1·x`.
    pub fn var(x: IntVar) -> Self {
        LinExpr {
            terms: vec![(1, x)],
            constant: 0,
        }
    }

    /// The expression `coef·x`.
    pub fn term(coef: i64, x: IntVar) -> Self {
        LinExpr {
            terms: vec![(coef, x)],
            constant: 0,
        }
    }

    /// Sums a collection of expressions.
    pub fn sum<I: IntoIterator<Item = LinExpr>>(items: I) -> Self {
        let mut acc = LinExpr::zero();
        for item in items {
            acc = acc + item;
        }
        acc
    }

    /// Returns the expression multiplied by a scalar.
    pub fn scaled(mut self, factor: i64) -> Self {
        for (c, _) in &mut self.terms {
            *c *= factor;
        }
        self.constant *= factor;
        self
    }

    /// Adds `coef·x` in place.
    pub fn add_term(&mut self, coef: i64, x: IntVar) {
        if coef != 0 {
            self.terms.push((coef, x));
        }
    }

    /// Adds a constant in place.
    pub fn add_constant(&mut self, value: i64) {
        self.constant += value;
    }

    /// Returns the constant part of the expression.
    pub fn constant_part(&self) -> i64 {
        self.constant
    }

    /// Returns the (unsimplified) list of terms.
    pub fn terms(&self) -> &[(i64, IntVar)] {
        &self.terms
    }

    /// Collapses duplicate variables and removes zero coefficients,
    /// returning sorted `(coef, var)` pairs plus the constant.
    pub fn canonical(&self) -> (Vec<(i64, IntVar)>, i64) {
        let mut terms = self.terms.clone();
        terms.sort_by_key(|(_, v)| *v);
        let mut out: Vec<(i64, IntVar)> = Vec::with_capacity(terms.len());
        for (c, v) in terms {
            match out.last_mut() {
                Some((lc, lv)) if *lv == v => *lc += c,
                _ => out.push((c, v)),
            }
        }
        out.retain(|(c, _)| *c != 0);
        (out, self.constant)
    }

    /// Evaluates the expression under an assignment.
    pub fn evaluate<F: FnMut(IntVar) -> i64>(&self, mut value_of: F) -> i64 {
        let mut acc = self.constant;
        for (c, v) in &self.terms {
            acc += c * value_of(*v);
        }
        acc
    }
}

impl Add for LinExpr {
    type Output = LinExpr;

    fn add(mut self, rhs: LinExpr) -> LinExpr {
        self.terms.extend(rhs.terms);
        self.constant += rhs.constant;
        self
    }
}

impl Sub for LinExpr {
    type Output = LinExpr;

    #[allow(clippy::suspicious_arithmetic_impl)] // subtraction via the negation
    fn sub(self, rhs: LinExpr) -> LinExpr {
        self + rhs.neg()
    }
}

impl Neg for LinExpr {
    type Output = LinExpr;

    fn neg(self) -> LinExpr {
        self.scaled(-1)
    }
}

impl From<IntVar> for LinExpr {
    fn from(value: IntVar) -> Self {
        LinExpr::var(value)
    }
}

impl From<i64> for LinExpr {
    fn from(value: i64) -> Self {
        LinExpr::constant(value)
    }
}

/// Comparison operators between linear expressions.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// `lhs ≤ rhs`
    Le,
    /// `lhs < rhs`
    Lt,
    /// `lhs ≥ rhs`
    Ge,
    /// `lhs > rhs`
    Gt,
    /// `lhs = rhs`
    Eq,
    /// `lhs ≠ rhs`
    Ne,
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Le => "<=",
            CmpOp::Lt => "<",
            CmpOp::Ge => ">=",
            CmpOp::Gt => ">",
            CmpOp::Eq => "=",
            CmpOp::Ne => "!=",
        };
        f.write_str(s)
    }
}

/// A quantifier-free formula over Boolean variables and linear integer
/// comparisons.
///
/// Construct formulas with the associated functions ([`Formula::and`],
/// [`Formula::or`], [`Formula::eq`], …); the deadlock encoder in
/// `advocat-deadlock` builds one big conjunction out of these.
#[derive(Clone, Debug, PartialEq)]
pub enum Formula {
    /// The constant `true`.
    True,
    /// The constant `false`.
    False,
    /// A Boolean variable.
    Bool(BoolVar),
    /// A comparison between two linear expressions.
    Cmp(LinExpr, CmpOp, LinExpr),
    /// Negation.
    Not(Box<Formula>),
    /// N-ary conjunction.
    And(Vec<Formula>),
    /// N-ary disjunction.
    Or(Vec<Formula>),
    /// Implication.
    Implies(Box<Formula>, Box<Formula>),
    /// Bi-implication.
    Iff(Box<Formula>, Box<Formula>),
}

impl Formula {
    /// Conjunction of the given formulas (`true` when empty).
    pub fn and<I: IntoIterator<Item = Formula>>(items: I) -> Formula {
        let mut parts: Vec<Formula> = Vec::new();
        for f in items {
            match f {
                Formula::True => {}
                Formula::False => return Formula::False,
                Formula::And(inner) => parts.extend(inner),
                other => parts.push(other),
            }
        }
        match parts.len() {
            0 => Formula::True,
            1 => parts.pop().expect("length checked"),
            _ => Formula::And(parts),
        }
    }

    /// Disjunction of the given formulas (`false` when empty).
    pub fn or<I: IntoIterator<Item = Formula>>(items: I) -> Formula {
        let mut parts: Vec<Formula> = Vec::new();
        for f in items {
            match f {
                Formula::False => {}
                Formula::True => return Formula::True,
                Formula::Or(inner) => parts.extend(inner),
                other => parts.push(other),
            }
        }
        match parts.len() {
            0 => Formula::False,
            1 => parts.pop().expect("length checked"),
            _ => Formula::Or(parts),
        }
    }

    /// Negation, with light simplification.
    #[allow(clippy::should_implement_trait)] // an associated constructor, not `!`
    pub fn not(f: Formula) -> Formula {
        match f {
            Formula::True => Formula::False,
            Formula::False => Formula::True,
            Formula::Not(inner) => *inner,
            other => Formula::Not(Box::new(other)),
        }
    }

    /// Implication `lhs → rhs`.
    pub fn implies(lhs: Formula, rhs: Formula) -> Formula {
        match (&lhs, &rhs) {
            (Formula::True, _) => rhs,
            (Formula::False, _) => Formula::True,
            (_, Formula::True) => Formula::True,
            _ => Formula::Implies(Box::new(lhs), Box::new(rhs)),
        }
    }

    /// Bi-implication `lhs ↔ rhs`.
    pub fn iff(lhs: Formula, rhs: Formula) -> Formula {
        match (&lhs, &rhs) {
            (Formula::True, _) => rhs,
            (_, Formula::True) => lhs,
            (Formula::False, _) => Formula::not(rhs),
            (_, Formula::False) => Formula::not(lhs),
            _ => Formula::Iff(Box::new(lhs), Box::new(rhs)),
        }
    }

    /// The atom for a Boolean variable.
    pub fn bool_var(v: BoolVar) -> Formula {
        Formula::Bool(v)
    }

    /// `lhs ≤ rhs`.
    pub fn le(lhs: impl Into<LinExpr>, rhs: impl Into<LinExpr>) -> Formula {
        Formula::Cmp(lhs.into(), CmpOp::Le, rhs.into())
    }

    /// `lhs < rhs`.
    pub fn lt(lhs: impl Into<LinExpr>, rhs: impl Into<LinExpr>) -> Formula {
        Formula::Cmp(lhs.into(), CmpOp::Lt, rhs.into())
    }

    /// `lhs ≥ rhs`.
    pub fn ge(lhs: impl Into<LinExpr>, rhs: impl Into<LinExpr>) -> Formula {
        Formula::Cmp(lhs.into(), CmpOp::Ge, rhs.into())
    }

    /// `lhs > rhs`.
    pub fn gt(lhs: impl Into<LinExpr>, rhs: impl Into<LinExpr>) -> Formula {
        Formula::Cmp(lhs.into(), CmpOp::Gt, rhs.into())
    }

    /// `lhs = rhs`.
    pub fn eq(lhs: impl Into<LinExpr>, rhs: impl Into<LinExpr>) -> Formula {
        Formula::Cmp(lhs.into(), CmpOp::Eq, rhs.into())
    }

    /// `lhs ≠ rhs`.
    pub fn ne(lhs: impl Into<LinExpr>, rhs: impl Into<LinExpr>) -> Formula {
        Formula::Cmp(lhs.into(), CmpOp::Ne, rhs.into())
    }

    /// Evaluates the formula under full Boolean and integer assignments.
    ///
    /// Used by tests and by counterexample validation.
    pub fn evaluate<FB, FI>(&self, bool_of: &mut FB, int_of: &mut FI) -> bool
    where
        FB: FnMut(BoolVar) -> bool,
        FI: FnMut(IntVar) -> i64,
    {
        match self {
            Formula::True => true,
            Formula::False => false,
            Formula::Bool(v) => bool_of(*v),
            Formula::Cmp(lhs, op, rhs) => {
                let l = lhs.evaluate(&mut *int_of);
                let r = rhs.evaluate(&mut *int_of);
                match op {
                    CmpOp::Le => l <= r,
                    CmpOp::Lt => l < r,
                    CmpOp::Ge => l >= r,
                    CmpOp::Gt => l > r,
                    CmpOp::Eq => l == r,
                    CmpOp::Ne => l != r,
                }
            }
            Formula::Not(f) => !f.evaluate(bool_of, int_of),
            Formula::And(fs) => fs.iter().all(|f| f.evaluate(bool_of, int_of)),
            Formula::Or(fs) => fs.iter().any(|f| f.evaluate(bool_of, int_of)),
            Formula::Implies(a, b) => !a.evaluate(bool_of, int_of) || b.evaluate(bool_of, int_of),
            Formula::Iff(a, b) => a.evaluate(bool_of, int_of) == b.evaluate(bool_of, int_of),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_assigns_sequential_indices() {
        let mut pool = VarPool::new();
        let a = pool.new_bool("a");
        let b = pool.new_bool("b");
        let x = pool.new_int("x", 0, 3);
        assert_eq!(a.index(), 0);
        assert_eq!(b.index(), 1);
        assert_eq!(x.index(), 0);
        assert_eq!(pool.bool_name(b), "b");
        assert_eq!(pool.int_bounds(x), (0, 3));
    }

    #[test]
    #[should_panic(expected = "non-empty domain")]
    fn empty_domain_rejected() {
        let mut pool = VarPool::new();
        pool.new_int("x", 2, 1);
    }

    #[test]
    fn canonical_merges_duplicate_terms() {
        let mut pool = VarPool::new();
        let x = pool.new_int("x", 0, 9);
        let y = pool.new_int("y", 0, 9);
        let e = LinExpr::var(x) + LinExpr::term(2, x) - LinExpr::var(y) + LinExpr::var(y);
        let (terms, c) = e.canonical();
        assert_eq!(terms, vec![(3, x)]);
        assert_eq!(c, 0);
    }

    #[test]
    fn formula_constructors_simplify() {
        assert_eq!(Formula::and([Formula::True, Formula::True]), Formula::True);
        assert_eq!(Formula::or([]), Formula::False);
        assert_eq!(
            Formula::and([Formula::False, Formula::True]),
            Formula::False
        );
        assert_eq!(Formula::not(Formula::not(Formula::True)), Formula::True);
    }

    #[test]
    fn evaluate_comparisons() {
        let mut pool = VarPool::new();
        let x = pool.new_int("x", 0, 9);
        let f = Formula::and([
            Formula::le(LinExpr::var(x), LinExpr::constant(5)),
            Formula::ne(LinExpr::var(x), LinExpr::constant(2)),
        ]);
        assert!(f.evaluate(&mut |_| false, &mut |_| 3));
        assert!(!f.evaluate(&mut |_| false, &mut |_| 2));
        assert!(!f.evaluate(&mut |_| false, &mut |_| 7));
    }

    #[test]
    fn evaluate_boolean_structure() {
        let mut pool = VarPool::new();
        let a = pool.new_bool("a");
        let b = pool.new_bool("b");
        let f = Formula::iff(Formula::bool_var(a), Formula::not(Formula::bool_var(b)));
        assert!(f.evaluate(&mut |v| v == a, &mut |_| 0));
        assert!(!f.evaluate(&mut |_| true, &mut |_| 0));
    }
}
