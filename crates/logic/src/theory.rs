//! Bounded linear integer arithmetic: feasibility of conjunctions of
//! `Σ aᵢ·xᵢ ≤ b` constraints over finite integer domains.
//!
//! Because every SMT integer variable produced by the deadlock encoding has
//! static bounds (queue occupancies are bounded by the queue size, state
//! indicators by one), a complete decision procedure only needs
//!
//! 1. **interval propagation** — repeatedly tighten variable domains from
//!    the constraints until a fixpoint or an empty domain is reached, and
//! 2. **branch & bound** — split the domain of an undetermined variable and
//!    recurse.
//!
//! The solver returns an integer model when feasible.  When infeasible it
//! does not attempt to compute a minimal core itself; the SMT loop
//! ([`crate::smt`]) performs deletion-based core minimisation using the
//! cheap [`refuted_by_propagation`] check.

/// A single theory constraint `Σ terms ≤ bound` over integer variables
/// identified by their index in the domain vector.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Constraint {
    /// `(coefficient, variable index)` pairs.
    pub terms: Vec<(i64, usize)>,
    /// Inclusive upper bound on the weighted sum.
    pub bound: i64,
}

impl Constraint {
    /// Creates a constraint `Σ terms ≤ bound`.
    pub fn new(terms: Vec<(i64, usize)>, bound: i64) -> Self {
        Constraint { terms, bound }
    }

    /// Evaluates whether the constraint holds under the given assignment.
    pub fn holds(&self, assignment: &[i64]) -> bool {
        let sum: i64 = self.terms.iter().map(|(c, v)| c * assignment[*v]).sum();
        sum <= self.bound
    }
}

/// Result of a feasibility check.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TheoryVerdict {
    /// The constraints are satisfiable; a witness assignment is returned.
    Sat(Vec<i64>),
    /// The constraints are unsatisfiable.
    Unsat,
    /// The search budget was exhausted before a verdict was reached.
    Unknown,
}

#[derive(Clone, Debug)]
struct Domains {
    lo: Vec<i64>,
    hi: Vec<i64>,
}

impl Domains {
    fn is_fixed(&self, v: usize) -> bool {
        self.lo[v] == self.hi[v]
    }
}

/// Tightens the domains using interval propagation.
///
/// Returns `Err(())` when some domain becomes empty (a sound proof of
/// infeasibility), `Ok(())` at fixpoint otherwise.
fn propagate(domains: &mut Domains, constraints: &[Constraint]) -> Result<(), ()> {
    loop {
        let mut changed = false;
        for c in constraints {
            // Minimal possible value of the weighted sum.
            let mut min_sum: i64 = 0;
            for &(a, v) in &c.terms {
                min_sum += if a > 0 {
                    a * domains.lo[v]
                } else {
                    a * domains.hi[v]
                };
            }
            if min_sum > c.bound {
                return Err(());
            }
            for &(a, v) in &c.terms {
                let own_min = if a > 0 {
                    a * domains.lo[v]
                } else {
                    a * domains.hi[v]
                };
                let others_min = min_sum - own_min;
                let budget = c.bound - others_min;
                if a > 0 {
                    // a·x ≤ budget  =>  x ≤ floor(budget / a)
                    let new_hi = budget.div_euclid(a);
                    if new_hi < domains.hi[v] {
                        domains.hi[v] = new_hi;
                        changed = true;
                        if domains.hi[v] < domains.lo[v] {
                            return Err(());
                        }
                    }
                } else {
                    // a·x ≤ budget with a < 0  =>  x ≥ ceil(budget / a)
                    let new_lo = ceil_div(budget, a);
                    if new_lo > domains.lo[v] {
                        domains.lo[v] = new_lo;
                        changed = true;
                        if domains.hi[v] < domains.lo[v] {
                            return Err(());
                        }
                    }
                }
            }
        }
        if !changed {
            return Ok(());
        }
    }
}

fn ceil_div(a: i64, b: i64) -> i64 {
    // Rounds a / b towards positive infinity; b may be negative.
    // `div_euclid` leaves a non-negative remainder, so it floors for b > 0
    // and already computes the ceiling for b < 0.
    let q = a.div_euclid(b);
    let r = a.rem_euclid(b);
    if r == 0 || b < 0 {
        q
    } else {
        q + 1
    }
}

/// Returns `true` when interval propagation alone refutes the constraints.
///
/// This is a cheap, sound (but incomplete) infeasibility check used for
/// conflict-core minimisation.
pub fn refuted_by_propagation(bounds: &[(i64, i64)], constraints: &[Constraint]) -> bool {
    let mut domains = Domains {
        lo: bounds.iter().map(|b| b.0).collect(),
        hi: bounds.iter().map(|b| b.1).collect(),
    };
    propagate(&mut domains, constraints).is_err()
}

/// Decides feasibility of `constraints` over variables with the given
/// inclusive `bounds`.
///
/// `node_budget` bounds the number of search nodes explored; when exhausted
/// the verdict is [`TheoryVerdict::Unknown`].
pub fn solve(bounds: &[(i64, i64)], constraints: &[Constraint], node_budget: u64) -> TheoryVerdict {
    for c in constraints {
        for &(_, v) in &c.terms {
            assert!(v < bounds.len(), "constraint mentions undeclared variable");
        }
    }
    let domains = Domains {
        lo: bounds.iter().map(|b| b.0).collect(),
        hi: bounds.iter().map(|b| b.1).collect(),
    };
    let mut budget = node_budget;
    search(domains, constraints, &mut budget)
}

fn search(mut domains: Domains, constraints: &[Constraint], budget: &mut u64) -> TheoryVerdict {
    if *budget == 0 {
        return TheoryVerdict::Unknown;
    }
    *budget -= 1;
    if propagate(&mut domains, constraints).is_err() {
        return TheoryVerdict::Unsat;
    }
    // Pick the unfixed variable with the smallest domain.
    let mut pick: Option<(usize, i64)> = None;
    for v in 0..domains.lo.len() {
        if !domains.is_fixed(v) {
            let width = domains.hi[v] - domains.lo[v];
            match pick {
                Some((_, w)) if w <= width => {}
                _ => pick = Some((v, width)),
            }
        }
    }
    let Some((v, _)) = pick else {
        // All variables fixed: propagation guarantees every constraint's
        // minimal sum is within bounds, which for fixed domains is the exact
        // sum, so this is a model.
        return TheoryVerdict::Sat(domains.lo);
    };
    let mid = domains.lo[v] + (domains.hi[v] - domains.lo[v]) / 2;

    // Lower half first: flow-style systems usually admit small solutions.
    let mut lower = domains.clone();
    lower.hi[v] = mid;
    match search(lower, constraints, budget) {
        TheoryVerdict::Sat(model) => return TheoryVerdict::Sat(model),
        TheoryVerdict::Unknown => return TheoryVerdict::Unknown,
        TheoryVerdict::Unsat => {}
    }
    let mut upper = domains;
    upper.lo[v] = mid + 1;
    search(upper, constraints, budget)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn le(terms: Vec<(i64, usize)>, bound: i64) -> Constraint {
        Constraint::new(terms, bound)
    }

    fn eq(terms: Vec<(i64, usize)>, value: i64) -> Vec<Constraint> {
        let neg: Vec<(i64, usize)> = terms.iter().map(|(c, v)| (-c, *v)).collect();
        vec![le(terms, value), le(neg, -value)]
    }

    #[test]
    fn empty_constraint_set_is_feasible() {
        let verdict = solve(&[(0, 3), (0, 3)], &[], 100);
        match verdict {
            TheoryVerdict::Sat(model) => assert_eq!(model.len(), 2),
            other => panic!("expected Sat, got {other:?}"),
        }
    }

    #[test]
    fn simple_equality_is_solved() {
        // x + y = 4, x >= 3, domains [0, 5].
        let mut cs = eq(vec![(1, 0), (1, 1)], 4);
        cs.push(le(vec![(-1, 0)], -3));
        match solve(&[(0, 5), (0, 5)], &cs, 1_000) {
            TheoryVerdict::Sat(m) => {
                assert_eq!(m[0] + m[1], 4);
                assert!(m[0] >= 3);
            }
            other => panic!("expected Sat, got {other:?}"),
        }
    }

    #[test]
    fn contradictory_bounds_are_unsat() {
        // x <= 1 and x >= 2 on domain [0, 5].
        let cs = vec![le(vec![(1, 0)], 1), le(vec![(-1, 0)], -2)];
        assert_eq!(solve(&[(0, 5)], &cs, 1_000), TheoryVerdict::Unsat);
        assert!(refuted_by_propagation(&[(0, 5)], &cs));
    }

    #[test]
    fn infeasible_sum_over_binary_variables() {
        // x0 + x1 + x2 = 5 with all domains {0, 1}.
        let cs = eq(vec![(1, 0), (1, 1), (1, 2)], 5);
        assert_eq!(solve(&[(0, 1); 3], &cs, 1_000), TheoryVerdict::Unsat);
    }

    #[test]
    fn negative_coefficients_propagate_lower_bounds() {
        // y - x <= -2  =>  x >= y + 2; with y >= 3 we need x >= 5.
        let cs = vec![le(vec![(1, 1), (-1, 0)], -2), le(vec![(-1, 1)], -3)];
        match solve(&[(0, 10), (0, 10)], &cs, 1_000) {
            TheoryVerdict::Sat(m) => {
                assert!(m[0] >= m[1] + 2);
                assert!(m[1] >= 3);
            }
            other => panic!("expected Sat, got {other:?}"),
        }
    }

    #[test]
    fn budget_exhaustion_reports_unknown() {
        let cs = eq(vec![(1, 0), (1, 1), (1, 2)], 3);
        assert_eq!(solve(&[(0, 3); 3], &cs, 0), TheoryVerdict::Unknown);
    }

    #[test]
    fn model_satisfies_every_constraint() {
        // A slightly larger random-ish system with a known solution.
        let cs = vec![
            le(vec![(2, 0), (3, 1), (-1, 2)], 10),
            le(vec![(-1, 0), (1, 3)], 2),
            le(vec![(1, 2), (1, 3)], 7),
            le(vec![(-2, 1), (-1, 3)], -3),
        ];
        match solve(&[(0, 6); 4], &cs, 10_000) {
            TheoryVerdict::Sat(m) => {
                for c in &cs {
                    assert!(c.holds(&m), "violated constraint {c:?} by model {m:?}");
                }
            }
            other => panic!("expected Sat, got {other:?}"),
        }
    }

    #[test]
    fn ceil_div_matches_mathematical_ceiling() {
        assert_eq!(ceil_div(7, 2), 4);
        assert_eq!(ceil_div(6, 2), 3);
        assert_eq!(ceil_div(-7, 2), -3);
        assert_eq!(ceil_div(7, -2), -3);
        assert_eq!(ceil_div(-7, -2), 4);
        assert_eq!(ceil_div(6, -2), -3);
    }
}
