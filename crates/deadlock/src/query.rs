//! The query vocabulary of the unified verification surface.
//!
//! ADVOCAT's pitch is that *one* SMT encoding of a fabric answers many
//! questions.  A [`Query`] names one such question as a point in a small
//! configuration space — which [`DeadlockTarget`] to look for, at which
//! queue capacity ([`CapacitySelection`]), with or without invariant
//! strengthening — and every dimension maps onto a retractable selector in
//! one persistent solver (see [`crate::EncodingTemplate`]), so sweeping any
//! of them re-encodes nothing.

use crate::encode::DeadlockSpec;

/// Which deadlock formulation a query asks about.
///
/// The block/idle equations admit two observable symptoms of a cross-layer
/// deadlock; a query targets either one or their disjunction.  Both goals
/// are encoded once per session and selected per query by an assumption
/// literal, so flipping the target between queries costs no re-encode.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum DeadlockTarget {
    /// Some queue holds a packet whose head channel is permanently blocked.
    StuckPacket,
    /// Some automaton occupies a state all of whose transitions are dead.
    DeadAutomaton,
    /// Either symptom (the paper's specification, and the default).
    #[default]
    Any,
}

impl DeadlockTarget {
    /// Returns `true` when the target includes the stuck-packet symptom.
    pub fn includes_stuck_packet(self) -> bool {
        matches!(self, DeadlockTarget::StuckPacket | DeadlockTarget::Any)
    }

    /// Returns `true` when the target includes the dead-automaton symptom.
    pub fn includes_dead_automaton(self) -> bool {
        matches!(self, DeadlockTarget::DeadAutomaton | DeadlockTarget::Any)
    }
}

impl std::fmt::Display for DeadlockTarget {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            DeadlockTarget::StuckPacket => "stuck-packet",
            DeadlockTarget::DeadAutomaton => "dead-automaton",
            DeadlockTarget::Any => "any",
        })
    }
}

impl DeadlockSpec {
    /// Maps the legacy two-flag specification onto the [`DeadlockTarget`]
    /// it describes, or `None` when both conditions are disabled (a query
    /// with nothing to look for is trivially deadlock-free).
    pub fn as_target(&self) -> Option<DeadlockTarget> {
        match (self.stuck_packet, self.dead_automaton) {
            (true, true) => Some(DeadlockTarget::Any),
            (true, false) => Some(DeadlockTarget::StuckPacket),
            (false, true) => Some(DeadlockTarget::DeadAutomaton),
            (false, false) => None,
        }
    }
}

impl From<DeadlockTarget> for DeadlockSpec {
    fn from(target: DeadlockTarget) -> Self {
        DeadlockSpec {
            stuck_packet: target.includes_stuck_packet(),
            dead_automaton: target.includes_dead_automaton(),
        }
    }
}

/// How a query pins the queue capacities of the encoding.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum CapacitySelection {
    /// Every queue at its own structural size — what a one-shot
    /// verification of the system as built would check (the default).
    #[default]
    Structural,
    /// Every queue pinned to the same capacity, as in a sizing sweep.
    Uniform(usize),
}

/// One deadlock question: a target, a capacity selection, and whether the
/// derived cross-layer invariants strengthen the encoding.
///
/// `Query` is plain data — build it once, reuse it, tweak one dimension at
/// a time.  Answer it with `QueryEngine::check` in `advocat` (which wraps a
/// whole system) or [`crate::EncodingTemplate::check`] (the encoding
/// layer).
///
/// # Examples
///
/// ```
/// use advocat_deadlock::{DeadlockTarget, Query};
///
/// let q = Query::new()
///     .capacity(3)
///     .target(DeadlockTarget::StuckPacket)
///     .invariants(false);
/// assert_eq!(q.deadlock_target(), DeadlockTarget::StuckPacket);
/// assert!(!q.invariants_enabled());
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub struct Query {
    capacity: CapacitySelection,
    target: DeadlockTarget,
    no_invariants: bool,
}

impl Query {
    /// A query for the paper's default question: any deadlock symptom, at
    /// the structural queue capacities, with invariants enabled.
    pub fn new() -> Self {
        Query::default()
    }

    /// Pins every queue to the given uniform capacity.
    pub fn capacity(mut self, capacity: usize) -> Self {
        self.capacity = CapacitySelection::Uniform(capacity);
        self
    }

    /// Uses every queue's structural size (the default).
    pub fn structural_capacity(mut self) -> Self {
        self.capacity = CapacitySelection::Structural;
        self
    }

    /// Selects the deadlock target.
    pub fn target(mut self, target: DeadlockTarget) -> Self {
        self.target = target;
        self
    }

    /// Enables or disables the derived invariant strengthening.  Disabling
    /// it reproduces the "deadlock candidates without invariants" ablation
    /// of Section 3 of the paper.
    pub fn invariants(mut self, enabled: bool) -> Self {
        self.no_invariants = !enabled;
        self
    }

    /// The capacity selection of this query.
    pub fn capacity_selection(&self) -> CapacitySelection {
        self.capacity
    }

    /// The deadlock target of this query.
    pub fn deadlock_target(&self) -> DeadlockTarget {
        self.target
    }

    /// Whether the derived invariants strengthen this query's encoding.
    pub fn invariants_enabled(&self) -> bool {
        !self.no_invariants
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_dimensions_are_independent() {
        let q = Query::new();
        assert_eq!(q.capacity_selection(), CapacitySelection::Structural);
        assert_eq!(q.deadlock_target(), DeadlockTarget::Any);
        assert!(q.invariants_enabled());

        let q = q.capacity(4).target(DeadlockTarget::DeadAutomaton);
        assert_eq!(q.capacity_selection(), CapacitySelection::Uniform(4));
        assert!(q.invariants_enabled(), "untouched dimensions keep defaults");

        let q = q.invariants(false).structural_capacity();
        assert_eq!(q.capacity_selection(), CapacitySelection::Structural);
        assert_eq!(q.deadlock_target(), DeadlockTarget::DeadAutomaton);
        assert!(!q.invariants_enabled());
    }

    #[test]
    fn spec_round_trips_through_target() {
        assert_eq!(
            DeadlockSpec::default().as_target(),
            Some(DeadlockTarget::Any)
        );
        for target in [
            DeadlockTarget::StuckPacket,
            DeadlockTarget::DeadAutomaton,
            DeadlockTarget::Any,
        ] {
            assert_eq!(DeadlockSpec::from(target).as_target(), Some(target));
        }
        let neither = DeadlockSpec {
            stuck_packet: false,
            dead_automaton: false,
        };
        assert_eq!(neither.as_target(), None);
    }

    #[test]
    fn targets_display_for_reports() {
        assert_eq!(DeadlockTarget::StuckPacket.to_string(), "stuck-packet");
        assert_eq!(DeadlockTarget::DeadAutomaton.to_string(), "dead-automaton");
        assert_eq!(DeadlockTarget::Any.to_string(), "any");
    }
}
