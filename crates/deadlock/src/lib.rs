//! Cross-layer deadlock detection (Section 3 of the ADVOCAT paper).
//!
//! Deadlock detection follows Gotmanov, Chatterjee & Kishinevsky's
//! block/idle technique and extends it to XMAS automata:
//!
//! * a channel is **blocked** for a packet when its target can permanently
//!   not accept that packet,
//! * a channel is **idle** for a packet when its initiator will permanently
//!   not offer that packet,
//! * an automaton is **dead** when it occupies a state all of whose
//!   outgoing transitions can permanently not fire (their input is idle or
//!   their emission is blocked).
//!
//! The defining equations of these predicates, the structural constraints
//! (queue capacities, one-state-per-automaton), the automatically derived
//! cross-layer invariants (from `advocat-invariants`) and a *deadlock
//! target* (some queue holds a permanently blocked packet, or some
//! automaton is dead) are conjoined into one SMT instance.  If the instance
//! is unsatisfiable the system is **deadlock-free**; if it is satisfiable
//! the model is returned as a deadlock *candidate* (the method is sound but
//! may produce false negatives — candidates may be unreachable).
//!
//! # Examples
//!
//! ```
//! use advocat_automata::{AutomatonBuilder, System};
//! use advocat_deadlock::{verify_system, DeadlockSpec, Verdict};
//! use advocat_xmas::{Network, Packet};
//!
//! // A producer feeding a dead sink through a tiny queue: every packet
//! // that enters the queue is stuck for ever — a (trivial) deadlock.
//! let mut net = Network::new();
//! let pkt = net.intern(Packet::kind("pkt"));
//! let src = net.add_source("src", vec![pkt]);
//! let q = net.add_queue("q", 1);
//! let dead = net.add_dead_sink("dead");
//! net.connect(src, 0, q, 0);
//! net.connect(q, 0, dead, 0);
//! let system = System::new(net);
//!
//! let analysis = verify_system(&system, &DeadlockSpec::default());
//! assert!(matches!(analysis.verdict, Verdict::PotentialDeadlock(_)));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod boundary;
mod counterexample;
mod encode;
mod query;
mod template;
mod verify;

pub use boundary::{
    check_composition, Boundary, BoundaryAnalysis, BoundaryOutcome, CompositionModel, InterfacePort,
};
pub use counterexample::Counterexample;
pub use encode::DeadlockSpec;
pub use query::{CapacitySelection, DeadlockTarget, Query};
pub use template::{structural_capacity_range, ContractCheck, EncodingTemplate};
pub use verify::{verify_system, verify_with, Analysis, AnalysisStats, Verdict};
